"""Table 6 benchmark: random-pattern stuck-at testability, before/after.

Reproduction target: "the random pattern testability for stuck-at faults
remained unchanged after the modifications".  With the same pattern
sequence applied to both versions we check (a) coverage moves by at most a
couple of percent in either direction, and (b) the paper's striking detail
— the last *effective* pattern is frequently identical before and after,
because the hardest random-resistant fault usually lives in logic the
modification never touched.
"""

from repro.experiments import table6

#: Pattern budget (scaled from the paper's 30,000,000; our circuits are
#: ~10-30x smaller).  Unlike the paper's marathon runs, a few
#: random-resistant comparator faults remain at this budget in both
#: versions — the comparison is between the versions, not to zero.
BUDGET = 1 << 14


def test_table6(once):
    res = once(table6, max_patterns=BUDGET)
    print("\n" + res.render())
    assert len(res.rows) == 8

    equal_eff = 0
    for r in res.rows:
        coverage_orig = 1 - r.remain_orig / max(r.faults_orig, 1)
        coverage_mod = 1 - r.remain_modified / max(r.faults_modified, 1)
        # random-pattern testability never deteriorates beyond noise
        # (improvements — e.g. the decode-heavy syn9234 gains 4 points —
        # are welcome and unbounded)
        assert coverage_mod >= coverage_orig - 0.03, r.name
        if r.eff_orig == r.eff_modified:
            equal_eff += 1

    # the paper's Table 6 shows identical effective patterns per pair;
    # at our scale the same effect appears on most circuits
    assert equal_eff >= len(res.rows) // 2, equal_eff

    # both versions detect the overwhelming majority of faults
    for r in res.rows:
        assert r.remain_orig <= 0.15 * r.faults_orig, r.name
        assert r.remain_modified <= 0.15 * r.faults_modified, r.name
