"""Substrate microbenchmarks: the kernels the experiments stand on.

Unlike the table benchmarks (one-shot end-to-end runs), these measure the
hot kernels properly (multiple rounds) so performance regressions in the
simulation/fault-sim/path-counting cores are visible.
"""

import random

import pytest

from repro.analysis import count_paths, path_labels
from repro.benchcircuits.suite import suite_circuit
from repro.faults import FaultSimulator, fault_universe
from repro.pdf import robustly_sensitized_paths, simulate_pairs
from repro.sim import random_words, simulate

CIRCUIT = "syn13207"
PATTERNS = 512


@pytest.fixture(scope="module")
def circuit():
    return suite_circuit(CIRCUIT)


@pytest.fixture(scope="module")
def words(circuit):
    rng = random.Random(1)
    return random_words(circuit.inputs, PATTERNS, rng)


def test_bitparallel_simulation(benchmark, circuit, words):
    """512 patterns through the bit-parallel simulator."""
    values = benchmark(simulate, circuit, words, PATTERNS)
    assert len(values) == len(circuit.nets())


def test_path_counting(benchmark, circuit):
    """Procedure 1 labels over the full circuit."""
    labels = benchmark(path_labels, circuit)
    assert sum(labels[o] for o in circuit.outputs) == count_paths(circuit)


def test_fault_simulation(benchmark, circuit, words):
    """PPSFP detection words for 64 faults x 512 patterns."""
    sim = FaultSimulator(circuit)
    good = sim.good_values(words, PATTERNS)
    faults = fault_universe(circuit)[:64]

    def run():
        return sum(
            1 for f in faults if sim.detection_word(f, good, PATTERNS)
        )

    detected = benchmark(run)
    assert 0 <= detected <= 64


def test_robust_pdf_batch(benchmark, circuit):
    """Hazard-aware pair simulation + sensitized-path enumeration, 128 pairs."""
    rng = random.Random(2)
    w1 = random_words(circuit.inputs, 128, rng)
    w2 = random_words(circuit.inputs, 128, rng)

    def run():
        pw = simulate_pairs(circuit, w1, w2, 128)
        return robustly_sensitized_paths(circuit, pw)

    recs = benchmark(run)
    assert isinstance(recs, list)
