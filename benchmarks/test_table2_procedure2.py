"""Table 2 benchmark: Procedure 2 (+ redundancy removal) over the suite.

Reproduction targets (the paper's shape, not its absolute numbers):
* the 2-input gate count never increases, and usually decreases;
* the path count drops consistently, often by a large factor;
* redundancy removal after Procedure 2 changes the size only marginally.
"""

from repro.experiments import table2


def test_table2(once):
    res = once(table2)
    print("\n" + res.render())
    assert len(res.rows) == 8

    path_ratios = []
    for r in res.rows:
        # gates: never increase; redundancy removal only shrinks further
        assert r.gates_modified <= r.gates_orig, r.name
        assert r.gates_redrem <= r.gates_modified, r.name
        # paths: never increase under Procedure 2's tiebreak
        assert r.paths_modified <= r.paths_orig, r.name
        path_ratios.append(r.paths_modified / max(r.paths_orig, 1))

    # "The reduction in the number of paths is often very large":
    # at least half the circuits lose >= 30% of their paths, and at
    # least one loses >= 60%.
    big_cuts = sum(1 for ratio in path_ratios if ratio <= 0.7)
    assert big_cuts >= len(path_ratios) // 2, path_ratios
    assert min(path_ratios) <= 0.4, path_ratios

    # gates drop somewhere (the paper's reductions are moderate but real)
    assert any(r.gates_modified < r.gates_orig for r in res.rows)
