"""Table 3 benchmark: the RAMBO_C baseline, alone and + Procedure 2.

Reproduction targets:
* RAMBO_C reduces gate counts (it is a strong area optimizer);
* applying Procedure 2 afterwards reduces gates at least as much again
  and cuts paths relative to the RAMBO_C circuits (the paper's headline
  contrast: RAR trades paths for gates, comparison units win them back).
"""

from repro.experiments import table3


def test_table3(once):
    res = once(table3)
    print("\n" + res.render())
    assert len(res.rows) == 4

    for r in res.rows:
        # the baseline never inflates the circuit
        assert r.gates_rambo <= r.gates_orig, r.name
        # Procedure 2 after RAMBO_C: gates never increase, paths shrink
        # or hold on every circuit
        assert r.gates_rambo_p2 <= r.gates_rambo, r.name
        assert r.paths_rambo_p2 <= r.paths_rambo, r.name

    # Procedure 2 must achieve a real path reduction on the RAMBO circuits
    # somewhere (in the paper it does on all four).
    assert any(r.paths_rambo_p2 < r.paths_rambo for r in res.rows)
