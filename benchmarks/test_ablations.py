"""Ablation benchmarks for the design choices DESIGN.md calls out.

All on the smallest suite circuit (syn1423):

* **K sweep** (4-7): the paper found K=5,6 best and K=7 often inferior;
* **permutation budget** (25 vs 200): identification quality vs cost;
* **OFF-set identification on/off** (Section 5 uses both polarities);
* **path tiebreak on/off** for Procedure 2 (step 2(c) of the paper).
"""

import pytest

from repro.analysis import count_paths
from repro.experiments import original_circuit, render_table
from repro.netlist import two_input_gate_count
from repro.resynth import procedure2
from repro.resynth.procedures import _select_for_gates, _run

CIRCUIT = "syn1423"


def test_k_sweep(once):
    base = original_circuit(CIRCUIT)

    def sweep():
        rows = []
        for k in (4, 5, 6, 7):
            rep = procedure2(base, k=k)
            rows.append((k, rep.gates_after, rep.paths_after,
                         rep.replacements))
        return rows

    rows = once(sweep)
    print("\n" + render_table(
        ["K", "2-inp after", "paths after", "replacements"], rows,
        title=f"Ablation: K sweep on {CIRCUIT} "
              f"(orig {two_input_gate_count(base)} gates, "
              f"{count_paths(base):,} paths)",
    ))
    by_k = {k: (g, p) for k, g, p, _ in rows}
    # K >= 5 must do at least as well as K=4 on gates
    assert by_k[5][0] <= by_k[4][0]
    assert by_k[6][0] <= by_k[4][0]
    # every K reduces paths
    assert all(p < count_paths(base) for _, _, p, _ in rows)


def test_perm_budget(once):
    base = original_circuit(CIRCUIT)

    def sweep():
        rows = []
        for budget in (25, 200):
            rep = procedure2(base, k=5, perm_budget=budget)
            rows.append((budget, rep.gates_after, rep.paths_after))
        return rows

    rows = once(sweep)
    print("\n" + render_table(
        ["perm budget", "2-inp after", "paths after"], rows,
        title=f"Ablation: identification permutation budget on {CIRCUIT}",
    ))
    # A larger budget widens every cone's candidate pool, but the global
    # greedy is not monotone in it (a better local choice can steer later
    # passes differently), so allow a whisker of slack either way.
    assert rows[1][1] <= rows[0][1] + 3


def test_offset_identification(once):
    base = original_circuit(CIRCUIT)

    def run():
        import repro.resynth.replace as replace_mod
        from repro.comparison import identify_comparison

        on_off = procedure2(base, k=5)

        original_identify = replace_mod.identify_comparison

        def on_only(table, variables, **kwargs):
            kwargs["try_offset"] = False
            return identify_comparison(table, variables, **kwargs)

        replace_mod.identify_comparison = on_only
        try:
            on_only_rep = procedure2(base, k=5)
        finally:
            replace_mod.identify_comparison = original_identify
        return on_off, on_only_rep

    both, on_only = once(run)
    print("\n" + render_table(
        ["identification", "2-inp after", "paths after"],
        [("ON + OFF sets (paper)", both.gates_after, both.paths_after),
         ("ON set only", on_only.gates_after, on_only.paths_after)],
        title=f"Ablation: complemented-unit identification on {CIRCUIT}",
    ))
    # using both polarities can only widen the candidate pool
    assert both.gates_after <= on_only.gates_after + 2


def test_exact_identification(once):
    """Sampled (paper) vs exact identification inside Procedure 2.

    The 200-permutation sampling provably misses some 6-input comparison
    functions; the exact decision procedure (Section 3.4's omitted
    reformulation) closes that gap, so results can only improve.
    """
    base = original_circuit(CIRCUIT)

    def run():
        sampled = procedure2(base, k=6)
        exact = procedure2(base, k=6, exact=True)
        return sampled, exact

    sampled, exact = once(run)
    print("\n" + render_table(
        ["identification", "2-inp after", "paths after", "replacements"],
        [("200-permutation sampling (paper)", sampled.gates_after,
          sampled.paths_after, sampled.replacements),
         ("sampling + exact fallback", exact.gates_after,
          exact.paths_after, exact.replacements)],
        title=f"Ablation: exact comparison-function identification on "
              f"{CIRCUIT} (K=6)",
    ))
    assert exact.gates_after <= sampled.gates_after


def test_path_tiebreak(once):
    base = original_circuit(CIRCUIT)

    def no_tiebreak(options, current_paths):
        if not options:
            return None
        best = min(options, key=lambda o: (-o.gate_gain, o.cone.n_gates,
                                           o.spec.describe() if o.spec
                                           else ""))
        if best.gate_gain > 0:
            return best
        return None

    def run():
        with_tb = procedure2(base, k=5)
        without_tb = _run(base, no_tiebreak, "gates-no-tiebreak", 5, 200, 0,
                          10, 0)
        return with_tb, without_tb

    with_tb, without_tb = once(run)
    print("\n" + render_table(
        ["selection", "2-inp after", "paths after"],
        [("max gain, min paths (paper)", with_tb.gates_after,
          with_tb.paths_after),
         ("max gain only", without_tb.gates_after,
          without_tb.paths_after)],
        title=f"Ablation: Procedure 2 path tiebreak on {CIRCUIT}",
    ))
    # the tiebreak never hurts the path count
    assert with_tb.paths_after <= without_tb.paths_after
