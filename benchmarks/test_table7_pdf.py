"""Table 7 benchmark: robust PDF detection by random patterns (syn13207).

Reproduction targets (the paper's strongest claim):
* the modification removes path delay faults (total fault count drops a
  lot) while the *detected* count does not collapse — so most of the
  removed faults were ones random patterns never detected anyway;
* consequently the robust PDF coverage rises significantly, on both the
  original-derived and the RAMBO_C-derived circuit pair.
"""

from repro.experiments import table7

BUDGET = 16_000
PLATEAU = 4_000


def test_table7(once):
    res = once(table7, max_patterns=BUDGET, plateau_window=PLATEAU)
    print("\n" + res.render())
    assert len(res.rows) == 2

    for r in res.rows:
        undetected_before = r.faults_orig - r.detected_orig
        undetected_after = r.faults_modified - r.detected_modified
        delta_faults = r.faults_orig - r.faults_modified
        # the modification removed faults
        assert delta_faults > 0, r.version
        # ...and removed *more undetected* faults than total faults pro
        # rata: coverage increases
        cov_before = r.detected_orig / max(r.faults_orig, 1)
        cov_after = r.detected_modified / max(r.faults_modified, 1)
        assert cov_after > cov_before, r.version
        # "the number of undetected faults was reduced by more than
        # Delta" is the paper's phrasing when detections also grew; the
        # robust form of the claim is the undetected count dropping:
        assert undetected_after < undetected_before, r.version
