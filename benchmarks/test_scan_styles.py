"""Supplementary benchmark: the enhanced-scan assumption, quantified.

The paper's two-pattern experiments presuppose arbitrary vector pairs
(enhanced scan).  On a scanned version of a suite circuit we compare the
robust PDF detection achievable by enhanced scan against launch-on-shift
and launch-on-capture pair spaces at an equal test budget.
"""

from repro.experiments import original_circuit
from repro.scan import ScanStyle, compare_scan_styles, default_chain

CIRCUIT = "syn1423"


def test_scan_styles(once):
    chain = default_chain(original_circuit(CIRCUIT), seed=3)
    cmp = once(compare_scan_styles, chain, 2_000, 5)
    print("\n" + cmp.render())
    enhanced = cmp.detected[ScanStyle.ENHANCED]
    los = cmp.detected[ScanStyle.LAUNCH_ON_SHIFT]
    loc = cmp.detected[ScanStyle.LAUNCH_ON_CAPTURE]
    assert enhanced > 0
    # The unconstrained pair space is competitive with the best
    # constrained style at equal budgets (sampling noise tolerated: LOC's
    # functionally-correlated second vectors can get lucky on few-detect
    # circuits, but cannot dominate).
    assert enhanced >= 0.7 * max(los, loc)
