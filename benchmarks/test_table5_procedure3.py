"""Table 5 benchmark: Procedure 3 (path-count objective) over the suite.

Reproduction targets:
* the path count never increases and drops at least as far as Procedure
  2 managed (Table 5 vs Table 2 in the paper);
* the gate count is allowed to rise (and does on some circuits in the
  paper) — we assert only that it stays within a sane envelope.
"""

from repro.experiments import table2, table5


def test_table5(once):
    res = once(table5)
    print("\n" + res.render())
    assert len(res.rows) == 8

    t2 = table2()  # warm artifacts make this cheap
    p2_paths = {r.name: r.paths_modified for r in t2.rows}

    for r in res.rows:
        assert r.paths_modified <= r.paths_orig, r.name
        # Procedure 3 targets paths directly: at least as good as P2
        assert r.paths_modified <= p2_paths[r.name], r.name
        # gates may grow, but not absurdly
        assert r.gates_modified <= int(1.5 * r.gates_orig) + 10, r.name

    # somewhere Procedure 3 must beat Procedure 2 on paths or match it
    # while the table remains internally consistent
    assert any(
        r.paths_modified <= p2_paths[r.name] for r in res.rows
    )
