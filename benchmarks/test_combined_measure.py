"""Section 4.3 benchmark: the combined gates+paths measure.

The paper exhibits only the extreme points (Procedures 2 and 3) and notes
that intermediate points are reachable by a combined measure.  We sweep
the gate weight and check the solution-space geometry: the combined runs
land between the extremes, and both extremes dominate their own metric.
"""

from repro.experiments import original_circuit, render_table
from repro.resynth import combined_procedure, procedure2, procedure3

CIRCUIT = "syn1423"
K = 5


def test_combined_measure(once):
    base = original_circuit(CIRCUIT)

    def sweep():
        rows = []
        p2 = procedure2(base, k=K)
        rows.append(("Procedure 2", p2.gates_after, p2.paths_after))
        for weight in (50.0, 5.0, 0.5):
            rep = combined_procedure(base, gate_weight=weight, k=K)
            rows.append((f"combined w={weight}", rep.gates_after,
                         rep.paths_after))
        p3 = procedure3(base, k=K)
        rows.append(("Procedure 3", p3.gates_after, p3.paths_after))
        return rows, p2, p3

    rows, p2, p3 = once(sweep)
    print("\n" + render_table(
        ["objective", "2-inp after", "paths after"], rows,
        title=f"Section 4.3: solution-space sweep on {CIRCUIT} (K={K})",
    ))

    # Procedure 2 has the best gate count of the sweep...
    assert p2.gates_after == min(g for _, g, _ in rows)
    # ...Procedure 3 the best path count...
    assert p3.paths_after == min(p for _, _, p in rows)
    # ...and every combined point improves on doing nothing.
    for label, gates, paths in rows:
        assert paths <= p2.paths_before
