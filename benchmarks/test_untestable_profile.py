"""Supplementary benchmark: the paper's "mostly untestable faults" claim.

Section 5: "when the number of path delay faults was reduced by Delta, the
number of undetected path delay faults was reduced by more than Delta" —
i.e. every removed fault came from the random-pattern-untestable pool and
the detected count actually rose.  We run the paper's arithmetic on a
suite circuit before and after Procedure 2 (+ redundancy removal).
"""

from repro.experiments import untestable_profile

CIRCUIT = "syn1423"


def test_untestable_profile(once):
    res = once(untestable_profile, CIRCUIT)
    print("\n" + res.render())

    # the modification removed faults
    assert res.removed > 0
    # the detected count did not drop (usually rises)
    assert res.detected_modified >= res.detected_orig
    # the paper's inequality: undetected pool shrank by >= the removal
    assert res.claim_holds
