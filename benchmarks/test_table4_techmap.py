"""Table 4 benchmark: technology mapping before/after the procedures.

Reproduction targets:
* mapped literal counts track the equivalent-2-input-gate reductions
  (total literals after Procedure 2 <= before, within a small tolerance
  per circuit since the mapper sees different structure);
* the longest mapped path stays within a small envelope.  The paper
  reports no increase at all; our decode blocks are two-level stand-ins
  (the real ISCAS cores are deep multi-level logic), so swapping a
  two-level decode for a chain-shaped unit can add a few cells locally —
  a substitution artifact, bounded and documented in EXPERIMENTS.md.
"""

from repro.experiments import table4


def test_table4(once):
    res = once(table4)
    print("\n" + res.render())
    assert len(res.original_vs_proc2) == 4
    assert len(res.rambo_vs_rambo_proc2) == 4

    total_before = sum(r.literals_base for r in res.original_vs_proc2)
    total_after = sum(r.literals_opt for r in res.original_vs_proc2)
    assert total_after <= total_before

    for r in res.original_vs_proc2:
        # delay proxy must not blow up (see module docstring for why a
        # few cells of slack exist at our scale)
        assert r.longest_opt <= r.longest_base + max(5, r.longest_base // 8), r.name

    total_before_b = sum(r.literals_base for r in res.rambo_vs_rambo_proc2)
    total_after_b = sum(r.literals_opt for r in res.rambo_vs_rambo_proc2)
    assert total_after_b <= total_before_b
