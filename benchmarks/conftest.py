"""Shared benchmark configuration.

Every benchmark runs its table driver once (``rounds=1``): the drivers are
deterministic end-to-end experiments, not microbenchmarks, and the first
run may build disk-cached artifacts (suite circuits, optimized versions)
that later runs reuse.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return run
