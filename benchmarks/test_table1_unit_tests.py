"""Table 1 benchmark: regenerate the comparison-unit robust test set.

Reproduction target: the *exact* table from the paper — same seven faults,
same stable side values, both transition directions per fault.
"""

from repro.experiments import table1

PAPER_TABLE_1 = {
    "x1,free": {"x2": "000", "x3": "111", "x4": "111"},
    "x2,geq": {"x1": "111", "x3": "000", "x4": "000"},
    "x3,geq": {"x1": "111", "x2": "000", "x4": "111"},
    "x4,geq": {"x1": "111", "x2": "000", "x3": "111"},
    "x2,leq": {"x1": "111", "x3": "111", "x4": "111"},
    "x3,leq": {"x1": "111", "x2": "111", "x4": "000"},
    "x4,leq": {"x1": "111", "x2": "111", "x3": "000"},
}


def test_table1(once):
    res = once(table1)
    print("\n" + res.render())
    got = dict(res.rows)
    assert got == PAPER_TABLE_1
