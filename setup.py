"""Setuptools shim for environments without PEP 517 editable-wheel support."""

from setuptools import setup

setup()
