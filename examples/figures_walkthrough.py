"""Walk through the paper's Figures 1-6 and Table 1 as executable artifacts.

Run:  python examples/figures_walkthrough.py
"""

from repro.analysis import enumerate_paths, internal_path_counts
from repro.comparison import (
    ComparisonSpec,
    build_unit,
    format_test_table,
    robust_tests_for_unit,
)
from repro.netlist import GateType
from repro.pdf import RobustCriterion, robust_faults_detected, simulate_pair
from repro.sim import truth_table, tt_from_minterms, tt_minterms


def show_unit(title, spec, input_order=None):
    unit = build_unit(spec)
    order = list(input_order or spec.inputs)
    table = truth_table(unit, input_order=order)
    gates = [g for g in unit.logic_gates() if g.gtype is not GateType.BUF]
    print(f"\n{title}")
    print(f"  spec: {spec.describe()}")
    print(f"  gates: " + ", ".join(
        f"{g.name}={g.gtype.value}({', '.join(g.fanins)})" for g in gates))
    print(f"  ON minterms over {order}: {tt_minterms(table, len(order))}")
    print(f"  paths per input: {internal_path_counts(unit)}")
    return unit


def main() -> None:
    # Figure 1: the unit for f2 under the permutation (y4, y3, y2, y1).
    spec_f2 = ComparisonSpec(("y4", "y3", "y2", "y1"), 5, 10)
    unit = show_unit("Figure 1: comparison unit for f2, L=5, U=10", spec_f2,
                     input_order=["y1", "y2", "y3", "y4"])
    expected = tt_from_minterms([1, 5, 6, 9, 10, 14], 4)
    got = truth_table(unit, input_order=["y1", "y2", "y3", "y4"])
    assert got == expected, "Figure 1 unit must realize f2"
    print("  matches the paper's f2 ON-set {1,5,6,9,10,14}: True")

    # Figure 3(a,b): >=3 and >=12 blocks over 4 inputs.
    show_unit("Figure 3(a): >=3 block (L=3, U=15)",
              ComparisonSpec(("x1", "x2", "x3", "x4"), 3, 15))
    show_unit("Figure 3(b): >=12 block -- trailing zeros collapse",
              ComparisonSpec(("x1", "x2", "x3", "x4"), 12, 15))

    # Figure 3(c,d): <=12 and <=3 blocks.
    show_unit("Figure 3(c): <=12 block (L=0, U=12)",
              ComparisonSpec(("x1", "x2", "x3", "x4"), 0, 12))
    show_unit("Figure 3(d): <=3 block -- trailing ones collapse",
              ComparisonSpec(("x1", "x2", "x3", "x4"), 0, 3))

    # Figure 4: the >=7 unit with merged equal-type gates.
    show_unit("Figure 4: >=7 unit (consecutive ANDs merged)",
              ComparisonSpec(("x1", "x2", "x3", "x4"), 7, 15))

    # Figure 5 / 3.2.1: free variables (L=5, U=7 -> x1, x2 free).
    show_unit("Figure 5: free variables (L=5, U=7)",
              ComparisonSpec(("x1", "x2", "x3", "x4"), 5, 7))

    # Figure 6 + Table 1: the L=11, U=12 unit and its robust test set.
    spec = ComparisonSpec(("x1", "x2", "x3", "x4"), 11, 12)
    unit = show_unit("Figure 6: unit for L=11, U=12", spec)
    tests = robust_tests_for_unit(spec)
    print("\nTable 1: robust two-pattern test set")
    print(format_test_table(spec, tests))

    # Executable form of the Section 3.3 theorem: full robust coverage.
    total = {(tuple(p), r) for p in enumerate_paths(unit)
             for r in (True, False)}
    detected = set()
    for t in tests:
        pw = simulate_pair(unit, t.v1, t.v2)
        detected |= robust_faults_detected(unit, pw, RobustCriterion.STRICT)
    print(f"\nrobust PDF coverage of the unit: "
          f"{len(detected)}/{len(total)} faults "
          f"({'complete' if detected == total else 'INCOMPLETE'})")


if __name__ == "__main__":
    main()
