"""Quickstart: identify a comparison function, build its unit, resynthesize.

Run:  python examples/quickstart.py
"""

from repro.analysis import count_paths, internal_path_counts
from repro.comparison import build_unit, identify_comparison, best_spec
from repro.netlist import CircuitBuilder, two_input_gate_count
from repro.resynth import procedure2, procedure3
from repro.sim import truth_table, tt_minterms


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A function given as a sum of products (the paper's f2).
    # ------------------------------------------------------------------
    b = CircuitBuilder("f2")
    y1, y2, y3, y4 = b.inputs("y1", "y2", "y3", "y4")

    def minterm(bits):
        lits = [y if bit else b.NOT(y)
                for y, bit in zip((y1, y2, y3, y4), bits)]
        return b.AND(*lits)

    terms = [minterm(bits) for bits in [
        (0, 0, 0, 1), (0, 1, 0, 1), (0, 1, 1, 0),
        (1, 0, 0, 1), (1, 0, 1, 0), (1, 1, 1, 0),
    ]]
    f2 = b.OR(*terms, name="f2")
    b.outputs(f2)
    circuit = b.build()

    table = truth_table(circuit)
    print("f2 ON-set minterms:", tt_minterms(table, 4))

    # ------------------------------------------------------------------
    # 2. Is it a comparison function?  (Definition 1 / Section 3.4)
    # ------------------------------------------------------------------
    result = identify_comparison(table, ["y1", "y2", "y3", "y4"])
    print(f"comparison function: {result.found} "
          f"({len(result.specs)} realizations, "
          f"{result.permutations_tried} permutations tried)")
    spec, cost = best_spec(result.specs)
    print("best realization:", spec.describe())
    print(f"  free variables: {spec.free_inputs}  "
          f"L_F={spec.suffix_lower} U_F={spec.suffix_upper}")

    # ------------------------------------------------------------------
    # 3. Build the comparison unit (Figure 1) and compare implementations.
    # ------------------------------------------------------------------
    unit = build_unit(spec)
    print(f"SOP implementation:  {two_input_gate_count(circuit):3d} "
          f"2-input gates, {count_paths(circuit):3d} paths")
    print(f"comparison unit:     {two_input_gate_count(unit):3d} "
          f"2-input gates, {count_paths(unit):3d} paths")
    print("paths per input through the unit:",
          internal_path_counts(unit))

    # ------------------------------------------------------------------
    # 4. Let the resynthesis procedures do it automatically (Section 4).
    # ------------------------------------------------------------------
    for proc, label in ((procedure2, "Procedure 2 (gates)"),
                        (procedure3, "Procedure 3 (paths)")):
        report = proc(circuit, k=6, verify_patterns=256)
        print(f"{label}: {report.summary()}")


if __name__ == "__main__":
    main()
