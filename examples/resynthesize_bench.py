"""Resynthesize a circuit file (or a suite circuit) for gates or paths.

Usage:
    python examples/resynthesize_bench.py [NAME_OR_PATH] [--objective gates|paths]
                                          [--k K] [--out OUT.bench]

NAME_OR_PATH is a suite circuit name (e.g. syn9234) or a ``.bench`` file.
Defaults to syn1423 with the gate objective and K=5.
"""

import argparse
import sys

from repro.analysis import count_paths
from repro.benchcircuits.suite import suite_circuit, suite_names
from repro.io import load_bench, save_bench
from repro.netlist import two_input_gate_count
from repro.resynth import procedure2, procedure3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("circuit", nargs="?", default="syn1423",
                        help="suite circuit name or .bench path")
    parser.add_argument("--objective", choices=("gates", "paths"),
                        default="gates")
    parser.add_argument("--k", type=int, default=5,
                        help="max candidate subcircuit inputs (paper: 5, 6)")
    parser.add_argument("--out", default=None,
                        help="write the modified circuit to this .bench file")
    parser.add_argument("--verify", type=int, default=1024,
                        help="random patterns for the equivalence check")
    args = parser.parse_args(argv)

    if args.circuit in suite_names():
        circuit = suite_circuit(args.circuit)
    else:
        circuit = load_bench(args.circuit)

    print(f"{circuit.name}: {len(circuit.inputs)} inputs, "
          f"{len(circuit.outputs)} outputs, "
          f"{two_input_gate_count(circuit):,} equivalent 2-input gates, "
          f"{count_paths(circuit):,} paths")

    proc = procedure2 if args.objective == "gates" else procedure3
    report = proc(circuit, k=args.k, verify_patterns=args.verify)
    print(report.summary())
    gr = report.gate_reduction
    pr = report.path_reduction
    print(f"gate reduction: {gr:,} "
          f"({100.0 * gr / max(report.gates_before, 1):.1f}%)")
    print(f"path reduction: {pr:,} "
          f"({100.0 * pr / max(report.paths_before, 1):.1f}%)")

    if args.out:
        save_bench(report.circuit, args.out)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
