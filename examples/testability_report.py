"""Before/after testability report for a circuit (Tables 6/7 in miniature).

Runs Procedure 2 (plus redundancy removal) on a circuit, then compares the
original and modified versions on:

* random-pattern stuck-at coverage (remaining faults, last effective
  pattern — Table 6's columns);
* random two-pattern robust path-delay-fault coverage (detected / total —
  Table 7's columns).

Usage:  python examples/testability_report.py [SUITE_NAME] [--patterns N]
"""

import argparse
import sys

from repro.analysis import count_paths
from repro.atpg import remove_redundancies
from repro.benchcircuits.suite import suite_circuit, suite_names
from repro.experiments import render_table
from repro.faults import random_stuck_at_campaign
from repro.netlist import two_input_gate_count
from repro.pdf import random_pdf_campaign
from repro.resynth import procedure2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("circuit", nargs="?", default="syn1423",
                        choices=suite_names())
    parser.add_argument("--patterns", type=int, default=1 << 14,
                        help="stuck-at random pattern budget")
    parser.add_argument("--pdf-patterns", type=int, default=8_000,
                        help="two-pattern robust PDF budget")
    parser.add_argument("--k", type=int, default=5)
    args = parser.parse_args(argv)

    original = suite_circuit(args.circuit)
    print(f"optimizing {args.circuit} with Procedure 2 (K={args.k})...")
    modified = procedure2(original, k=args.k).circuit
    modified = remove_redundancies(modified, random_patterns=1024).circuit

    rows = []
    for label, c in (("original", original), ("modified", modified)):
        rows.append((label, two_input_gate_count(c), count_paths(c)))
    print(render_table(["version", "2-inp gates", "paths"], rows))

    print("\nrandom-pattern stuck-at coverage (same pattern sequence):")
    rows = []
    for label, c in (("original", original), ("modified", modified)):
        res = random_stuck_at_campaign(
            c, seed=7, max_patterns=args.patterns, stop_when_complete=False
        )
        rows.append((label, res.total_faults, res.remaining,
                     res.last_effective_pattern))
    print(render_table(["version", "faults", "remain", "eff.patt"], rows))

    print("\nrobust path delay fault coverage (random two-pattern tests):")
    rows = []
    for label, c in (("original", original), ("modified", modified)):
        res = random_pdf_campaign(
            c, seed=13, max_patterns=args.pdf_patterns,
            plateau_window=args.pdf_patterns // 4,
        )
        rows.append((label, res.det_over_faults(),
                     f"{100 * res.coverage:.2f}%",
                     res.last_effective_pattern))
    print(render_table(["version", "det/faults", "coverage", "eff"], rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
