"""Explore the comparison-function class: census, identification, covers.

Shows, for small n, how rare comparison functions are, how the paper's
200-permutation identification compares with the exact procedure, and how
non-comparison functions decompose into multi-unit covers (Section 6).

Usage:  python examples/explore_comparison_functions.py
"""

import random

from repro.comparison import (
    ComparisonSpec,
    best_spec,
    comparison_fraction,
    count_comparison_functions,
    exact_identify,
    find_multi_unit_cover,
    identify_comparison,
    unit_cost,
)
from repro.experiments import render_table


def main() -> None:
    print("How rare are comparison functions?")
    rows = []
    for n in (1, 2, 3, 4):
        rows.append((
            n,
            count_comparison_functions(n),
            count_comparison_functions(n, include_complemented=True),
            2 ** (1 << n),
            f"{100 * comparison_fraction(n):.3g}%",
        ))
    print(render_table(
        ["n", "ON-interval", "+ complements", "all functions", "fraction"],
        rows,
    ))
    print("\nThe class thins out double-exponentially — which is why the")
    print("procedures replace small subcircuits, not whole output cones.\n")

    print("Sampled vs exact identification at n = 6 "
          "(true comparison functions, scrambled):")
    rng = random.Random(7)
    variables = [f"v{j}" for j in range(6)]
    sampled_hits = 0
    trials = 300
    for _ in range(trials):
        lo = rng.randrange(63)
        hi = rng.randrange(lo, 64)
        if lo == 0 and hi == 63:
            continue
        perm = list(variables)
        rng.shuffle(perm)
        table = ComparisonSpec(tuple(perm), lo, hi).truth_table(variables)
        assert exact_identify(table, variables) is not None
        if identify_comparison(table, variables, max_specs=1).found:
            sampled_hits += 1
    print(f"  200-permutation sampling found {sampled_hits}/{trials}; "
          f"the exact procedure found {trials}/{trials}.")

    print("\nMulti-unit covers for classic non-comparison functions:")
    from repro.sim import tt_from_minterms
    cases = [
        ("3-input parity", tt_from_minterms([1, 2, 4, 7], 3), list("abc")),
        ("majority of 3", tt_from_minterms([3, 5, 6, 7], 3), list("abc")),
        ("2-out-of-4", tt_from_minterms(
            [3, 5, 6, 9, 10, 12], 4), list("abcd")),
    ]
    rows = []
    for label, table, vs in cases:
        single = identify_comparison(table, vs, max_specs=1).found
        cover = find_multi_unit_cover(table, vs, max_units=8)
        rows.append((label, "yes" if single else "no",
                     cover.n_units if cover else "-"))
    print(render_table(
        ["function", "single unit?", "units needed"], rows,
    ))

    print("\nCheapest realization of the paper's f2:")
    table = tt_from_minterms([1, 5, 6, 9, 10, 14], 4)
    result = identify_comparison(table, ["y1", "y2", "y3", "y4"])
    spec, cost = best_spec(result.specs)
    print(f"  {spec.describe()}  ->  {cost.two_input_gates} gates, "
          f"{cost.total_internal_paths} paths, depth {cost.depth}")


if __name__ == "__main__":
    main()
