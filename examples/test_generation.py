"""Test generation showcase: compact stuck-at sets and robust PDF tests.

Generates (1) a compacted complete stuck-at test set and (2) deterministic
robust two-pattern tests for sampled path delay faults, for a suite
circuit before and after Procedure 2 — demonstrating that the resynthesis
keeps complete stuck-at coverage while making path faults easier to test.

Usage:  python examples/test_generation.py [SUITE_NAME]
"""

import argparse
import sys

from repro.analysis import sample_paths
from repro.atpg import generate_test_set
from repro.benchcircuits.suite import suite_circuit, suite_names
from repro.experiments import render_table
from repro.pdf import PdfAtpgStatus, robust_pdf_test
from repro.resynth import procedure2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("circuit", nargs="?", default="syn1423",
                        choices=suite_names())
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--pdf-samples", type=int, default=20)
    args = parser.parse_args(argv)

    original = suite_circuit(args.circuit)
    print(f"running Procedure 2 (K={args.k}) on {args.circuit}...")
    modified = procedure2(original, k=args.k).circuit

    print("\nstuck-at test generation (random + PODEM + compaction):")
    rows = []
    for label, c in (("original", original), ("modified", modified)):
        ts = generate_test_set(c, seed=3)
        rows.append((
            label, ts.total_faults, len(ts.patterns),
            f"{100 * ts.fault_coverage:.2f}%", ts.untestable, ts.aborted,
        ))
    print(render_table(
        ["version", "faults", "tests", "coverage", "untestable", "aborted"],
        rows,
    ))

    print("\ndeterministic robust PDF test generation (sampled faults):")
    rows = []
    for label, c in (("original", original), ("modified", modified)):
        found = proved = unresolved = 0
        for i, path in enumerate(sample_paths(c, args.pdf_samples, seed=11)):
            res = robust_pdf_test(c, path, rising=(i % 2 == 0),
                                  max_backtracks=500)
            if res.status is PdfAtpgStatus.TESTABLE:
                found += 1
            elif res.status is PdfAtpgStatus.UNTESTABLE:
                proved += 1
            else:
                unresolved += 1
        rows.append((label, args.pdf_samples, found, proved, unresolved))
    print(render_table(
        ["version", "sampled faults", "test found", "proved untestable",
         "unresolved"],
        rows,
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
