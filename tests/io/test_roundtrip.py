"""Semantic I/O round-trip property tests over seeded random circuits.

For each format: ``write -> parse`` must preserve the circuit interface
and function (checked with :func:`random_equivalent` — any ``DIFFERENT``
verdict is a bug), and ``write -> parse -> write`` must be a fixpoint
(the second write reproduces the first text byte for byte), so files in
version control stay stable however many times they pass through tools.
JSON additionally promises an *exact* structural round-trip.
"""

import pytest

from repro.benchcircuits.generator import random_circuit, random_two_level
from repro.io import read_bench, write_bench
from repro.io.blif import read_blif, write_blif
from repro.io.json_io import circuit_from_json, circuit_to_json
from repro.netlist.equivalence import EquivalenceStatus, random_equivalent

SEEDS = range(6)


def cases():
    out = []
    for seed in SEEDS:
        out.append(random_circuit(f"rc{seed}", 5, 2, 20, seed=seed))
        out.append(random_two_level(f"tl{seed}", 4, 5, seed=seed))
    return out


def assert_same_function(a, b):
    assert a.inputs == b.inputs
    assert a.outputs == b.outputs
    verdict = random_equivalent(a, b, n_patterns=2048, seed=99)
    assert verdict.status is not EquivalenceStatus.DIFFERENT, (
        f"{a.name}: round-trip changed the function; "
        f"counterexample {verdict.counterexample}"
    )


class TestBenchRoundTrip:
    @pytest.mark.parametrize("circuit", cases(), ids=lambda c: c.name)
    def test_semantics_preserved(self, circuit):
        parsed = read_bench(write_bench(circuit), name=circuit.name)
        assert_same_function(circuit, parsed)

    @pytest.mark.parametrize("circuit", cases(), ids=lambda c: c.name)
    def test_write_parse_write_fixpoint(self, circuit):
        text1 = write_bench(circuit)
        text2 = write_bench(read_bench(text1, name=circuit.name))
        assert text1 == text2


class TestBlifRoundTrip:
    @pytest.mark.parametrize("circuit", cases(), ids=lambda c: c.name)
    def test_semantics_preserved(self, circuit):
        parsed = read_blif(write_blif(circuit), name=circuit.name)
        assert_same_function(circuit, parsed)

    @pytest.mark.parametrize("circuit", cases(), ids=lambda c: c.name)
    def test_write_parse_write_fixpoint(self, circuit):
        text1 = write_blif(circuit)
        text2 = write_blif(read_blif(text1, name=circuit.name))
        assert text1 == text2


class TestJsonRoundTrip:
    @pytest.mark.parametrize("circuit", cases(), ids=lambda c: c.name)
    def test_exact_structural_roundtrip(self, circuit):
        parsed = circuit_from_json(circuit_to_json(circuit))
        assert parsed.structurally_equal(circuit)
        assert parsed.name == circuit.name
        assert circuit_to_json(parsed) == circuit_to_json(circuit)


class TestCrossFormat:
    """bench and BLIF of the same circuit parse to the same function."""

    @pytest.mark.parametrize("circuit", cases()[:6], ids=lambda c: c.name)
    def test_bench_vs_blif(self, circuit):
        via_bench = read_bench(write_bench(circuit), name=circuit.name)
        via_blif = read_blif(write_blif(circuit), name=circuit.name)
        assert_same_function(via_bench, via_blif)
