"""Property test: BLIF round-trips preserve truth tables *bit for bit*.

``tests/io/test_roundtrip.py`` checks random-pattern equivalence; this
file is the exhaustive version over the generator family — for every
seeded circuit, each primary output's full truth table (one int over
all 2^n input patterns) must be identical before and after
``write_blif -> read_blif``.  Run over many seeds and both generator
shapes, this is a poor man's hypothesis: the seed loop is the shrink
story (a failure names the seed), and exhaustive tables leave no
sampling gap for a miscompiled cover to hide in.
"""

import pytest

from repro.benchcircuits.generator import random_circuit, random_two_level
from repro.io.blif import read_blif, write_blif
from repro.sim import truth_tables

SEEDS = range(12)


def family():
    cases = []
    for seed in SEEDS:
        # Keep inputs <= 10 so exhaustive tables stay instant.
        cases.append(random_circuit(f"rc{seed}", 3 + seed % 6, 2,
                                    10 + 3 * seed, seed=seed))
        cases.append(random_two_level(f"tl{seed}", 3 + seed % 4,
                                      4 + seed % 5, seed=seed))
    return cases


@pytest.mark.parametrize("circuit", family(), ids=lambda c: c.name)
def test_blif_round_trip_preserves_truth_tables(circuit):
    parsed = read_blif(write_blif(circuit), name=circuit.name)
    assert parsed.inputs == circuit.inputs
    assert parsed.outputs == circuit.outputs
    before = truth_tables(circuit)
    after = truth_tables(parsed, input_order=circuit.inputs)
    assert after == before, (
        f"{circuit.name}: BLIF round-trip changed a truth table; "
        f"diff outputs: "
        f"{sorted(o for o in before if before[o] != after.get(o))}"
    )


def test_family_is_not_degenerate():
    # The property above is vacuous if every output were constant;
    # make sure the generator family actually exercises logic.
    nonconstant = 0
    for circuit in family():
        n = len(circuit.inputs)
        full = (1 << (1 << n)) - 1
        for table in truth_tables(circuit).values():
            if table not in (0, full):
                nonconstant += 1
    assert nonconstant >= len(family())
