"""Tests for exact JSON netlist round-tripping."""

import pytest

from repro.benchcircuits import c17, full_adder, random_circuit
from repro.io.json_io import (
    circuit_from_json,
    circuit_to_json,
    load_json,
    save_json,
)
from repro.netlist import CircuitBuilder, CircuitError


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_random(self, seed):
        c = random_circuit("r", 8, 4, 40, seed=seed)
        c2 = circuit_from_json(circuit_to_json(c))
        assert c.structurally_equal(c2)
        assert c2.name == c.name

    def test_constants_roundtrip(self):
        b = CircuitBuilder("k")
        a, = b.inputs("a")
        zero = b.CONST0()
        g = b.OR(a, zero, name="g")
        b.outputs(g)
        c = b.build()
        c2 = circuit_from_json(circuit_to_json(c))
        assert c.structurally_equal(c2)

    def test_output_order_preserved(self):
        c = full_adder()
        c2 = circuit_from_json(circuit_to_json(c))
        assert c2.outputs == c.outputs
        assert c2.inputs == c.inputs

    def test_file_roundtrip(self, tmp_path):
        c = c17()
        path = str(tmp_path / "c17.json")
        save_json(c, path)
        c2 = load_json(path)
        assert c.structurally_equal(c2)


class TestErrors:
    def test_wrong_format_rejected(self):
        with pytest.raises(CircuitError):
            circuit_from_json('{"format": "other"}')

    def test_wrong_version_rejected(self):
        with pytest.raises(CircuitError):
            circuit_from_json(
                '{"format": "repro-netlist", "version": 99, "name": "x",'
                ' "inputs": [], "outputs": [], "gates": []}'
            )
