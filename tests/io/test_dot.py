"""Tests for DOT export and text netlist rendering."""

from repro.benchcircuits import c17, full_adder
from repro.io import format_netlist, save_dot, write_dot


class TestWriteDot:
    def test_valid_structure(self):
        dot = write_dot(c17())
        assert dot.startswith('digraph "c17"')
        assert dot.rstrip().endswith("}")
        # one node per net, one edge per pin
        assert dot.count("->") == 12
        assert '"22" [' in dot

    def test_outputs_double_circled(self):
        dot = write_dot(c17())
        line = next(l for l in dot.splitlines() if l.strip().startswith('"22" ['))
        assert "peripheries=2" in line

    def test_path_highlighting(self):
        dot = write_dot(c17(), highlight_path=("1", "10", "22"))
        assert "color=red" in dot
        assert '"1" -> "10" [color=red' in dot

    def test_net_highlighting(self):
        dot = write_dot(c17(), highlight_nets={"16"})
        line = next(l for l in dot.splitlines() if l.strip().startswith('"16" ['))
        assert "color=red" in line

    def test_save(self, tmp_path):
        path = str(tmp_path / "c.dot")
        save_dot(c17(), path)
        with open(path) as fh:
            assert fh.read().startswith("digraph")


class TestFormatNetlist:
    def test_contains_all_gates(self):
        text = format_netlist(c17())
        for g in c17().logic_gates():
            assert f"{g.name} = NAND(" in text

    def test_outputs_starred(self):
        text = format_netlist(c17())
        assert "22 = NAND(10, 16) *" in text

    def test_header_optional(self):
        text = format_netlist(full_adder(), include_inputs=False)
        assert "inputs:" not in text
