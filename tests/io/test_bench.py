"""Tests for the ISCAS-89 bench reader/writer, including full-scan DFF cuts."""

import random

import pytest

from repro.benchcircuits import c17, random_circuit
from repro.io import BenchFormatError, read_bench, write_bench
from repro.netlist import GateType
from repro.sim import outputs_equal, random_words


class TestRead:
    def test_c17_shape(self):
        c = c17()
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2
        assert len(c.logic_gates()) == 6
        assert all(g.gtype is GateType.NAND for g in c.logic_gates())

    def test_comments_and_whitespace(self):
        text = """
        # header comment
        INPUT( a )
        INPUT(b)   # trailing comment
        OUTPUT(g)
        g = AND(a, b)
        """
        c = read_bench(text)
        assert c.inputs == ["a", "b"]
        assert c.gate("g").fanins == ("a", "b")

    def test_one_input_and_becomes_buffer(self):
        c = read_bench("INPUT(a)\nOUTPUT(g)\ng = AND(a)\n")
        assert c.gate("g").gtype is GateType.BUF

    def test_unknown_gate_type(self):
        with pytest.raises(BenchFormatError):
            read_bench("INPUT(a)\nOUTPUT(g)\ng = FLUX(a)\n")

    def test_garbage_line(self):
        with pytest.raises(BenchFormatError):
            read_bench("this is not bench\n")


class TestScanConversion:
    SEQ = """
    INPUT(clk_in)
    OUTPUT(q_obs)
    state = DFF(next)
    next = AND(clk_in, state)
    q_obs = NOT(state)
    """

    def test_dff_cut_full_scan(self):
        c = read_bench(self.SEQ)
        assert "state" in c.inputs  # FF output became pseudo-PI
        assert "next" in c.outputs  # FF input became pseudo-PO
        assert "q_obs" in c.outputs

    def test_dff_rejected_in_combinational_mode(self):
        with pytest.raises(BenchFormatError):
            read_bench(self.SEQ, scan=False)

    def test_dff_with_two_inputs_rejected(self):
        with pytest.raises(BenchFormatError):
            read_bench("INPUT(a)\nOUTPUT(z)\nz = DFF(a, a)\n")


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuit_roundtrip(self, seed):
        c = random_circuit("r", 8, 4, 40, seed=seed)
        text = write_bench(c)
        c2 = read_bench(text, name="r")
        assert c2.inputs == c.inputs
        assert c2.outputs == c.outputs
        rng = random.Random(1)
        words = random_words(c.inputs, 128, rng)
        assert outputs_equal(c, c2, words, 128)

    def test_c17_roundtrip_exact(self):
        c = c17()
        c2 = read_bench(write_bench(c), name="c17")
        assert c.structurally_equal(c2)

    def test_constants_roundtrip(self):
        from repro.netlist import CircuitBuilder
        b = CircuitBuilder("k")
        a, = b.inputs("a")
        one = b.CONST1()
        g = b.AND(a, one, name="g")
        b.outputs(g)
        c = b.build()
        c2 = read_bench(write_bench(c))
        rng = random.Random(2)
        words = random_words(c.inputs, 16, rng)
        assert outputs_equal(c, c2, words, 16)
