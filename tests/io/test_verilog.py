"""Tests for the structural Verilog writer."""

import re

from repro.benchcircuits import c17, full_adder, random_circuit
from repro.io import write_verilog
from repro.netlist import CircuitBuilder


def parse_instances(text):
    """Extract (primitive, out, ins) triples from emitted Verilog."""
    out = []
    for m in re.finditer(
        r"^\s*(and|or|nand|nor|xor|xnor|not|buf)\s+\w+\s*\(([^)]*)\);",
        text, re.M,
    ):
        args = [a.strip() for a in m.group(2).split(",")]
        out.append((m.group(1), args[0], args[1:]))
    return out


class TestWriteVerilog:
    def test_module_structure(self):
        text = write_verilog(c17())
        assert text.startswith("// generated from c17")
        assert "module c17 (" in text
        assert text.rstrip().endswith("endmodule")

    def test_one_instance_per_gate(self):
        text = write_verilog(c17())
        instances = parse_instances(text)
        assert len(instances) == 6
        assert all(prim == "nand" for prim, _, _ in instances)
        assert all(len(ins) == 2 for _, _, ins in instances)

    def test_identifier_sanitization(self):
        text = write_verilog(c17())
        # bench-style numeric nets must be renamed
        assert "input n_1," in text or "input n_1" in text
        assert "// net '1' emitted as n_1" in text

    def test_keyword_collision_renamed(self):
        b = CircuitBuilder("kw")
        a, = b.inputs("input")  # a Verilog keyword as a net name
        g = b.NOT(a, name="wire")
        b.outputs(g)
        text = write_verilog(b.build())
        assert "input n_input;" in text.replace("  ", " ")

    def test_constants_assigned(self):
        b = CircuitBuilder("k")
        a, = b.inputs("a")
        one = b.CONST1()
        g = b.AND(a, one, name="g")
        b.outputs(g)
        text = write_verilog(b.build())
        assert "= 1'b1;" in text

    def test_pi_as_po_gets_buffer(self):
        b = CircuitBuilder("pipo")
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g, a)  # a primary input listed as an output
        text = write_verilog(b.build())
        assert re.search(r"buf\s+\w+\s*\(po_1_a, a\);", text)

    def test_xor_rich_circuit(self):
        text = write_verilog(full_adder())
        prims = {p for p, _, _ in parse_instances(text)}
        assert "xor" in prims

    def test_every_gate_represented(self):
        c = random_circuit("r", 8, 4, 40, seed=2)
        text = write_verilog(c)
        instances = parse_instances(text)
        consts = text.count("assign")
        assert len(instances) + consts == len(c.logic_gates())
