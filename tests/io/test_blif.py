"""Tests for the structural BLIF writer/reader."""

import random

import pytest

from repro.benchcircuits import c17, full_adder, random_circuit
from repro.io import BlifFormatError, read_blif, write_blif
from repro.netlist import CircuitBuilder, GateType
from repro.sim import outputs_equal, random_words


class TestWrite:
    def test_header_structure(self):
        text = write_blif(c17())
        assert text.startswith(".model c17")
        assert ".inputs 1 2 3 6 7" in text
        assert ".outputs 22 23" in text
        assert text.rstrip().endswith(".end")

    def test_nand_cover(self):
        b = CircuitBuilder("t")
        a, x = b.inputs("a", "b")
        g = b.NAND(a, x, name="g")
        b.outputs(g)
        text = write_blif(b.build())
        assert ".names a b g" in text
        assert "0- 1" in text and "-0 1" in text


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_roundtrip_functional(self, seed):
        c = random_circuit("r", 7, 3, 35, seed=seed)
        c2 = read_blif(write_blif(c))
        assert c2.inputs == c.inputs
        assert c2.outputs == c.outputs
        rng = random.Random(3)
        words = random_words(c.inputs, 128, rng)
        assert outputs_equal(c, c2, words, 128)

    def test_xor_roundtrip(self):
        c = full_adder()
        c2 = read_blif(write_blif(c))
        assert c2.gate("sum").gtype is GateType.XOR
        rng = random.Random(4)
        words = random_words(c.inputs, 8, rng)
        assert outputs_equal(c, c2, words, 8)

    def test_constants_roundtrip(self):
        b = CircuitBuilder("k")
        a, = b.inputs("a")
        zero = b.CONST0()
        one = b.CONST1()
        g = b.OR(a, zero, name="g")
        h = b.AND(a, one, name="h")
        b.outputs(g, h)
        c = b.build()
        c2 = read_blif(write_blif(c))
        assert c2.gate(zero).gtype is GateType.CONST0
        assert c2.gate(one).gtype is GateType.CONST1


class TestReadErrors:
    def test_unsupported_construct(self):
        with pytest.raises(BlifFormatError):
            read_blif(".model m\n.latch a b\n.end\n")

    def test_row_outside_names(self):
        with pytest.raises(BlifFormatError):
            read_blif(".model m\n11 1\n.end\n")

    def test_unrecognized_cover(self):
        bad = ".model m\n.inputs a b\n.outputs g\n.names a b g\n10 1\n.end\n"
        with pytest.raises(BlifFormatError):
            read_blif(bad)
