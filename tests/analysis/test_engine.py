"""AnalysisSession: incrementally maintained Procedure 1 labels."""

import random

import pytest

from repro.analysis import AnalysisSession, count_paths, path_labels
from repro.netlist import (
    CircuitBuilder,
    Gate,
    GateType,
    scratch_path_labels,
)


def chain():
    b = CircuitBuilder("chain")
    a, c = b.inputs("a", "b")
    g1 = b.AND(a, c, name="g1")
    g2 = b.OR(g1, a, name="g2")
    g3 = b.AND(g2, g1, name="g3")
    b.outputs(g3)
    return b.build()


class TestLabels:
    def test_matches_batch_path_labels(self):
        c = chain()
        with AnalysisSession(c) as s:
            assert s.labels() == path_labels(c)
            assert s.total_paths() == count_paths(c)

    def test_incremental_after_replace(self):
        c = chain()
        with AnalysisSession(c) as s:
            s.labels()  # prime
            c.replace_gate(Gate("g2", GateType.NAND, ("a", "b")))
            assert s.labels() == path_labels(c)
            assert s.total_paths() == count_paths(c)

    def test_incremental_after_remove_and_add(self):
        c = chain()
        with AnalysisSession(c) as s:
            s.labels()
            c.set_outputs(["g2"])
            c.remove_gate("g3")
            c.add_gate("g4", GateType.NOT, ("g2",))
            c.add_output("g4")
            assert s.labels() == path_labels(c)
            assert s.total_paths() == count_paths(c)

    def test_label_and_current_paths_on(self):
        c = chain()
        with AnalysisSession(c) as s:
            want = path_labels(c)
            assert s.label("g2") == want["g2"]
            # N_p of a gate output = sum of its fanin labels
            assert s.current_paths_on("g3") == want["g2"] + want["g1"]

    def test_duplicate_outputs_counted_like_count_paths(self):
        c = chain()
        c.add_output("g3")  # g3 now listed twice
        with AnalysisSession(c) as s:
            assert s.total_paths() == count_paths(c)

    def test_dirty_reset_recovers(self):
        c = chain()
        with AnalysisSession(c) as s:
            s.labels()
            c._dirty()  # wholesale invalidation -> reset event
            assert s.labels() == path_labels(c)

    def test_close_detaches(self):
        c = chain()
        s = AnalysisSession(c)
        before = dict(s.labels())
        s.close()
        c.replace_gate(Gate("g2", GateType.NAND, ("a", "b")))
        # No longer subscribed: the session must not see the mutation
        # (stale by design after close).
        assert s.labels() == before

    def test_truth_table_cache_attached(self):
        c = chain()
        with AnalysisSession(c) as s:
            s.truth_tables.put(("k",), 3)
            assert s.truth_tables.get(("k",)) == 3


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_labels_track_random_mutations(self, seed):
        rng = random.Random(0xE7 + seed)
        b = CircuitBuilder(f"rw{seed}")
        ins = b.inputs(*[f"i{k}" for k in range(4)])
        nets = list(ins)
        for k in range(10):
            nets.append(b.NAND(rng.choice(nets), rng.choice(nets),
                               name=f"g{k}"))
        b.outputs(nets[-1], nets[-2])
        c = b.build()
        with AnalysisSession(c) as s:
            s.labels()
            for _ in range(25):
                logic = [g.name for g in c.logic_gates()]
                name = rng.choice(logic)
                pool = [n for n in c.nets()
                        if n not in c.transitive_fanout([name])]
                if len(pool) < 2:
                    continue
                c.replace_gate(Gate(name, GateType.NAND,
                                    (rng.choice(pool), rng.choice(pool))))
                assert s.labels() == scratch_path_labels(c)
                assert s.total_paths() == count_paths(c)
