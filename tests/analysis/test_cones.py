"""Tests for cone extraction, shared-gate detection and subcircuit lifting."""

import pytest

from repro.analysis import (
    cone_inputs,
    extract_subcircuit,
    make_cone,
    removable_members,
    shared_members,
    single_gate_cone,
)
from repro.benchcircuits import c17
from repro.netlist import CircuitBuilder, CircuitError
from repro.sim import truth_table, truth_tables


class TestMakeCone:
    def test_single_gate_cone(self):
        c = c17()
        cone = single_gate_cone(c, "22")
        assert cone.members == frozenset({"22"})
        assert set(cone.inputs) == {"10", "16"}

    def test_two_gate_cone_inputs(self):
        c = c17()
        cone = make_cone(c, "22", {"22", "10"})
        assert set(cone.inputs) == {"1", "3", "16"}

    def test_output_must_be_member(self):
        c = c17()
        with pytest.raises(CircuitError):
            make_cone(c, "22", {"10"})

    def test_disconnected_member_rejected(self):
        c = c17()
        with pytest.raises(CircuitError):
            make_cone(c, "22", {"22", "19"})  # 19 does not feed 22

    def test_primary_input_cannot_be_member(self):
        c = c17()
        with pytest.raises(CircuitError):
            make_cone(c, "22", {"22", "1"})

    def test_inputs_in_topological_order(self):
        c = c17()
        cone = make_cone(c, "22", {"22", "10", "16"})
        topo = c.topological_order()
        positions = [topo.index(i) for i in cone.inputs]
        assert positions == sorted(positions)


class TestSharedMembers:
    def test_fanout_to_outside_is_shared(self):
        c = c17()
        # 16 feeds both 22 and 23; in a cone for 22 it is shared.
        cone = make_cone(c, "22", {"22", "16", "10"})
        assert shared_members(c, cone) == {"16"}
        assert removable_members(c, cone) == {"22", "10"}

    def test_primary_output_member_is_shared(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x, name="g1")
        g2 = b.NOT(g1, name="g2")
        b.outputs(g1, g2)  # g1 is itself observable
        c = b.build()
        cone = make_cone(c, "g2", {"g2", "g1"})
        assert shared_members(c, cone) == {"g1"}

    def test_cone_output_never_shared(self):
        c = c17()
        cone = make_cone(c, "16", {"16"})
        assert "16" not in shared_members(c, cone)
        assert removable_members(c, cone) == {"16"}


class TestExtractSubcircuit:
    def test_extracted_function_matches_host(self):
        c = c17()
        cone = make_cone(c, "22", {"22", "10", "16"})
        sub = extract_subcircuit(c, cone)
        sub.validate()
        assert sub.outputs == ["22"]
        assert list(sub.inputs) == list(cone.inputs)
        # 22 = NAND(NAND(1,3), NAND(2,11)) over inputs (1,3,2,11)
        t = truth_table(sub, input_order=["1", "3", "2", "11"])
        expected = 0
        for m in range(16):
            b1, b3, b2, b11 = (m >> 3) & 1, (m >> 2) & 1, (m >> 1) & 1, m & 1
            g10 = 1 - (b1 & b3)
            g16 = 1 - (b2 & b11)
            if 1 - (g10 & g16):
                expected |= 1 << m
        assert t == expected

    def test_whole_cone_of_output(self):
        c = c17()
        members = {g.name for g in c.logic_gates()
                   if g.name in c.transitive_fanin(["23"])}
        cone = make_cone(c, "23", members)
        sub = extract_subcircuit(c, cone)
        host_t = truth_tables(c, input_order=c.inputs)["23"]
        sub_t = truth_table(sub, input_order=[i for i in c.inputs
                                              if i in set(cone.inputs)])
        # same function over the cone's support
        assert set(cone.inputs).issubset(set(c.inputs))
        # direct comparison needs same input count; cone of 23 misses input 1
        assert sub.outputs == ["23"]
        assert len(sub.logic_gates()) == len(members)

    def test_cone_inputs_helper(self):
        c = c17()
        assert set(cone_inputs(c, {"22", "10"})) == {"1", "3", "16"}
