"""Tests for uniform path sampling."""

from collections import Counter

from repro.analysis import count_paths, enumerate_paths, sample_paths
from repro.benchcircuits import c17, random_circuit
from repro.netlist import CircuitBuilder


class TestSamplePaths:
    def test_samples_are_real_paths(self):
        c = c17()
        real = set(map(tuple, enumerate_paths(c)))
        for p in sample_paths(c, 50, seed=1):
            assert p in real

    def test_deterministic(self):
        c = c17()
        assert sample_paths(c, 20, seed=4) == sample_paths(c, 20, seed=4)

    def test_count(self):
        c = c17()
        assert len(sample_paths(c, 37, seed=0)) == 37

    def test_roughly_uniform(self):
        # c17 has 11 paths; with 3300 samples each should appear ~300 times.
        c = c17()
        counts = Counter(sample_paths(c, 3300, seed=7))
        assert len(counts) == 11
        assert min(counts.values()) > 180
        assert max(counts.values()) < 450

    def test_large_population(self):
        c = random_circuit("r", 10, 5, 70, seed=1)
        total = count_paths(c)
        got = sample_paths(c, 25, seed=2)
        assert len(got) == 25
        for p in got:
            assert p[0] in c.inputs
            assert p[-1] in c.output_set

    def test_empty_when_no_paths(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        k = b.CONST1()
        b.outputs(k)
        c = b.build()
        assert sample_paths(c, 5, seed=0) == []
