"""Cross-module property tests on path-count bookkeeping.

The resynthesis procedures price replacements with the identity
``N_p(g) = sum_i N_p(i) * K_p(i)`` (Section 2); these tests pin that
identity down against explicit enumeration.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    count_paths,
    enumerate_paths,
    extract_subcircuit,
    internal_path_counts,
    make_cone,
    path_labels,
)
from repro.benchcircuits import random_circuit
from repro.netlist import GateType


@given(st.integers(0, 5000))
@settings(max_examples=15, deadline=None)
def test_np_kp_identity(seed):
    """N_p(g) computed through any cone boundary matches the labels."""
    c = random_circuit("r", 6, 3, 25, seed=seed)
    labels = path_labels(c)
    rng = random.Random(seed)
    gates = [g.name for g in c.logic_gates()]
    if not gates:
        return
    out = rng.choice(gates)
    # grow a small random cone around `out`
    members = {out}
    frontier = [out]
    for _ in range(3):
        growable = [
            f for m in list(members) for f in c.gate(m).fanins
            if f not in members and c.gate(f).gtype not in (
                GateType.INPUT, GateType.CONST0, GateType.CONST1)
        ]
        if not growable:
            break
        members.add(rng.choice(growable))
    cone = make_cone(c, out, members)
    sub = extract_subcircuit(c, cone)
    kp = internal_path_counts(sub)
    assert labels[out] == sum(
        labels[i] * kp[i] for i in cone.inputs
    )


@given(st.integers(0, 5000))
@settings(max_examples=12, deadline=None)
def test_labels_agree_with_enumeration_per_net(seed):
    c = random_circuit("r", 5, 3, 18, seed=seed)
    labels = path_labels(c)
    # count enumerated paths per output
    for po in c.output_set:
        assert labels[po] == len(enumerate_paths(c, from_output=po))


@given(st.integers(0, 5000))
@settings(max_examples=12, deadline=None)
def test_count_paths_additive_over_outputs(seed):
    c = random_circuit("r", 5, 3, 18, seed=seed)
    labels = path_labels(c)
    assert count_paths(c) == sum(labels[o] for o in c.outputs)
