"""Tests for Procedure 1 path counting and path enumeration.

Key cross-check (property): the non-enumerative label count equals the
number of explicitly enumerated paths, on random circuits.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    count_paths,
    enumerate_paths,
    internal_path_counts,
    iter_paths,
    path_labels,
)
from repro.benchcircuits import (
    c17,
    paper_f1_impl1,
    paper_f1_impl2,
    random_circuit,
)
from repro.netlist import CircuitBuilder, GateType


class TestProcedure1:
    def test_inputs_labeled_one(self):
        c = c17()
        labels = path_labels(c)
        for pi in c.inputs:
            assert labels[pi] == 1

    def test_gate_output_sums_fanins(self):
        c = c17()
        labels = path_labels(c)
        # 16 = NAND(2, 11); 11 = NAND(3, 6) so N_p(11)=2, N_p(16)=3
        assert labels["11"] == 2
        assert labels["16"] == 3

    def test_c17_total(self):
        assert count_paths(c17()) == 11

    def test_fanout_branch_inherits_stem_label(self):
        # stem feeding two gates contributes its label to both.
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        s = b.AND(a, x)      # label 2
        g1 = b.NOT(s)
        g2 = b.OR(s, a)
        b.outputs(g1, g2)
        c = b.build()
        labels = path_labels(c)
        assert labels[g1] == 2
        assert labels[g2] == 3

    def test_constants_carry_no_paths(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        k = b.CONST1()
        g = b.AND(a, k, name="g")
        b.outputs(g)
        assert count_paths(b.build()) == 1

    def test_repeated_output_counts_twice(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g, g)
        assert count_paths(b.build()) == 4

    def test_same_net_read_twice_counts_two_branches(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        g = b.XOR(a, a, name="g")
        b.outputs(g)
        assert count_paths(b.build()) == 2


class TestPaperExample:
    """The Section 2 worked example: K_p and the N_p arithmetic."""

    NP = {"x1": 10, "x2": 100, "x3": 20, "x4": 20}

    def test_kp_first_implementation(self):
        assert internal_path_counts(paper_f1_impl1()) == {
            "x1": 2, "x2": 3, "x3": 2, "x4": 2}

    def test_kp_second_implementation(self):
        assert internal_path_counts(paper_f1_impl2()) == {
            "x1": 3, "x2": 2, "x3": 2, "x4": 2}

    def test_np_favors_second_implementation(self):
        k1 = internal_path_counts(paper_f1_impl1())
        k2 = internal_path_counts(paper_f1_impl2())
        np1 = sum(self.NP[x] * k1[x] for x in self.NP)
        np2 = sum(self.NP[x] * k2[x] for x in self.NP)
        assert np1 == 400
        assert np2 == 310  # the paper's quoted winning figure
        assert np2 < np1


class TestEnumeration:
    def test_enumeration_matches_labels_on_c17(self):
        c = c17()
        assert len(enumerate_paths(c)) == count_paths(c)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_enumeration_matches_labels_random(self, seed):
        c = random_circuit("r", 5, 3, 18, seed=seed)
        assert len(enumerate_paths(c)) == count_paths(c)

    def test_paths_start_at_pi_end_at_po(self):
        c = c17()
        for p in enumerate_paths(c):
            assert c.gate(p[0]).gtype is GateType.INPUT
            assert p[-1] in c.output_set

    def test_paths_are_connected(self):
        c = c17()
        for p in enumerate_paths(c):
            for parent, child in zip(p, p[1:]):
                assert parent in c.gate(child).fanins

    def test_limit_respected(self):
        c = c17()
        assert len(enumerate_paths(c, limit=3)) == 3

    def test_iter_paths_lazy_matches_eager(self):
        c = c17()
        assert list(iter_paths(c)) == enumerate_paths(c)

    def test_restrict_to_one_output(self):
        c = c17()
        labels = path_labels(c)
        got = enumerate_paths(c, from_output="22")
        assert len(got) == labels["22"]


class TestInternalPathCounts:
    def test_requires_single_output(self):
        c = c17()
        with pytest.raises(ValueError):
            internal_path_counts(c)

    def test_input_with_no_path(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.NOT(a, name="g")
        b.outputs(g)
        c = b.build()
        counts = internal_path_counts(c)
        assert counts == {"a": 1, "b": 0}
