"""Tests for Procedures 2 and 3 and the combined measure.

Core invariants, checked on fixtures and random circuits:
* function preserved (random-simulation equivalence);
* interface preserved;
* Procedure 2 never increases the 2-input gate count;
* Procedure 3 never increases the path count;
* reports are internally consistent.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import count_paths
from repro.atpg import remove_redundancies
from repro.benchcircuits import paper_f2_sop, random_circuit
from repro.benchcircuits.suite import interval_decode_sop
from repro.netlist import CircuitBuilder, two_input_gate_count
from repro.resynth import combined_procedure, procedure2, procedure3
from repro.sim import outputs_equal, random_words


def interval_fixture():
    """A circuit whose core is an expensive interval decode."""
    b = CircuitBuilder("interval_fixture")
    xs = b.inputs(*[f"x{j}" for j in range(5)])
    extra = b.inputs("e0", "e1")
    dec = interval_decode_sop(b, xs, 7, 22)
    g = b.AND(dec, extra[0])
    out = b.OR(g, extra[1], name="out")
    b.outputs(out, dec)
    return b.build()


def assert_equivalent(a, b, seed=0, n=1024):
    rng = random.Random(seed)
    w = random_words(a.inputs, n, rng)
    assert outputs_equal(a, b, w, n)


class TestProcedure2:
    def test_f2_sop_collapses_fully_at_k6(self):
        # K=6 collapses the whole SOP into the Figure 1 unit (7 2-input
        # gates, 8 paths); K=4 cannot tunnel through the interior cuts.
        c = paper_f2_sop()
        rep = procedure2(c, k=6, verify_patterns=256)
        assert rep.gates_after == 7
        assert rep.paths_after == 8
        assert_equivalent(c, rep.circuit)

    def test_f2_sop_k4_makes_no_progress(self):
        rep = procedure2(paper_f2_sop(), k=4)
        assert rep.gate_reduction == 0

    def test_interval_decode_collapses(self):
        c = interval_fixture()
        rep = procedure2(c, k=5, verify_patterns=256)
        assert rep.gate_reduction > 0
        assert rep.path_reduction > 0
        assert_equivalent(c, rep.circuit)

    def test_gate_count_never_increases(self):
        for seed in (0, 1, 2):
            c = random_circuit("r", 10, 5, 60, seed=seed)
            rep = procedure2(c, k=5)
            assert rep.gates_after <= rep.gates_before

    @given(st.integers(0, 2000))
    @settings(max_examples=6, deadline=None)
    def test_function_preserved_random(self, seed):
        c = random_circuit("r", 9, 4, 45, seed=seed)
        rep = procedure2(c, k=5)
        assert_equivalent(c, rep.circuit, seed=seed)

    def test_interface_preserved(self):
        c = interval_fixture()
        rep = procedure2(c, k=5)
        assert rep.circuit.inputs == c.inputs
        assert rep.circuit.outputs == c.outputs

    def test_input_not_mutated(self):
        c = interval_fixture()
        snap = c.copy()
        procedure2(c, k=5)
        assert c.structurally_equal(snap)

    def test_report_consistency(self):
        c = interval_fixture()
        rep = procedure2(c, k=5)
        assert rep.gates_before == two_input_gate_count(c)
        assert rep.gates_after == two_input_gate_count(rep.circuit)
        assert rep.paths_after == count_paths(rep.circuit)
        assert rep.objective == "gates"
        assert "gates" in rep.summary()

    def test_idempotent_at_fixpoint(self):
        c = interval_fixture()
        once = procedure2(c, k=5).circuit
        twice = procedure2(once, k=5)
        assert twice.gates_after == twice.gates_before
        assert twice.replacements == 0 or (
            twice.gates_after == two_input_gate_count(once)
        )


class TestProcedure3:
    def test_paths_never_increase(self):
        for seed in (0, 1, 2):
            c = random_circuit("r", 10, 5, 60, seed=seed)
            rep = procedure3(c, k=5)
            assert rep.paths_after <= rep.paths_before

    def test_may_trade_gates_for_paths(self):
        # On the interval fixture Procedure 3 must reduce paths at least
        # as much as Procedure 2 (the paper's Table 5 vs Table 2 pattern).
        c = interval_fixture()
        p2 = procedure2(c, k=5)
        p3 = procedure3(c, k=5)
        assert p3.paths_after <= p2.paths_after

    @given(st.integers(0, 2000))
    @settings(max_examples=6, deadline=None)
    def test_function_preserved_random(self, seed):
        c = random_circuit("r", 9, 4, 45, seed=seed)
        rep = procedure3(c, k=5)
        assert_equivalent(c, rep.circuit, seed=seed)

    def test_report_objective(self):
        rep = procedure3(interval_fixture(), k=5)
        assert rep.objective == "paths"


class TestCombined:
    def test_between_extremes(self):
        c = interval_fixture()
        p2 = procedure2(c, k=5)
        p3 = procedure3(c, k=5)
        mid = combined_procedure(c, gate_weight=5.0, k=5)
        assert_equivalent(c, mid.circuit)
        assert mid.paths_after <= p2.paths_before
        # combined never does worse than doing nothing
        assert mid.paths_after <= count_paths(c)

    def test_huge_weight_approaches_procedure2(self):
        c = interval_fixture()
        heavy = combined_procedure(c, gate_weight=1e9, k=5)
        assert heavy.gates_after <= heavy.gates_before

    def test_verify_patterns_catch_nothing_on_sound_runs(self):
        c = paper_f2_sop()
        combined_procedure(c, gate_weight=2.0, k=4, verify_patterns=128)


class TestOnIrredundantCircuits:
    """The paper's actual pipeline: irredundant circuit in, Procedure out."""

    def test_pipeline(self):
        raw = random_circuit("r", 10, 5, 70, seed=9)
        base = remove_redundancies(raw).circuit
        rep = procedure2(base, k=5, verify_patterns=512)
        assert rep.gates_after <= rep.gates_before
        assert_equivalent(base, rep.circuit)
