"""Tests for candidate subcircuit enumeration (Section 4.1)."""

from repro.analysis import single_gate_cone
from repro.benchcircuits import c17, paper_f2_sop, random_circuit
from repro.netlist import CircuitBuilder
from repro.resynth import enumerate_candidate_cones


class TestEnumeration:
    def test_trivial_cone_always_first(self):
        c = c17()
        cones = enumerate_candidate_cones(c, "22", max_inputs=4)
        assert cones[0].members == frozenset({"22"})

    def test_growth_through_fanins(self):
        c = c17()
        cones = enumerate_candidate_cones(c, "22", max_inputs=4)
        member_sets = {cone.members for cone in cones}
        assert frozenset({"22", "10"}) in member_sets
        assert frozenset({"22", "16"}) in member_sets
        assert frozenset({"22", "10", "16"}) in member_sets

    def test_input_bound_respected(self):
        c = paper_f2_sop()
        for k in (3, 4, 5):
            for cone in enumerate_candidate_cones(c, "f2", max_inputs=k):
                assert cone.n_inputs <= k

    def test_wide_gate_no_candidates(self):
        b = CircuitBuilder()
        ins = b.inputs(*[f"i{j}" for j in range(6)])
        g = b.AND(*ins, name="g")
        b.outputs(g)
        c = b.build()
        assert enumerate_candidate_cones(c, "g", max_inputs=4) == []
        assert len(enumerate_candidate_cones(c, "g", max_inputs=6)) == 1

    def test_frozen_nets_not_absorbed(self):
        c = c17()
        cones = enumerate_candidate_cones(
            c, "22", max_inputs=4, frozen={"10"}
        )
        assert all("10" not in cone.members for cone in cones)

    def test_primary_inputs_never_members(self):
        c = c17()
        for cone in enumerate_candidate_cones(c, "22", max_inputs=5):
            assert all(not m.isdigit() or m not in c.inputs
                       for m in cone.members)
            for m in cone.members:
                assert m not in c.inputs

    def test_cap_respected(self):
        c = random_circuit("r", 10, 4, 80, seed=2)
        for net in [g.name for g in c.logic_gates()][:5]:
            cones = enumerate_candidate_cones(
                c, net, max_inputs=6, max_candidates=10
            )
            assert len(cones) <= 10

    def test_no_duplicates(self):
        c = paper_f2_sop()
        cones = enumerate_candidate_cones(c, "f2", max_inputs=5)
        member_sets = [cone.members for cone in cones]
        assert len(member_sets) == len(set(member_sets))

    def test_whole_sop_reachable_after_decomposition(self):
        # On the raw SOP the 6-input top OR exceeds K immediately (the
        # paper's rule neither keeps nor expands over-wide subcircuits),
        # but after 2-input decomposition — which the procedures apply —
        # growth tunnels through and reaches the whole 4-support cone
        # once K covers the interior cut (support + 1 here).
        from repro.netlist import decompose_two_input

        raw = paper_f2_sop()
        assert enumerate_candidate_cones(raw, "f2", max_inputs=4) == []
        c = decompose_two_input(raw)
        cones = enumerate_candidate_cones(
            c, "f2", max_inputs=6, max_candidates=100_000
        )
        # Growth now reaches deep multi-gate cones (the full collapse to
        # the comparison unit then happens across procedure passes, since
        # interior cuts of the whole SOP exceed K in a single expansion).
        assert max(cone.n_gates for cone in cones) >= 8
        assert all(cone.n_inputs <= 6 for cone in cones)

    def test_input_gate_returns_empty(self):
        c = c17()
        assert enumerate_candidate_cones(c, "1", max_inputs=4) == []
