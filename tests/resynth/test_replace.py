"""Tests for cone evaluation and replacement application."""

import random

from repro.analysis import make_cone, path_labels, single_gate_cone
from repro.benchcircuits import c17, paper_f2_sop
from repro.netlist import CircuitBuilder, GateType, two_input_gate_count
from repro.resynth import (
    apply_replacement,
    current_paths_on,
    evaluate_cone,
)
from repro.sim import outputs_equal, random_words, truth_tables


class TestEvaluateCone:
    def test_f2_sop_replacement_found(self):
        c = paper_f2_sop()
        members = {g.name for g in c.logic_gates()}
        cone = make_cone(c, "f2", members)
        labels = path_labels(c)
        option = evaluate_cone(c, cone, labels)
        assert option is not None
        assert not option.is_constant
        # the SOP burns far more 2-input gates than the unit (7)
        assert option.gate_gain > 0
        assert option.unit_gates == 7
        # paths: unit has 2 paths per input over labels all 1
        assert option.paths_on_output == 8

    def test_single_nand_gate_evaluates_to_itself_cost(self):
        c = c17()
        cone = single_gate_cone(c, "22")
        labels = path_labels(c)
        option = evaluate_cone(c, cone, labels)
        assert option is not None
        assert option.gate_gain == 0  # NAND2 -> complemented unit, same cost

    def test_xor3_not_replaceable(self):
        b = CircuitBuilder()
        a, x, y = b.inputs("a", "b", "c")
        g = b.XOR(a, x, y, name="g")
        b.outputs(g)
        c = b.build()
        cone = single_gate_cone(c, "g")
        option = evaluate_cone(c, cone, path_labels(c))
        assert option is None

    def test_constant_cone(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        na = b.NOT(a)
        g = b.AND(a, na, name="g")  # constant 0
        out = b.OR(g, x, name="out")
        b.outputs(out)
        c = b.build()
        cone = make_cone(c, "g", {"g", na})
        option = evaluate_cone(c, cone, path_labels(c))
        assert option is not None
        assert option.is_constant
        assert option.constant_value == 0
        assert option.paths_on_output == 0

    def test_shared_gate_excluded_from_gain(self):
        # 16 feeds 22 and 23 in c17: a cone for 22 absorbing 16 cannot
        # count 16 as removable.
        c = c17()
        cone_with_shared = make_cone(c, "22", {"22", "16"})
        cone_private = make_cone(c, "22", {"22", "10"})
        labels = path_labels(c)
        opt_shared = evaluate_cone(c, cone_with_shared, labels)
        opt_private = evaluate_cone(c, cone_private, labels)
        if opt_shared is not None and opt_private is not None:
            assert opt_shared.removable_gates == 1  # only gate 22
            assert opt_private.removable_gates == 2


class TestApplyReplacement:
    def test_f2_sop_to_unit_preserves_function(self):
        c = paper_f2_sop()
        reference = truth_tables(c)["f2"]
        members = {g.name for g in c.logic_gates()}
        cone = make_cone(c, "f2", members)
        option = evaluate_cone(c, cone, path_labels(c))
        before = two_input_gate_count(c)
        apply_replacement(c, option)
        c.validate()
        assert truth_tables(c)["f2"] == reference
        assert two_input_gate_count(c) == before - option.gate_gain

    def test_constant_replacement(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        na = b.NOT(a)
        g = b.AND(a, na, name="g")
        out = b.OR(g, x, name="out")
        b.outputs(out)
        c = b.build()
        cone = make_cone(c, "g", {"g", na})
        option = evaluate_cone(c, cone, path_labels(c))
        apply_replacement(c, option)
        c.validate()
        assert c.gate("g").gtype is GateType.CONST0

    def test_shared_members_survive(self):
        c = c17()
        cone = make_cone(c, "22", {"22", "16", "10"})
        option = evaluate_cone(c, cone, path_labels(c))
        if option is None:
            return  # function not a comparison function: nothing to check
        snapshot = c.copy()
        apply_replacement(c, option)
        c.validate()
        assert "16" in c  # shared gate still present (feeds 23)
        rng = random.Random(0)
        w = random_words(c.inputs, 256, rng)
        assert outputs_equal(snapshot, c, w, 256)


class TestCurrentPaths:
    def test_matches_label_sum(self):
        c = c17()
        labels = path_labels(c)
        assert current_paths_on(c, "22", labels) == labels["22"]
        assert current_paths_on(c, "16", labels) == labels["16"]
