"""Pass-boundary checkpointing and bit-identical resume.

The acceptance regression for the job service's determinism contract:
killing a syn9234 Procedure 2 run after *any* pass and resuming from the
JSON-round-tripped checkpoint (with the identification cache cleared, as
in a restarted worker) reproduces the uninterrupted run's report and
result netlist bit for bit.
"""

import pytest

from repro.benchcircuits import paper_f2_sop, random_circuit
from repro.benchcircuits.suite import suite_circuit
from repro.comparison import identification_cache
from repro.resynth import (
    REPORT_NUMBER_FIELDS,
    ResumeMismatchError,
    checkpoint_from_json,
    checkpoint_to_json,
    procedure2,
    procedure3,
    report_from_json,
    report_to_json,
)
from repro.verify import netlist_dump


def run_with_checkpoints(proc, circuit, **kw):
    checkpoints = []
    identification_cache().clear()
    report = proc(circuit, on_pass=checkpoints.append, **kw)
    return report, checkpoints


def assert_reports_identical(straight, resumed):
    for field in REPORT_NUMBER_FIELDS:
        assert getattr(resumed, field) == getattr(straight, field), field
    assert netlist_dump(resumed.circuit) == netlist_dump(straight.circuit)


class TestCheckpointStream:
    def test_every_pass_emits_a_checkpoint(self):
        c = random_circuit("r", 8, 4, 40, seed=3)
        report, ckpts = run_with_checkpoints(procedure2, c, k=4,
                                             perm_budget=24)
        assert [k.pass_no for k in ckpts] == list(
            range(1, report.passes + 1))
        assert ckpts[-1].done
        assert all(not k.done for k in ckpts[:-1])
        last = ckpts[-1]
        assert last.replacements == report.replacements
        assert last.gates_now == report.gates_after
        assert last.paths_now == report.paths_after
        assert netlist_dump(last.circuit) == netlist_dump(report.circuit)

    def test_checkpoint_circuit_is_a_snapshot(self):
        # Mutating a checkpoint's circuit must not affect the run.
        c = paper_f2_sop()
        _, ckpts = run_with_checkpoints(procedure2, c, k=6)
        report2, _ = run_with_checkpoints(procedure2, c, k=6)
        for k in ckpts:
            assert k.circuit is not report2.circuit

    def test_timing_fields_populated(self):
        c = paper_f2_sop()
        report, ckpts = run_with_checkpoints(procedure2, c, k=6)
        assert len(report.pass_seconds) == report.passes
        assert all(s >= 0 for s in report.pass_seconds)
        assert report.total_seconds >= sum(report.pass_seconds) * 0.99
        assert "passes" in report.timing_summary()
        # Checkpoints carry the timing prefix so resumed totals include
        # the pre-crash work.
        assert len(ckpts[0].pass_seconds) == 1
        assert len(ckpts[-1].pass_seconds) == report.passes


class TestResumeSmall:
    @pytest.mark.parametrize("proc", [procedure2, procedure3])
    def test_resume_after_each_pass(self, proc):
        c = random_circuit("r", 8, 4, 40, seed=7)
        kw = dict(k=4, perm_budget=24, max_passes=3)
        straight, ckpts = run_with_checkpoints(proc, c, **kw)
        for ckpt in ckpts:
            restored = checkpoint_from_json(checkpoint_to_json(ckpt))
            identification_cache().clear()
            resumed = proc(c, resume=restored, **kw)
            assert_reports_identical(straight, resumed)

    def test_resume_after_converged_final_pass_is_a_noop_run(self):
        c = paper_f2_sop()
        straight, ckpts = run_with_checkpoints(procedure2, c, k=6)
        restored = checkpoint_from_json(checkpoint_to_json(ckpts[-1]))
        assert restored.done
        resumed = procedure2(c, k=6, resume=restored)
        assert resumed.passes == straight.passes
        assert_reports_identical(straight, resumed)

    def test_mismatched_checkpoint_is_rejected(self):
        c = paper_f2_sop()
        _, ckpts = run_with_checkpoints(procedure2, c, k=6, seed=0)
        ckpt = ckpts[0]
        with pytest.raises(ResumeMismatchError):
            procedure2(c, k=5, resume=ckpt)
        with pytest.raises(ResumeMismatchError):
            procedure2(c, k=6, seed=1, resume=ckpt)
        with pytest.raises(ResumeMismatchError):
            procedure3(c, k=6, resume=ckpt)

    def test_report_json_roundtrip(self):
        c = paper_f2_sop()
        report, _ = run_with_checkpoints(procedure2, c, k=6)
        loaded = report_from_json(report_to_json(report))
        assert_reports_identical(report, loaded)
        assert loaded.pass_seconds == pytest.approx(report.pass_seconds)

    def test_report_timings_mapping_round_trips(self):
        import json

        from repro.resynth.serialize import report_to_doc

        c = paper_f2_sop()
        report, _ = run_with_checkpoints(procedure2, c, k=6)
        assert "pass_seconds" in report.timings
        assert "total_seconds" in report.timings
        assert "setup_seconds" in report.timings
        doc = report_to_doc(report)
        # The flat legacy keys stay alongside the structured mapping.
        assert doc["pass_seconds"] == report.timings["pass_seconds"]
        assert doc["total_seconds"] == report.timings["total_seconds"]
        loaded = report_from_json(json.dumps(doc))
        assert loaded.timings == report.timings

    def test_pre_timings_report_doc_still_loads(self):
        import json

        from repro.resynth.serialize import report_to_doc

        c = paper_f2_sop()
        report, _ = run_with_checkpoints(procedure2, c, k=6)
        old_doc = report_to_doc(report)
        del old_doc["timings"]  # a document written before repro.obs
        loaded = report_from_json(json.dumps(old_doc))
        assert_reports_identical(report, loaded)
        assert loaded.pass_seconds == pytest.approx(report.pass_seconds)
        assert loaded.total_seconds == pytest.approx(report.total_seconds)
        assert loaded.timings == {
            "pass_seconds": loaded.pass_seconds,
            "total_seconds": loaded.total_seconds,
        }


class TestResumeAcceptance:
    def test_syn9234_procedure2_resume_bit_identical_at_every_boundary(
            self):
        # The ISSUE acceptance criterion, verbatim: syn9234, Procedure 2,
        # K=5, seed=1 — kill after any pass, resume, compare everything.
        c = suite_circuit("syn9234")
        kw = dict(k=5, seed=1)
        straight, ckpts = run_with_checkpoints(procedure2, c, **kw)
        assert len(ckpts) == straight.passes >= 2
        for ckpt in ckpts:
            restored = checkpoint_from_json(checkpoint_to_json(ckpt))
            identification_cache().clear()  # restarted workers are cold
            resumed = procedure2(c, resume=restored, **kw)
            assert_reports_identical(straight, resumed)
            assert resumed.pass_seconds[:ckpt.pass_no] == pytest.approx(
                ckpt.pass_seconds)
