"""Regression: path labels must be *current* at every selection site.

Historically ``_resynthesis_pass`` computed the Procedure 1 labels once at
pass start and priced every candidate against that snapshot.  A replacement
changes the labels of its cone output and introduces ``cu_*`` nets the
snapshot has never heard of, so later selection sites in the same pass were
priced against stale (and incomplete) data.  The outputs-to-inputs sweep
order happens to make the stale values unobservable by later *selections*
(upstream labels only depend on upstream structure), but the invariant is
subtle and one refactor away from breaking — the session now keeps the
labels exactly current, and this test pins that down.
"""

from repro.analysis import AnalysisSession, path_labels
from repro.benchcircuits.suite import interval_decode_sop
from repro.netlist import CircuitBuilder, decompose_two_input
from repro.resynth.procedures import _resynthesis_pass, _select_for_gates


def two_decode_fixture():
    """Two expensive interval decodes: at least two replacement sites."""
    b = CircuitBuilder("two_decode")
    xs = b.inputs(*[f"x{j}" for j in range(5)])
    ys = b.inputs(*[f"y{j}" for j in range(5)])
    d1 = b.AND(interval_decode_sop(b, xs, 7, 22), b.inputs("e0")[0])
    d2 = b.OR(interval_decode_sop(b, ys, 4, 19), b.inputs("e1")[0])
    b.outputs(d1, d2)
    return b.build()


class TestLabelsCurrentAtSelection:
    def test_spy_selector_sees_fresh_labels(self):
        work = decompose_two_input(two_decode_fixture())
        session = AnalysisSession(work)
        snapshot = dict(session.labels())  # what the old code priced against
        state = {
            "replacements": 0,
            "post_checks": 0,
            "snapshot_diverged": False,
            "cu_covered": False,
        }

        def spy(options, current_paths):
            fresh = path_labels(work)
            # The heart of the regression: the session's labels equal a
            # from-scratch recompute at *every* selection site, not just at
            # pass start.
            assert session.labels() == fresh
            if state["replacements"]:
                state["post_checks"] += 1
                if fresh != snapshot:
                    state["snapshot_diverged"] = True
                cu_nets = [n for n in work.nets() if n.startswith("cu_")]
                if cu_nets and all(n in session.labels() for n in cu_nets):
                    state["cu_covered"] = True
            chosen = _select_for_gates(options, current_paths)
            if chosen is not None:
                state["replacements"] += 1
            return chosen

        made = _resynthesis_pass(work, spy, 5, 200, 0, session=session)
        session.close()
        assert made >= 2, "fixture must trigger at least two replacements"
        assert state["post_checks"] > 0
        # The pass-start snapshot really is stale after the first
        # replacement (replaced output relabelled, cu_* nets missing) —
        # i.e. this test would fail against the historical implementation.
        assert state["snapshot_diverged"]
        assert state["cu_covered"]

    def test_snapshot_misses_created_nets(self):
        # Direct demonstration of the historical hazard: the pass-start
        # labels have no entry for nets a replacement creates.
        work = decompose_two_input(two_decode_fixture())
        session = AnalysisSession(work)
        snapshot = dict(session.labels())
        made = _resynthesis_pass(
            work, _select_for_gates, 5, 200, 0, session=session
        )
        assert made >= 2
        created = [n for n in work.nets() if n.startswith("cu_")]
        assert created, "replacements must have emitted comparison units"
        assert all(n not in snapshot for n in created)
        assert session.labels() == path_labels(work)
        session.close()
