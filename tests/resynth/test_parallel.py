"""The parallel candidate-evaluation layer (`repro.parallel`).

The determinism contract is the headline: procedure reports and result
netlists must be bit-identical at any ``jobs`` value.  The rest covers the
evaluator's lifecycle, the priming statistics, and the crashed-worker
error path (a worker failure must surface as one clean exception, never a
hang).
"""

import pytest

from repro.analysis import AnalysisSession
from repro.benchcircuits.suite import suite_circuit
from repro.comparison import identification_cache
from repro.parallel import (
    ParallelEvaluator,
    ParallelExecutionError,
    PassPrimeStats,
    preferred_start_method,
)
from repro.parallel.worker import (
    evaluate_candidate_chunk,
    extract_chunk,
    identify_chunk,
)
from repro.resynth import procedure2, procedure3
from repro.sim import cone_signature
from repro.resynth.candidates import enumerate_candidate_cones

#: Small knobs so the four procedure runs per case stay seconds-scale.
KNOBS = dict(k=4, perm_budget=24, seed=3, max_passes=2, verify_patterns=0)


def netlist_dump(circuit):
    """Canonical structural fingerprint: topo order, types, fanins, POs."""
    return (
        [
            (net, circuit.gate(net).gtype.value,
             tuple(circuit.gate(net).fanins))
            for net in circuit.topological_order()
        ],
        list(circuit.outputs),
    )


class TestBitIdentity:
    """jobs=1 and jobs=4 must agree bit for bit (ISSUE acceptance)."""

    @pytest.mark.parametrize("name", ["syn1423", "syn5378"])
    @pytest.mark.parametrize("proc", [procedure2, procedure3],
                             ids=["procedure2", "procedure3"])
    def test_report_and_netlist_identical(self, name, proc):
        circuit = suite_circuit(name)
        identification_cache().clear()
        serial = proc(circuit, **KNOBS)
        identification_cache().clear()  # force real worker computation
        parallel = proc(circuit, jobs=4, **KNOBS)
        identification_cache().clear()
        for f in ("objective", "k", "passes", "replacements",
                  "gates_before", "gates_after", "paths_before",
                  "paths_after"):
            assert getattr(serial, f) == getattr(parallel, f), f
        assert serial.summary() == parallel.summary()
        assert netlist_dump(serial.circuit) == netlist_dump(parallel.circuit)
        assert serial.jobs == 1
        assert parallel.jobs == 4

    def test_jobs_recorded_and_validated(self):
        circuit = suite_circuit("syn1423")
        report = procedure2(circuit, **KNOBS)
        assert report.jobs == 1
        with pytest.raises(ValueError):
            procedure2(circuit, jobs=0, **KNOBS)


class TestWorkerFunctions:
    """The pickling-boundary functions, run in-process."""

    def chunk_items(self, name="syn1423", k=4, limit=40):
        circuit = suite_circuit(name)
        items, seen = [], set()
        for net in reversed(circuit.topological_order()):
            if not circuit.gate(net).fanins:
                continue
            for cone in enumerate_candidate_cones(circuit, net, k):
                if not cone.inputs:
                    continue
                sig = cone_signature(circuit, cone.output, cone.members,
                                     cone.inputs)
                if sig not in seen:
                    seen.add(sig)
                    items.append((sig, len(cone.inputs)))
            if len(items) >= limit:
                break
        return items[:limit]

    def test_one_shot_equals_two_rounds(self):
        items = self.chunk_items()
        knobs = (24, True, 3, 6)  # perm_budget, try_offset, seed, max_specs
        reports = evaluate_candidate_chunk(items, *knobs)
        extracted = extract_chunk(items)
        assert [(r.signature, r.n_inputs, r.table) for r in reports] == \
            extracted
        nonconst = [
            (table, n) for _, n, table in extracted
            if table not in (0, (1 << (1 << n)) - 1)
        ]
        identified = dict(
            ((table, n), (hits, tried))
            for table, n, hits, tried in identify_chunk(nonconst, *knobs)
        )
        for r in reports:
            if r.hits is None:  # constant: never searched
                assert r.table in (0, (1 << (1 << r.n_inputs)) - 1)
            else:
                assert identified[(r.table, r.n_inputs)] == (r.hits, r.tried)

    def test_inject_crash_raises(self):
        from repro.parallel.worker import InjectedWorkerCrash

        with pytest.raises(InjectedWorkerCrash):
            extract_chunk([], inject_crash=True)
        with pytest.raises(InjectedWorkerCrash):
            identify_chunk([], 24, True, 0, 6, inject_crash=True)


class TestEvaluator:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelEvaluator(0)
        with pytest.raises(ValueError):
            ParallelEvaluator(2, chunk_factor=0)

    def test_preferred_start_method(self):
        assert preferred_start_method() in ("fork", "spawn")

    def test_prime_pass_stats_and_cache_warmup(self):
        circuit = suite_circuit("syn1423")
        session = AnalysisSession(circuit)
        id_cache = identification_cache()
        id_cache.clear()
        try:
            with ParallelEvaluator(jobs=2) as ev:
                stats = ev.prime_pass(circuit, session, k=4, perm_budget=24,
                                      seed=5, max_specs=6)
                assert isinstance(stats, PassPrimeStats)
                assert stats.sites > 0
                assert stats.cones >= stats.unique_cones >= stats.shipped
                assert stats.merged_tables == stats.shipped
                assert 0 < stats.merged_identifications <= stats.shipped
                assert stats.chunks > 0
                # Re-priming the unchanged pass finds everything cached.
                again = ev.prime_pass(circuit, session, k=4, perm_budget=24,
                                      seed=5, max_specs=6)
                assert again.shipped == 0
                assert again.merged_tables == 0
                assert again.merged_identifications == 0
        finally:
            session.close()
            id_cache.clear()

    def test_crashed_worker_is_a_clean_error(self):
        """A worker raising mid-pass surfaces as ParallelExecutionError."""
        circuit = suite_circuit("syn1423")
        session = AnalysisSession(circuit)
        ev = ParallelEvaluator(jobs=2, inject_crash=True)
        try:
            with pytest.raises(ParallelExecutionError) as exc_info:
                ev.prime_pass(circuit, session, k=4, perm_budget=24,
                              seed=5, max_specs=6)
            assert "injected worker crash" in str(exc_info.value)
            # The owned fabric's pool was torn down on the way out.
            assert ev.fabric is not None
            assert ev.fabric._executor is None
        finally:
            ev.close()
            session.close()

    def test_close_is_idempotent(self):
        ev = ParallelEvaluator(jobs=1)
        ev.close()
        ev.close()
