"""Functional tests for the structural blocks (adder, multiplier, ...)."""

import random

from repro.benchcircuits import blocks
from repro.netlist import CircuitBuilder
from repro.sim import exhaustive_words, simulate


def eval_block(build, n_inputs, collect):
    """Build a block over fresh inputs and return per-minterm outputs."""
    b = CircuitBuilder("blk")
    ins = b.inputs(*[f"x{j}" for j in range(n_inputs)])
    outs = build(b, ins)
    b.outputs(*outs)
    c = b.build()
    words = exhaustive_words(ins)
    vals = simulate(c, words, 1 << n_inputs)
    results = []
    for m in range(1 << n_inputs):
        results.append(collect(m, {o: (vals[o] >> m) & 1 for o in outs}))
    return outs, results


class TestAdder:
    def test_ripple_adder_all_values(self):
        n = 3
        b = CircuitBuilder("add")
        xs = b.inputs("x0", "x1", "x2")   # LSB first
        ys = b.inputs("y0", "y1", "y2")
        cin = b.input("cin")
        outs = blocks.ripple_adder(b, xs, ys, cin)
        b.outputs(*outs)
        c = b.build()
        inputs = xs + ys + [cin]
        words = exhaustive_words(inputs)
        vals = simulate(c, words, 1 << 7)
        for m in range(1 << 7):
            bits = {name: (words[name] >> m) & 1 for name in inputs}
            x = sum(bits[f"x{j}"] << j for j in range(3))
            y = sum(bits[f"y{j}"] << j for j in range(3))
            expect = x + y + bits["cin"]
            got = sum(((vals[o] >> m) & 1) << j for j, o in enumerate(outs))
            assert got == expect, (x, y, bits["cin"])


class TestMultiplier:
    def test_array_multiplier_3x3(self):
        b = CircuitBuilder("mul")
        xs = b.inputs("x0", "x1", "x2")  # LSB first
        ys = b.inputs("y0", "y1", "y2")
        outs = blocks.array_multiplier(b, xs, ys)
        b.outputs(*outs)
        c = b.build()
        inputs = xs + ys
        words = exhaustive_words(inputs)
        vals = simulate(c, words, 1 << 6)
        for m in range(1 << 6):
            bits = {name: (words[name] >> m) & 1 for name in inputs}
            x = sum(bits[f"x{j}"] << j for j in range(3))
            y = sum(bits[f"y{j}"] << j for j in range(3))
            got = sum(((vals[o] >> m) & 1) << j for j, o in enumerate(outs))
            assert got == x * y, (x, y, got)

    def test_width_2x4(self):
        b = CircuitBuilder("mul24")
        xs = b.inputs("x0", "x1")
        ys = b.inputs("y0", "y1", "y2", "y3")
        outs = blocks.array_multiplier(b, xs, ys)
        b.outputs(*outs)
        c = b.build()
        inputs = xs + ys
        words = exhaustive_words(inputs)
        vals = simulate(c, words, 1 << 6)
        for m in range(1 << 6):
            bits = {name: (words[name] >> m) & 1 for name in inputs}
            x = bits["x0"] | (bits["x1"] << 1)
            y = sum(bits[f"y{j}"] << j for j in range(4))
            got = sum(((vals[o] >> m) & 1) << j for j, o in enumerate(outs))
            assert got == x * y


class TestComparators:
    def test_magnitude(self):
        b = CircuitBuilder("cmp")
        xs = b.inputs("a1", "a0")  # MSB first
        ys = b.inputs("b1", "b0")
        out = blocks.magnitude_comparator(b, xs, ys)
        b.outputs(out)
        c = b.build()
        inputs = xs + ys
        words = exhaustive_words(inputs)
        vals = simulate(c, words, 16)
        for m in range(16):
            bits = {name: (words[name] >> m) & 1 for name in inputs}
            a = (bits["a1"] << 1) | bits["a0"]
            bb = (bits["b1"] << 1) | bits["b0"]
            assert (vals[out] >> m) & 1 == int(a > bb)

    def test_equality(self):
        b = CircuitBuilder("eq")
        xs = b.inputs("a1", "a0")
        ys = b.inputs("b1", "b0")
        out = blocks.equality_comparator(b, xs, ys)
        b.outputs(out)
        c = b.build()
        words = exhaustive_words(xs + ys)
        vals = simulate(c, words, 16)
        for m in range(16):
            bits = {name: (words[name] >> m) & 1 for name in xs + ys}
            assert (vals[out] >> m) & 1 == int(
                (bits["a1"], bits["a0"]) == (bits["b1"], bits["b0"])
            )


class TestDecodeBlocks:
    def test_decoder_one_hot(self):
        b = CircuitBuilder("dec")
        xs = b.inputs("s1", "s0")
        outs = blocks.decoder(b, xs)
        b.outputs(*outs)
        c = b.build()
        words = exhaustive_words(xs)
        vals = simulate(c, words, 4)
        for m in range(4):
            hot = [(vals[o] >> m) & 1 for o in outs]
            assert sum(hot) == 1
            assert hot[m] == 1

    def test_mux_tree_selects(self):
        b = CircuitBuilder("mux")
        sel = b.inputs("s1", "s0")
        data = b.inputs("d0", "d1", "d2", "d3")
        out = blocks.mux_tree(b, data, sel)
        b.outputs(out)
        c = b.build()
        inputs = sel + data
        words = exhaustive_words(inputs)
        vals = simulate(c, words, 1 << 6)
        for m in range(1 << 6):
            bits = {name: (words[name] >> m) & 1 for name in inputs}
            idx = (bits["s1"] << 1) | bits["s0"]
            assert (vals[out] >> m) & 1 == bits[f"d{idx}"]

    def test_interval_sop(self):
        b = CircuitBuilder("intv")
        xs = b.inputs("x1", "x2", "x3")  # MSB first
        out = blocks.interval_sop(b, xs, 2, 5)
        b.outputs(out)
        c = b.build()
        words = exhaustive_words(xs)
        vals = simulate(c, words, 8)
        for m in range(8):
            assert (vals[out] >> m) & 1 == int(2 <= m <= 5)

    def test_priority_encoder_grants(self):
        b = CircuitBuilder("prio")
        reqs = b.inputs("r0", "r1", "r2")
        outs = blocks.priority_encoder(b, reqs)
        b.outputs(*outs)
        c = b.build()
        words = exhaustive_words(reqs)
        vals = simulate(c, words, 8)
        for m in range(8):
            bits = [(words[r] >> m) & 1 for r in reqs]
            grants = [(vals[o] >> m) & 1 for o in outs]
            assert sum(grants) <= 1
            if any(bits):
                winner = bits.index(1)
                assert grants[winner] == 1

    def test_parity_tree(self):
        b = CircuitBuilder("par")
        xs = b.inputs("x0", "x1", "x2", "x3", "x4")
        out = blocks.parity_tree(b, xs)
        b.outputs(out)
        c = b.build()
        words = exhaustive_words(xs)
        vals = simulate(c, words, 32)
        for m in range(32):
            bits = sum((words[x] >> m) & 1 for x in xs)
            assert (vals[out] >> m) & 1 == bits % 2

    def test_random_control_sop_no_subsumed_cubes(self):
        b = CircuitBuilder("ctl")
        xs = b.inputs(*[f"x{j}" for j in range(6)])
        rng = random.Random(4)
        out = blocks.random_control_sop(b, xs, 6, rng)
        b.outputs(out)
        b.build().validate()
