"""Functional tests for the embedded classic fixtures."""

from repro.benchcircuits import (
    c17,
    full_adder,
    paper_f1_impl1,
    paper_f1_impl2,
    paper_f2_sop,
    two_bit_comparator,
)
from repro.bdd import bdd_equivalent
from repro.sim import exhaustive_words, simulate, truth_table, tt_minterms


class TestFullAdder:
    def test_truth(self):
        c = full_adder()
        words = exhaustive_words(c.inputs)  # (a, b, cin)
        vals = simulate(c, words, 8)
        for m in range(8):
            a = (m >> 2) & 1
            b = (m >> 1) & 1
            cin = m & 1
            total = a + b + cin
            assert (vals["sum"] >> m) & 1 == total & 1
            assert (vals["cout"] >> m) & 1 == total >> 1


class TestTwoBitComparator:
    def test_truth(self):
        c = two_bit_comparator()
        words = exhaustive_words(c.inputs)  # (a1, a0, b1, b0)
        vals = simulate(c, words, 16)
        for m in range(16):
            a = ((m >> 3) & 1) * 2 + ((m >> 2) & 1)
            b = ((m >> 1) & 1) * 2 + (m & 1)
            assert (vals["gt"] >> m) & 1 == int(a > b), (a, b)


class TestPaperFunctions:
    def test_f1_forms_bdd_equivalent(self):
        a = paper_f1_impl1()
        b = paper_f1_impl2()
        # interfaces match, so canonical BDDs must coincide
        assert bdd_equivalent(a, b)

    def test_f1_on_set(self):
        t = truth_table(paper_f1_impl1())
        assert tt_minterms(t, 4) == [5, 7, 8, 9, 13]

    def test_f2_on_set(self):
        t = truth_table(paper_f2_sop())
        assert tt_minterms(t, 4) == [1, 5, 6, 9, 10, 14]

    def test_c17_is_two_output_nand_network(self):
        c = c17()
        assert len(c.outputs) == 2
        assert all(g.gtype.value == "nand" for g in c.logic_gates())
