"""Tests for the syn* suite: determinism, structure, irredundancy plumbing."""

import pytest

from repro.analysis import count_paths
from repro.benchcircuits.suite import (
    SUITE_RECIPES,
    TABLE3_CIRCUITS,
    interval_cubes,
    raw_suite_circuit,
    suite_circuit,
    suite_names,
)
from repro.netlist import two_input_gate_count


class TestIntervalCubes:
    def test_full_range_single_cube(self):
        assert interval_cubes(0, 7, 3) == [(0, 8)]

    def test_single_point(self):
        assert interval_cubes(5, 5, 3) == [(5, 1)]

    def test_cover_is_exact_and_disjoint(self):
        for lower, upper, n in [(3, 12, 4), (1, 14, 4), (7, 22, 5), (0, 0, 2)]:
            cubes = interval_cubes(lower, upper, n)
            covered = []
            for base, size in cubes:
                assert base % size == 0  # aligned
                covered.extend(range(base, base + size))
            assert covered == list(range(lower, upper + 1))

    def test_cube_count_bounded(self):
        for n in range(2, 8):
            size = 1 << n
            for lower in range(0, size, 5):
                for upper in range(lower, size, 7):
                    assert len(interval_cubes(lower, upper, n)) <= 2 * n

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            interval_cubes(5, 3, 3)


class TestSuite:
    def test_names_cover_paper_tables(self):
        names = suite_names()
        assert len(names) == 8
        assert set(TABLE3_CIRCUITS) <= set(names)

    def test_raw_circuits_deterministic(self):
        a = raw_suite_circuit("syn1423")
        b = raw_suite_circuit.__wrapped__("syn1423")  # bypass cache
        assert a.structurally_equal(b)

    def test_raw_circuits_validate(self):
        for name in suite_names():
            raw_suite_circuit(name).validate()

    def test_all_have_enough_paths(self):
        # the paper selects circuits with more than 10,000 paths
        for name in suite_names():
            assert count_paths(suite_circuit(name)) > 10_000, name

    def test_sizes_span_a_range(self):
        sizes = [two_input_gate_count(suite_circuit(n)) for n in suite_names()]
        assert min(sizes) >= 80
        assert max(sizes) >= 2 * min(sizes)

    def test_interfaces_preserved_by_redundancy_removal(self):
        for name in suite_names()[:3]:
            raw = raw_suite_circuit(name)
            final = suite_circuit(name)
            assert final.inputs == raw.inputs
            assert final.outputs == raw.outputs

    def test_materialized_cache_roundtrip(self):
        # loading twice must give structurally equal circuits
        a = suite_circuit("syn1423")
        suite_circuit.cache_clear()
        b = suite_circuit("syn1423")
        assert a.structurally_equal(b)

    def test_recipes_have_positive_counts(self):
        for name, (n_inputs, seed, recipe) in SUITE_RECIPES.items():
            assert n_inputs >= 20
            assert all(count > 0 for _, count in recipe)
