"""Tests for the random circuit generator."""

import random

import pytest

from repro.benchcircuits import random_circuit, random_two_level
from repro.sim import random_words, simulate


class TestRandomCircuit:
    def test_deterministic(self):
        a = random_circuit("r", 10, 5, 50, seed=42)
        b = random_circuit("r", 10, 5, 50, seed=42)
        assert a.structurally_equal(b)

    def test_different_seeds_differ(self):
        a = random_circuit("r", 10, 5, 50, seed=1)
        b = random_circuit("r", 10, 5, 50, seed=2)
        assert not a.structurally_equal(b)

    def test_validates(self):
        for seed in range(5):
            random_circuit("r", 8, 4, 40, seed=seed).validate()

    def test_interface_counts(self):
        c = random_circuit("r", 12, 6, 60, seed=0)
        assert len(c.inputs) == 12
        assert 1 <= len(c.outputs) <= 6

    def test_gate_budget_is_upper_bound(self):
        c = random_circuit("r", 10, 5, 60, seed=3)
        assert len(c.logic_gates()) <= 60

    def test_outputs_not_saturated(self):
        # The probability-balanced selection keeps most outputs non-constant.
        nonconstant = 0
        total = 0
        for seed in range(6):
            c = random_circuit("r", 12, 6, 80, seed=seed)
            rng = random.Random(0)
            w = random_words(c.inputs, 512, rng)
            vals = simulate(c, w, 512)
            for o in c.output_set:
                total += 1
                ones = bin(vals[o]).count("1")
                if 0 < ones < 512:
                    nonconstant += 1
        assert nonconstant / total > 0.7

    def test_too_few_inputs_rejected(self):
        with pytest.raises(ValueError):
            random_circuit("r", 1, 1, 10, seed=0)
        with pytest.raises(ValueError):
            random_circuit("r", 4, 0, 10, seed=0)


class TestRandomTwoLevel:
    def test_validates_and_deterministic(self):
        a = random_two_level("s", 8, 6, seed=5)
        b = random_two_level("s", 8, 6, seed=5)
        a.validate()
        assert a.structurally_equal(b)

    def test_single_output(self):
        c = random_two_level("s", 8, 6, seed=5)
        assert len(c.outputs) == 1
