"""Tracing: span nesting, deterministic ids, JSONL round-trip, null tracer."""

import json

import pytest

from repro.obs import (
    NullTracer,
    TRACE_FORMAT,
    TRACE_VERSION,
    Tracer,
    maybe_tracer,
    null_tracer,
    read_trace,
)


class TestSpanTree:
    def test_nesting_sets_parent_ids(self):
        tr = Tracer()
        with tr.span("run") as run:
            with tr.span("pass") as p:
                with tr.span("candidate") as c:
                    pass
        assert run.parent_id is None
        assert p.parent_id == run.span_id
        assert c.parent_id == p.span_id

    def test_ids_are_sequential_in_creation_order(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
            with tr.span("c"):
                pass
        assert [s.span_id for s in tr.spans()] == [1, 2, 3]
        assert [s.name for s in tr.spans()] == ["a", "b", "c"]

    def test_siblings_share_a_parent(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("x"):
                pass
            with tr.span("y"):
                pass
        spans = {s.name: s for s in tr.spans()}
        assert spans["x"].parent_id == spans["root"].span_id
        assert spans["y"].parent_id == spans["root"].span_id

    def test_attributes_via_kwargs_set_and_annotate(self):
        tr = Tracer()
        with tr.span("pass", pass_no=1) as p:
            p.set("replacements", 3)
            p.annotate(tt_hits=10, tt_misses=2)
        (span,) = tr.spans()
        assert span.attrs == {
            "pass_no": 1, "replacements": 3, "tt_hits": 10, "tt_misses": 2,
        }

    def test_times_are_recorded(self):
        tr = Tracer()
        with tr.span("work"):
            sum(range(1000))
        (span,) = tr.spans()
        assert span.wall_s is not None and span.wall_s >= 0.0
        assert span.cpu_s is not None

    def test_find_filters_by_name(self):
        tr = Tracer()
        with tr.span("run"):
            with tr.span("pass"):
                pass
            with tr.span("pass"):
                pass
        assert len(tr.find("pass")) == 2
        assert tr.find("nope") == []


class TestJsonl:
    def make_trace(self):
        tr = Tracer(meta={"circuit": "c17"})
        with tr.span("run", k=4):
            with tr.span("pass", pass_no=1):
                pass
        return tr

    def test_header_line_carries_format_version_meta(self):
        tr = self.make_trace()
        header = json.loads(tr.to_jsonl().splitlines()[0])
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_VERSION
        assert header["meta"] == {"circuit": "c17"}

    def test_round_trip_through_read_trace(self):
        tr = self.make_trace()
        header, spans = read_trace(tr.to_jsonl().splitlines())
        assert header["meta"] == {"circuit": "c17"}
        assert [s["name"] for s in spans] == ["run", "pass"]
        assert spans[0]["parent"] is None
        assert spans[1]["parent"] == spans[0]["span"]

    def test_write_jsonl_and_read_back_from_path(self, tmp_path):
        tr = self.make_trace()
        path = str(tmp_path / "t.jsonl")
        n = tr.write_jsonl(path)
        assert n == 2
        header, spans = read_trace(path)
        assert len(spans) == 2

    def test_parents_precede_children_in_export(self):
        tr = self.make_trace()
        _, spans = read_trace(tr.to_jsonl().splitlines())
        seen = set()
        for doc in spans:
            if doc["parent"] is not None:
                assert doc["parent"] in seen
            seen.add(doc["span"])


class TestReadTraceValidation:
    def header(self):
        return json.dumps({"format": TRACE_FORMAT,
                           "version": TRACE_VERSION,
                           "created": 0.0, "meta": {}})

    def span_line(self, span, parent=None, name="s"):
        return json.dumps({"span": span, "parent": parent, "name": name,
                           "start_s": 0.0, "wall_s": 0.0, "cpu_s": 0.0,
                           "attrs": {}})

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError, match="empty"):
            read_trace([])

    def test_rejects_foreign_format(self):
        with pytest.raises(ValueError, match=TRACE_FORMAT):
            read_trace([json.dumps({"format": "nope", "version": 1})])

    def test_rejects_unknown_version(self):
        bad = json.dumps({"format": TRACE_FORMAT, "version": 99})
        with pytest.raises(ValueError, match="version"):
            read_trace([bad])

    def test_rejects_missing_span_keys(self):
        line = json.dumps({"span": 1, "name": "x"})
        with pytest.raises(ValueError, match="missing"):
            read_trace([self.header(), line])

    def test_rejects_duplicate_ids(self):
        lines = [self.header(), self.span_line(1), self.span_line(1)]
        with pytest.raises(ValueError, match="duplicate"):
            read_trace(lines)

    def test_rejects_forward_parent_references(self):
        lines = [self.header(), self.span_line(2, parent=7)]
        with pytest.raises(ValueError, match="unknown parent"):
            read_trace(lines)


class TestNullTracer:
    def test_span_returns_the_shared_instance(self):
        s1 = null_tracer.span("a", x=1)
        s2 = null_tracer.span("b")
        assert s1 is s2  # no allocation per call

    def test_all_operations_are_noops(self):
        with null_tracer.span("x") as s:
            s.set("k", 1)
            s.annotate(a=2)
        assert null_tracer.spans() == []
        assert null_tracer.find("x") == []

    def test_enabled_flags(self):
        assert null_tracer.enabled is False
        assert Tracer().enabled is True

    def test_null_tracer_has_no_instance_dict(self):
        # __slots__ everywhere: the guard is allocation-free by design.
        assert not hasattr(NullTracer(), "__dict__")
        assert not hasattr(null_tracer.span("x"), "__dict__")

    def test_maybe_tracer_resolution(self):
        tr = Tracer()
        assert maybe_tracer(None) is null_tracer
        assert maybe_tracer(tr) is tr
        assert maybe_tracer(null_tracer) is null_tracer
