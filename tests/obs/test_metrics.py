"""The unified metrics model: instruments, registry, snapshot shape."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_unset_is_none(self):
        assert Gauge("g").value is None

    def test_set_overwrites_and_may_go_down(self):
        g = Gauge("g")
        g.set(5)
        g.set(2)
        assert g.value == 2.0


class TestHistogram:
    def test_cumulative_buckets_end_at_inf_with_total_count(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        rows = h.cumulative_buckets()
        assert rows == [(1.0, 2), (10.0, 3), (float("inf"), 4)]
        assert h.count == 4
        assert h.sum == pytest.approx(106.2)

    def test_summary_keeps_legacy_shape(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.25)
        h.observe(4.0)
        assert h.summary() == {
            "count": 2.0, "sum": 4.25, "min": 0.25, "max": 4.0,
        }

    def test_empty_summary_has_no_min_max(self):
        assert Histogram("h").summary() == {"count": 0.0, "sum": 0.0}

    def test_rejects_infinite_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, float("inf")))


class TestRegistry:
    def test_typed_accessors_return_the_same_instrument(self):
        reg = Registry()
        assert reg.get_counter("a") is reg.get_counter("a")
        assert reg.get_gauge("b") is reg.get_gauge("b")
        assert reg.get_histogram("c") is reg.get_histogram("c")

    def test_cross_type_name_collision_raises(self):
        reg = Registry()
        reg.get_counter("x")
        with pytest.raises(ValueError):
            reg.get_gauge("x")
        with pytest.raises(ValueError):
            reg.get_histogram("x")

    def test_conveniences_match_legacy_metricsregistry_verbs(self):
        reg = Registry()
        reg.inc("hits_total")
        reg.inc("hits_total", 2)
        reg.set_gauge("depth", 7)
        reg.observe("latency", 0.5)
        assert reg.counter_value("hits_total") == 3.0
        assert reg.counter_value("never") == 0.0
        assert reg.gauge_value("depth") == 7.0
        assert reg.gauge_value("never") is None

    def test_snapshot_keeps_the_service_json_shape(self):
        reg = Registry()
        reg.inc("c_total")
        reg.set_gauge("g", 1.5)
        reg.observe("s", 0.25)
        snap = reg.snapshot()
        assert snap == {
            "counters": {"c_total": 1.0},
            "gauges": {"g": 1.5},
            "summaries": {
                "s": {"count": 1.0, "sum": 0.25, "min": 0.25, "max": 0.25},
            },
        }

    def test_snapshot_omits_unset_gauges(self):
        reg = Registry()
        reg.get_gauge("never_set")
        assert reg.snapshot()["gauges"] == {}

    def test_thread_safety_of_concurrent_increments(self):
        reg = Registry()
        counter = reg.get_counter("n_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000.0


class TestDefaultRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        fresh = Registry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_set_registry_rejects_non_registry(self):
        with pytest.raises(TypeError):
            set_registry(object())
