"""Traced resynthesis end to end: span taxonomy, determinism, the CLI."""

import pytest

from repro.benchcircuits import random_circuit
from repro.cli import main
from repro.comparison import identification_cache
from repro.io import save_bench
from repro.obs import Registry, Tracer, read_trace, summarize_trace
from repro.resynth import REPORT_NUMBER_FIELDS, procedure2


def small_circuit():
    return random_circuit("obs40", 6, 4, 40, seed=3)


def traced_run(jobs=1):
    identification_cache().clear()
    tracer = Tracer(meta={"jobs": jobs})
    report = procedure2(small_circuit(), k=4, seed=1, jobs=jobs,
                        tracer=tracer, registry=Registry())
    return tracer, report


def structure(tracer):
    """Everything about a trace except the recorded durations."""
    return [
        (s.span_id, s.parent_id, s.name, tuple(sorted(s.attrs.items())))
        for s in tracer.spans()
    ]


class TestTracedResynthesis:
    def test_span_taxonomy_of_a_serial_run(self):
        tracer, report = traced_run()
        names = {s.name for s in tracer.spans()}
        assert {"run", "setup", "pass", "candidate",
                "extract", "identify"} <= names
        (run,) = tracer.find("run")
        assert run.attrs["passes"] == report.passes
        assert run.attrs["replacements"] == report.replacements
        assert len(tracer.find("pass")) == report.passes

    def test_pass_spans_carry_cache_hit_columns(self):
        tracer, _ = traced_run()
        for span in tracer.find("pass"):
            assert span.attrs["tt_hits"] >= 0
            assert span.attrs["tt_misses"] >= 0
            assert "replacements" in span.attrs

    def test_pass_span_walls_match_report_pass_seconds(self):
        tracer, report = traced_run()
        walls = [s.wall_s for s in tracer.find("pass")]
        assert len(walls) == len(report.pass_seconds)
        for wall, recorded in zip(walls, report.pass_seconds):
            assert wall == pytest.approx(recorded, rel=0.25, abs=0.02)

    def test_tracing_does_not_change_the_report(self):
        _, traced = traced_run()
        identification_cache().clear()
        plain = procedure2(small_circuit(), k=4, seed=1,
                           registry=Registry())
        for field in REPORT_NUMBER_FIELDS:
            assert getattr(traced, field) == getattr(plain, field), field


class TestJobs2Determinism:
    def test_span_structure_is_identical_across_runs(self):
        tr1, rep1 = traced_run(jobs=2)
        tr2, rep2 = traced_run(jobs=2)
        for field in REPORT_NUMBER_FIELDS:
            assert getattr(rep1, field) == getattr(rep2, field), field
        assert structure(tr1) == structure(tr2)

    def test_prime_spans_nest_under_their_pass(self):
        tracer, _ = traced_run(jobs=2)
        primes = tracer.find("prime")
        assert primes
        pass_ids = {s.span_id for s in tracer.find("pass")}
        for span in primes:
            assert span.parent_id in pass_ids
        child_names = {s.name for s in tracer.spans()
                       if s.parent_id in {p.span_id for p in primes}}
        assert "prime.enumerate" in child_names


class TestTraceCli:
    @pytest.fixture()
    def traced_file(self, tmp_path):
        bench = str(tmp_path / "c.bench")
        save_bench(small_circuit(), bench)
        trace = str(tmp_path / "run.trace.jsonl")
        assert main(["resynth", bench, "--k", "4", "--verify", "0",
                     "--trace", trace]) == 0
        return trace

    def test_resynth_trace_writes_valid_jsonl(self, traced_file):
        header, spans = read_trace(traced_file)
        assert header["meta"]["k"] == 4
        assert any(s["name"] == "run" for s in spans)

    def test_trace_subcommand_renders_summary(self, traced_file, capsys):
        capsys.readouterr()
        assert main(["trace", traced_file]) == 0
        out = capsys.readouterr().out
        assert "per-stage totals:" in out
        assert "per-pass breakdown:" in out
        assert "tt_hits" in out
        assert "candidate" in out

    def test_trace_subcommand_top_zero_hides_span_list(self, traced_file,
                                                       capsys):
        capsys.readouterr()
        assert main(["trace", traced_file, "--top", "0"]) == 0
        assert "spans by wall time" not in capsys.readouterr().out

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "nope"}\n')
        assert main(["trace", str(bad)]) == 1

    def test_summarize_trace_structured_view(self, traced_file):
        summary = summarize_trace(traced_file)
        assert summary["stages"]["run"]["count"] == 1
        assert summary["passes"]
        row = summary["passes"][0]
        assert row["pass_no"] == 1
        assert row["tt_hit_rate"] is None or 0.0 <= row["tt_hit_rate"] <= 1.0
