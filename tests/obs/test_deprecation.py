"""The legacy stats surfaces stay importable, now aliased onto repro.obs."""

import warnings

import pytest

from repro.obs import Registry
from repro.service import MetricsRegistry
from repro.service.metrics import MetricsRegistry as FromModule


class TestMetricsRegistryAlias:
    def test_both_import_paths_resolve_to_the_same_class(self):
        assert MetricsRegistry is FromModule

    def test_instantiation_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="repro.obs.Registry"):
            MetricsRegistry()

    def make(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return MetricsRegistry()

    def test_is_an_obs_registry(self):
        assert isinstance(self.make(), Registry)

    def test_legacy_write_verbs_and_snapshot_shape(self):
        m = self.make()
        m.inc("c_total")
        m.inc("c_total", 2)
        m.set_gauge("g", 3)
        m.observe("s", 0.5)
        snap = m.snapshot()
        assert snap["counters"] == {"c_total": 3.0}
        assert snap["gauges"] == {"g": 3.0}
        assert snap["summaries"]["s"]["count"] == 1.0

    def test_legacy_read_accessors(self):
        m = self.make()
        m.inc("hits")
        assert m.counter("hits") == 1.0
        assert m.counter("nope") == 0.0
        m.set_gauge("depth", 2)
        assert m.gauge("depth") == 2.0
        assert m.gauge("nope") is None

    def test_counter_rejects_decrease_like_always(self):
        with pytest.raises(ValueError):
            self.make().inc("c", -1)

    def test_render_text_flat_dump_survives(self):
        m = self.make()
        m.inc("a_total", 2)
        m.set_gauge("b", 1)
        m.observe("c", 0.5)
        text = m.render_text()
        assert "a_total 2\n" in text
        assert "b 1\n" in text
        assert "c_count 1" in text
        assert "c_min 0.5" in text

    def test_accepted_by_the_service_constructors(self, tmp_path):
        from repro.service import ArtifactStore, ResynthesisService

        m = self.make()
        service = ResynthesisService(
            ArtifactStore(str(tmp_path / "store")), metrics=m,
        )
        assert service.metrics is m
