"""The legacy stats surfaces stay importable, now aliased onto repro.obs."""

import warnings

import pytest

from repro.obs import Registry
from repro.service import MetricsRegistry
from repro.service.metrics import MetricsRegistry as FromModule


class TestMetricsRegistryAlias:
    def test_both_import_paths_resolve_to_the_same_class(self):
        assert MetricsRegistry is FromModule

    def test_instantiation_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="repro.obs.Registry"):
            MetricsRegistry()

    def make(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return MetricsRegistry()

    def test_is_an_obs_registry(self):
        assert isinstance(self.make(), Registry)

    def test_legacy_write_verbs_and_snapshot_shape(self):
        m = self.make()
        m.inc("c_total")
        m.inc("c_total", 2)
        m.set_gauge("g", 3)
        m.observe("s", 0.5)
        snap = m.snapshot()
        assert snap["counters"] == {"c_total": 3.0}
        assert snap["gauges"] == {"g": 3.0}
        assert snap["summaries"]["s"]["count"] == 1.0

    def test_legacy_read_accessors(self):
        m = self.make()
        m.inc("hits")
        assert m.counter("hits") == 1.0
        assert m.counter("nope") == 0.0
        m.set_gauge("depth", 2)
        assert m.gauge("depth") == 2.0
        assert m.gauge("nope") is None

    def test_counter_rejects_decrease_like_always(self):
        with pytest.raises(ValueError):
            self.make().inc("c", -1)

    def test_render_text_flat_dump_survives(self):
        m = self.make()
        m.inc("a_total", 2)
        m.set_gauge("b", 1)
        m.observe("c", 0.5)
        text = m.render_text()
        assert "a_total 2\n" in text
        assert "b 1\n" in text
        assert "c_count 1" in text
        assert "c_min 0.5" in text

    def test_accepted_by_the_service_constructors(self, tmp_path):
        from repro.service import ArtifactStore, ResynthesisService

        m = self.make()
        service = ResynthesisService(
            ArtifactStore(str(tmp_path / "store")), metrics=m,
        )
        assert service.metrics is m


class TestSnapshotExactForwarding:
    """``MetricsRegistry.snapshot()`` is *inherited*, not reimplemented:
    after any identical operation sequence it must equal a plain
    :class:`repro.obs.Registry` snapshot exactly — same keys, same
    values, same JSON bytes — so dashboards reading the legacy
    ``/metrics`` document cannot tell the two apart."""

    @staticmethod
    def drive(registry):
        registry.inc("jobs_total")
        registry.inc("jobs_total", 4)
        registry.inc("retries_total", 0)
        registry.set_gauge("queue_depth", 7)
        registry.set_gauge("queue_depth", 2)
        registry.set_gauge("heartbeat_age", 0.25)
        for v in (0.001, 0.02, 0.3, 4.0):
            registry.observe("attempt_seconds", v)
        registry.observe("lookup_seconds", 5e-6)
        registry.get_counter("declared_never_incremented")
        return registry.snapshot()

    def test_snapshot_is_method_inherited_unchanged(self):
        from repro.service.metrics import MetricsRegistry

        assert "snapshot" not in vars(MetricsRegistry)
        assert MetricsRegistry.snapshot is Registry.snapshot

    def test_snapshot_equals_plain_registry_exactly(self):
        import json
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = self.drive(MetricsRegistry())
        plain = self.drive(Registry())
        assert legacy == plain
        assert json.dumps(legacy, sort_keys=True) == \
            json.dumps(plain, sort_keys=True)
        # The shape itself (what dashboards key on).
        assert set(legacy) == {"counters", "gauges", "summaries"}
        assert legacy["counters"]["jobs_total"] == 5.0
        assert legacy["counters"]["declared_never_incremented"] == 0.0
        assert legacy["gauges"]["queue_depth"] == 2.0
        summary = legacy["summaries"]["attempt_seconds"]
        assert summary["count"] == 4.0
        assert summary["sum"] == pytest.approx(4.321)
        assert summary["min"] == 0.001
        assert summary["max"] == 4.0
