"""Prometheus text exposition (0.0.4): the format the scraper parses."""

from repro.obs import PROMETHEUS_CONTENT_TYPE, Registry, render_prometheus
from repro.obs.prometheus import (
    escape_help,
    escape_label_value,
    format_value,
    sanitize_name,
)


class TestContentType:
    def test_is_the_0_0_4_text_format(self):
        assert PROMETHEUS_CONTENT_TYPE == (
            "text/plain; version=0.0.4; charset=utf-8"
        )


class TestCounters:
    def test_sample_carries_total_suffix_and_type_names_base(self):
        reg = Registry()
        reg.get_counter("jobs_done_total", "finished jobs").inc(3)
        text = render_prometheus(reg)
        assert "# HELP jobs_done finished jobs\n" in text
        assert "# TYPE jobs_done counter\n" in text
        assert "jobs_done_total 3.0\n" in text

    def test_suffix_added_when_name_lacks_it(self):
        reg = Registry()
        reg.inc("requests")
        text = render_prometheus(reg)
        assert "# TYPE requests counter\n" in text
        assert "requests_total 1.0\n" in text


class TestGauges:
    def test_rendered_plainly(self):
        reg = Registry()
        reg.set_gauge("queue_depth", 4)
        text = render_prometheus(reg)
        assert "# TYPE queue_depth gauge\n" in text
        assert "queue_depth 4.0\n" in text

    def test_never_set_gauges_are_skipped(self):
        reg = Registry()
        reg.get_gauge("silent")
        assert "silent" not in render_prometheus(reg)


class TestHistograms:
    def test_cumulative_buckets_inf_sum_count(self):
        reg = Registry()
        h = reg.get_histogram("lat", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = render_prometheus(reg)
        assert "# TYPE lat histogram\n" in text
        assert 'lat_bucket{le="0.1"} 1\n' in text
        assert 'lat_bucket{le="1.0"} 2\n' in text
        assert 'lat_bucket{le="+Inf"} 3\n' in text
        assert "lat_sum 5.55\n" in text
        assert "lat_count 3\n" in text


class TestEscaping:
    def test_help_escapes_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_label_value_escapes_quote_too(self):
        assert escape_label_value('say "hi"\\\n') == 'say \\"hi\\"\\\\\\n'

    def test_help_escaping_applies_in_render(self):
        reg = Registry()
        reg.get_counter("c_total", "line one\nline two").inc()
        assert "# HELP c line one\\nline two\n" in render_prometheus(reg)


class TestNames:
    def test_sanitize_replaces_illegal_characters(self):
        assert sanitize_name("my.metric-name") == "my_metric_name"

    def test_sanitize_prefixes_leading_digit(self):
        assert sanitize_name("2fast") == "_2fast"

    def test_legal_names_pass_through(self):
        assert sanitize_name("ok_name:sub") == "ok_name:sub"


class TestValues:
    def test_special_floats_spelled_out(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"

    def test_floats_keep_precision(self):
        assert format_value(0.005) == "0.005"


class TestWholeDocument:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(Registry()) == ""

    def test_every_line_is_comment_or_sample(self):
        reg = Registry()
        reg.inc("a_total", 2)
        reg.set_gauge("b", 1)
        reg.observe("c", 0.2)
        for line in render_prometheus(reg).strip().splitlines():
            assert line.startswith("# ") or " " in line
