"""Smoke tests: the fast example scripts run and print what they promise.

The heavier examples (suite resynthesis, testability reports) exercise the
same APIs as the benchmark harness; here we pin the quick ones that users
meet first.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestQuickExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "comparison function: True" in proc.stdout
        assert "gates 23->7" in proc.stdout.replace(" ", " ")

    def test_figures_walkthrough(self):
        proc = run_example("figures_walkthrough.py")
        assert proc.returncode == 0, proc.stderr
        assert "Table 1: robust two-pattern test set" in proc.stdout
        assert "14/14 faults (complete)" in proc.stdout

    def test_explore_comparison_functions(self):
        proc = run_example("explore_comparison_functions.py")
        assert proc.returncode == 0, proc.stderr
        assert "exact procedure found 300/300" in proc.stdout
