"""Tests for scan-chain modeling and scan-style coverage comparison."""

import random

import pytest

from repro.benchcircuits import c17, random_circuit
from repro.scan import (
    ScanChain,
    ScanStyle,
    compare_scan_styles,
    default_chain,
)
from repro.sim import simulate_pattern


@pytest.fixture
def chain():
    c = c17()
    return ScanChain(c, state_inputs=["1", "2", "3"],
                     state_outputs=["22", "23", "22"])


class TestScanChain:
    def test_validation(self):
        c = c17()
        with pytest.raises(ValueError):
            ScanChain(c, ["nope"], ["22"])
        with pytest.raises(ValueError):
            ScanChain(c, ["1"], ["nope"])

    def test_primary_inputs(self, chain):
        assert chain.primary_inputs == ["6", "7"]

    def test_shift_vector(self, chain):
        v1 = {"1": 1, "2": 0, "3": 1, "6": 0, "7": 1}
        v2 = chain.shift_vector(v1, scan_in_bit=0)
        # chain order (1, 2, 3): scan-in enters at cell 1
        assert v2["1"] == 0
        assert v2["2"] == 1
        assert v2["3"] == 0
        # non-chain inputs unchanged
        assert v2["6"] == 0 and v2["7"] == 1

    def test_capture_vector_matches_response(self, chain):
        v1 = {"1": 1, "2": 1, "3": 0, "6": 1, "7": 0}
        v2 = chain.capture_vector(v1)
        response = simulate_pattern(chain.circuit, v1)
        assert v2["1"] == response["22"]
        assert v2["2"] == response["23"]
        assert v2["3"] == response["22"]
        assert v2["6"] == v1["6"]

    def test_random_pair_respects_style(self, chain):
        rng = random.Random(3)
        v1, v2 = chain.random_pair(ScanStyle.LAUNCH_ON_SHIFT, rng)
        assert v2["2"] == v1["1"] and v2["3"] == v1["2"]
        v1, v2 = chain.random_pair(ScanStyle.LAUNCH_ON_CAPTURE, rng)
        assert v2 == chain.capture_vector(v1)


class TestDefaultChain:
    def test_deterministic_and_valid(self):
        c = random_circuit("r", 10, 6, 50, seed=4)
        a = default_chain(c, seed=1)
        b = default_chain(c, seed=1)
        assert a.state_inputs == b.state_inputs
        assert a.state_outputs == b.state_outputs
        assert len(a.state_inputs) <= len(c.inputs)


class TestStyleComparison:
    def test_enhanced_scan_dominates(self):
        c = random_circuit("r", 8, 5, 35, seed=6)
        chain = default_chain(c, seed=2)
        cmp = compare_scan_styles(chain, n_tests=600, seed=7)
        enhanced = cmp.detected[ScanStyle.ENHANCED]
        # the unconstrained pair space can only do at least as well as the
        # restricted ones at equal test counts (same RNG stream)
        assert enhanced >= cmp.detected[ScanStyle.LAUNCH_ON_SHIFT] * 0.8
        assert enhanced >= cmp.detected[ScanStyle.LAUNCH_ON_CAPTURE] * 0.8
        assert enhanced > 0
        assert "scan style" in cmp.render()

    def test_counts_bounded_by_total(self):
        c = random_circuit("r", 7, 4, 30, seed=9)
        chain = default_chain(c, seed=0)
        cmp = compare_scan_styles(chain, n_tests=300, seed=1)
        for style in ScanStyle:
            assert 0 <= cmp.detected[style] <= cmp.total_faults
