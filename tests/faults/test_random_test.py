"""Tests for the random-pattern stuck-at campaign (Table 6 semantics)."""

from repro.benchcircuits import c17, random_circuit
from repro.faults import (
    StuckFault,
    fault_universe,
    random_stuck_at_campaign,
)
from repro.netlist import CircuitBuilder


class TestCampaign:
    def test_c17_full_coverage(self):
        res = random_stuck_at_campaign(c17(), seed=1, max_patterns=4096)
        assert res.remaining == 0
        assert res.detected == res.total_faults
        assert res.coverage == 1.0
        assert 1 <= res.last_effective_pattern <= res.patterns_applied

    def test_deterministic(self):
        a = random_stuck_at_campaign(c17(), seed=5, max_patterns=1024)
        b = random_stuck_at_campaign(c17(), seed=5, max_patterns=1024)
        assert a.last_effective_pattern == b.last_effective_pattern
        assert a.first_detection == b.first_detection

    def test_stops_early_when_complete(self):
        res = random_stuck_at_campaign(
            c17(), seed=1, max_patterns=1 << 20, batch_size=64
        )
        assert res.patterns_applied < (1 << 20)

    def test_respects_budget(self):
        # An undetectable fault keeps the campaign running to the budget.
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x, name="g1")
        g2 = b.OR(g1, a, name="g2")  # g1 s-a-0 is undetectable
        b.outputs(g2)
        c = b.build()
        faults = [StuckFault("g1", 0)]
        res = random_stuck_at_campaign(
            c, faults, seed=0, max_patterns=512, batch_size=128
        )
        assert res.patterns_applied == 512
        assert res.remaining == 1
        assert res.last_effective_pattern is None
        assert res.undetected_faults(faults) == faults

    def test_first_detection_indices_are_one_based(self):
        res = random_stuck_at_campaign(c17(), seed=2, max_patterns=512)
        assert min(res.first_detection.values()) >= 1
        assert max(res.first_detection.values()) == res.last_effective_pattern

    def test_same_seed_comparable_across_circuits(self):
        # Table 6's protocol: same pattern sequence for original and
        # modified circuit (same PIs) -> same effective-pattern scale.
        c = random_circuit("r", 8, 4, 40, seed=3)
        r1 = random_stuck_at_campaign(c, seed=9, max_patterns=1024,
                                      stop_when_complete=False)
        r2 = random_stuck_at_campaign(c.copy(), seed=9, max_patterns=1024,
                                      stop_when_complete=False)
        assert r1.last_effective_pattern == r2.last_effective_pattern

    def test_coverage_fraction(self):
        c = c17()
        faults = fault_universe(c)
        res = random_stuck_at_campaign(c, faults, seed=1, max_patterns=4)
        assert 0.0 <= res.coverage <= 1.0
