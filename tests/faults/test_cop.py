"""Tests for COP testability estimation against measured frequencies."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchcircuits import c17, full_adder, random_circuit
from repro.faults import (
    FaultSimulator,
    detection_probability,
    fault_universe,
    hardest_faults,
    observabilities,
    signal_probabilities,
)
from repro.netlist import CircuitBuilder
from repro.sim import exhaustive_words


class TestSignalProbabilities:
    def test_inputs_are_half(self):
        p = signal_probabilities(c17())
        for pi in c17().inputs:
            assert p[pi] == 0.5

    def test_and_or_not(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x, name="g1")
        g2 = b.OR(a, x, name="g2")
        g3 = b.NOT(a, name="g3")
        b.outputs(g1, g2, g3)
        p = signal_probabilities(b.build())
        assert p["g1"] == pytest.approx(0.25)
        assert p["g2"] == pytest.approx(0.75)
        assert p["g3"] == pytest.approx(0.5)

    def test_exact_on_fanout_free_trees(self):
        # without reconvergence the independence assumption is exact
        b = CircuitBuilder()
        ins = b.inputs(*[f"i{j}" for j in range(4)])
        g1 = b.AND(ins[0], ins[1])
        g2 = b.OR(ins[2], ins[3])
        g3 = b.NAND(g1, g2, name="o")
        b.outputs(g3)
        c = b.build()
        p = signal_probabilities(c)
        words = exhaustive_words(c.inputs)
        from repro.sim import simulate
        vals = simulate(c, words, 16)
        measured = bin(vals["o"]).count("1") / 16
        assert p["o"] == pytest.approx(measured)

    def test_probabilities_in_unit_interval(self):
        for seed in range(3):
            c = random_circuit("r", 8, 4, 40, seed=seed)
            p = signal_probabilities(c)
            assert all(0.0 <= v <= 1.0 for v in p.values())


class TestObservabilities:
    def test_outputs_fully_observable(self):
        o = observabilities(c17())
        for po in c17().output_set:
            assert o[po] == 1.0

    def test_bounded(self):
        for seed in range(3):
            c = random_circuit("r", 8, 4, 40, seed=seed)
            o = observabilities(c)
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in o.values())

    def test_dead_net_unobservable(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b._circuit
        c.add_gate("dead", __import__("repro.netlist", fromlist=["GateType"]).GateType.NOT, ("a",))
        o = observabilities(c)
        assert o["dead"] == 0.0


class TestDetectionProbability:
    def test_correlates_with_measured_frequency(self):
        """COP estimates track measured detection rates on c17."""
        c = c17()
        sim = FaultSimulator(c)
        words = exhaustive_words(c.inputs)
        good = sim.good_values(words, 32)
        for fault in fault_universe(c):
            measured = bin(sim.detection_word(fault, good, 32)).count("1") / 32
            estimated = detection_probability(c, fault)
            # c17 has little reconvergence: the estimate is close
            assert abs(measured - estimated) < 0.25, fault.describe()

    def test_hardest_faults_sorted(self):
        c = c17()
        ranked = hardest_faults(c, fault_universe(c), limit=5)
        probs = [dp for dp, _ in ranked]
        assert probs == sorted(probs)
        assert len(ranked) == 5
