"""Tests for fault dictionaries and diagnosis."""

import random

from repro.atpg import generate_test_set
from repro.benchcircuits import c17
from repro.faults import (
    StuckFault,
    build_fault_dictionary,
    fault_universe,
    observed_syndrome,
)
from repro.netlist import Gate, GateType


def c17_dictionary():
    c = c17()
    ts = generate_test_set(c, seed=1)
    return c, ts, build_fault_dictionary(c, ts.patterns)


class TestDictionary:
    def test_complete_test_set_leaves_nothing_undetected(self):
        c, ts, d = c17_dictionary()
        assert d.n_tests == len(ts.patterns)
        assert d.undetected_faults() == []

    def test_detecting_tests_consistent_with_fsim(self):
        from repro.faults import FaultSimulator
        c, ts, d = c17_dictionary()
        sim = FaultSimulator(c)
        words = {pi: 0 for pi in c.inputs}
        for p_idx, pattern in enumerate(ts.patterns):
            for i, pi in enumerate(c.inputs):
                if pattern[i]:
                    words[pi] |= 1 << p_idx
        good = sim.good_values(words, d.n_tests)
        for fault in fault_universe(c):
            det = sim.detection_word(fault, good, d.n_tests)
            expected = [i for i in range(d.n_tests) if (det >> i) & 1]
            assert d.detecting_tests(fault) == expected, fault.describe()

    def test_self_diagnosis_ranks_injected_fault_first(self):
        c, ts, d = c17_dictionary()
        target = StuckFault("16", 0)
        observed = d.syndromes[target]
        ranked = d.diagnose(observed, top=3)
        assert ranked[0][1] == 0  # perfect match distance
        # the injected fault (or an equivalent one) tops the list
        top_faults = [f for f, dist in ranked if dist == 0]
        assert target in top_faults or all(
            dist == 0 for _, dist in ranked[:1]
        )

    def test_structural_fault_diagnosed_from_responses(self):
        c, ts, d = c17_dictionary()
        # build a physically faulty implementation: 16 stuck at 0
        bad = c.copy()
        bad.replace_gate(Gate("16", GateType.CONST0))
        syndrome = observed_syndrome(c, bad, ts.patterns)
        ranked = d.diagnose(syndrome, top=3)
        assert any(
            f.net == "16" and f.value == 0 for f, dist in ranked if dist == 0
        )

    def test_good_device_matches_nothing_detected(self):
        c, ts, d = c17_dictionary()
        syndrome = observed_syndrome(c, c.copy(), ts.patterns)
        assert not any(syndrome.values())
        # nearest faults are the hardest-to-detect ones, at distance > 0
        ranked = d.diagnose(syndrome, top=1)
        assert ranked[0][1] > 0
