"""Tests for the stuck-at fault model and collapsing."""

import pytest

from repro.benchcircuits import c17
from repro.faults import StuckFault, all_faults, collapsed_faults, fault_universe
from repro.netlist import CircuitBuilder


class TestStuckFault:
    def test_stem_fault(self):
        f = StuckFault("a", 1)
        assert not f.is_branch
        assert f.describe() == "a s-a-1"

    def test_branch_fault(self):
        f = StuckFault("a", 0, reader="g", pin=1)
        assert f.is_branch
        assert "g.in1" in f.describe()

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            StuckFault("a", 2)

    def test_partial_branch_rejected(self):
        with pytest.raises(ValueError):
            StuckFault("a", 0, reader="g")

    def test_hashable_for_sets(self):
        assert len({StuckFault("a", 0), StuckFault("a", 0)}) == 1


class TestAllFaults:
    def test_c17_counts(self):
        faults = all_faults(c17())
        stems = [f for f in faults if not f.is_branch]
        branches = [f for f in faults if f.is_branch]
        # 11 nets * 2 values
        assert len(stems) == 22
        # fanout stems: 3 (pins: 10, 11), 11 (16, 19), 16 (22, 23) -> 6 pins
        assert len(branches) == 12

    def test_floating_nets_excluded(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        dead = b.NOT(a, name="dead")
        b.outputs(g)
        c = b._circuit  # skip validation sweep
        c.validate()
        faults = all_faults(c)
        assert not any(f.net == "dead" for f in faults)

    def test_unused_input_excluded(self):
        b = CircuitBuilder()
        a, x, u = b.inputs("a", "b", "u")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        faults = all_faults(b.build())
        assert not any(f.net == "u" for f in faults)


class TestCollapsedFaults:
    def test_smaller_than_full(self):
        c = c17()
        assert len(collapsed_faults(c)) < len(all_faults(c))

    def test_nand_keeps_branch_sa1_only(self):
        # c17 is all NANDs: input s-a-0 == output s-a-1, so only branch
        # s-a-1 faults survive on fanout pins.
        faults = collapsed_faults(c17())
        branch = [f for f in faults if f.is_branch]
        assert branch and all(f.value == 1 for f in branch)

    def test_deterministic_order(self):
        assert collapsed_faults(c17()) == collapsed_faults(c17())

    def test_fault_universe_default_collapsed(self):
        c = c17()
        assert fault_universe(c) == collapsed_faults(c)
        assert fault_universe(c, collapse=False) == all_faults(c)

    def test_and_or_collapsing_rules(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        s = b.AND(a, x, name="s")   # stem with fanout
        g1 = b.AND(s, a, name="g1")
        g2 = b.OR(s, x, name="g2")
        b.outputs(g1, g2)
        faults = collapsed_faults(b.build())
        branch = {(f.net, f.value, f.reader) for f in faults if f.is_branch}
        # AND pin: s-a-0 equivalent to output; keep s-a-1 branch.
        assert ("s", 1, "g1") in branch
        assert ("s", 0, "g1") not in branch
        # OR pin: s-a-1 equivalent to output; keep s-a-0 branch.
        assert ("s", 0, "g2") in branch
        assert ("s", 1, "g2") not in branch
