"""Tests for the parallel-pattern fault simulator.

The independent oracle mutates the circuit to hard-wire the fault and
compares full simulations — a completely different code path from the
event-driven cone propagation under test.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchcircuits import c17, random_circuit
from repro.faults import FaultSimulator, StuckFault, all_faults
from repro.netlist import Circuit, CircuitBuilder, Gate, GateType
from repro.sim import random_words, simulate


def faulty_copy(circuit, fault):
    """Build an explicit faulty version of the circuit (test oracle)."""
    c = circuit.copy()
    const_name = c.fresh_net("fault_const")
    c.add_gate(
        const_name,
        GateType.CONST1 if fault.value else GateType.CONST0,
        (),
    )
    if fault.is_branch:
        gate = c.gate(fault.reader)
        fanins = list(gate.fanins)
        fanins[fault.pin] = const_name
        c.replace_gate(gate.with_fanins(tuple(fanins)))
    else:
        # Stem fault: all readers and output observations see the constant.
        target = fault.net
        for reader in list(c.fanouts(target)):
            gate = c.gate(reader)
            c.replace_gate(gate.with_fanins(tuple(
                const_name if f == target else f for f in gate.fanins
            )))
        c._outputs = [const_name if o == target else o for o in c._outputs]
        c._dirty()
    return c


def oracle_detection_word(circuit, fault, words, n):
    faulty = faulty_copy(circuit, fault)
    good = simulate(circuit, words, n)
    bad = simulate(faulty, words, n)
    det = 0
    for good_po, bad_po in zip(circuit.outputs, faulty.outputs):
        det |= good[good_po] ^ bad[bad_po]
    return det


class TestKnownDetections:
    def test_and_output_sa0(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        sim = FaultSimulator(c)
        # exhaustive 4 patterns (a: 1100, b: 1010)
        words = {"a": 0b1100, "b": 0b1010}
        good = sim.good_values(words, 4)
        det = sim.detection_word(StuckFault("g", 0), good, 4)
        assert det == 0b1000  # only the a=b=1 pattern
        det = sim.detection_word(StuckFault("g", 1), good, 4)
        assert det == 0b0111

    def test_branch_fault_differs_from_stem(self):
        # s fans out to g1 and g2; branch fault at g1's pin affects only g1.
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        s = b.OR(a, x, name="s")
        g1 = b.BUF(s, name="g1")
        g2 = b.BUF(s, name="g2")
        b.outputs(g1, g2)
        c = b.build()
        sim = FaultSimulator(c)
        words = {"a": 0b1100, "b": 0b1010}
        good = sim.good_values(words, 4)
        stem = sim.detection_word(StuckFault("s", 0), good, 4)
        branch = sim.detection_word(
            StuckFault("s", 0, reader="g1", pin=0), good, 4
        )
        assert stem == branch == 0b1110  # same word, but via different sites

    def test_undetectable_when_value_matches(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        g = b.BUF(a, name="g")
        b.outputs(g)
        c = b.build()
        sim = FaultSimulator(c)
        good = sim.good_values({"a": 0}, 1)
        assert sim.detection_word(StuckFault("a", 0), good, 1) == 0
        assert sim.detection_word(StuckFault("a", 1), good, 1) == 1

    def test_masked_fault_not_detected(self):
        # fault on a is masked when b=0 forces the AND output.
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        sim = FaultSimulator(c)
        good = sim.good_values({"a": 0b0, "b": 0b0}, 1)
        assert sim.detection_word(StuckFault("a", 1), good, 1) == 0


class TestAgainstOracle:
    @given(st.integers(0, 3000), st.integers(0, 3000))
    @settings(max_examples=15, deadline=None)
    def test_all_faults_random_circuits(self, seed, pat_seed):
        c = random_circuit("r", 6, 3, 25, seed=seed)
        rng = random.Random(pat_seed)
        n = 24
        words = random_words(c.inputs, n, rng)
        sim = FaultSimulator(c)
        good = sim.good_values(words, n)
        for fault in all_faults(c):
            got = sim.detection_word(fault, good, n)
            want = oracle_detection_word(c, fault, words, n)
            assert got == want, fault.describe()

    def test_c17_all_faults_detectable(self):
        # c17 is irredundant: every fault detectable in 64 random patterns.
        c = c17()
        rng = random.Random(3)
        words = random_words(c.inputs, 64, rng)
        sim = FaultSimulator(c)
        good = sim.good_values(words, 64)
        for fault in all_faults(c):
            assert sim.detection_word(fault, good, 64) != 0, fault.describe()
