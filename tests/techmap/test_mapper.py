"""Tests for subject-graph decomposition and tree-covering mapping."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchcircuits import c17, full_adder, paper_f2_sop, random_circuit
from repro.netlist import CircuitBuilder, GateType
from repro.sim import outputs_equal, random_words
from repro.techmap import (
    Cell,
    DEFAULT_LIBRARY,
    decompose_to_subject,
    map_circuit,
    pattern_leaves,
)


class TestLibrary:
    def test_cells_have_unique_names(self):
        names = [c.name for c in DEFAULT_LIBRARY]
        assert len(names) == len(set(names))

    def test_literal_cost_equals_inputs(self):
        for cell in DEFAULT_LIBRARY:
            assert cell.literals == cell.n_inputs

    def test_bad_cell_rejected(self):
        with pytest.raises(ValueError):
            Cell("bogus", 3, ("nand", ("in", 0), ("in", 1)))

    def test_pattern_leaves(self):
        cell = next(c for c in DEFAULT_LIBRARY if c.name == "nand3")
        assert sorted(set(pattern_leaves(cell.pattern))) == [0, 1, 2]


class TestSubjectGraph:
    @given(st.integers(0, 3000))
    @settings(max_examples=12, deadline=None)
    def test_function_preserved(self, seed):
        c = random_circuit("r", 7, 3, 35, seed=seed)
        s = decompose_to_subject(c)
        rng = random.Random(seed)
        w = random_words(c.inputs, 256, rng)
        assert outputs_equal(c, s, w, 256)

    def test_only_nand2_inv_buf(self):
        s = decompose_to_subject(paper_f2_sop())
        for g in s.logic_gates():
            assert g.gtype in (GateType.NAND, GateType.NOT, GateType.BUF,
                               GateType.CONST0, GateType.CONST1)
            if g.gtype is GateType.NAND:
                assert len(g.fanins) == 2

    def test_xor_decomposition(self):
        s = decompose_to_subject(full_adder())
        rng = random.Random(1)
        w = random_words(s.inputs, 64, rng)
        assert outputs_equal(full_adder(), s, w, 64)


class TestMapping:
    def test_c17_maps_to_nand2(self):
        res = map_circuit(c17())
        assert res.cell_counts == {"nand2": 6}
        assert res.literals == 12
        assert res.longest_path == 3

    def test_single_inverter(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        g = b.NOT(a, name="g")
        b.outputs(g)
        res = map_circuit(b.build())
        assert res.literals == 1
        assert res.longest_path == 1
        assert res.cell_counts == {"inv": 1}

    def test_wide_and_uses_wide_cells(self):
        b = CircuitBuilder()
        ins = b.inputs("a", "b", "c", "d")
        g = b.NAND(*ins, name="g")
        b.outputs(g)
        res = map_circuit(b.build())
        assert res.literals == 4  # single nand4
        assert res.cell_counts == {"nand4": 1}

    def test_aoi_candidate(self):
        # f = NOT(ab + c) should map to a single aoi21 (3 literals).
        b = CircuitBuilder()
        a, x, y = b.inputs("a", "b", "c")
        t = b.AND(a, x)
        o = b.OR(t, y)
        g = b.NOT(o, name="g")
        b.outputs(g)
        res = map_circuit(b.build())
        assert res.literals == 3
        assert res.cell_counts == {"aoi21": 1}

    def test_fanout_breaks_trees(self):
        # shared node must be a cell output; cells cannot span it.
        b = CircuitBuilder()
        a, x, y = b.inputs("a", "b", "c")
        s = b.AND(a, x, name="s")
        g1 = b.NOT(s, name="g1")
        g2 = b.OR(s, y, name="g2")
        b.outputs(g1, g2)
        res = map_circuit(b.build())
        # the AND is realized once (as a cell), not duplicated into g1/g2
        assert res.literals <= 2 + 1 + 2 + 2  # and2 + inv + or2 slack

    def test_longest_path_reasonable(self):
        res = map_circuit(paper_f2_sop())
        assert 1 <= res.longest_path <= 10

    @given(st.integers(0, 2000))
    @settings(max_examples=8, deadline=None)
    def test_mapping_accounts_every_root(self, seed):
        c = random_circuit("r", 7, 3, 30, seed=seed)
        res = map_circuit(c)
        assert res.literals >= 0
        assert res.longest_path >= 0
        if c.logic_gates():
            assert res.literals > 0
