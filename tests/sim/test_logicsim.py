"""Tests for the bit-parallel logic simulator.

The load-bearing property: packed simulation agrees with per-pattern scalar
evaluation via the reference ``eval_gate`` semantics, on random circuits and
random patterns (hypothesis).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.benchcircuits import c17, full_adder, random_circuit
from repro.netlist import CircuitBuilder, GateType, eval_gate
from repro.sim import (
    outputs_equal,
    pattern_bits,
    random_words,
    simulate,
    simulate_pattern,
)


def scalar_reference(circuit, assignment):
    """Evaluate every net with the scalar reference semantics."""
    values = {}
    for net in circuit.topological_order():
        g = circuit.gate(net)
        if g.gtype is GateType.INPUT:
            values[net] = assignment.get(net, 0)
        else:
            values[net] = eval_gate(g.gtype, tuple(values[f] for f in g.fanins))
    return values


class TestBasics:
    def test_single_and_gate(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        # patterns: (a,b) = (0,0),(1,0),(0,1),(1,1) packed LSB-first
        vals = simulate(c, {"a": 0b1010, "b": 0b1100}, 4)
        assert vals["g"] == 0b1000

    def test_constants(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        z = b.CONST0()
        o = b.CONST1()
        g = b.OR(a, z, name="g")
        h = b.AND(a, o, name="h")
        b.outputs(g, h)
        c = b.build()
        vals = simulate(c, {"a": 0b01}, 2)
        assert vals[z] == 0
        assert vals[o] == 0b11
        assert vals["g"] == 0b01
        assert vals["h"] == 0b01

    def test_simulate_pattern(self):
        c = full_adder()
        vals = simulate_pattern(c, {"a": 1, "b": 1, "cin": 0})
        assert vals["sum"] == 0
        assert vals["cout"] == 1

    def test_missing_inputs_default_zero(self):
        c = full_adder()
        vals = simulate(c, {}, 1)
        assert vals["sum"] == 0 and vals["cout"] == 0

    def test_mask_truncates_input_words(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        g = b.BUF(a, name="g")
        b.outputs(g)
        c = b.build()
        vals = simulate(c, {"a": 0b111111}, 2)
        assert vals["g"] == 0b11


class TestC17:
    def test_known_response(self):
        c = c17()
        # All-ones input: 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=1,
        # 22=NAND(0,1)=1, 23=NAND(1,1)=0
        vals = simulate_pattern(c, {i: 1 for i in c.inputs})
        assert vals["22"] == 1
        assert vals["23"] == 0


class TestAgainstScalarReference:
    @given(seed=st.integers(0, 10_000), pat_seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_packed_equals_scalar(self, seed, pat_seed):
        c = random_circuit("r", 6, 3, 30, seed=seed)
        rng = random.Random(pat_seed)
        n = 17  # deliberately not a power of two
        words = random_words(c.inputs, n, rng)
        packed = simulate(c, words, n)
        for p in range(n):
            assignment = pattern_bits(words, c.inputs, p)
            ref = scalar_reference(c, assignment)
            for net in c.nets():
                assert (packed[net] >> p) & 1 == ref[net], (net, p)


class TestOutputsEqual:
    def test_identical_circuits_equal(self):
        a = random_circuit("r", 6, 3, 30, seed=5)
        b = a.copy()
        rng = random.Random(0)
        words = random_words(a.inputs, 64, rng)
        assert outputs_equal(a, b, words, 64)

    def test_detects_difference(self):
        a = c17()
        b = a.copy()
        g = b.gate("23")
        b.replace_gate(g.with_type(GateType.AND))
        rng = random.Random(0)
        words = random_words(a.inputs, 32, rng)
        assert not outputs_equal(a, b, words, 32)

    def test_different_interfaces_unequal(self):
        a = c17()
        b = full_adder()
        assert not outputs_equal(a, b, {}, 1)
