"""Tests for pattern sources and the MSB-first minterm convention."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    assignment_minterm,
    exhaustive_input_word,
    exhaustive_words,
    iter_pattern_batches,
    minterm_assignment,
    pattern_bits,
    random_words,
)


class TestExhaustiveWords:
    def test_msb_first_convention(self):
        # 2 inputs: patterns 0..3 are minterms 00,01,10,11 (x1 MSB).
        words = exhaustive_words(["x1", "x2"])
        assert words["x1"] == 0b1100  # x1=1 on patterns 2,3
        assert words["x2"] == 0b1010  # x2=1 on patterns 1,3

    def test_every_pattern_is_its_minterm(self):
        inputs = ["a", "b", "c"]
        words = exhaustive_words(inputs)
        for p in range(8):
            bits = pattern_bits(words, inputs, p)
            assert assignment_minterm(bits, inputs) == p

    def test_single_input(self):
        assert exhaustive_input_word(0, 1) == 0b10

    def test_position_out_of_range(self):
        with pytest.raises(ValueError):
            exhaustive_input_word(3, 3)

    def test_too_many_inputs_refused(self):
        with pytest.raises(ValueError):
            exhaustive_words([f"i{k}" for k in range(30)])


class TestMintermConversion:
    @given(st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, m):
        inputs = [f"x{j}" for j in range(8)]
        a = minterm_assignment(m, inputs)
        assert assignment_minterm(a, inputs) == m

    def test_paper_example_minterm(self):
        # Paper: "the minterm 00110 of a 5-input function has decimal value 6"
        inputs = ["x1", "x2", "x3", "x4", "x5"]
        a = {"x1": 0, "x2": 0, "x3": 1, "x4": 1, "x5": 0}
        assert assignment_minterm(a, inputs) == 6


class TestRandomWords:
    def test_deterministic_given_seed(self):
        w1 = random_words(["a", "b"], 128, random.Random(42))
        w2 = random_words(["a", "b"], 128, random.Random(42))
        assert w1 == w2

    def test_width_respected(self):
        w = random_words(["a"], 16, random.Random(0))
        assert w["a"] < (1 << 16)


class TestBatches:
    def test_total_pattern_count(self):
        batches = list(iter_pattern_batches(["a", "b"], 100, 32, seed=1))
        assert sum(width for _, width in batches) == 100
        assert [w for _, w in batches] == [32, 32, 32, 4]

    def test_deterministic(self):
        b1 = list(iter_pattern_batches(["a"], 50, 16, seed=9))
        b2 = list(iter_pattern_batches(["a"], 50, 16, seed=9))
        assert b1 == b2
