"""Tests for truth-table extraction and truth-table algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchcircuits import full_adder, paper_f2_sop
from repro.netlist import CircuitBuilder
from repro.sim import (
    truth_table,
    truth_tables,
    tt_complement,
    tt_from_minterms,
    tt_minterms,
    tt_permute,
    tt_support,
)


class TestExtraction:
    def test_and_gate(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        # minterm 3 (a=1,b=1) is the only ON minterm
        assert truth_table(c) == 0b1000

    def test_paper_f2(self):
        c = paper_f2_sop()
        assert truth_table(c) == tt_from_minterms([1, 5, 6, 9, 10, 14], 4)

    def test_multi_output_requires_name(self):
        c = full_adder()
        with pytest.raises(ValueError):
            truth_table(c)
        tables = truth_tables(c)
        assert set(tables) == {"sum", "cout"}

    def test_input_order_changes_table(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        nb = b.NOT(x)
        g = b.AND(a, nb, name="g")  # a AND NOT b
        b.outputs(g)
        c = b.build()
        # order (a,b): ON minterm = 10 -> 2
        assert truth_table(c, input_order=["a", "b"]) == 0b0100
        # order (b,a): ON minterm = 01 -> 1
        assert truth_table(c, input_order=["b", "a"]) == 0b0010

    def test_bad_input_order_rejected(self):
        c = paper_f2_sop()
        with pytest.raises(ValueError):
            truth_table(c, input_order=["y1", "y2"])


class TestTTAlgebra:
    def test_minterms_roundtrip(self):
        t = tt_from_minterms([0, 3, 5], 3)
        assert tt_minterms(t, 3) == [0, 3, 5]

    def test_out_of_range_minterm(self):
        with pytest.raises(ValueError):
            tt_from_minterms([8], 3)

    def test_complement(self):
        t = tt_from_minterms([0, 1], 2)
        assert tt_minterms(tt_complement(t, 2), 2) == [2, 3]

    def test_permute_identity(self):
        t = tt_from_minterms([1, 5, 6], 3)
        assert tt_permute(t, 3, [0, 1, 2]) == t

    def test_permute_swap(self):
        # f(a,b) = a AND NOT b: ON minterm (a=1,b=0) -> 2.
        t = tt_from_minterms([2], 2)
        # swap inputs: new MSB reads old position 1 (b), new LSB old 0 (a).
        swapped = tt_permute(t, 2, [1, 0])
        # g(b,a) with ON at (b=0,a=1) -> minterm 1
        assert tt_minterms(swapped, 2) == [1]

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            tt_permute(0b1, 2, [0, 0])

    @given(st.integers(0, (1 << 16) - 1), st.permutations(range(4)))
    @settings(max_examples=40, deadline=None)
    def test_permute_is_bijective(self, table, perm):
        permuted = tt_permute(table, 4, perm)
        inverse = [0] * 4
        for i, j in enumerate(perm):
            inverse[j] = i
        assert tt_permute(permuted, 4, inverse) == table

    def test_support_detects_irrelevant_input(self):
        # f(a,b,c) = a AND c: b (position 1) is irrelevant.
        b = CircuitBuilder()
        a, _, c3 = b.inputs("a", "b", "c")
        g = b.AND(a, c3, name="g")
        b.outputs(g)
        t = truth_table(b.build())
        assert tt_support(t, 3) == [0, 2]

    def test_support_of_constant_is_empty(self):
        assert tt_support(0, 3) == []
        assert tt_support((1 << 8) - 1, 3) == []
