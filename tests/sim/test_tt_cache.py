"""Cone signatures and the truth-table memo (`repro.sim.truthtable`)."""

from repro.analysis import Cone, extract_subcircuit
from repro.benchcircuits import random_circuit
from repro.netlist import CircuitBuilder
from repro.resynth import enumerate_candidate_cones
from repro.sim import (
    TruthTableCache,
    cone_signature,
    signature_truth_table,
    truth_table,
)


def host():
    b = CircuitBuilder("host")
    a, bb, c, d = b.inputs("a", "b", "c", "d")
    g1 = b.AND(a, bb, name="g1")
    g2 = b.OR(g1, c, name="g2")
    # same shape again over different nets
    h1 = b.AND(bb, d, name="h1")
    h2 = b.OR(h1, a, name="h2")
    b.outputs(g2, h2)
    return b.build()


def cone(circ, output, members, inputs):
    return Cone(output=output, members=frozenset(members),
                inputs=tuple(inputs))


class TestConeSignature:
    def test_name_independent(self):
        c = host()
        s1 = cone_signature(c, "g2", {"g1", "g2"}, ["a", "b", "c"])
        s2 = cone_signature(c, "h2", {"h1", "h2"}, ["b", "d", "a"])
        assert s1 == s2  # same DAG shape, same positional inputs

    def test_input_order_matters(self):
        c = host()
        s1 = cone_signature(c, "g2", {"g1", "g2"}, ["a", "b", "c"])
        s2 = cone_signature(c, "g2", {"g1", "g2"}, ["b", "a", "c"])
        assert s1 != s2

    def test_membership_matters(self):
        c = host()
        full = cone_signature(c, "g2", {"g1", "g2"}, ["a", "b", "c"])
        cut = cone_signature(c, "g2", {"g2"}, ["g1", "c"])
        assert full != cut

    def test_signature_transfers_truth_table(self):
        # Equal signatures really do mean equal positional truth tables.
        c = host()
        cg = cone(c, "g2", {"g1", "g2"}, ["a", "b", "c"])
        ch = cone(c, "h2", {"h1", "h2"}, ["b", "d", "a"])
        tg = truth_table(extract_subcircuit(c, cg), input_order=cg.inputs)
        th = truth_table(extract_subcircuit(c, ch), input_order=ch.inputs)
        assert tg == th


class TestSignatureTruthTable:
    """signature_truth_table must equal extract-and-simulate, bit for bit.

    This equivalence is what lets the sweep (and the parallel layer's
    worker processes) evaluate cones from their signatures alone, without
    materializing subcircuits.
    """

    def test_host_cones(self):
        c = host()
        for co in (cone(c, "g2", {"g1", "g2"}, ["a", "b", "c"]),
                   cone(c, "h2", {"h1", "h2"}, ["b", "d", "a"]),
                   cone(c, "g2", {"g2"}, ["g1", "c"])):
            sig = cone_signature(c, co.output, co.members, co.inputs)
            want = truth_table(extract_subcircuit(c, co),
                               input_order=co.inputs)
            assert signature_truth_table(sig, len(co.inputs)) == want

    def test_random_circuit_candidate_cones(self):
        checked = 0
        for seed in range(3):
            c = random_circuit("r", 6, 2, 20, seed=seed)
            for net in c.topological_order():
                if not c.gate(net).fanins:
                    continue
                for co in enumerate_candidate_cones(c, net, 4):
                    if not co.inputs:
                        continue
                    sig = cone_signature(c, co.output, co.members, co.inputs)
                    want = truth_table(extract_subcircuit(c, co),
                                       input_order=co.inputs)
                    assert signature_truth_table(sig, len(co.inputs)) == want
                    checked += 1
        assert checked > 50  # the sweep above found real work

    def test_shared_subtrees_survive_pickling(self):
        # Reconvergent fanout shares tuple nodes; pickle keeps the sharing
        # and the evaluation result (what the parallel layer ships).
        import pickle

        c = host()
        co = cone(c, "g2", {"g1", "g2"}, ["a", "b", "c"])
        sig = cone_signature(c, co.output, co.members, co.inputs)
        clone = pickle.loads(pickle.dumps(sig))
        assert clone == sig
        assert signature_truth_table(clone, 3) == \
            signature_truth_table(sig, 3)


class TestTruthTableCache:
    def test_hit_miss_counters(self):
        cache = TruthTableCache()
        assert cache.get(("k",)) is None
        cache.put(("k",), 6)
        assert cache.get(("k",)) == 6
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_capacity_clears_wholesale(self):
        cache = TruthTableCache(max_entries=4)
        for i in range(4):
            cache.put(("k", i), i)
        assert len(cache) == 4
        cache.put(("k", 99), 99)  # over capacity: table dropped first
        assert len(cache) == 1
        assert cache.get(("k", 0)) is None
        assert cache.get(("k", 99)) == 99

    def test_clear_keeps_counters(self):
        cache = TruthTableCache()
        cache.put(("k",), 1)
        cache.get(("k",))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
