"""Tests for the event-driven timing simulator and delay-fault injection.

The headline test validates the robust PDF criteria *physically*: every
fault the analytic criteria call robustly detected must be caught by the
timing simulator under every random gate-delay assignment tried.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchcircuits import c17, full_adder, random_circuit
from repro.netlist import CircuitBuilder
from repro.pdf import (
    RobustCriterion,
    robust_faults_detected,
    simulate_pair,
)
from repro.sim import simulate_pattern
from repro.sim.timing import (
    TimingSimulator,
    Waveform,
    detects_path_fault,
    robust_against_random_delays,
)


class TestWaveform:
    def test_value_at(self):
        w = Waveform(0, [(1.0, 1), (2.0, 0)])
        assert w.value_at(0.5) == 0
        assert w.value_at(1.0) == 1
        assert w.value_at(1.5) == 1
        assert w.value_at(3.0) == 0
        assert w.final == 0
        assert w.transition_count == 2


class TestFaultFreeSimulation:
    @given(st.integers(0, 3000), st.integers(0, 3000))
    @settings(max_examples=15, deadline=None)
    def test_settles_to_static_values(self, seed, pat_seed):
        c = random_circuit("r", 6, 3, 25, seed=seed)
        rng = random.Random(pat_seed)
        v1 = {pi: rng.randint(0, 1) for pi in c.inputs}
        v2 = {pi: rng.randint(0, 1) for pi in c.inputs}
        delays = {g.name: 0.2 + rng.random() for g in c.logic_gates()}
        sim = TimingSimulator(c, delays)
        waves = sim.run(v1, v2)
        ref1 = simulate_pattern(c, v1)
        ref2 = simulate_pattern(c, v2)
        for net in c.nets():
            assert waves[net].initial == ref1[net], net
            assert waves[net].final == ref2[net], net

    def test_glitch_appears(self):
        # classic static-1 hazard: f = a OR NOT a with slow inverter
        b = CircuitBuilder()
        a, = b.inputs("a")
        na = b.NOT(a, name="na")
        g = b.OR(a, na, name="g")
        b.outputs(g)
        c = b.build()
        sim = TimingSimulator(c, {"na": 3.0, "g": 1.0})
        waves = sim.run({"a": 1}, {"a": 0})
        # output dips to 0 while the inverter lags, then recovers
        assert waves["g"].transition_count >= 2
        assert waves["g"].final == 1

    def test_stable_inputs_no_events(self):
        c = full_adder()
        sim = TimingSimulator(c)
        v = {pi: 1 for pi in c.inputs}
        waves = sim.run(v, v)
        assert all(w.transition_count == 0 for w in waves.values())


class TestFaultInjection:
    def test_slow_path_misses_sample(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        path = ("a", "g")
        v1 = {"a": 0, "b": 1}
        v2 = {"a": 1, "b": 1}
        sim = TimingSimulator(c)
        good = sim.sampled_outputs(v1, v2, sample_time=5.0)
        assert good["g"] == 1
        faulty = sim.sampled_outputs(v1, v2, 5.0, path, extra_delay=100.0)
        assert faulty["g"] == 0  # the rise never arrived

    def test_detects_path_fault_on_robust_test(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        assert detects_path_fault(
            c, {"a": 0, "b": 1}, {"a": 1, "b": 1}, ("a", "g"))

    def test_no_detection_without_transition(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        assert not detects_path_fault(
            c, {"a": 1, "b": 1}, {"a": 1, "b": 1}, ("a", "g"))


class TestRobustCriteriaSoundness:
    """Analytically-robust tests must survive adversarial delays."""

    @given(st.integers(0, 2000), st.integers(0, 2000))
    @settings(max_examples=10, deadline=None)
    def test_robust_implies_always_detected(self, seed, pat_seed):
        c = random_circuit("r", 5, 3, 18, seed=seed)
        rng = random.Random(pat_seed)
        v1 = {pi: rng.randint(0, 1) for pi in c.inputs}
        v2 = {pi: rng.randint(0, 1) for pi in c.inputs}
        pw = simulate_pair(c, v1, v2)
        detected = robust_faults_detected(c, pw, RobustCriterion.STANDARD)
        for path, rising in list(detected)[:6]:
            assert robust_against_random_delays(
                c, v1, v2, path, trials=8, seed=seed ^ 0xD1CE
            ), (path, rising)

    def test_nonrobust_test_can_be_defeated(self):
        # a falls into AND while side b also falls: classic non-robust.
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.OR(a, x, name="g")
        b.outputs(g)
        c = b.build()
        v1 = {"a": 1, "b": 1}
        v2 = {"a": 0, "b": 0}
        path = ("a", "g")
        pw = simulate_pair(c, v1, v2)
        assert (path, False) not in robust_faults_detected(c, pw)
        # adversarial delays: if b is slow to fall, the output stays 1 at
        # sample time only because of the fault... in fact with both
        # falling the sampled value equals the good value whenever b's
        # fall covers the sample window; a large b delay defeats the test.
        defeated = not detects_path_fault(
            c, v1, v2, path, gate_delays={"g": 1.0},
        )
        # With default sampling the fault *is* detected (b falls fast),
        # demonstrating this test is useful only non-robustly:
        assert detects_path_fault(c, v1, v2, path) or defeated


class TestStaticArrivals:
    def test_unit_delay_equals_depth(self):
        from repro.sim import static_arrival_times
        c = c17()
        arrivals = static_arrival_times(c)
        lv = c.levels()
        for net in c.nets():
            assert arrivals[net] == pytest.approx(float(lv[net]))

    def test_custom_delays(self):
        from repro.sim import static_arrival_times
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x, name="g1")
        g2 = b.NOT(g1, name="g2")
        b.outputs(g2)
        c = b.build()
        arrivals = static_arrival_times(c, {"g1": 2.5, "g2": 0.5})
        assert arrivals["g1"] == pytest.approx(2.5)
        assert arrivals["g2"] == pytest.approx(3.0)

    def test_arrival_bounds_simulated_settle(self):
        from repro.sim import static_arrival_times
        from repro.sim.timing import TimingSimulator
        c = random_circuit("r", 6, 3, 25, seed=3)
        rng = random.Random(1)
        delays = {g.name: 0.2 + rng.random() for g in c.logic_gates()}
        arrivals = static_arrival_times(c, delays)
        worst = max(arrivals.values())
        sim = TimingSimulator(c, delays)
        for _ in range(5):
            v1 = {pi: rng.randint(0, 1) for pi in c.inputs}
            v2 = {pi: rng.randint(0, 1) for pi in c.inputs}
            waves = sim.run(v1, v2)
            settle = max((w.events[-1][0] for w in waves.values()
                          if w.events), default=0.0)
            assert settle <= worst + 1e-9
