"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.benchcircuits import c17
from repro.io import save_bench


@pytest.fixture
def bench_file(tmp_path):
    path = str(tmp_path / "c17.bench")
    save_bench(c17(), path)
    return path


class TestStats:
    def test_stats_on_bench_file(self, bench_file, capsys):
        assert main(["stats", bench_file]) == 0
        out = capsys.readouterr().out
        assert "inputs=5" in out
        assert "paths=11" in out


class TestResynth:
    def test_resynth_writes_output(self, bench_file, tmp_path, capsys):
        out_path = str(tmp_path / "out.bench")
        assert main(["resynth", bench_file, "--k", "4",
                     "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "gates" in out
        from repro.io import load_bench
        load_bench(out_path).validate()

    def test_paths_objective(self, bench_file, capsys):
        assert main(["resynth", bench_file, "--objective", "paths",
                     "--k", "4"]) == 0
        assert "paths" in capsys.readouterr().out


class TestIdentify:
    def test_identify_known_net(self, bench_file, capsys):
        assert main(["identify", bench_file, "22", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "22" in out

    def test_identify_missing_net(self, bench_file, capsys):
        assert main(["identify", bench_file, "zz"]) == 1


class TestTables:
    def test_table1_via_cli(self, capsys):
        assert main(["tables", "1"]) == 0
        out = capsys.readouterr().out
        assert "0x1, 1x0" in out

    def test_unknown_table(self, capsys):
        assert main(["tables", "42"]) == 1
