"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.benchcircuits import c17
from repro.io import save_bench


@pytest.fixture
def bench_file(tmp_path):
    path = str(tmp_path / "c17.bench")
    save_bench(c17(), path)
    return path


class TestStats:
    def test_stats_on_bench_file(self, bench_file, capsys):
        assert main(["stats", bench_file]) == 0
        out = capsys.readouterr().out
        assert "inputs=5" in out
        assert "paths=11" in out


class TestResynth:
    def test_resynth_writes_output(self, bench_file, tmp_path, capsys):
        out_path = str(tmp_path / "out.bench")
        assert main(["resynth", bench_file, "--k", "4",
                     "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "gates" in out
        from repro.io import load_bench
        load_bench(out_path).validate()

    def test_paths_objective(self, bench_file, capsys):
        assert main(["resynth", bench_file, "--objective", "paths",
                     "--k", "4"]) == 0
        assert "paths" in capsys.readouterr().out


class TestIdentify:
    def test_identify_known_net(self, bench_file, capsys):
        assert main(["identify", bench_file, "22", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "22" in out

    def test_identify_missing_net(self, bench_file, capsys):
        assert main(["identify", bench_file, "zz"]) == 1


class TestTables:
    def test_table1_via_cli(self, capsys):
        assert main(["tables", "1"]) == 0
        out = capsys.readouterr().out
        assert "0x1, 1x0" in out

    def test_unknown_table(self, capsys):
        assert main(["tables", "42"]) == 1


class TestFuzz:
    def test_small_clean_run(self, capsys):
        assert main(["fuzz", "--seeds", "4", "-q"]) == 0
        out = capsys.readouterr().out
        assert "no violations" in out

    def test_oracle_subset(self, capsys):
        assert main(["fuzz", "--seeds", "3", "--oracle", "sim",
                     "--oracle", "unit", "-q"]) == 0
        out = capsys.readouterr().out
        assert "sim:3" in out and "unit:3" in out
        assert "fault" not in out

    def test_inject_self_test_catches_and_shrinks(self, tmp_path, capsys):
        assert main(["fuzz", "--seeds", "12", "--inject", "nand",
                     "--artifacts", str(tmp_path), "-q"]) == 0
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "inject self-test OK" in out
        assert list(tmp_path.glob("sim_seed*.json"))

    def test_replay_of_fixed_artifacts_is_clean(self, tmp_path, capsys):
        main(["fuzz", "--seeds", "12", "--inject", "xor",
              "--artifacts", str(tmp_path), "-q"])
        capsys.readouterr()
        artifacts = [str(p) for p in sorted(tmp_path.glob("*.json"))]
        assert artifacts
        assert main(["replay"] + artifacts) == 0
        out = capsys.readouterr().out
        assert "does not reproduce" in out


class TestResynthReportOut:
    def test_out_json_writes_full_report(self, bench_file, tmp_path,
                                         capsys):
        out_path = str(tmp_path / "report.json")
        assert main(["resynth", bench_file, "--k", "4",
                     "--out", out_path]) == 0
        assert "passes" in capsys.readouterr().out  # timing summary
        import json

        from repro.resynth import report_from_json

        with open(out_path) as fh:
            doc = json.load(fh)
        assert doc["format"] == "repro-resynth-report"
        assert doc["circuit"]["format"] == "repro-netlist"
        assert len(doc["pass_seconds"]) == doc["passes"]
        report = report_from_json(json.dumps(doc))
        report.circuit.validate()


class TestServiceCommands:
    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import (
            ArtifactStore,
            ServiceServer,
            SupervisorConfig,
        )

        store = ArtifactStore(str(tmp_path / "service"))
        config = SupervisorConfig(max_retries=0, heartbeat_interval=0.2,
                                  poll_interval=0.02)
        with ServiceServer(store, port=0, config=config) as srv:
            yield srv

    def test_submit_wait_jobs_result_round_trip(self, server, bench_file,
                                                tmp_path, capsys):
        url = server.url
        assert main(["submit", bench_file, "--url", url, "--k", "4",
                     "--perm-budget", "20", "--max-passes", "2",
                     "--wait", "--timeout", "60"]) == 0
        out = capsys.readouterr().out
        job_id = out.split(":", 1)[0]
        assert "submitted" in out and "succeeded" in out

        assert main(["jobs", "--url", url]) == 0
        listing = capsys.readouterr().out
        assert job_id in listing and "succeeded" in listing

        out_path = str(tmp_path / "result.json")
        assert main(["result", job_id, "--url", url,
                     "--out", out_path]) == 0
        assert "gates" in capsys.readouterr().out
        import json

        with open(out_path) as fh:
            assert json.load(fh)["format"] == "repro-resynth-report"

        bench_path = str(tmp_path / "result.bench")
        assert main(["result", job_id, "--url", url,
                     "--out", bench_path]) == 0
        capsys.readouterr()
        from repro.io import load_bench

        load_bench(bench_path).validate()

    def test_submit_rejects_bad_spec(self, server, bench_file, capsys):
        assert main(["submit", bench_file, "--url", server.url,
                     "--k", "99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_result_of_unknown_job_fails(self, server, capsys):
        assert main(["result", "jdeadbeef0000",
                     "--url", server.url]) == 1
        assert "error" in capsys.readouterr().err
