"""Differential regression: replay the checked-in witness corpus.

Every artifact under ``tests/verify/corpus/`` is a shrunk circuit that
once exposed a bug — injected reference-semantics mutations from fuzz
self-tests, plus hand-constructed structurally adversarial instances.
Each must now (a) replay cleanly through its own oracle, and (b) pass
*every* circuit oracle: the corpus is a tripwire against regressions in
any engine, not just the one that originally failed.
"""

import glob
import os

import pytest

from repro.verify import default_oracles, load_artifact, replay_artifact

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 5, "corpus went missing"


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_replays_clean_through_named_oracle(path):
    artifact = load_artifact(path)
    violations = replay_artifact(artifact, default_oracles())
    assert violations == [], (
        f"{os.path.basename(path)} reproduces again: "
        + "; ".join(v.describe() for v in violations)
    )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_every_circuit_oracle_clean_on_witness(path):
    artifact = load_artifact(path)
    if artifact.circuit is None:
        pytest.skip("seed-only artifact")
    artifact.circuit.validate()
    for oracle in default_oracles():
        if not oracle.uses_circuit:
            continue
        violations = oracle.check_circuit(artifact.circuit, artifact.seed)
        assert violations == [], (
            f"{oracle.name} oracle fails on {os.path.basename(path)}: "
            + "; ".join(v.describe() for v in violations)
        )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_artifact_serialization_is_stable(path):
    """Canonical form: loading and re-serializing reproduces the bytes."""
    artifact = load_artifact(path)
    with open(path, "r", encoding="utf-8") as fh:
        on_disk = fh.read()
    assert artifact.to_json() + "\n" == on_disk
