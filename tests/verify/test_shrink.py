"""The delta-debugging shrinker: minimal witnesses, preserved failures."""

from repro.benchcircuits.generator import random_circuit
from repro.netlist import Circuit, GateType
from repro.verify import (
    SimulatorOracle,
    buggy_gate_eval,
    shrink_circuit,
)


def buggy_sim_oracle(victim=GateType.NAND, impostor=GateType.AND):
    return SimulatorOracle(gate_eval=buggy_gate_eval(victim, impostor))


class TestShrink:
    def test_non_failing_circuit_returned_unshrunk(self):
        c = random_circuit("ok", 4, 2, 12, seed=0)
        result = shrink_circuit(c, lambda _c: False)
        assert result.steps_taken == 0
        assert result.circuit.structurally_equal(c)

    def test_shrunk_circuit_still_fails(self):
        oracle = buggy_sim_oracle()
        for seed in (1, 3, 5):
            c = random_circuit(f"c{seed}", 5, 2, 20, seed=seed)
            if not oracle.check_circuit(c, seed):
                continue  # this seed never exercises a NAND; skip

            def fails(cand):
                return bool(oracle.check_circuit(cand, seed))

            result = shrink_circuit(c, fails)
            assert fails(result.circuit)
            assert result.shrunk_gates <= result.original_gates

    def test_mutation_witness_shrinks_to_single_gate(self):
        """The headline property: a gate-type bug reduces to one gate."""
        oracle = buggy_sim_oracle()
        seen_failure = False
        for seed in range(12):
            c = random_circuit(f"c{seed}", 6, 2, 25, seed=seed)
            if not oracle.check_circuit(c, seed):
                continue
            seen_failure = True

            def fails(cand):
                return bool(oracle.check_circuit(cand, seed))

            result = shrink_circuit(c, fails)
            assert result.shrunk_gates <= 10  # issue acceptance bound
            # In practice the witness is exactly the one broken gate.
            kinds = {g.gtype for g in result.circuit.logic_gates()}
            assert GateType.NAND in kinds
        assert seen_failure, "no seed exercised the mutated gate type"

    def test_result_is_validated_and_live(self):
        oracle = buggy_sim_oracle()
        c = random_circuit("c", 6, 3, 30, seed=1)
        assert oracle.check_circuit(c, 1)

        def fails(cand):
            return bool(oracle.check_circuit(cand, 1))

        result = shrink_circuit(c, fails)
        result.circuit.validate()
        assert len(result.circuit.outputs) == 1  # output projection worked
        live = result.circuit.transitive_fanin(result.circuit.outputs)
        for g in result.circuit.logic_gates():
            assert g.name in live

    def test_raising_predicate_is_not_accepted(self):
        c = random_circuit("c", 4, 2, 12, seed=2)
        calls = {"n": 0}

        def fails(cand):
            calls["n"] += 1
            if calls["n"] == 1:
                return True  # entry check: reproduce on the original
            raise RuntimeError("engine exploded on mutant")

        result = shrink_circuit(c, fails)
        assert result.circuit.structurally_equal(c) or result.steps_taken == 0

    def test_determinism(self):
        oracle = buggy_sim_oracle()
        c = random_circuit("c", 6, 2, 25, seed=1)

        def fails(cand):
            return bool(oracle.check_circuit(cand, 1))

        r1 = shrink_circuit(c, fails)
        r2 = shrink_circuit(c, fails)
        assert r1.circuit.structurally_equal(r2.circuit)

    def test_const_only_witness_allowed(self):
        """Shrinking may remove every primary input when none matter."""
        c = Circuit("consts")
        c.add_input("a")
        c.add_gate("k1", GateType.CONST1, ())
        c.add_gate("k2", GateType.CONST1, ())
        c.add_gate("f", GateType.NAND, ("k1", "k2"))
        c.add_gate("g", GateType.OR, ("f", "a"))
        c.set_outputs(["g"])
        oracle = buggy_sim_oracle()

        def fails(cand):
            return bool(oracle.check_circuit(cand, 0))

        result = shrink_circuit(c, fails)
        assert fails(result.circuit)
        assert result.shrunk_gates <= 2
