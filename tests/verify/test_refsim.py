"""The scalar reference interpreter agrees with the packed simulator."""

import pytest

from repro.benchcircuits.generator import random_circuit
from repro.netlist import Circuit, GateType
from repro.sim import simulate, truth_tables
from repro.sim.patterns import pattern_bits, random_words
from repro.verify import (
    buggy_gate_eval,
    ref_output_vector,
    ref_simulate_pattern,
    ref_truth_tables,
)

import random


def small_circuit():
    c = Circuit("small")
    a = c.add_input("a")
    b = c.add_input("b")
    d = c.add_gate("d", GateType.NAND, (a, b))
    e = c.add_gate("e", GateType.XOR, (d, a))
    c.add_gate("k", GateType.CONST1, ())
    f = c.add_gate("f", GateType.AND, (e, "k"))
    c.set_outputs([f])
    c.validate()
    return c


class TestScalarReference:
    def test_known_values(self):
        c = small_circuit()
        # a=1, b=1: d = NAND = 0, e = 0^1 = 1, f = 1&1 = 1
        v = ref_simulate_pattern(c, {"a": 1, "b": 1})
        assert v == {"a": 1, "b": 1, "d": 0, "e": 1, "k": 1, "f": 1}
        assert ref_output_vector(c, {"a": 1, "b": 1}) == [1]

    def test_missing_inputs_default_to_zero(self):
        c = small_circuit()
        assert (ref_simulate_pattern(c, {})
                == ref_simulate_pattern(c, {"a": 0, "b": 0}))

    def test_truth_tables_match_packed_engine(self):
        for seed in range(8):
            c = random_circuit(f"r{seed}", 5, 2, 18, seed=seed)
            assert ref_truth_tables(c) == truth_tables(c)

    def test_every_net_matches_packed_on_random_patterns(self):
        rng = random.Random(7)
        c = random_circuit("wide", 12, 2, 40, seed=3)
        n_pat = 32
        words = random_words(c.inputs, n_pat, rng)
        packed = simulate(c, words, n_pat)
        for p in range(n_pat):
            scalar = ref_simulate_pattern(
                c, pattern_bits(words, c.inputs, p)
            )
            for net in c.nets():
                assert scalar[net] == (packed[net] >> p) & 1

    def test_input_order_permutation(self):
        c = small_circuit()
        direct = ref_truth_tables(c)
        flipped = ref_truth_tables(c, input_order=["b", "a"])
        # XOR part is symmetric in a only via d; tables differ in general
        # but both must match the packed engine under the same order.
        assert flipped == truth_tables(c, input_order=["b", "a"])
        assert direct == truth_tables(c)

    def test_too_many_inputs_rejected(self):
        c = Circuit("big")
        for i in range(13):
            c.add_input(f"i{i}")
        c.add_gate("o", GateType.OR, tuple(f"i{i}" for i in range(13)))
        c.set_outputs(["o"])
        with pytest.raises(ValueError):
            ref_truth_tables(c)


class TestBuggyEval:
    def test_misreads_victim_type(self):
        evil = buggy_gate_eval(GateType.NAND, GateType.AND)
        assert evil(GateType.NAND, (1, 1)) == 1  # NAND read as AND
        assert evil(GateType.AND, (1, 1)) == 1   # other types untouched
        assert evil(GateType.OR, (0, 0)) == 0

    def test_identity_mutation_rejected(self):
        with pytest.raises(ValueError):
            buggy_gate_eval(GateType.AND, GateType.AND)

    def test_changes_reference_tables(self):
        c = small_circuit()
        healthy = ref_truth_tables(c)
        broken = ref_truth_tables(
            c, gate_eval=buggy_gate_eval(GateType.NAND, GateType.AND)
        )
        assert healthy != broken
