"""Each differential oracle: clean on healthy engines, sharp on broken ones."""

import pytest

from repro.benchcircuits.generator import random_circuit
from repro.faults import FaultSimulator, StuckFault, fault_universe
from repro.netlist import Circuit, GateType
from repro.sim import simulate
from repro.sim.patterns import random_words
from repro.verify import (
    ComparisonUnitOracle,
    FaultSimOracle,
    ResynthOracle,
    SimulatorOracle,
    buggy_gate_eval,
    default_oracles,
    inject_stuck_fault,
    spec_from_seed,
)

import random


class TestSimulatorOracle:
    def test_clean_on_healthy_engines(self):
        oracle = SimulatorOracle()
        for seed in range(6):
            c = random_circuit(f"c{seed}", 5, 2, 20, seed=seed)
            assert oracle.check_circuit(c, seed) == []

    def test_random_branch_clean(self):
        oracle = SimulatorOracle(exhaustive_inputs=4)  # force random mode
        c = random_circuit("c", 8, 2, 25, seed=11)
        assert oracle.check_circuit(c, 11) == []

    def test_catches_corrupted_reference(self):
        evil = SimulatorOracle(
            gate_eval=buggy_gate_eval(GateType.NAND, GateType.OR)
        )
        c = Circuit("nand1")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_gate("f", GateType.NAND, (a, b))
        c.set_outputs(["f"])
        violations = evil.check_circuit(c, 0)
        assert len(violations) == 1
        assert violations[0].oracle == "sim"
        assert violations[0].circuit is c

    def test_catches_in_random_mode(self):
        evil = SimulatorOracle(
            gate_eval=buggy_gate_eval(GateType.AND, GateType.OR),
            exhaustive_inputs=2,
        )
        c = Circuit("and1")
        ins = [c.add_input(f"i{k}") for k in range(5)]
        c.add_gate("f", GateType.AND, tuple(ins))
        c.set_outputs(["f"])
        assert evil.check_circuit(c, 1)


class TestFaultInjection:
    def circuit(self):
        c = Circuit("inj")
        a, b = c.add_input("a"), c.add_input("b")
        s = c.add_gate("s", GateType.AND, (a, b))   # fans out twice
        x = c.add_gate("x", GateType.XOR, (s, a))
        y = c.add_gate("y", GateType.NOR, (s, b))
        c.set_outputs([x, y])
        c.validate()
        return c

    def test_stem_fault_on_gate(self):
        c = self.circuit()
        faulty, outs = inject_stuck_fault(c, StuckFault("s", 1))
        assert outs == c.outputs
        assert faulty.gate("s").gtype is GateType.CONST1
        # a=0,b=0: good x=0, faulty x = XOR(1,0) = 1
        v = simulate(faulty, {"a": 0, "b": 0}, 1)
        assert v["x"] == 1

    def test_stem_fault_on_input_reroutes_readers(self):
        c = self.circuit()
        faulty, outs = inject_stuck_fault(c, StuckFault("a", 1))
        assert outs == c.outputs
        assert faulty.gate("a").gtype is GateType.INPUT  # interface kept
        assert all("a" not in faulty.gate(n).fanins for n in ("s", "x"))

    def test_branch_fault_hits_single_pin(self):
        c = self.circuit()
        fault = StuckFault("s", 0, reader="x", pin=0)
        faulty, _ = inject_stuck_fault(c, fault)
        assert faulty.gate("x").fanins[0].startswith("__sa_")
        assert faulty.gate("y").fanins[0] == "s"  # other branch untouched

    def test_input_that_is_also_output(self):
        c = Circuit("io")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_gate("f", GateType.OR, (a, b))
        c.set_outputs(["f", "a"])
        faulty, outs = inject_stuck_fault(c, StuckFault("a", 1))
        assert outs[0] == "f" and outs[1] != "a"
        v = simulate(faulty, {"a": 0, "b": 0}, 1)
        assert v[outs[1]] == 1  # the stuck value is observed at the PO


class TestFaultSimOracle:
    def test_clean_on_healthy_engine(self):
        oracle = FaultSimOracle()
        for seed in range(6):
            c = random_circuit(f"c{seed}", 5, 2, 20, seed=seed)
            assert oracle.check_circuit(c, seed) == []

    def test_brute_force_agrees_exhaustively_on_small_circuit(self):
        """Every fault, every mask — not just the oracle's sample."""
        c = random_circuit("x", 4, 2, 14, seed=5)
        rng = random.Random(1)
        n_pat = 16
        words = random_words(c.inputs, n_pat, rng)
        fsim = FaultSimulator(c)
        good = fsim.good_values(words, n_pat)
        good_out = [good[o] for o in c.outputs]
        oracle = FaultSimOracle(n_patterns=n_pat)
        for fault in fault_universe(c, collapse=False):
            packed = fsim.detection_word(fault, good, n_pat)
            brute = oracle._brute_force_mask(c, fault, words, n_pat, good_out)
            assert packed == brute, fault.describe()


class TestResynthOracle:
    def test_clean_on_healthy_procedures(self):
        oracle = ResynthOracle()
        for seed in (0, 3):
            c = random_circuit(f"c{seed}", 5, 2, 22, seed=seed)
            assert oracle.check_circuit(c, seed) == []

    def test_skips_oversized_circuits(self):
        oracle = ResynthOracle(max_inputs=4)
        c = random_circuit("big", 8, 2, 20, seed=0)
        assert oracle.check_circuit(c, 0) == []


class TestComparisonUnitOracle:
    def test_clean_on_healthy_construction(self):
        oracle = ComparisonUnitOracle()
        for seed in range(12):
            assert oracle.check_seed(seed) == []

    def test_spec_derivation_is_deterministic_and_valid(self):
        for seed in range(30):
            s1 = spec_from_seed(seed)
            s2 = spec_from_seed(seed)
            assert s1 == s2
            assert 0 <= s1.lower <= s1.upper < (1 << s1.n)


class TestDefaultOracles:
    def test_full_set(self):
        names = [o.name for o in default_oracles()]
        assert names == [
            "sim", "fault", "resynth", "unit", "incremental", "parallel",
            "resume", "memo", "sweep",
        ]

    def test_subset_and_unknown(self):
        assert [o.name for o in default_oracles(["fault"])] == ["fault"]
        with pytest.raises(ValueError):
            default_oracles(["nope"])
