"""The ``resume`` oracle: clean on correct code, sharp on corruption."""

import dataclasses

import repro.resynth
from repro.benchcircuits import random_circuit
from repro.verify import ResumeOracle, run_fuzz


class TestClean:
    def test_fuzz_seeds_report_no_violations(self):
        report = run_fuzz(oracles=[ResumeOracle()], seeds=6)
        assert report.ok
        assert report.checks_run["resume"] == 6

    def test_direct_check_is_clean(self):
        oracle = ResumeOracle()
        c = random_circuit("r", 7, 3, 30, seed=11)
        assert oracle.check_circuit(c, seed=11) == []

    def test_large_circuits_are_skipped(self):
        oracle = ResumeOracle(max_inputs=4)
        c = random_circuit("r", 9, 3, 30, seed=0)
        assert oracle.check_circuit(c, seed=0) == []


class TestTeeth:
    def test_corrupted_checkpoint_is_detected(self, monkeypatch):
        # Corrupt what deserialization returns: a checkpoint claiming 7
        # extra replacements must make the resumed report diverge from
        # the straight run, and the oracle must say so.
        real = repro.resynth.checkpoint_from_json

        def corrupting(text):
            ckpt = real(text)
            return dataclasses.replace(
                ckpt, replacements=ckpt.replacements + 7)

        monkeypatch.setattr(repro.resynth, "checkpoint_from_json",
                            corrupting)
        oracle = ResumeOracle()
        c = random_circuit("r", 7, 3, 30, seed=11)
        violations = oracle.check_circuit(c, seed=11)
        assert violations
        assert any("replacements" in v.message for v in violations)
