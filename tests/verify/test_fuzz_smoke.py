"""End-to-end fuzz driver smoke tests (the CI-integrated mode).

A small all-oracle run must come back clean; an injected gate-type
mutation must be caught, shrunk to a tiny witness and persisted as a
replayable artifact.  This is the pytest twin of ``repro fuzz``.
"""

import os

import pytest

from repro.netlist import GateType
from repro.verify import (
    FuzzConfig,
    SimulatorOracle,
    buggy_gate_eval,
    default_oracles,
    generate_case,
    load_artifact,
    replay_artifact,
    run_fuzz,
)


class TestGenerateCase:
    def test_deterministic(self):
        assert generate_case(4).structurally_equal(generate_case(4))

    def test_respects_config(self):
        config = FuzzConfig(min_inputs=3, max_inputs=4, min_gates=5,
                            max_gates=10, max_outputs=2)
        for seed in range(10):
            c = generate_case(seed, config)
            assert 2 <= len(c.inputs) <= 4  # sweep may drop unused inputs? no
            assert len(c.outputs) <= 2

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            FuzzConfig(min_inputs=1)
        with pytest.raises(ValueError):
            FuzzConfig(min_gates=0)


class TestSmokeRun:
    def test_all_oracles_clean(self):
        report = run_fuzz(seeds=6, seed_base=100)
        assert report.ok, report.summary()
        assert report.seeds_run == 6
        assert set(report.checks_run) == {
            "sim", "fault", "resynth", "unit", "incremental", "parallel",
            "resume", "memo", "sweep",
        }
        assert all(n == 6 for n in report.checks_run.values())

    def test_budget_required(self):
        with pytest.raises(ValueError):
            run_fuzz()

    def test_seconds_budget_terminates(self):
        report = run_fuzz(
            oracles=[SimulatorOracle()], seconds=1.0, seed_base=500
        )
        assert report.seeds_run >= 1
        assert report.ok


class TestInjectedMutation:
    """Issue acceptance: a gate-type mutation is caught and shrunk <= 10."""

    def run_injected(self, tmp_path, victim, impostor):
        oracle = SimulatorOracle(gate_eval=buggy_gate_eval(victim, impostor))
        return run_fuzz(
            oracles=[oracle], seeds=12, artifact_dir=str(tmp_path)
        )

    def test_caught_and_shrunk(self, tmp_path):
        report = self.run_injected(tmp_path, GateType.NAND, GateType.AND)
        assert not report.ok, "mutation was never detected"
        for finding in report.findings:
            assert finding.shrink is not None
            assert finding.shrink.shrunk_gates <= 10
            assert finding.artifact_path is not None
            assert os.path.exists(finding.artifact_path)

    def test_artifact_roundtrip_and_replay(self, tmp_path):
        report = self.run_injected(tmp_path, GateType.XOR, GateType.OR)
        assert not report.ok
        finding = report.findings[0]
        artifact = load_artifact(finding.artifact_path)
        assert artifact.oracle == "sim"
        assert artifact.circuit is not None
        assert artifact.circuit.structurally_equal(finding.shrink.circuit)
        # Replaying against the *healthy* oracles: the bug "is fixed", so
        # the artifact must come back clean — corpus-regression semantics.
        assert replay_artifact(artifact, default_oracles()) == []
        # Replaying against the still-broken oracle reproduces.
        broken = SimulatorOracle(
            gate_eval=buggy_gate_eval(GateType.XOR, GateType.OR)
        )
        assert replay_artifact(artifact, [broken])

    def test_artifact_bytes_deterministic(self, tmp_path):
        r1 = self.run_injected(tmp_path / "a", GateType.NOR, GateType.OR)
        r2 = self.run_injected(tmp_path / "b", GateType.NOR, GateType.OR)
        assert not r1.ok and not r2.ok
        b1 = open(r1.findings[0].artifact_path, "rb").read()
        b2 = open(r2.findings[0].artifact_path, "rb").read()
        assert b1 == b2
