"""The ``incremental`` oracle: clean on correct code, sharp on poisoned caches."""

from repro.analysis import AnalysisSession
from repro.netlist import CircuitBuilder
from repro.verify import (
    IncrementalOracle,
    generate_case,
    incremental_state_mismatch,
    run_fuzz,
)


def primed():
    b = CircuitBuilder("primed")
    a, c = b.inputs("a", "b")
    g1 = b.AND(a, c, name="g1")
    g2 = b.OR(g1, a, name="g2")
    b.outputs(g2)
    circ = b.build()
    circ.fanout_map()
    circ.topological_order()
    circ.levels()
    return circ


class TestMismatchDetector:
    def test_clean_circuit_reports_none(self):
        c = primed()
        with AnalysisSession(c) as s:
            s.labels()
            assert incremental_state_mismatch(c, s) is None

    def test_detects_poisoned_fanout(self):
        c = primed()
        c.fanout_map()["g1"].append("g2")  # phantom reader
        msg = incremental_state_mismatch(c)
        assert msg is not None and "fanout" in msg

    def test_detects_poisoned_levels(self):
        c = primed()
        c.levels()["g2"] += 1
        msg = incremental_state_mismatch(c)
        assert msg is not None and "levels" in msg

    def test_detects_poisoned_canonical_order(self):
        c = primed()
        order = c.topological_order()
        i = order.index("g1")
        j = order.index("g2")
        order[i], order[j] = order[j], order[i]
        msg = incremental_state_mismatch(c)
        assert msg is not None and "topological" in msg

    def test_detects_poisoned_labels(self):
        c = primed()
        with AnalysisSession(c) as s:
            s.labels()["g2"] += 5
            msg = incremental_state_mismatch(c, s)
            assert msg is not None and "labels" in msg


class TestOracleRuns:
    def test_clean_over_seed_range(self):
        oracle = IncrementalOracle()
        for seed in range(30):
            assert oracle.check_circuit(generate_case(seed), seed) == []

    def test_wired_into_fuzz_driver(self):
        report = run_fuzz(seeds=5, seed_base=7,
                          oracles=[IncrementalOracle()])
        assert report.ok, report.summary()
        assert report.checks_run == {"incremental": 5}
