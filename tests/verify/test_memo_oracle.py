"""The ``memo`` oracle: clean on correct code, sharp on corruption."""

import repro.memo.store
from repro.benchcircuits import random_circuit
from repro.verify import MemoOracle, run_fuzz


class TestClean:
    def test_fuzz_seeds_report_no_violations(self):
        report = run_fuzz(oracles=[MemoOracle()], seeds=4)
        assert report.ok
        assert report.checks_run["memo"] == 4

    def test_direct_check_is_clean(self):
        oracle = MemoOracle()
        c = random_circuit("m", 6, 3, 24, seed=7)
        assert oracle.check_circuit(c, seed=7) == []

    def test_large_circuits_are_skipped(self):
        oracle = MemoOracle(max_inputs=4)
        c = random_circuit("m", 9, 3, 30, seed=0)
        assert oracle.check_circuit(c, seed=0) == []


class TestTeeth:
    def test_lossy_stored_results_are_detected(self, monkeypatch):
        # Corrupt what entry decoding returns: a store that silently
        # forgets every identified position makes the warm legs find no
        # replacements where the baseline did, and the oracle must say
        # so.  (This is the failure mode the exact-value contract of
        # docs/MEMO.md forbids: a hit that is not the pure-function
        # result.)
        real = repro.memo.store._decode_result

        def lossy(value, n):
            _hits, tried = real(value, n)
            return ((), tried)

        monkeypatch.setattr(repro.memo.store, "_decode_result", lossy)
        oracle = MemoOracle()
        c = random_circuit("m", 6, 3, 24, seed=7)
        violations = oracle.check_circuit(c, seed=7)
        assert violations
        assert any(v.details.get("leg") in ("warm", "roundtrip", "jobs",
                                            "resume")
                   for v in violations)

    def test_dead_cache_is_detected(self, monkeypatch):
        # A store that records but never answers must trip the
        # hits-expected check even though every report stays correct.
        monkeypatch.setattr(
            repro.memo.store.MemoStore, "lookup",
            lambda self, *a, **kw: None,
        )
        oracle = MemoOracle()
        c = random_circuit("m", 6, 3, 24, seed=7)
        violations = oracle.check_circuit(c, seed=7)
        assert violations
        assert any("no hits" in v.message for v in violations)
