"""The determinism contract across fabric backends (docs/FABRIC.md).

A procedure run with ``fabric=`` must produce a report and netlist
bit-identical to the plain serial run — for any backend, at any shard
count.  The ``parallel`` fuzz oracle sweeps this across random circuits;
these tests pin one deliberate case per backend, including a remote leg
against a real in-process service server.
"""

import pytest

from repro.benchcircuits.suite import suite_circuit
from repro.comparison import identification_cache
from repro.fabric import SerialFabric
from repro.resynth import procedure2

#: Small knobs so the three runs stay seconds-scale.
KNOBS = dict(k=4, perm_budget=24, seed=3, max_passes=2, verify_patterns=0)

REPORT_FIELDS = ("objective", "k", "passes", "replacements",
                 "gates_before", "gates_after", "paths_before",
                 "paths_after")


def netlist_dump(circuit):
    return (
        [
            (net, circuit.gate(net).gtype.value,
             tuple(circuit.gate(net).fanins))
            for net in circuit.topological_order()
        ],
        list(circuit.outputs),
    )


@pytest.fixture(scope="module")
def baseline():
    identification_cache().clear()
    report = procedure2(suite_circuit("syn1423"), **KNOBS)
    identification_cache().clear()
    return report


def assert_identical(report, baseline):
    for field in REPORT_FIELDS:
        assert getattr(report, field) == getattr(baseline, field), field
    assert netlist_dump(report.circuit) == netlist_dump(baseline.circuit)


class TestFabricBitIdentity:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_serial_fabric_any_shard_count(self, baseline, shards):
        with SerialFabric(shards=shards) as fabric:
            report = procedure2(suite_circuit("syn1423"),
                                fabric=fabric, **KNOBS)
        identification_cache().clear()
        assert_identical(report, baseline)
        assert report.timings["fabric"] == "serial"

    def test_remote_fabric_against_real_server(self, baseline, tmp_path):
        from repro.fabric.remote import RemoteFabric
        from repro.service import ArtifactStore, ServiceServer

        server = ServiceServer(ArtifactStore(str(tmp_path / "store")),
                               task_workers=1)
        server.start()
        try:
            fabric = RemoteFabric([server.url, server.url], shards=2,
                                  heartbeat_timeout=60.0)
            report = procedure2(suite_circuit("syn1423"),
                                fabric=fabric, **KNOBS)
        finally:
            server.stop()
        identification_cache().clear()
        assert_identical(report, baseline)
        assert report.timings["fabric"] == "remote"
