"""RemoteFabric failure paths and the HTTP end-to-end loop.

The fake-client tests pin the work-stealing discipline in isolation —
redispatch of lost shards, bounded retry of poisoned tasks, ordering
under out-of-order completion, fleet death.  The end-to-end tests run a
real :class:`~repro.service.ServiceServer` (``task_workers=1``) plus,
for the dead-worker case, a raw TCP listener that accepts and
immediately closes connections — the harshest mid-shard death the
transport can produce.
"""

import socket
import threading
import time

import pytest

from repro.fabric import FabricExecutionError, FabricTask, SerialFabric
from repro.fabric.remote import RemoteFabric, RemoteTaskError
from repro.fabric.tasks import (
    TaskKind,
    decode_task,
    encode_result,
    register_task_kind,
    run_task,
)
from repro.obs import Registry


def _sleep_echo_run(payload):
    time.sleep(payload.get("delay", 0.0))
    return payload["value"]


register_task_kind(TaskKind(name="test-sleep-echo", run=_sleep_echo_run))


def identify_task(table, n, inject_crash=False):
    return FabricTask("identify", {
        "items": [(table, n)],
        "perm_budget": 24,
        "try_offset": True,
        "seed": 3,
        "max_specs": 4,
        "inject_crash": inject_crash,
    })


class LoopbackClient:
    """Executes task documents inline — the server's POST /tasks in
    miniature (per-task outcome rows, execution errors reported, never
    raised)."""

    def __init__(self, url, log=None):
        self.url = url
        self.log = log if log is not None else []

    def run_tasks(self, docs):
        rows = []
        for doc in docs:
            task = decode_task(doc)
            self.log.append((self.url, task.kind))
            try:
                rows.append({
                    "ok": True,
                    "result": encode_result(task.kind, run_task(task)),
                })
            except Exception as exc:  # noqa: BLE001 — server-side mimicry
                rows.append({"ok": False, "error": str(exc)})
        return {"results": rows}


class DeadClient:
    """Every request fails at the connection level (worker is gone)."""

    def __init__(self, url, log=None):
        self.url = url
        self.log = log if log is not None else []

    def run_tasks(self, docs):
        self.log.append((self.url, "dead"))
        raise ConnectionResetError("connection reset by peer")


def fabric_with(clients, **kw):
    """A RemoteFabric whose pullers use the given fake clients."""
    by_url = {client.url: client for client in clients}
    kw.setdefault("backoff_base", 0.001)
    return RemoteFabric(
        [client.url for client in clients],
        client_factory=lambda url, timeout: by_url[url],
        **kw,
    )


class TestWorkStealing:
    def test_results_come_back_in_task_order(self):
        # Task 0 is slow, task 1 instant; with two pullers the fast task
        # settles first, yet map() must restore task order.
        log = []
        clients = [LoopbackClient("http://a", log),
                   LoopbackClient("http://b", log)]
        tasks = [
            FabricTask("test-sleep-echo", {"delay": 0.2, "value": "slow"}),
            FabricTask("test-sleep-echo", {"delay": 0.0, "value": "fast"}),
            FabricTask("test-sleep-echo", {"delay": 0.0, "value": "also"}),
        ]
        fabric = fabric_with(clients)
        assert fabric.map(tasks) == ["slow", "fast", "also"]
        # Both workers pulled (the fast one stole the extra shard).
        assert {url for url, _kind in log} == {"http://a", "http://b"}

    def test_matches_serial_bit_for_bit(self):
        tasks = [identify_task(0b0110, 2), identify_task(0b1000, 2),
                 identify_task(0b10010110, 3), identify_task(0b0001, 2)]
        serial = SerialFabric().map(tasks)
        fabric = fabric_with([LoopbackClient("http://a"),
                              LoopbackClient("http://b")])
        assert fabric.map(tasks) == serial

    def test_repeated_url_means_two_pullers(self):
        log = []
        client = LoopbackClient("http://a", log)
        fabric = RemoteFabric(
            ["http://a", "http://a"],
            client_factory=lambda url, timeout: client,
        )
        tasks = [identify_task(0b0110, 2), identify_task(0b1000, 2)]
        assert fabric.map(tasks) == SerialFabric().map(tasks)
        assert fabric.parallelism == 2


class TestDeadWorker:
    def test_lost_shards_are_redispatched_bit_identically(self):
        # Worker a dies on every request mid-shard; its shards must be
        # stolen by b and the result must equal the serial reference.
        # b is gated until a has burned its failure budget, so the dead
        # worker deterministically holds (and loses) shards.
        registry = Registry()
        a_done = threading.Event()

        class CountingDeadClient(DeadClient):
            def run_tasks(self, docs):
                try:
                    return super().run_tasks(docs)
                finally:
                    if len(self.log) >= 2:
                        a_done.set()

        class GatedLoopbackClient(LoopbackClient):
            def run_tasks(self, docs):
                a_done.wait(timeout=10.0)
                return super().run_tasks(docs)

        clients = [CountingDeadClient("http://a"),
                   GatedLoopbackClient("http://b")]
        tasks = [identify_task(0b0110, 2), identify_task(0b1000, 2),
                 identify_task(0b10010110, 3)]
        fabric = fabric_with(clients, max_worker_failures=2,
                             registry=registry)
        assert fabric.map(tasks) == SerialFabric().map(tasks)
        assert fabric._dead == {0}
        assert fabric.live_workers() == ["http://b"]
        assert registry.counter_value("fabric_lost_shards_total") == 2
        assert registry.counter_value("fabric_dead_workers_total") == 1

    def test_dead_worker_stays_dead_across_rounds(self):
        clients = [DeadClient("http://a"), LoopbackClient("http://b")]
        fabric = fabric_with(clients, max_worker_failures=1)
        fabric.map([identify_task(0b0110, 2)])
        log_before = len(clients[0].log)
        fabric.map([identify_task(0b1000, 2)])
        # The dead worker was never contacted again.
        assert len(clients[0].log) == log_before

    def test_whole_fleet_dead_is_a_clean_error(self):
        fabric = fabric_with([DeadClient("http://a"), DeadClient("http://b")],
                             max_worker_failures=2)
        with pytest.raises(FabricExecutionError,
                           match="shard.*outstanding.*unreachable"):
            fabric.map([identify_task(0b0110, 2), identify_task(0b1000, 2)])
        with pytest.raises(FabricExecutionError,
                           match="no live remote workers left"):
            fabric.map([identify_task(0b0110, 2)])


class TestPoisonedTask:
    def test_bounded_retries_then_clean_error(self):
        log = []
        client = LoopbackClient("http://a", log)
        fabric = fabric_with([client], max_retries=2)
        with pytest.raises(FabricExecutionError) as err:
            fabric.map([identify_task(0b0110, 2, inject_crash=True)])
        assert "after 2 retries" in str(err.value)
        assert "injected worker crash" in str(err.value)
        assert isinstance(err.value.__cause__, RemoteTaskError)
        assert len(log) == 3  # first attempt + 2 retries

    def test_poisoned_task_does_not_poison_batch_mates(self):
        fabric = fabric_with([LoopbackClient("http://a")], max_retries=0)
        good = identify_task(0b0110, 2)
        rows = fabric.map_outcomes(
            [good, identify_task(0b1000, 2, inject_crash=True)])
        assert rows[0] == (True, SerialFabric().map([good])[0])
        ok, exc = rows[1]
        assert not ok and isinstance(exc, RemoteTaskError)

    def test_malformed_response_is_a_task_error(self):
        class GarbageClient:
            url = "http://a"

            def run_tasks(self, docs):
                return {"results": "not-a-list"}

        fabric = RemoteFabric(
            ["http://a"], max_retries=0,
            client_factory=lambda url, timeout: GarbageClient(),
        )
        rows = fabric.map_outcomes([identify_task(0b0110, 2)])
        ok, exc = rows[0]
        assert not ok and isinstance(exc, RemoteTaskError)
        assert "malformed task response" in str(exc)


class TestValidation:
    def test_needs_a_worker(self):
        with pytest.raises(ValueError):
            RemoteFabric([])

    def test_trailing_slash_is_normalized(self):
        fabric = RemoteFabric(
            ["http://a/"], client_factory=lambda url, timeout: None)
        assert fabric.workers == ["http://a"]

    def test_knob_validation(self):
        factory = lambda url, timeout: None  # noqa: E731
        with pytest.raises(ValueError):
            RemoteFabric(["http://a"], heartbeat_timeout=0,
                         client_factory=factory)
        with pytest.raises(ValueError):
            RemoteFabric(["http://a"], max_worker_failures=0,
                         client_factory=factory)


# --------------------------------------------------------------------- #
# end to end over real HTTP
# --------------------------------------------------------------------- #


@pytest.fixture()
def task_server(tmp_path):
    from repro.service import ArtifactStore, ServiceServer

    server = ServiceServer(ArtifactStore(str(tmp_path / "store")),
                           task_workers=1)
    server.start()
    yield server
    server.stop()


def accept_and_close_listener():
    """A TCP listener that kills every connection on arrival; returns
    ``(url, shutdown)``."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    sock.settimeout(0.1)
    stop = threading.Event()

    def loop():
        while not stop.is_set():
            try:
                conn, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.close()

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{sock.getsockname()[1]}"

    def shutdown():
        stop.set()
        thread.join(timeout=2.0)
        sock.close()

    return url, shutdown


class TestEndToEnd:
    def test_http_round_trip_matches_serial(self, task_server):
        tasks = [identify_task(0b0110, 2), identify_task(0b10010110, 3),
                 identify_task(0b1000, 2)]
        fabric = RemoteFabric([task_server.url], heartbeat_timeout=30.0)
        assert fabric.map(tasks) == SerialFabric().map(tasks)

    def test_worker_dies_mid_shard_report_bit_identical(self, task_server):
        # Real transports on both sides: the sink worker resets every
        # connection (the harshest mid-shard death); the live server is
        # gated until the sink has lost its shard, so the redispatch
        # path deterministically runs.
        from repro.service.client import ServiceClient

        sink_url, shutdown = accept_and_close_listener()
        sink_failed = threading.Event()

        class Gated:
            def __init__(self, inner, is_sink):
                self._inner = inner
                self._is_sink = is_sink

            def run_tasks(self, docs):
                if self._is_sink:
                    try:
                        return self._inner.run_tasks(docs)
                    finally:
                        sink_failed.set()
                sink_failed.wait(timeout=10.0)
                return self._inner.run_tasks(docs)

        try:
            tasks = [identify_task(0b0110, 2), identify_task(0b1000, 2),
                     identify_task(0b10010110, 3),
                     identify_task(0b0111, 2)]
            fabric = RemoteFabric(
                [sink_url, task_server.url],
                heartbeat_timeout=30.0, max_worker_failures=1,
                backoff_base=0.01,
                client_factory=lambda url, timeout: Gated(
                    ServiceClient(url, timeout=timeout),
                    url == sink_url),
            )
            assert fabric.map(tasks) == SerialFabric().map(tasks)
            assert fabric._dead == {0}
            assert fabric.live_workers() == [task_server.url]
        finally:
            shutdown()
