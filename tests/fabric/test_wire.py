"""The JSON wire format of fabric tasks (docs/FABRIC.md).

The contract: a payload/result that crosses the wire decodes back to
*exactly* the in-memory value — tables as arbitrary-precision ints,
signatures as nested tuples — and anything malformed is rejected with
:class:`ValueError` (the service decodes untrusted input).  Every
round-trip here goes through real ``json.dumps``/``json.loads``, not
just the codec pair, so nothing leans on types JSON cannot carry.
"""

import json

import pytest

from repro.fabric import FabricTask, decode_task, encode_task
from repro.fabric.tasks import task_kind
from repro.parallel.worker import extract_chunk, identify_chunk
from repro.benchcircuits import c17
from repro.resynth.candidates import enumerate_candidate_cones
from repro.sim import cone_signature


def wire(doc):
    """One real JSON round-trip."""
    return json.loads(json.dumps(doc))


def real_item():
    """A genuine ``(cone_signature, n)`` pair from c17 — nested tuples."""
    circuit = c17()
    for net in reversed(circuit.topological_order()):
        if not circuit.gate(net).fanins:
            continue
        for cone in enumerate_candidate_cones(circuit, net, 3):
            if cone.inputs:
                sig = cone_signature(circuit, cone.output, cone.members,
                                     cone.inputs)
                return sig, len(cone.inputs)
    raise AssertionError("c17 yielded no candidate cone")


IDENTIFY_KNOBS = dict(perm_budget=24, try_offset=True, seed=3, max_specs=4)


class TestTaskEnvelope:
    def test_round_trip(self):
        task = FabricTask("identify", {
            "items": [(0b0110, 2)], "inject_crash": False,
            **IDENTIFY_KNOBS,
        })
        assert decode_task(wire(encode_task(task))) == task

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="not an object"):
            decode_task([1, 2])

    def test_rejects_missing_kind(self):
        with pytest.raises(ValueError, match="kind is not a string"):
            decode_task({"payload": {}})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            decode_task({"kind": "nope", "payload": {}})


class TestExtractCodec:
    def test_payload_round_trip(self):
        sig, n = real_item()
        payload = {"items": [(sig, n)], "inject_crash": False}
        kind = task_kind("extract")
        decoded = kind.decode_payload(wire(kind.encode_payload(payload)))
        assert decoded == payload
        # Tuples were rebuilt as tuples, not left as lists.
        assert isinstance(decoded["items"][0][0], tuple)

    def test_decoded_payload_runs_identically(self):
        sig, n = real_item()
        payload = {"items": [(sig, n)], "inject_crash": False}
        kind = task_kind("extract")
        decoded = kind.decode_payload(wire(kind.encode_payload(payload)))
        assert (extract_chunk(decoded["items"])
                == extract_chunk(payload["items"]))

    def test_result_round_trip(self):
        rows = extract_chunk([real_item()])
        kind = task_kind("extract")
        assert kind.decode_result(wire(kind.encode_result(rows))) == rows

    def test_rejects_bad_signature_leaf(self):
        kind = task_kind("extract")
        with pytest.raises(ValueError, match="leaf has type"):
            kind.decode_payload(
                {"items": [[["AND", 1.5], 2]], "inject_crash": False})

    def test_rejects_bool_as_input_count(self):
        kind = task_kind("extract")
        with pytest.raises(ValueError, match="input count"):
            kind.decode_payload(
                {"items": [[["AND", 0], True]], "inject_crash": False})

    def test_rejects_non_items_payload(self):
        kind = task_kind("extract")
        with pytest.raises(ValueError):
            kind.decode_payload({"nope": []})


class TestIdentifyCodec:
    def test_big_table_survives_as_hex(self):
        # 2**100-scale tables exceed IEEE-754 exactness; JSON numbers
        # would silently round them, hex strings cannot.
        table = (1 << 100) + 12345
        payload = {"items": [(table, 7)], "inject_crash": False,
                   **IDENTIFY_KNOBS}
        kind = task_kind("identify")
        decoded = kind.decode_payload(wire(kind.encode_payload(payload)))
        assert decoded["items"][0] == (table, 7)

    def test_result_round_trip(self):
        rows = identify_chunk([(0b0110, 2), (0b10010110, 3)],
                              24, True, 3, 4)
        kind = task_kind("identify")
        assert kind.decode_result(wire(kind.encode_result(rows))) == rows

    def test_rejects_table_out_of_range(self):
        kind = task_kind("identify")
        with pytest.raises(ValueError, match="out of range"):
            kind.decode_payload({
                "items": [[format(1 << 16, "x"), 2]],
                "inject_crash": False, **IDENTIFY_KNOBS,
            })

    def test_rejects_table_as_number(self):
        kind = task_kind("identify")
        with pytest.raises(ValueError, match="hex string"):
            kind.decode_payload({
                "items": [[6, 2]], "inject_crash": False, **IDENTIFY_KNOBS,
            })

    def test_rejects_missing_knob(self):
        kind = task_kind("identify")
        bad = {"items": [["6", 2]], "inject_crash": False,
               **IDENTIFY_KNOBS}
        del bad["seed"]
        with pytest.raises(ValueError, match="seed"):
            kind.decode_payload(bad)

    def test_rejects_non_permutation_hit(self):
        kind = task_kind("identify")
        with pytest.raises(ValueError, match="not a permutation"):
            kind.decode_result([["6", 2, [[[0, 0], 0, 1, False]], 5]])

    def test_rejects_interval_out_of_range(self):
        kind = task_kind("identify")
        with pytest.raises(ValueError, match="out of range"):
            kind.decode_result([["6", 2, [[[0, 1], 0, 4, False]], 5]])

    def test_rejects_non_bool_complement(self):
        kind = task_kind("identify")
        with pytest.raises(ValueError, match="complement"):
            kind.decode_result([["6", 2, [[[0, 1], 0, 1, 1]], 5]])

    def test_rejects_non_int_tried(self):
        kind = task_kind("identify")
        with pytest.raises(ValueError, match="tried-count"):
            kind.decode_result([["6", 2, [], "many"]])


class TestResynthCellCodec:
    """The whole-cell kind: payload is a job spec, result a report."""

    def cell_payload(self, **kw):
        from repro.io import circuit_to_json
        from repro.service import JobSpec

        spec = JobSpec(netlist=json.loads(circuit_to_json(c17())),
                       k=3, seed=1, perm_budget=20, max_passes=1, jobs=1)
        payload = {"spec": spec.to_doc()}
        payload.update(kw)
        return payload

    def test_payload_round_trip(self):
        kind = task_kind("resynth_cell")
        payload = self.cell_payload()
        decoded = kind.decode_payload(wire(kind.encode_payload(payload)))
        assert decoded == payload

    def test_memo_path_round_trip(self):
        kind = task_kind("resynth_cell")
        payload = self.cell_payload(memo="/tmp/memo-cache")
        decoded = kind.decode_payload(wire(kind.encode_payload(payload)))
        assert decoded["memo"] == "/tmp/memo-cache"

    def test_decode_canonicalizes_defaulted_spec_fields(self):
        kind = task_kind("resynth_cell")
        sparse = {"spec": {"format": "repro-jobspec",
                           "circuit": "syn1423", "k": 3}}
        decoded = kind.decode_payload(wire(sparse))
        from repro.service import spec_from_doc

        assert decoded["spec"] == spec_from_doc(sparse["spec"]).to_doc()

    def test_rejects_missing_spec(self):
        kind = task_kind("resynth_cell")
        with pytest.raises(ValueError, match="spec"):
            kind.decode_payload({"memo": "/tmp/x"})

    def test_rejects_invalid_spec(self):
        kind = task_kind("resynth_cell")
        bad = self.cell_payload()
        bad["spec"]["procedure"] = "procedure9"
        with pytest.raises(ValueError):
            kind.decode_payload(bad)

    def test_rejects_non_string_memo(self):
        kind = task_kind("resynth_cell")
        with pytest.raises(ValueError, match="memo"):
            kind.decode_payload(self.cell_payload(memo=7))

    def test_result_round_trip_through_real_run(self):
        from repro.comparison import identification_cache

        kind = task_kind("resynth_cell")
        identification_cache().clear()
        result = kind.run(self.cell_payload())
        assert kind.decode_result(wire(result)) == result
        assert result["gates_before"] == 6

    def test_rejects_malformed_result(self):
        kind = task_kind("resynth_cell")
        with pytest.raises(ValueError, match="report"):
            kind.decode_result({"format": "repro-report"})
        with pytest.raises(ValueError, match="not an object"):
            kind.decode_result([1, 2])

    def test_full_task_envelope_round_trip(self):
        task = FabricTask("resynth_cell", self.cell_payload())
        again = decode_task(wire(encode_task(task)))
        assert again.kind == task.kind
        assert again.payload == task.payload
