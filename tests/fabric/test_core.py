"""Fabric base machinery: ordering, retries, error shape, lifecycle.

These tests drive the backends through a throwaway ``test-echo`` task
kind (registered here, never shipped) so the retry loop and ordering
guarantee are pinned independently of the production extract/identify
kinds — those are exercised via :class:`ProcessFabric` below, which
needs kinds the pool's child processes can import.
"""

import pytest

from repro.fabric import (
    Fabric,
    FabricExecutionError,
    FabricTask,
    ProcessFabric,
    SerialFabric,
    TaskKind,
    register_task_kind,
    run_task,
    task_kind_names,
)
from repro.obs import Registry
from repro.parallel.worker import identify_chunk

#: Attempt log for the flaky kind, keyed by test-chosen token.
_ATTEMPTS = {}


def _echo_run(payload):
    if payload.get("error"):
        raise RuntimeError(payload["error"])
    return payload["value"]


def _flaky_run(payload):
    token = payload["token"]
    _ATTEMPTS[token] = _ATTEMPTS.get(token, 0) + 1
    if _ATTEMPTS[token] <= payload["failures"]:
        raise RuntimeError(f"flaky failure {_ATTEMPTS[token]}")
    return payload["value"]


register_task_kind(TaskKind(name="test-echo", run=_echo_run))
register_task_kind(TaskKind(name="test-flaky", run=_flaky_run))


def echo(value, error=None):
    return FabricTask("test-echo", {"value": value, "error": error})


def identify_task(table, n, inject_crash=False):
    """A real production task, cheap enough for pool tests."""
    return FabricTask("identify", {
        "items": [(table, n)],
        "perm_budget": 24,
        "try_offset": True,
        "seed": 3,
        "max_specs": 4,
        "inject_crash": inject_crash,
    })


class TestFabricTask:
    def test_kind_must_be_nonempty_string(self):
        with pytest.raises(ValueError):
            FabricTask("")
        with pytest.raises(ValueError):
            FabricTask(7)

    def test_production_kinds_are_registered(self):
        names = task_kind_names()
        assert "extract" in names and "identify" in names

    def test_run_task_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            run_task(FabricTask("no-such-kind"))


class TestSerialFabric:
    def test_map_preserves_task_order(self):
        fabric = SerialFabric()
        assert fabric.map([echo(3), echo(1), echo(2)]) == [3, 1, 2]

    def test_empty_batch(self):
        assert SerialFabric().map([]) == []
        assert SerialFabric().map_outcomes([]) == []

    def test_map_outcomes_reports_per_task(self):
        fabric = SerialFabric()
        rows = fabric.map_outcomes(
            [echo(1), echo(None, error="boom"), echo(3)])
        assert rows[0] == (True, 1)
        ok, exc = rows[1]
        assert not ok and isinstance(exc, RuntimeError)
        assert rows[2] == (True, 3)

    def test_map_failure_is_one_clean_error(self):
        fabric = SerialFabric()
        with pytest.raises(FabricExecutionError) as err:
            fabric.map([echo(1), echo(None, error="boom"), echo(3)])
        message = str(err.value)
        assert "1 of 3 task(s) failed on the serial fabric" in message
        assert "after 0 retries" in message
        assert "task 1" in message
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_bounded_retry_recovers_flaky_task(self):
        registry = Registry()
        fabric = SerialFabric(max_retries=2, registry=registry)
        task = FabricTask("test-flaky", {
            "token": "recovers", "failures": 2, "value": 42})
        assert fabric.map([echo(1), task]) == [1, 42]
        assert _ATTEMPTS["recovers"] == 3
        assert registry.counter_value("fabric_task_retries_total") == 2
        # Only the failing task was retried, not its healthy batch-mate.
        assert registry.counter_value("fabric_tasks_total") == 2

    def test_retry_budget_is_bounded(self):
        registry = Registry()
        fabric = SerialFabric(max_retries=1, registry=registry)
        task = FabricTask("test-flaky", {
            "token": "exhausted", "failures": 5, "value": 0})
        with pytest.raises(FabricExecutionError, match="after 1 retry"):
            fabric.map([task])
        assert _ATTEMPTS["exhausted"] == 2
        assert registry.counter_value("fabric_failed_tasks_total") == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SerialFabric(max_retries=-1)
        with pytest.raises(ValueError):
            SerialFabric(shards=0)


class TestShardCount:
    def test_zero_items(self):
        assert SerialFabric().shard_count(0) == 0

    def test_parallelism_times_chunk_factor(self):
        assert SerialFabric().shard_count(100) == 4
        fabric = ProcessFabric(3)
        try:
            assert fabric.shard_count(100) == 12
            assert fabric.shard_count(100, chunk_factor=2) == 6
        finally:
            fabric.close()

    def test_fixed_shards_win(self):
        assert SerialFabric(shards=3).shard_count(100) == 3

    def test_bounded_by_item_count(self):
        assert SerialFabric(shards=5).shard_count(2) == 2
        assert SerialFabric().shard_count(1) == 1


class TestProcessFabric:
    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ProcessFabric(0)

    def test_pool_is_lazy_and_close_is_idempotent(self):
        fabric = ProcessFabric(2)
        assert fabric._executor is None
        fabric.close()
        fabric.close()
        assert fabric._executor is None

    def test_matches_serial_results(self):
        tasks = [identify_task(0b0110, 2), identify_task(0b1000, 2),
                 identify_task(0b10010110, 3)]
        serial = SerialFabric().map(tasks)
        with ProcessFabric(2) as fabric:
            assert fabric.map(tasks) == serial
        assert serial == [identify_chunk([(0b0110, 2)], 24, True, 3, 4),
                          identify_chunk([(0b1000, 2)], 24, True, 3, 4),
                          identify_chunk([(0b10010110, 3)], 24, True, 3, 4)]

    def test_poisoned_task_is_a_clean_error(self):
        with ProcessFabric(2) as fabric:
            with pytest.raises(FabricExecutionError) as err:
                fabric.map([identify_task(0b0110, 2),
                            identify_task(0b1000, 2, inject_crash=True)])
        assert "task 1" in str(err.value)
        assert "injected worker crash" in str(err.value)

    def test_context_manager_closes_pool(self):
        with ProcessFabric(2) as fabric:
            fabric.map([identify_task(0b0110, 2)])
            assert fabric._executor is not None
        assert fabric._executor is None


class TestBaseClass:
    def test_run_round_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Fabric().map([echo(1)])
