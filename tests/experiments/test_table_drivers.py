"""Unit tests for the table drivers, decoupled from the heavy suite.

The artifact accessors are monkeypatched to small fixture circuits so the
drivers' row assembly, accounting and rendering are tested in milliseconds;
the real suite runs live in ``benchmarks/``.
"""

import pytest

from repro.benchcircuits import c17, paper_f2_sop
from repro.experiments import tables as tables_mod
from repro.netlist import two_input_gate_count
from repro.resynth import procedure2


@pytest.fixture
def tiny_world(monkeypatch):
    """Patch every artifact accessor to fixture circuits."""
    base = paper_f2_sop()
    optimized = procedure2(base, k=6).circuit

    monkeypatch.setattr(tables_mod, "original_circuit", lambda name: base)
    monkeypatch.setattr(
        tables_mod, "proc2_best", lambda name: (optimized, 6)
    )
    monkeypatch.setattr(tables_mod, "proc2_redrem", lambda name: optimized)
    monkeypatch.setattr(
        tables_mod, "proc3_best", lambda name: (optimized, 6)
    )
    monkeypatch.setattr(tables_mod, "rambo_circuit", lambda name: base)
    monkeypatch.setattr(
        tables_mod, "rambo_proc2_circuit", lambda name, k=6: optimized
    )
    return base, optimized


class TestTable2Driver:
    def test_rows_and_render(self, tiny_world):
        base, optimized = tiny_world
        res = tables_mod.table2(circuits=["fake1", "fake2"])
        assert len(res.rows) == 2
        row = res.rows[0]
        assert row.gates_orig == two_input_gate_count(base)
        assert row.gates_modified == two_input_gate_count(optimized)
        text = res.render()
        assert "Table 2" in text and "fake1" in text


class TestTable3Driver:
    def test_rows(self, tiny_world):
        res = tables_mod.table3(circuits=["fakeA"])
        assert len(res.rows) == 1
        assert res.rows[0].k == 6
        assert "RAMBO_C" in res.render()


class TestTable4Driver:
    def test_mapping_runs(self, tiny_world):
        res = tables_mod.table4(circuits=["fakeA"])
        assert len(res.original_vs_proc2) == 1
        a = res.original_vs_proc2[0]
        assert a.literals_base > 0
        assert "Table 4(a)" in res.render()
        assert "Table 4(b)" in res.render()


class TestTable5Driver:
    def test_rows(self, tiny_world):
        base, optimized = tiny_world
        res = tables_mod.table5(circuits=["fakeX"])
        row = res.rows[0]
        assert row.inputs == len(base.inputs)
        assert row.paths_modified <= row.paths_orig
        assert "Table 5" in res.render()


class TestTable6Driver:
    def test_campaigns_and_render(self, tiny_world):
        res = tables_mod.table6(
            circuits=["fakeY"], max_patterns=256, batch_size=64
        )
        row = res.rows[0]
        assert row.faults_orig > 0
        assert row.remain_orig >= 0
        assert "Table 6" in res.render()


class TestTable7Driver:
    def test_pairs_and_render(self, tiny_world):
        res = tables_mod.table7(
            circuit_name="fakeZ", max_patterns=512, plateau_window=200,
            batch_size=64,
        )
        assert [r.version for r in res.rows] == ["original", "RAMBO_C"]
        for row in res.rows:
            assert row.faults_modified <= row.faults_orig
        assert "Table 7" in res.render()
