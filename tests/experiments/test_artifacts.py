"""Tests for artifact disk-caching plumbing (no heavy builds)."""

import os

import pytest

from repro.benchcircuits import c17
from repro.experiments import artifacts
from repro.io.json_io import load_json


class TestDeriveCache:
    def test_derive_builds_once_then_loads(self, tmp_path, monkeypatch):
        monkeypatch.setattr(artifacts, "DERIVED_DIR", str(tmp_path))
        calls = []

        def builder():
            calls.append(1)
            return c17()

        first = artifacts._derive("c17test", "stage", builder)
        assert calls == [1]
        assert os.path.exists(str(tmp_path / "c17test.stage.json"))
        second = artifacts._derive("c17test", "stage", builder)
        assert calls == [1]  # served from disk
        assert first.structurally_equal(second)

    def test_cache_file_is_valid_netlist(self, tmp_path, monkeypatch):
        monkeypatch.setattr(artifacts, "DERIVED_DIR", str(tmp_path))
        artifacts._derive("c17test", "stage", c17)
        loaded = load_json(str(tmp_path / "c17test.stage.json"))
        loaded.validate()
        assert loaded.name == "c17test"

    def test_clear_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setattr(artifacts, "DERIVED_DIR", str(tmp_path))
        artifacts._derive("a", "s1", c17)
        artifacts._derive("b", "s2", c17)
        removed = artifacts.clear_disk_cache()
        assert removed == 2
        assert not any(
            fn.endswith(".json") for fn in os.listdir(str(tmp_path))
        )
