"""Tests for the Table 1 driver (cheap; the heavier tables are exercised by
integration tests and the benchmark harness)."""

from repro.experiments import table1


class TestTable1:
    def test_rows_cover_all_seven_faults(self):
        res = table1()
        assert len(res.rows) == 7
        labels = {r[0] for r in res.rows}
        assert "x1,free" in labels
        assert "x2,geq" in labels and "x2,leq" in labels
        assert "x4,geq" in labels and "x4,leq" in labels

    def test_matches_paper_values(self):
        res = table1()
        by_label = dict(res.rows)
        assert by_label["x1,free"] == {"x2": "000", "x3": "111", "x4": "111"}
        assert by_label["x2,geq"] == {"x1": "111", "x3": "000", "x4": "000"}
        assert by_label["x3,leq"] == {"x1": "111", "x2": "111", "x4": "000"}

    def test_render_contains_transitions(self):
        assert "0x1, 1x0" in table1().render()

    def test_spec_is_the_papers(self):
        res = table1()
        assert (res.spec.lower, res.spec.upper) == (11, 12)
        assert res.spec.n_free == 1
