"""Tests for table rendering."""

from repro.experiments import render_table


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(
            ["name", "count"],
            [("alpha", 12345), ("b", 7)],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "12,345" in text
        assert all(len(l) == len(lines[1]) or l == "Demo"
                   for l in lines if l.strip())

    def test_none_renders_empty(self):
        text = render_table(["a"], [(None,)])
        assert text.splitlines()[-1].strip() == ""

    def test_floats_fixed_precision(self):
        text = render_table(["x"], [(1.23456,)])
        assert "1.23" in text

    def test_det_over_faults_right_aligned(self):
        text = render_table(["df"], [("7,304/522,624",)])
        assert "7,304/522,624" in text
