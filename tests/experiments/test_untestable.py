"""Tests for the fault-population accounting and per-fault profiling."""

from repro.comparison import ComparisonSpec, build_unit
from repro.experiments import TestabilityProfile, profile_circuit
from repro.experiments.untestable import UntestableProfileResult
from repro.netlist import CircuitBuilder


class TestProfileCircuit:
    def test_comparison_unit_fully_witnessed(self):
        unit = build_unit(ComparisonSpec(("a", "b", "c", "d"), 5, 10))
        p = profile_circuit(unit, samples=30, seed=1)
        # every path fault of a unit is robustly testable
        assert p.witnessed == p.sampled
        assert p.proved_untestable == 0
        assert p.witnessed_fraction == 1.0
        assert p.estimated_untestable == 0

    def test_untestable_paths_proved(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        n = b.NOT(a)
        g = b.OR(a, n, name="g")
        b.outputs(g)
        c = b.build()
        p = profile_circuit(c, samples=10, seed=2)
        assert p.witnessed == 0
        assert p.proved_untestable == p.sampled


class TestAccounting:
    def _result(self, fo, do, fm, dm):
        return UntestableProfileResult("x", fo, do, fm, dm)

    def test_claim_holds_when_detected_rises(self):
        r = self._result(1000, 50, 400, 60)
        assert r.removed == 600
        assert r.undetected_reduction == 610
        assert r.claim_holds

    def test_claim_fails_when_detected_drops_hard(self):
        r = self._result(1000, 50, 400, 20)
        assert not r.claim_holds

    def test_render_mentions_verdict(self):
        r = self._result(1000, 50, 400, 60)
        assert "MORE than" in r.render()
