"""Tests for the RAMBO_C-style redundancy addition and removal baseline."""

import random

import pytest

from repro.baselines import rambo_c
from repro.benchcircuits import random_circuit
from repro.benchcircuits.suite import interval_decode_sop
from repro.netlist import CircuitBuilder, two_input_gate_count
from repro.sim import outputs_equal, random_words


def rar_fixture(seed=21):
    """A mid-size circuit with enough reconvergence for RAR to chew on."""
    from repro.atpg import remove_redundancies
    raw = random_circuit("rarfix", 12, 6, 90, seed=seed)
    return remove_redundancies(raw).circuit


class TestRambo:
    def test_function_preserved(self):
        c = rar_fixture()
        rep = rambo_c(c, max_rounds=1, wire_sample=40)
        rng = random.Random(1)
        w = random_words(c.inputs, 2048, rng)
        assert outputs_equal(c, rep.circuit, w, 2048)

    def test_gate_count_never_increases(self):
        c = rar_fixture()
        rep = rambo_c(c, max_rounds=1, wire_sample=40)
        assert rep.gates_after <= rep.gates_before
        assert rep.gate_reduction == rep.gates_before - rep.gates_after

    def test_deterministic(self):
        c = rar_fixture()
        a = rambo_c(c, max_rounds=1, wire_sample=25, seed=3)
        b = rambo_c(c, max_rounds=1, wire_sample=25, seed=3)
        assert a.circuit.structurally_equal(b.circuit)
        assert a.additions_accepted == b.additions_accepted

    def test_interface_preserved(self):
        c = rar_fixture()
        rep = rambo_c(c, max_rounds=1, wire_sample=40)
        assert rep.circuit.inputs == c.inputs
        assert rep.circuit.outputs == c.outputs

    def test_input_not_mutated(self):
        c = rar_fixture()
        snap = c.copy()
        rambo_c(c, max_rounds=1, wire_sample=25)
        assert c.structurally_equal(snap)

    def test_report_rounds_bounded(self):
        c = rar_fixture()
        rep = rambo_c(c, max_rounds=2, wire_sample=25)
        assert 1 <= rep.rounds <= 2
