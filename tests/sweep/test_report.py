"""Pareto dominance, front construction and report round-trips."""

import json

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.sweep import (
    SweepSpec,
    build_sweep_report,
    cell_row,
    dominates,
    pareto_front,
    sweep_report_from_doc,
)


class TestDominance:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1, 1), (2, 2, 2))

    def test_better_on_one_equal_elsewhere(self):
        assert dominates((1, 2, 2), (2, 2, 2))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((2, 2, 2), (2, 2, 2))

    def test_tradeoff_points_incomparable(self):
        assert not dominates((1, 3, 1), (3, 1, 1))
        assert not dominates((3, 1, 1), (1, 3, 1))


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front([(5, 5, 5)]) == [0]

    def test_dominated_point_dropped(self):
        assert pareto_front([(1, 1, 1), (2, 2, 2)]) == [0]

    def test_tradeoff_points_all_kept_in_order(self):
        assert pareto_front([(3, 1, 1), (1, 3, 1), (2, 2, 1)]) == [0, 1, 2]

    def test_equal_triples_all_kept(self):
        # Dropping either would make the front depend on expansion order.
        assert pareto_front([(2, 2, 2), (2, 2, 2), (3, 3, 3)]) == [0, 1]

    def test_matches_brute_force_scan(self):
        import random

        rng = random.Random(7)
        points = [(rng.randint(0, 4), rng.randint(0, 4), rng.randint(0, 4))
                  for _ in range(40)]
        expected = [i for i, p in enumerate(points)
                    if not any(dominates(q, p)
                               for j, q in enumerate(points) if j != i)]
        assert pareto_front(points) == expected


def tiny_spec():
    netlist = json.loads(circuit_to_json(c17()))
    return SweepSpec(circuits=(netlist,), procedures=("procedure2",),
                     ks=(3, 4), seeds=(1,), perm_budget=20, max_passes=1)


def fake_report_doc(gates_after):
    doc = json.loads(circuit_to_json(c17()))
    return {
        "objective": "procedure2",
        "gates_before": 6, "gates_after": gates_after,
        "paths_before": 11, "paths_after": 11,
        "replacements": 0, "passes": 1, "mutations": 0,
        "total_seconds": 0.5,
        "circuit": doc,
    }


class TestBuildReport:
    def test_rows_in_cell_order_with_front(self):
        spec = tiny_spec()
        cells = spec.cells()
        docs = {cells[0].cell_id: fake_report_doc(5),
                cells[1].cell_id: fake_report_doc(6)}
        report = build_sweep_report(spec, docs)
        assert [r["cell_id"] for r in report.rows] == \
            [c.cell_id for c in cells]
        # Same netlist, same depth; fewer gates dominates.
        assert report.front == {"c17": [cells[0].cell_id]}
        assert [r["cell_id"] for r in report.front_rows()] == \
            [cells[0].cell_id]

    def test_missing_cell_raises_key_error(self):
        spec = tiny_spec()
        cells = spec.cells()
        with pytest.raises(KeyError):
            build_sweep_report(spec, {cells[0].cell_id: fake_report_doc(5)})

    def test_row_has_every_comparable_field(self):
        from repro.sweep import SWEEP_ROW_NUMBER_FIELDS

        spec = tiny_spec()
        cell = spec.cells()[0]
        row = cell_row(cell, fake_report_doc(5))
        for field in SWEEP_ROW_NUMBER_FIELDS:
            assert field in row
        assert "wall_s" in row and "wall_s" not in SWEEP_ROW_NUMBER_FIELDS

    def test_doc_round_trip(self):
        spec = tiny_spec()
        docs = {c.cell_id: fake_report_doc(5) for c in spec.cells()}
        report = build_sweep_report(spec, docs)
        again = sweep_report_from_doc(json.loads(report.to_json()))
        assert again == report

    def test_from_doc_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            sweep_report_from_doc({"format": "repro-report"})
        with pytest.raises(ValueError):
            sweep_report_from_doc("not an object")

    def test_render_stars_front_members(self):
        spec = tiny_spec()
        cells = spec.cells()
        docs = {cells[0].cell_id: fake_report_doc(5),
                cells[1].cell_id: fake_report_doc(6)}
        text = build_sweep_report(spec, docs).render()
        lines = text.splitlines()
        starred = [ln for ln in lines if ln.startswith("*")]
        assert len(starred) == 1 and " 3 " in starred[0]
        assert "1 of 2 cells" in lines[-1]
