"""SweepRunner durability: checkpoints, resume, directory ownership.

Cheap real runs over c17 (inline netlist, tiny budgets) — every test
executes genuine resynthesis cells, so the bit-identity assertions are
about the real pipeline, not mocks.
"""

import json
import os

import pytest

from repro.benchcircuits import c17
from repro.comparison import identification_cache
from repro.io import circuit_to_json
from repro.obs import Registry
from repro.sweep import (
    SWEEP_ROW_NUMBER_FIELDS,
    SweepError,
    SweepRunner,
    SweepSpec,
)


def tiny_spec(**kw):
    netlist = json.loads(circuit_to_json(c17()))
    defaults = dict(circuits=(netlist,), procedures=("procedure2",),
                    ks=(3, 4), seeds=(1,), perm_budget=20, max_passes=1)
    defaults.update(kw)
    return SweepSpec(**defaults)


class TestRun:
    def test_writes_spec_cells_and_report(self, tmp_path):
        spec = tiny_spec()
        runner = SweepRunner(spec, str(tmp_path / "s"))
        report = runner.run()
        assert json.load(open(os.path.join(runner.root, "sweep.json"))) \
            == spec.to_doc()
        for cell in spec.cells():
            assert os.path.exists(runner.cell_path(cell.cell_id))
        assert os.path.exists(runner.report_path)
        on_disk = json.load(open(runner.report_path))
        assert on_disk == report.to_doc()
        assert len(report.rows) == 2

    def test_metrics_and_span(self, tmp_path):
        registry = Registry()
        spec = tiny_spec()
        SweepRunner(spec, str(tmp_path / "s"),
                    registry=registry).run()
        counters = registry.snapshot()["counters"]
        assert counters["sweep_runs_total"] == 1
        assert counters["sweep_cells_total"] == 2

    def test_rejects_directory_of_different_grid(self, tmp_path):
        root = tmp_path / "s"
        SweepRunner(tiny_spec(), str(root)).run()
        other = tiny_spec(ks=(3,))
        with pytest.raises(SweepError, match="different sweep"):
            SweepRunner(other, str(root)).run()


class TestResume:
    def test_resume_runs_only_missing_cells(self, tmp_path):
        spec = tiny_spec()
        root = str(tmp_path / "s")
        first = SweepRunner(spec, root).run()
        victim = spec.cells()[0]
        os.unlink(os.path.join(root, "cells", f"{victim.cell_id}.json"))
        os.unlink(os.path.join(root, "report.json"))
        executed = []
        identification_cache().clear()
        registry = Registry()
        second = SweepRunner(spec, root, registry=registry).run(
            resume=True,
            on_cell=lambda cell, doc: executed.append(cell.cell_id))
        assert executed == [victim.cell_id]
        assert registry.snapshot()["counters"][
            "sweep_cells_resumed_total"] == 1
        for a, b in zip(first.rows, second.rows):
            for field in SWEEP_ROW_NUMBER_FIELDS:
                assert a[field] == b[field]
        assert second.front == first.front

    def test_torn_cell_file_reruns(self, tmp_path):
        spec = tiny_spec()
        root = str(tmp_path / "s")
        SweepRunner(spec, root).run()
        victim = spec.cells()[1]
        path = os.path.join(root, "cells", f"{victim.cell_id}.json")
        with open(path, "w") as fh:
            fh.write('{"format": "repro-re')  # torn mid-write
        executed = []
        identification_cache().clear()
        SweepRunner(spec, root).run(
            resume=True,
            on_cell=lambda cell, doc: executed.append(cell.cell_id))
        assert executed == [victim.cell_id]

    def test_without_resume_every_cell_reruns(self, tmp_path):
        spec = tiny_spec()
        root = str(tmp_path / "s")
        SweepRunner(spec, root).run()
        executed = []
        identification_cache().clear()
        SweepRunner(spec, root).run(
            on_cell=lambda cell, doc: executed.append(cell.cell_id))
        assert len(executed) == 2

    def test_fully_finished_sweep_resumes_to_no_work(self, tmp_path):
        spec = tiny_spec()
        root = str(tmp_path / "s")
        first = SweepRunner(spec, root).run()
        executed = []
        second = SweepRunner(spec, root).run(
            resume=True,
            on_cell=lambda cell, doc: executed.append(cell.cell_id))
        assert executed == []
        assert second.to_doc() == first.to_doc()  # wall clocks stored


class TestBackends:
    def test_process_fabric_matches_serial(self, tmp_path):
        from repro.fabric import ProcessFabric

        spec = tiny_spec()
        identification_cache().clear()
        serial = SweepRunner(spec, str(tmp_path / "a")).run()
        identification_cache().clear()
        fabric = ProcessFabric(2)
        try:
            parallel = SweepRunner(spec, str(tmp_path / "b"),
                                   fabric=fabric).run()
        finally:
            fabric.close()
        for a, b in zip(serial.rows, parallel.rows):
            for field in SWEEP_ROW_NUMBER_FIELDS:
                assert a[field] == b[field]
        assert parallel.front == serial.front
