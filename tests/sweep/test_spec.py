"""The sweep grid model: expansion order, content addresses, validation.

A sweep spec is a content-addressed grid whose cells ARE job specs —
``cell_id == job_id`` is the dedup contract everything else (service
joins, standalone-vs-sweep bit identity) rests on, so it is pinned here
explicitly alongside the canonical expansion order and the shape
validation the HTTP layer maps to 400s.
"""

import json

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.service import JobSpec
from repro.sweep import (
    SweepSpec,
    SweepSpecError,
    sweep_from_doc,
    sweep_from_json,
)


def c17_doc():
    return json.loads(circuit_to_json(c17()))


def grid_doc(**kw):
    doc = {
        "format": "repro-sweepspec",
        "circuits": ["syn1423"],
        "procedures": ["procedure2", "procedure3"],
        "ks": [4, 5],
        "seeds": [1, 2],
        "perm_budget": 50,
        "max_passes": 3,
    }
    doc.update(kw)
    return doc


class TestExpansion:
    def test_canonical_order_circuits_outermost_seeds_innermost(self):
        spec = sweep_from_doc(grid_doc())
        cells = spec.cells()
        assert len(cells) == 1 * 2 * 2 * 2
        keys = [(c.circuit, c.procedure, c.k, c.seed) for c in cells]
        assert keys == [
            ("syn1423", "procedure2", 4, 1),
            ("syn1423", "procedure2", 4, 2),
            ("syn1423", "procedure2", 5, 1),
            ("syn1423", "procedure2", 5, 2),
            ("syn1423", "procedure3", 4, 1),
            ("syn1423", "procedure3", 4, 2),
            ("syn1423", "procedure3", 5, 1),
            ("syn1423", "procedure3", 5, 2),
        ]
        assert [c.index for c in cells] == list(range(8))

    def test_cell_id_is_the_job_spec_content_address(self):
        spec = sweep_from_doc(grid_doc(ks=[4], seeds=[1],
                                       procedures=["procedure2"]))
        (cell,) = spec.cells()
        standalone = JobSpec(circuit="syn1423", procedure="procedure2",
                             k=4, seed=1, perm_budget=50, max_passes=3,
                             jobs=1)
        assert cell.cell_id == cell.spec.job_id == standalone.job_id

    def test_cells_are_single_job(self):
        spec = sweep_from_doc(grid_doc())
        assert all(cell.spec.jobs == 1 for cell in spec.cells())

    def test_inline_netlist_circuit(self):
        spec = sweep_from_doc(grid_doc(circuits=[c17_doc()]))
        cells = spec.cells()
        assert all(cell.circuit == "c17" for cell in cells)
        assert cells[0].spec.netlist == c17_doc()

    def test_all_cell_ids_distinct(self):
        spec = sweep_from_doc(grid_doc(circuits=["syn1423", c17_doc()]))
        ids = [cell.cell_id for cell in spec.cells()]
        assert len(set(ids)) == len(ids)


class TestContentAddress:
    def test_sweep_id_stable_across_doc_round_trip(self):
        spec = sweep_from_doc(grid_doc())
        again = sweep_from_doc(spec.to_doc())
        assert again == spec
        assert again.sweep_id == spec.sweep_id
        assert spec.sweep_id.startswith("s")
        assert len(spec.sweep_id) == 13

    def test_defaulted_fields_do_not_change_the_id(self):
        explicit = grid_doc(verify_patterns=0, gate_weight=10.0)
        assert (sweep_from_doc(explicit).sweep_id
                == sweep_from_doc(grid_doc()).sweep_id)

    def test_different_grids_different_ids(self):
        a = sweep_from_doc(grid_doc())
        b = sweep_from_doc(grid_doc(ks=[4, 6]))
        assert a.sweep_id != b.sweep_id

    def test_json_round_trip(self):
        spec = sweep_from_doc(grid_doc())
        assert sweep_from_json(spec.to_json()) == spec


class TestValidation:
    def reject(self, doc, fragment):
        with pytest.raises(SweepSpecError, match=fragment):
            sweep_from_doc(doc)

    def test_not_an_object(self):
        self.reject(["syn1423"], "JSON object")

    def test_wrong_format(self):
        self.reject(grid_doc(format="repro-jobspec"), "format")

    def test_unknown_field(self):
        self.reject(grid_doc(jobs=4), "unknown grid field")

    def test_empty_circuits(self):
        self.reject(grid_doc(circuits=[]), "circuits")

    def test_unknown_suite_circuit(self):
        self.reject(grid_doc(circuits=["c9999"]), "unknown suite circuit")

    def test_inline_circuit_must_be_netlist_doc(self):
        self.reject(grid_doc(circuits=[{"name": "x"}]), "repro-netlist")

    def test_circuit_neither_name_nor_doc(self):
        self.reject(grid_doc(circuits=[42]), "circuits\\[0\\]")

    def test_duplicate_axis_entries(self):
        self.reject(grid_doc(ks=[4, 4]), "duplicates")
        self.reject(grid_doc(circuits=["syn1423", "syn1423"]), "duplicates")

    def test_unknown_procedure(self):
        self.reject(grid_doc(procedures=["procedure9"]),
                    "unknown procedure")

    def test_k_out_of_range(self):
        self.reject(grid_doc(ks=[1]), "ks")
        self.reject(grid_doc(ks=[17]), "ks")

    def test_bool_is_not_an_integer(self):
        self.reject(grid_doc(ks=[True]), "integers")
        self.reject(grid_doc(perm_budget=True), "integer")

    def test_knob_ranges(self):
        self.reject(grid_doc(perm_budget=0), "perm_budget")
        self.reject(grid_doc(max_passes=0), "max_passes")
        self.reject(grid_doc(gate_weight=-1), "gate_weight")

    def test_invalid_json_text(self):
        with pytest.raises(SweepSpecError, match="not valid JSON"):
            sweep_from_json("{nope")

    def test_defaults_fill_in(self):
        spec = sweep_from_doc({"circuits": ["syn1423"]})
        assert spec.procedures == ("procedure2", "procedure3")
        assert spec.ks == (5,)
        assert spec.seeds == (0,)
