"""Tests for PODEM: generated tests really detect, untestability is real.

Oracles: the fault simulator checks every generated test; exhaustive
simulation refutes or confirms untestability claims on small circuits.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg import PodemEngine, PodemStatus, eval_gate3, podem
from repro.benchcircuits import c17, full_adder, random_circuit
from repro.faults import FaultSimulator, StuckFault, all_faults
from repro.netlist import CircuitBuilder, GateType
from repro.sim import exhaustive_words


def exhaustively_testable(circuit, fault):
    """Ground truth by exhaustive simulation (inputs <= 16)."""
    sim = FaultSimulator(circuit)
    n = len(circuit.inputs)
    words = exhaustive_words(circuit.inputs)
    good = sim.good_values(words, 1 << n)
    return sim.detection_word(fault, good, 1 << n) != 0


class TestEvalGate3:
    def test_and_with_x(self):
        assert eval_gate3(GateType.AND, (1, 2)) == 2
        assert eval_gate3(GateType.AND, (0, 2)) == 0

    def test_or_with_x(self):
        assert eval_gate3(GateType.OR, (1, 2)) == 1
        assert eval_gate3(GateType.OR, (0, 2)) == 2

    def test_xor_with_x(self):
        assert eval_gate3(GateType.XOR, (1, 2)) == 2
        assert eval_gate3(GateType.XNOR, (1, 0)) == 0

    def test_not_with_x(self):
        assert eval_gate3(GateType.NOT, (2,)) == 2
        assert eval_gate3(GateType.NOT, (0,)) == 1

    def test_constants(self):
        assert eval_gate3(GateType.CONST0, ()) == 0
        assert eval_gate3(GateType.CONST1, ()) == 1


class TestTestGeneration:
    def test_simple_and(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        res = podem(c, StuckFault("g", 0))
        assert res.found
        assert res.test == {"a": 1, "b": 1}

    def test_every_c17_fault(self):
        c = c17()
        for fault in all_faults(c):
            res = podem(c, fault)
            assert res.status is PodemStatus.TESTABLE, fault.describe()
            from repro.faults import serial_detects
            assert serial_detects(c, fault, res.test), fault.describe()

    def test_full_adder_faults(self):
        c = full_adder()
        from repro.faults import serial_detects
        for fault in all_faults(c):
            res = podem(c, fault)
            assert res.found, fault.describe()
            assert serial_detects(c, fault, res.test)

    def test_branch_fault_generation(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        s = b.OR(a, x, name="s")
        g1 = b.AND(s, a, name="g1")
        g2 = b.NOT(s, name="g2")
        b.outputs(g1, g2)
        c = b.build()
        fault = StuckFault("s", 0, reader="g1", pin=0)
        res = podem(c, fault)
        assert res.found
        from repro.faults import serial_detects
        assert serial_detects(c, fault, res.test)

    def test_fault_on_missing_net_raises(self):
        with pytest.raises(ValueError):
            podem(c17(), StuckFault("nope", 0))


class TestUntestability:
    def test_classic_redundancy(self):
        # g2 = a OR (a AND b): the AND's s-a-0 is undetectable.
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x, name="g1")
        g2 = b.OR(g1, a, name="g2")
        b.outputs(g2)
        c = b.build()
        res = podem(c, StuckFault("g1", 0))
        assert res.status is PodemStatus.UNTESTABLE

    def test_constant_blocked_activation(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        one = b.CONST1()
        g = b.OR(a, one, name="g")  # g stuck at 1 is the normal value
        b.outputs(g)
        c = b.build()
        res = podem(c, StuckFault("g", 1))
        assert res.status is PodemStatus.UNTESTABLE
        # ...while g s-a-0 is trivially testable? No: g is constant 1, the
        # fault flips it everywhere -> testable by any pattern.
        assert podem(c, StuckFault("g", 0)).found

    @given(st.integers(0, 4000))
    @settings(max_examples=12, deadline=None)
    def test_verdicts_match_exhaustive_truth(self, seed):
        c = random_circuit("r", 7, 3, 30, seed=seed)
        engine = PodemEngine(c, max_backtracks=100_000)
        rng = random.Random(seed)
        faults = all_faults(c)
        rng.shuffle(faults)
        for fault in faults[:12]:
            res = engine.run(fault)
            truth = exhaustively_testable(c, fault)
            if res.status is PodemStatus.TESTABLE:
                assert truth, fault.describe()
                from repro.faults import serial_detects
                assert serial_detects(c, fault, res.test)
            elif res.status is PodemStatus.UNTESTABLE:
                assert not truth, fault.describe()
            # aborted: no claim to check


class TestSearchBudget:
    def test_abort_reported(self):
        # A tiny backtrack budget forces aborts on nontrivial faults.
        c = random_circuit("r", 10, 4, 60, seed=1)
        engine = PodemEngine(c, max_backtracks=0)
        statuses = set()
        for fault in all_faults(c)[:40]:
            statuses.add(engine.run(fault).status)
        assert PodemStatus.ABORTED in statuses or (
            statuses <= {PodemStatus.TESTABLE, PodemStatus.UNTESTABLE}
        )

    def test_backtracks_counted(self):
        c = c17()
        res = podem(c, all_faults(c)[0])
        assert res.backtracks >= 0
