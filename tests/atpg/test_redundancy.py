"""Tests for redundancy identification and removal."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg import (
    classify_faults,
    is_irredundant,
    remove_redundancies,
)
from repro.benchcircuits import c17, random_circuit
from repro.netlist import CircuitBuilder, GateType
from repro.sim import outputs_equal, random_words


def redundant_or_absorb():
    """g2 = a OR (a AND b) == a; the AND gate is redundant logic."""
    b = CircuitBuilder("absorb")
    a, x = b.inputs("a", "b")
    g1 = b.AND(a, x, name="g1")
    g2 = b.OR(g1, a, name="g2")
    b.outputs(g2)
    return b.build()


class TestClassifyFaults:
    def test_c17_irredundant(self):
        cls = classify_faults(c17())
        assert cls.is_irredundant
        assert not cls.aborted
        assert len(cls.testable) > 0

    def test_absorption_redundancy_found(self):
        cls = classify_faults(redundant_or_absorb())
        assert any(f.net == "g1" and f.value == 0 for f in cls.untestable)

    def test_tests_recorded_for_podem_faults(self):
        # With zero random patterns, every fault goes through PODEM and
        # testable ones get recorded tests.
        cls = classify_faults(c17(), random_patterns=0)
        assert cls.tests
        from repro.faults import serial_detects
        for fault, test in cls.tests.items():
            assert serial_detects(c17(), fault, test)


class TestRemoveRedundancies:
    def test_absorption_removed(self):
        c = redundant_or_absorb()
        rep = remove_redundancies(c)
        assert rep.any_removed
        # the whole circuit collapses to a wire from a
        assert len(rep.circuit.logic_gates()) <= 1
        rng = random.Random(0)
        w = random_words(c.inputs, 64, rng)
        assert outputs_equal(c, rep.circuit, w, 64)

    def test_input_not_mutated(self):
        c = redundant_or_absorb()
        snapshot = c.copy()
        remove_redundancies(c)
        assert c.structurally_equal(snapshot)

    def test_interface_preserved(self):
        c = redundant_or_absorb()
        rep = remove_redundancies(c)
        assert rep.circuit.inputs == c.inputs
        assert rep.circuit.outputs == c.outputs

    def test_irredundant_circuit_untouched(self):
        c = c17()
        rep = remove_redundancies(c)
        assert not rep.any_removed
        assert rep.circuit.structurally_equal(c)

    @given(st.integers(0, 3000))
    @settings(max_examples=8, deadline=None)
    def test_function_preserved_random(self, seed):
        c = random_circuit("r", 8, 4, 50, seed=seed)
        rep = remove_redundancies(c)
        rng = random.Random(seed + 1)
        w = random_words(c.inputs, 1024, rng)
        assert outputs_equal(c, rep.circuit, w, 1024)

    @given(st.integers(0, 3000))
    @settings(max_examples=5, deadline=None)
    def test_result_is_irredundant(self, seed):
        c = random_circuit("r", 7, 3, 35, seed=seed)
        rep = remove_redundancies(c)
        assert is_irredundant(rep.circuit, max_backtracks=50_000)

    def test_gate_count_never_increases(self):
        from repro.netlist import two_input_gate_count
        for seed in range(4):
            c = random_circuit("r", 8, 4, 45, seed=seed)
            rep = remove_redundancies(c)
            assert (two_input_gate_count(rep.circuit)
                    <= two_input_gate_count(c))
