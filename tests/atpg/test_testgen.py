"""Tests for complete stuck-at test-set generation and compaction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg import generate_test_set, verify_test_set
from repro.benchcircuits import c17, full_adder, random_circuit
from repro.comparison import ComparisonSpec, build_unit
from repro.faults import fault_universe


class TestGeneration:
    def test_c17_complete(self):
        ts = generate_test_set(c17(), seed=1)
        assert ts.complete
        assert ts.untestable == 0
        assert ts.fault_coverage == 1.0
        detected, total = verify_test_set(c17(), ts)
        assert detected == total

    def test_deterministic(self):
        a = generate_test_set(c17(), seed=3)
        b = generate_test_set(c17(), seed=3)
        assert a.patterns == b.patterns

    def test_comparison_units_fully_testable(self):
        # Section 3: comparison units are fully testable for stuck-at
        # faults (when inputs are independently controlled).
        for lower, upper in ((11, 12), (3, 9), (5, 7)):
            unit = build_unit(
                ComparisonSpec(("a", "b", "c", "d"), lower, upper)
            )
            ts = generate_test_set(unit, seed=0)
            assert ts.untestable == 0, (lower, upper)
            assert ts.fault_coverage == 1.0

    @given(st.integers(0, 2000))
    @settings(max_examples=6, deadline=None)
    def test_coverage_verified_random(self, seed):
        c = random_circuit("r", 8, 4, 40, seed=seed)
        ts = generate_test_set(c, seed=seed, max_backtracks=50_000)
        detected, total = verify_test_set(c, ts)
        # verification must agree with the generator's accounting
        assert detected == ts.detected
        assert total == ts.total_faults

    def test_redundant_circuit_reports_untestable(self):
        from repro.netlist import CircuitBuilder
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x, name="g1")
        g2 = b.OR(g1, a, name="g2")
        b.outputs(g2)
        ts = generate_test_set(b.build(), seed=0)
        assert ts.untestable > 0
        assert ts.complete


class TestCompaction:
    def test_compaction_preserves_coverage(self):
        c = full_adder()
        full = generate_test_set(c, seed=2, compact=False)
        compact = generate_test_set(c, seed=2, compact=True)
        d1, _ = verify_test_set(c, full)
        d2, _ = verify_test_set(c, compact)
        assert d1 == d2
        assert len(compact.patterns) <= len(full.patterns)

    def test_as_assignments(self):
        ts = generate_test_set(c17(), seed=1)
        assignments = ts.as_assignments()
        assert len(assignments) == len(ts.patterns)
        assert all(set(a) == set(ts.inputs) for a in assignments)

    def test_empty_test_set_verification(self):
        from repro.atpg.testgen import TestSet
        c = c17()
        empty = TestSet("c17", c.inputs, [], 0, 0, 0, 28)
        assert verify_test_set(c, empty) == (0, len(fault_universe(c)))
