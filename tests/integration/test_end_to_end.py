"""End-to-end integration tests on the smallest suite circuit.

These exercise the full paper pipeline — irredundant circuit, Procedure 2,
redundancy removal, testability campaigns — with scaled-down budgets so the
suite stays fast; the benchmark harness runs the full-scale versions.
"""

import random

import pytest

from repro.analysis import count_paths
from repro.atpg import is_irredundant, remove_redundancies
from repro.benchcircuits.suite import suite_circuit
from repro.faults import random_stuck_at_campaign
from repro.netlist import two_input_gate_count
from repro.pdf import random_pdf_campaign
from repro.resynth import procedure2, procedure3
from repro.sim import outputs_equal, random_words


@pytest.fixture(scope="module")
def original():
    return suite_circuit("syn1423")


@pytest.fixture(scope="module")
def modified(original):
    from repro.experiments import proc2_circuit
    return proc2_circuit("syn1423", 5)


class TestPipeline:
    def test_original_is_irredundant(self, original):
        assert is_irredundant(original)

    def test_procedure2_improves_both_metrics(self, original, modified):
        assert two_input_gate_count(modified) <= two_input_gate_count(original)
        assert count_paths(modified) < count_paths(original)
        # the paper's headline: large path reductions
        assert count_paths(modified) <= 0.7 * count_paths(original)

    def test_equivalence(self, original, modified):
        rng = random.Random(0)
        w = random_words(original.inputs, 4096, rng)
        assert outputs_equal(original, modified, w, 4096)

    def test_redundancy_removal_after_p2_is_minor(self, original, modified):
        rep = remove_redundancies(modified, random_patterns=1024)
        before = two_input_gate_count(modified)
        after = two_input_gate_count(rep.circuit)
        assert after <= before
        assert before - after <= max(4, before // 20)  # "minor effect"

    def test_stuck_at_testability_unchanged(self, original, modified):
        budget = 4096
        res_o = random_stuck_at_campaign(
            original, seed=7, max_patterns=budget, stop_when_complete=False)
        res_m = random_stuck_at_campaign(
            modified, seed=7, max_patterns=budget, stop_when_complete=False)
        cov_o = res_o.coverage
        cov_m = res_m.coverage
        assert cov_m >= cov_o - 0.03

    def test_pdf_testability_improves(self, original, modified):
        kwargs = dict(seed=13, max_patterns=3_000, plateau_window=1_500)
        res_o = random_pdf_campaign(original, **kwargs)
        res_m = random_pdf_campaign(modified, **kwargs)
        assert res_m.total_faults < res_o.total_faults
        assert res_m.coverage > res_o.coverage
        assert res_m.undetected < res_o.undetected

    def test_procedure3_cuts_paths_at_least_as_much(self, original, modified):
        p3 = procedure3(original, k=5)
        assert p3.paths_after <= count_paths(modified)
