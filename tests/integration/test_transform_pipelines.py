"""Cross-module pipeline properties: every transform composition is safe.

These tie together the netlist transforms, the simulators and the formal
equivalence checker: any pipeline of function-preserving transforms must
be provably equivalent to the original, and metric-neutral transforms must
leave the paper's measures untouched.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import count_paths
from repro.benchcircuits import random_circuit
from repro.netlist import (
    decompose_two_input,
    formally_equivalent,
    simplify,
    structural_hash,
    two_input_gate_count,
)
from repro.sim import outputs_equal, random_words


@given(st.integers(0, 3000))
@settings(max_examples=8, deadline=None)
def test_full_cleanup_pipeline_formally_equivalent(seed):
    original = random_circuit("r", 7, 3, 35, seed=seed)
    work = decompose_two_input(original)
    structural_hash(work)
    simplify(work)
    work.validate()
    assert formally_equivalent(original, work).equivalent


@given(st.integers(0, 3000))
@settings(max_examples=10, deadline=None)
def test_decompose_then_strash_keeps_metrics_bounded(seed):
    original = random_circuit("r", 8, 4, 45, seed=seed)
    work = decompose_two_input(original)
    assert two_input_gate_count(work) == two_input_gate_count(original)
    assert count_paths(work) == count_paths(original)
    # strash only merges: both measures can only shrink
    structural_hash(work)
    assert two_input_gate_count(work) <= two_input_gate_count(original)
    assert count_paths(work) <= count_paths(original)


@given(st.integers(0, 3000))
@settings(max_examples=8, deadline=None)
def test_transform_order_does_not_matter_functionally(seed):
    original = random_circuit("r", 7, 3, 35, seed=seed)
    a = decompose_two_input(original)
    simplify(a)
    structural_hash(a)
    b = original.copy()
    structural_hash(b)
    simplify(b)
    b = decompose_two_input(b)
    rng = random.Random(seed)
    words = random_words(original.inputs, 512, rng)
    assert outputs_equal(a, b, words, 512)


@given(st.integers(0, 3000))
@settings(max_examples=6, deadline=None)
def test_resynthesis_then_cleanup_still_equivalent(seed):
    from repro.resynth import procedure2

    original = random_circuit("r", 7, 3, 30, seed=seed)
    rep = procedure2(original, k=5)
    work = rep.circuit
    structural_hash(work)
    simplify(work)
    assert formally_equivalent(original, work).equivalent
