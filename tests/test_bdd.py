"""Tests for the ROBDD engine: canonicity, counting, equivalence."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, bdd_equivalent, circuit_bdds, on_set_size
from repro.benchcircuits import (
    c17,
    paper_f1_impl1,
    paper_f1_impl2,
    paper_f2_sop,
    random_circuit,
)
from repro.netlist import Gate, GateType
from repro.sim import truth_table, tt_minterms, truth_tables


class TestBasics:
    def test_terminals(self):
        bdd = BDD(["a"])
        assert bdd.ZERO == 0 and bdd.ONE == 1
        assert bdd.sat_count(bdd.ONE) == 2
        assert bdd.sat_count(bdd.ZERO) == 0

    def test_var(self):
        bdd = BDD(["a", "b"])
        a = bdd.var("a")
        assert bdd.evaluate(a, {"a": 1, "b": 0}) == 1
        assert bdd.evaluate(a, {"a": 0, "b": 1}) == 0
        assert bdd.sat_count(a) == 2

    def test_canonicity(self):
        bdd = BDD(["a", "b"])
        a, b = bdd.var("a"), bdd.var("b")
        f1 = bdd.apply_and(a, b)
        f2 = bdd.apply_not(bdd.apply_or(bdd.apply_not(a), bdd.apply_not(b)))
        assert f1 == f2  # De Morgan collapses to the same node

    def test_xor_and_double_negation(self):
        bdd = BDD(["a", "b"])
        a, b = bdd.var("a"), bdd.var("b")
        x = bdd.apply_xor(a, b)
        assert bdd.apply_not(bdd.apply_not(x)) == x
        assert bdd.sat_count(x) == 2

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            BDD(["a", "a"])


class TestAgainstTruthTables:
    @given(st.integers(0, 4000))
    @settings(max_examples=15, deadline=None)
    def test_circuit_bdds_match_simulation(self, seed):
        c = random_circuit("r", 6, 3, 25, seed=seed)
        bdd, nodes = circuit_bdds(c)
        tables = truth_tables(c, input_order=c.inputs)
        for o in c.output_set:
            assert bdd.to_truth_table(nodes[o]) == tables[o]

    def test_on_set_size_f2(self):
        assert on_set_size(paper_f2_sop()) == 6  # the six minterms

    @given(st.integers(0, 4000))
    @settings(max_examples=10, deadline=None)
    def test_sat_count_matches_popcount(self, seed):
        c = random_circuit("r", 6, 3, 25, seed=seed)
        bdd, nodes = circuit_bdds(c)
        tables = truth_tables(c, input_order=c.inputs)
        for o in c.output_set:
            assert bdd.sat_count(nodes[o]) == bin(tables[o]).count("1")


class TestEquivalence:
    def test_paper_f1_forms_equivalent(self):
        assert bdd_equivalent(paper_f1_impl1(), paper_f1_impl2())

    def test_detects_difference(self):
        a = c17()
        b = c17().copy()
        g = b.gate("23")
        b.replace_gate(Gate("23", GateType.AND, g.fanins))
        assert not bdd_equivalent(a, b)

    def test_agrees_with_podem_equivalence(self):
        from repro.netlist import formally_equivalent
        from repro.resynth import procedure2
        for seed in (1, 2, 3):
            c = random_circuit("r", 7, 3, 30, seed=seed)
            opt = procedure2(c, k=5).circuit
            by_bdd = bdd_equivalent(c, opt)
            by_podem = formally_equivalent(c, opt).equivalent
            assert by_bdd == by_podem == True  # noqa: E712

    def test_size_metric(self):
        bdd = BDD(["a", "b", "c"])
        a, b, c3 = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = bdd.apply_or(bdd.apply_and(a, b), c3)
        assert bdd.size(f) >= 2
        assert bdd.size(bdd.ONE) == 0
