"""Key canonicalization properties of :mod:`repro.memo.keys`.

The persistent class key must be invariant under input permutation (so
permuted variants of a function share one entry file) and must separate
any two tables that differ in a single minterm (their ON-counts differ,
so they can never be confused at the file level — and inside a file the
exact-table sub-entries separate everything else).
"""

import random

import pytest

from repro.memo import memo_key_doc, memo_key_id, table_column_counts
from repro.sim.truthtable import tt_permute

KNOBS = dict(perm_budget=40, try_offset=True, seed=3, max_specs=4)


def random_table(rng, n):
    return rng.getrandbits(1 << n)


def naive_column_counts(table, n):
    """ON-column counts by walking every minterm bit by bit."""
    counts = [0] * n
    for minterm in range(1 << n):
        if not (table >> minterm) & 1:
            continue
        for pos in range(n):
            if (minterm >> (n - pos - 1)) & 1:
                counts[pos] += 1
    return counts


class TestColumnCounts:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_matches_naive_reference(self, n):
        rng = random.Random(100 + n)
        for _ in range(20):
            table = random_table(rng, n)
            assert table_column_counts(table, n) == \
                naive_column_counts(table, n)

    def test_empty_and_full_tables(self):
        assert table_column_counts(0, 4) == [0, 0, 0, 0]
        assert table_column_counts((1 << 16) - 1, 4) == [8, 8, 8, 8]


class TestPermutationInvariance:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_permuted_variants_share_the_class_key(self, n):
        rng = random.Random(200 + n)
        for _ in range(30):
            table = random_table(rng, n)
            perm = list(range(n))
            rng.shuffle(perm)
            variant = tt_permute(table, n, tuple(perm))
            doc = memo_key_doc(table, n, **KNOBS)
            doc_variant = memo_key_doc(variant, n, **KNOBS)
            assert doc == doc_variant
            assert memo_key_id(doc) == memo_key_id(doc_variant)

    def test_all_permutations_of_one_table(self):
        import itertools

        n, table = 4, 0b0110_1001_1100_0011
        base = memo_key_id(memo_key_doc(table, n, **KNOBS))
        for perm in itertools.permutations(range(n)):
            variant = tt_permute(table, n, perm)
            assert memo_key_id(memo_key_doc(variant, n, **KNOBS)) == base


class TestSeparation:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_one_minterm_flip_never_shares_a_key(self, n):
        rng = random.Random(300 + n)
        for _ in range(30):
            table = random_table(rng, n)
            minterm = rng.randrange(1 << n)
            flipped = table ^ (1 << minterm)
            doc = memo_key_doc(table, n, **KNOBS)
            doc_flipped = memo_key_doc(flipped, n, **KNOBS)
            assert doc != doc_flipped, (
                f"n={n} table={table:#x} minterm={minterm}")
            assert memo_key_id(doc) != memo_key_id(doc_flipped)

    def test_search_knobs_separate_keys(self):
        table, n = 0b1010_0101_1111_0000, 4
        base = memo_key_doc(table, n, **KNOBS)
        for field, changed in [
            ("perm_budget", dict(KNOBS, perm_budget=41)),
            ("try_offset", dict(KNOBS, try_offset=False)),
            ("seed", dict(KNOBS, seed=4)),
            ("max_specs", dict(KNOBS, max_specs=5)),
        ]:
            assert memo_key_doc(table, n, **changed) != base, field

    def test_different_n_same_bits_separate(self):
        # The same integer read as a 2-input vs padded 3-input table.
        assert memo_key_doc(0b1010, 2, **KNOBS) != \
            memo_key_doc(0b1010, 3, **KNOBS)


class TestKeyIdFormat:
    def test_id_shape_is_stable(self):
        kid = memo_key_id(memo_key_doc(0b0110, 2, **KNOBS))
        assert kid.startswith("m")
        assert len(kid) == 17
        int(kid[1:], 16)  # hex tail

    def test_id_is_deterministic_across_dict_order(self):
        doc = memo_key_doc(0b0110, 2, **KNOBS)
        shuffled = dict(reversed(list(doc.items())))
        assert memo_key_id(doc) == memo_key_id(shuffled)
