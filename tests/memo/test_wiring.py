"""End-to-end memo wiring: procedures, parallel primer, CLI, service.

Pins the invariant the whole subsystem rests on: a memo-assisted sweep
is bit-identical to a memo-less one — the store only changes the wall
clock (the ``memo`` differential oracle fuzzes this; here the wiring
paths are exercised deterministically).
"""

import pytest

from repro.benchcircuits import random_circuit
from repro.comparison import identification_cache
from repro.memo import MemoStore
from repro.obs import Registry
from repro.resynth import REPORT_NUMBER_FIELDS, procedure2, procedure3
from repro.verify import netlist_dump

KNOBS = dict(k=4, perm_budget=24, seed=3, max_passes=2, verify_patterns=0)


@pytest.fixture
def circuit():
    return random_circuit("w", 6, 3, 24, seed=7)


def run(proc, circuit, **kw):
    identification_cache().clear()
    try:
        return proc(circuit, **KNOBS, **kw)
    finally:
        identification_cache().clear()


def assert_same(a, b, what):
    for f in REPORT_NUMBER_FIELDS:
        assert getattr(a, f) == getattr(b, f), (what, f)
    assert netlist_dump(a.circuit) == netlist_dump(b.circuit), what


@pytest.mark.parametrize("proc", [procedure2, procedure3],
                         ids=["procedure2", "procedure3"])
class TestProcedures:
    def test_cold_warm_and_jobs_match_memoless(self, proc, circuit,
                                               tmp_path):
        root = str(tmp_path / "memo")
        baseline = run(proc, circuit)
        cold_store = MemoStore(root, registry=Registry())
        assert_same(baseline, run(proc, circuit, memo=cold_store), "cold")
        assert cold_store.stats.puts > 0
        warm_store = MemoStore(root, registry=Registry())
        assert_same(baseline, run(proc, circuit, memo=warm_store), "warm")
        assert warm_store.stats.hits > 0
        assert warm_store.stats.misses == 0
        jobs_store = MemoStore(root, registry=Registry())
        assert_same(baseline,
                    run(proc, circuit, memo=jobs_store, jobs=2), "jobs=2")
        assert jobs_store.stats.hits > 0

    def test_memo_accepts_a_directory_path(self, proc, circuit, tmp_path):
        root = str(tmp_path / "memo")
        baseline = run(proc, circuit)
        assert_same(baseline, run(proc, circuit, memo=root), "cold-by-path")
        assert_same(baseline, run(proc, circuit, memo=root), "warm-by-path")


class TestCLI:
    def test_resynth_memo_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import save_bench

        bench = str(tmp_path / "w.bench")
        save_bench(random_circuit("w", 6, 3, 24, seed=7), bench)
        memo_dir = str(tmp_path / "memo")
        args = ["resynth", bench, "--k", "4", "--verify", "0",
                "--memo", memo_dir]
        identification_cache().clear()
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "memo:" in cold
        identification_cache().clear()
        assert main(args) == 0
        warm = capsys.readouterr().out
        identification_cache().clear()
        # Warm run serves hits, and the printed sweep lines agree.
        assert "0 hit(s)" not in warm

        def sweep_lines(text):
            # Drop the wall-clock lines — exactly what the memo is
            # allowed to change.
            return [line for line in text.splitlines()
                    if not line.startswith(("memo:", "timing:"))]

        assert sweep_lines(cold) == sweep_lines(warm)


class TestService:
    def test_worker_command_carries_the_memo_root(self, tmp_path):
        from repro.service import ArtifactStore
        from repro.service.supervisor import (
            SupervisorConfig,
            default_worker_command,
        )

        store = ArtifactStore(str(tmp_path / "jobs"))
        plain = default_worker_command(
            store, "j1", SupervisorConfig())
        assert "--memo" not in plain
        routed = default_worker_command(
            store, "j1", SupervisorConfig(memo_root=str(tmp_path / "m")))
        assert routed[-2:] == ["--memo", str(tmp_path / "m")]

    def test_run_job_with_memo_matches_memoless(self, tmp_path):
        from repro.service import ArtifactStore
        from repro.service.jobspec import JobSpec
        from repro.service.runner import run_job

        import json

        from repro.io.json_io import circuit_to_json

        netlist = json.loads(circuit_to_json(
            random_circuit("w", 6, 3, 24, seed=7)))
        spec = dict(procedure="procedure2", netlist=netlist, k=4,
                    perm_budget=24, seed=3, max_passes=2,
                    verify_patterns=0)
        store = ArtifactStore(str(tmp_path / "jobs"))
        job_a, _ = store.create_job(JobSpec(**spec))
        # The memo is deliberately not part of the content address, so
        # the memoed leg replays the *same* job in a second store.
        other = ArtifactStore(str(tmp_path / "jobs_b"))
        job_b, _ = other.create_job(JobSpec(**spec))
        assert job_a == job_b
        identification_cache().clear()
        plain = run_job(store, job_a)
        identification_cache().clear()
        memoed = run_job(other, job_b, memo=str(tmp_path / "memo"))
        identification_cache().clear()
        assert_same(plain, memoed, "run_job-memo")
