"""Memo over the wire: entry documents, /memo routes, RemoteMemo.

Covers the server half (``MemoStore.load_entry_doc`` /
``merge_entry_doc`` behind ``GET``/``PUT /memo/<id>``) and the client
half (:class:`~repro.memo.RemoteMemo`): a recorded result read back over
HTTP is bit-for-bit the local search result, corruption degrades to a
miss, and an unreachable server degrades to fail-open — never an error,
never a wrong hit.
"""

import pytest

from repro.comparison.identify import identify_positions
from repro.memo import (
    ENTRY_FORMAT,
    MEMO_VERSION,
    MemoStore,
    RemoteMemo,
    memo_key_doc,
    memo_key_id,
)
from repro.memo.store import _encode_result
from repro.obs import Registry
from repro.service import ArtifactStore, ServiceServer, SupervisorConfig

#: One real identification search, small enough to run per-test.
SEARCH = dict(table=0b0110_1001, n=3, perm_budget=24, try_offset=True,
              seed=3, max_specs=4)


def real_result():
    return identify_positions(SEARCH["table"], SEARCH["n"],
                              SEARCH["perm_budget"], SEARCH["try_offset"],
                              SEARCH["seed"], SEARCH["max_specs"])


def entry_doc(result=None):
    key_doc = memo_key_doc(**SEARCH)
    return memo_key_id(key_doc), {
        "format": ENTRY_FORMAT,
        "version": MEMO_VERSION,
        "key": key_doc,
        "results": {
            format(SEARCH["table"], "x"):
                _encode_result(result or real_result()),
        },
    }


class TestEntryDocs:
    """MemoStore's wire-document surface (no HTTP)."""

    def test_merge_then_load_round_trip(self, tmp_path):
        store = MemoStore(str(tmp_path), registry=Registry())
        class_id, doc = entry_doc()
        assert store.merge_entry_doc(class_id, doc) == 1
        assert store.load_entry_doc(class_id) is not None
        assert store.lookup(**SEARCH) == real_result()

    def test_merge_is_monotone(self, tmp_path):
        store = MemoStore(str(tmp_path), registry=Registry())
        result = real_result()
        store.record(**SEARCH, result=result)
        # A lying second writer cannot overwrite the present row.
        class_id, doc = entry_doc(result=((), 999))
        assert store.merge_entry_doc(class_id, doc) == 0
        assert store.lookup(**SEARCH) == result

    def test_merge_rejects_wrong_address(self, tmp_path):
        store = MemoStore(str(tmp_path), registry=Registry())
        _class_id, doc = entry_doc()
        with pytest.raises(ValueError, match="does not hash"):
            store.merge_entry_doc("m" + "0" * 16, doc)

    def test_merge_rejects_malformed_documents(self, tmp_path):
        store = MemoStore(str(tmp_path), registry=Registry())
        class_id, doc = entry_doc()
        with pytest.raises(ValueError):
            store.merge_entry_doc(class_id, "not an object")
        bad = dict(doc)
        bad["format"] = "something-else"
        with pytest.raises(ValueError):
            store.merge_entry_doc(class_id, bad)
        assert store.load_entry_doc(class_id) is None  # nothing written

    def test_load_absent_entry(self, tmp_path):
        store = MemoStore(str(tmp_path), registry=Registry())
        assert store.load_entry_doc("m" + "0" * 16) is None


@pytest.fixture()
def memo_server(tmp_path):
    store = ArtifactStore(str(tmp_path / "jobs"))
    config = SupervisorConfig(memo_root=str(tmp_path / "memo"))
    server = ServiceServer(store, config=config)
    server.start()
    yield server
    server.stop()


class TestMemoRoutes:
    def test_put_then_get_round_trip(self, memo_server):
        from repro.service import ServiceClient

        client = ServiceClient(memo_server.url, timeout=10.0)
        class_id, doc = entry_doc()
        assert client.put_memo_entry(class_id, doc) == {"merged": 1}
        assert client.put_memo_entry(class_id, doc) == {"merged": 0}
        got = client.memo_entry(class_id)
        assert got["results"] == doc["results"]

    def test_get_absent_entry_is_404(self, memo_server):
        from repro.service import ServiceAPIError, ServiceClient

        client = ServiceClient(memo_server.url, timeout=10.0)
        with pytest.raises(ServiceAPIError) as err:
            client.memo_entry("m" + "0" * 16)
        assert err.value.code == 404

    def test_put_invalid_entry_is_400(self, memo_server):
        from repro.service import ServiceAPIError, ServiceClient

        client = ServiceClient(memo_server.url, timeout=10.0)
        with pytest.raises(ServiceAPIError) as err:
            client.put_memo_entry("m" + "0" * 16, {"bad": 1})
        assert err.value.code == 400

    def test_routes_404_when_memo_disabled(self, tmp_path):
        from repro.service import ServiceAPIError, ServiceClient

        server = ServiceServer(ArtifactStore(str(tmp_path / "jobs2")))
        server.start()
        try:
            client = ServiceClient(server.url, timeout=10.0)
            class_id, doc = entry_doc()
            with pytest.raises(ServiceAPIError, match="memo not enabled"):
                client.memo_entry(class_id)
            with pytest.raises(ServiceAPIError, match="memo not enabled"):
                client.put_memo_entry(class_id, doc)
        finally:
            server.stop()


class TestRemoteMemo:
    def test_record_then_lookup_through_fresh_client(self, memo_server):
        result = real_result()
        writer = RemoteMemo(memo_server.url, registry=Registry())
        writer.record(**SEARCH, result=result)
        assert writer.stats.puts == 1
        # A different process (fresh memo, empty hot tier) sees the row.
        reader = RemoteMemo(memo_server.url, registry=Registry())
        assert reader.lookup(**SEARCH) == result
        assert reader.stats.hits == 1

    def test_hot_tier_serves_repeats_without_network(self, memo_server):
        memo = RemoteMemo(memo_server.url, registry=Registry())
        memo.record(**SEARCH, result=real_result())
        calls = []
        memo._client = type("NoNet", (), {
            "memo_entry": lambda self, cid: calls.append(cid) or {},
        })()
        assert memo.lookup(**SEARCH) == real_result()
        assert calls == []  # served from the hot tier

    def test_corrupt_wire_document_is_a_miss(self):
        class LyingClient:
            def memo_entry(self, class_id):
                return {"format": "entry-v1", "garbage": True}

        memo = RemoteMemo("http://unused", registry=Registry(),
                          client=LyingClient())
        assert memo.lookup(**SEARCH) is None
        assert memo.stats.corrupt == 1
        assert memo.stats.misses == 1

    def test_unreachable_server_fails_open(self):
        from repro.service import ServiceClient

        # A port nothing listens on: lookups miss, records are dropped,
        # nothing raises.
        client = ServiceClient("http://127.0.0.1:9", timeout=0.2,
                               retries=0)
        memo = RemoteMemo("http://127.0.0.1:9", registry=Registry(),
                          client=client)
        assert memo.lookup(**SEARCH) is None
        memo.record(**SEARCH, result=real_result())
        assert memo.stats.puts == 0
        # The hot tier still took the local install.
        assert memo.lookup(**SEARCH) == real_result()

    def test_validation(self):
        with pytest.raises(ValueError):
            RemoteMemo("http://x", hot_entries=0, client=object())
