"""MemoStore behavior: round-trips, crash safety, eviction, concurrency.

Crash-safety contract under test (docs/MEMO.md): *any* damage to an
entry file — truncation, garbage, a torn write, a semantic mismatch —
degrades to a miss and a ``memo_corrupt_entries_total`` increment, never
to a wrong hit.
"""

import json
import os
import threading

import pytest

from repro.comparison import identify_positions
from repro.memo import MemoStore, memo_key_doc, memo_key_id
from repro.obs import Registry

KNOBS = dict(perm_budget=40, try_offset=True, seed=3, max_specs=4)


def real_result(table, n):
    """A genuine search result (the only thing a store may serve)."""
    return identify_positions(table, n, **KNOBS)


def store_with(tmp_path, table, n, **kwargs):
    """A store holding the real result for (table, n)."""
    registry = kwargs.pop("registry", None) or Registry()
    store = MemoStore(str(tmp_path / "memo"), registry=registry, **kwargs)
    store.record(table, n, KNOBS["perm_budget"], KNOBS["try_offset"],
                 KNOBS["seed"], KNOBS["max_specs"], real_result(table, n))
    return store


def lookup(store, table, n):
    return store.lookup(table, n, KNOBS["perm_budget"], KNOBS["try_offset"],
                        KNOBS["seed"], KNOBS["max_specs"])


def entry_file(store, table, n):
    doc = memo_key_doc(table, n, **KNOBS)
    return store.entry_path(memo_key_id(doc))


# An interval ON-set (minterms 5..12), so the stored result carries
# actual position hits for the damage functions to corrupt.
TABLE, N = 0x1FE0, 4


class TestRoundTrip:
    def test_fresh_instance_serves_the_exact_result(self, tmp_path):
        store = store_with(tmp_path, TABLE, N)
        fresh = MemoStore(store.root, registry=Registry())
        assert lookup(fresh, TABLE, N) == real_result(TABLE, N)
        assert fresh.stats.hits == 1

    def test_unknown_table_is_a_miss(self, tmp_path):
        store = store_with(tmp_path, TABLE, N)
        fresh = MemoStore(store.root, registry=Registry())
        assert lookup(fresh, TABLE ^ 1, N) is None
        assert fresh.stats.misses == 1

    def test_class_key_collision_is_disambiguated(self, tmp_path):
        # A permuted variant shares the entry file but is its own
        # sub-entry: looking it up before it is recorded must miss.
        from repro.sim.truthtable import tt_permute

        variant = tt_permute(TABLE, N, (1, 0, 2, 3))
        assert variant != TABLE
        store = store_with(tmp_path, TABLE, N)
        assert entry_file(store, variant, N) == entry_file(store, TABLE, N)
        fresh = MemoStore(store.root, registry=Registry())
        assert lookup(fresh, variant, N) is None
        fresh.record(variant, N, KNOBS["perm_budget"], KNOBS["try_offset"],
                     KNOBS["seed"], KNOBS["max_specs"],
                     real_result(variant, N))
        again = MemoStore(store.root, registry=Registry())
        assert lookup(again, variant, N) == real_result(variant, N)
        assert lookup(again, TABLE, N) == real_result(TABLE, N)
        assert again.disk_entries == 1

    def test_identical_rerecord_is_a_disk_noop(self, tmp_path):
        store = store_with(tmp_path, TABLE, N)
        path = entry_file(store, TABLE, N)
        before = os.stat(path).st_mtime_ns
        store.record(TABLE, N, KNOBS["perm_budget"], KNOBS["try_offset"],
                     KNOBS["seed"], KNOBS["max_specs"],
                     real_result(TABLE, N))
        assert os.stat(path).st_mtime_ns == before


def damage_truncate(path):
    with open(path, "r+", encoding="utf-8") as fh:
        fh.truncate(os.path.getsize(path) // 2)


def damage_garbage(path):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\x00not json at all\x7f")


def damage_empty(path):
    open(path, "w").close()


def damage_wrong_format(path):
    doc = json.load(open(path))
    doc["format"] = "not-a-memo-entry"
    json.dump(doc, open(path, "w"))


def damage_wrong_version(path):
    doc = json.load(open(path))
    doc["version"] = 999
    json.dump(doc, open(path, "w"))


def damage_key_mismatch(path):
    doc = json.load(open(path))
    doc["key"]["seed"] += 1
    json.dump(doc, open(path, "w"))


def damage_bad_perm(path):
    doc = json.load(open(path))
    for value in doc["results"].values():
        for hit in value[0]:
            hit[0] = [0, 0, 1, 2]  # not a permutation
    json.dump(doc, open(path, "w"))


def damage_out_of_range_bounds(path):
    doc = json.load(open(path))
    for value in doc["results"].values():
        for hit in value[0]:
            hit[2] = 1 << 20
    json.dump(doc, open(path, "w"))


def damage_negative_tried(path):
    doc = json.load(open(path))
    for value in doc["results"].values():
        value[1] = -1
    json.dump(doc, open(path, "w"))


def damage_table_out_of_range(path):
    doc = json.load(open(path))
    doc["results"]["fffff"] = doc["results"].pop(
        next(iter(doc["results"])))
    json.dump(doc, open(path, "w"))


def damage_popcount_contradiction(path):
    doc = json.load(open(path))
    value = doc["results"].pop(next(iter(doc["results"])))
    doc["results"]["1"] = value  # popcount 1 contradicts key["on"]
    json.dump(doc, open(path, "w"))


DAMAGE = [
    damage_truncate,
    damage_garbage,
    damage_empty,
    damage_wrong_format,
    damage_wrong_version,
    damage_key_mismatch,
    damage_bad_perm,
    damage_out_of_range_bounds,
    damage_negative_tried,
    damage_table_out_of_range,
    damage_popcount_contradiction,
]


class TestCrashSafety:
    @pytest.mark.parametrize("damage", DAMAGE, ids=lambda f: f.__name__)
    def test_damaged_entry_is_a_counted_miss_never_a_hit(
        self, tmp_path, damage
    ):
        store = store_with(tmp_path, TABLE, N)
        path = entry_file(store, TABLE, N)
        damage(path)
        registry = Registry()
        fresh = MemoStore(store.root, registry=registry)
        assert lookup(fresh, TABLE, N) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        assert fresh.stats.hits == 0
        assert registry.counter_value("memo_corrupt_entries_total") == 1
        assert not os.path.exists(path), "damaged entry must be dropped"
        # The store recovers: re-recording rebuilds a servable entry.
        fresh.record(TABLE, N, KNOBS["perm_budget"], KNOBS["try_offset"],
                     KNOBS["seed"], KNOBS["max_specs"],
                     real_result(TABLE, N))
        again = MemoStore(store.root, registry=Registry())
        assert lookup(again, TABLE, N) == real_result(TABLE, N)

    def test_record_over_damaged_entry_rebuilds(self, tmp_path):
        store = store_with(tmp_path, TABLE, N)
        damage_garbage(entry_file(store, TABLE, N))
        other = MemoStore(store.root, registry=Registry())
        other.record(TABLE, N, KNOBS["perm_budget"], KNOBS["try_offset"],
                     KNOBS["seed"], KNOBS["max_specs"],
                     real_result(TABLE, N))
        assert other.stats.corrupt == 1
        fresh = MemoStore(store.root, registry=Registry())
        assert lookup(fresh, TABLE, N) == real_result(TABLE, N)


class TestStaleDetection:
    def test_external_rewrite_is_reread_and_counted(self, tmp_path):
        from repro.sim.truthtable import tt_permute

        variant = tt_permute(TABLE, N, (3, 2, 1, 0))
        assert variant != TABLE
        reader_registry = Registry()
        writer = store_with(tmp_path, TABLE, N)
        reader = MemoStore(writer.root, registry=reader_registry)
        assert lookup(reader, TABLE, N) is not None  # file now loaded
        assert lookup(reader, variant, N) is None
        # Another process appends the variant row to the same entry file.
        writer.record(variant, N, KNOBS["perm_budget"], KNOBS["try_offset"],
                      KNOBS["seed"], KNOBS["max_specs"],
                      real_result(variant, N))
        path = entry_file(writer, variant, N)
        os.utime(path, ns=(os.stat(path).st_atime_ns,
                           os.stat(path).st_mtime_ns + 1))
        assert lookup(reader, variant, N) == real_result(variant, N)
        assert reader.stats.stale == 1
        assert reader_registry.counter_value(
            "memo_stale_entries_total") == 1


class TestEviction:
    def test_disk_bound_evicts_oldest(self, tmp_path):
        registry = Registry()
        store = MemoStore(str(tmp_path / "memo"), max_entries=3,
                          registry=registry)
        tables = [0b0001, 0b0011, 0b0111, 0b1111, 0b1110]
        for i, table in enumerate(tables):
            store.record(table, 2, KNOBS["perm_budget"],
                         KNOBS["try_offset"], KNOBS["seed"],
                         KNOBS["max_specs"], real_result(table, 2))
            path = entry_file(store, table, 2)
            # Distinct mtimes so LRU order is well-defined on coarse
            # filesystem clocks.
            os.utime(path, ns=(0, i))
        assert store.disk_entries <= 3
        assert store.stats.evictions == 2
        assert registry.counter_value("memo_evictions_total") == 2

    def test_hot_bound_evicts_lru(self, tmp_path):
        registry = Registry()
        store = MemoStore(str(tmp_path / "memo"), hot_entries=2,
                          registry=registry)
        for table in (0b0001, 0b0011, 0b0111):
            store.record(table, 2, KNOBS["perm_budget"],
                         KNOBS["try_offset"], KNOBS["seed"],
                         KNOBS["max_specs"], real_result(table, 2))
        assert len(store) <= 2
        assert store.stats.hot_evictions >= 1
        assert registry.counter_value("memo_hot_evictions_total") == \
            store.stats.hot_evictions
        # Evicted rows are still on disk, so they come back as hits.
        fresh = MemoStore(store.root, registry=Registry())
        assert lookup(fresh, 0b0001, 2) == real_result(0b0001, 2)

    def test_bad_bounds_are_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            MemoStore(str(tmp_path / "m"), max_entries=0,
                      registry=Registry())
        with pytest.raises(ValueError):
            MemoStore(str(tmp_path / "m"), hot_entries=0,
                      registry=Registry())


class TestMetrics:
    def test_counters_gauges_and_latency_flow(self, tmp_path):
        registry = Registry()
        store = MemoStore(str(tmp_path / "memo"), registry=registry)
        assert lookup(store, TABLE, N) is None
        store.record(TABLE, N, KNOBS["perm_budget"], KNOBS["try_offset"],
                     KNOBS["seed"], KNOBS["max_specs"],
                     real_result(TABLE, N))
        assert lookup(store, TABLE, N) is not None
        assert registry.counter_value("memo_misses_total") == 1
        assert registry.counter_value("memo_hits_total") == 1
        assert registry.counter_value("memo_puts_total") == 1
        snap = registry.snapshot()
        assert snap["gauges"]["memo_disk_entries"] == 1
        assert snap["gauges"]["memo_hot_entries"] == len(store)
        assert snap["summaries"]["memo_lookup_seconds"]["count"] == 2

    def test_stats_properties(self, tmp_path):
        store = MemoStore(str(tmp_path / "memo"), registry=Registry())
        assert store.stats.lookups == 0
        assert store.stats.hit_rate == 0.0
        assert lookup(store, TABLE, N) is None
        store.record(TABLE, N, KNOBS["perm_budget"], KNOBS["try_offset"],
                     KNOBS["seed"], KNOBS["max_specs"],
                     real_result(TABLE, N))
        assert lookup(store, TABLE, N) is not None
        assert store.stats.lookups == 2
        assert store.stats.hit_rate == 0.5


class TestConcurrentWriters:
    def test_racing_threads_leave_only_intact_servable_entries(
        self, tmp_path
    ):
        root = str(tmp_path / "memo")
        n = 3
        tables = list(range(1, 33))
        results = {t: real_result(t, n) for t in tables}
        errors = []

        def writer(worker_seed):
            import random as _random

            rng = _random.Random(worker_seed)
            store = MemoStore(root, registry=Registry())
            mine = tables[:]
            rng.shuffle(mine)
            try:
                for t in mine:
                    store.record(t, n, KNOBS["perm_budget"],
                                 KNOBS["try_offset"], KNOBS["seed"],
                                 KNOBS["max_specs"], results[t])
            except BaseException as exc:  # noqa: BLE001 — collect for assert
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Atomic whole-file replaces: a racing writer's merge may be
        # lost whole (an under-fill), but every surviving row must be
        # intact and exact.
        reader = MemoStore(root, registry=Registry())
        served = 0
        for t in tables:
            got = lookup(reader, t, n)
            if got is not None:
                assert got == results[t]
                served += 1
        assert reader.stats.corrupt == 0
        assert served >= len(tables) // 2
