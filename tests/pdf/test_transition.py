"""Tests for the transition (gate-delay) fault model."""

from repro.benchcircuits import c17, full_adder
from repro.netlist import CircuitBuilder
from repro.pdf import (
    random_transition_campaign,
    transition_fault_universe,
)


class TestUniverse:
    def test_two_faults_per_observable_net(self):
        c = c17()
        faults = transition_fault_universe(c)
        assert len(faults) == 2 * 11  # 5 PIs + 6 gates

    def test_floating_nets_excluded(self):
        b = CircuitBuilder()
        a, x, u = b.inputs("a", "b", "u")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        faults = transition_fault_universe(b.build())
        assert all(net != "u" for net, _ in faults)


class TestCampaign:
    def test_c17_full_coverage(self):
        res = random_transition_campaign(c17(), seed=1, max_patterns=4096)
        assert res.remaining == 0
        assert res.coverage == 1.0
        assert res.last_effective_pattern is not None

    def test_deterministic(self):
        a = random_transition_campaign(full_adder(), seed=2,
                                       max_patterns=1024)
        b = random_transition_campaign(full_adder(), seed=2,
                                       max_patterns=1024)
        assert (a.detected, a.last_effective_pattern) == (
            b.detected, b.last_effective_pattern)

    def test_launch_required(self):
        # A single pattern pair with no transitions detects nothing:
        # guaranteed by construction; spot-check a no-op circuit run.
        b = CircuitBuilder()
        a, = b.inputs("a")
        g = b.NOT(a, name="g")
        b.outputs(g)
        res = random_transition_campaign(b.build(), seed=0, max_patterns=64)
        assert res.detected == res.total_faults  # tiny circuit saturates

    def test_counts_consistent(self):
        res = random_transition_campaign(full_adder(), seed=3,
                                         max_patterns=512)
        assert res.detected + res.remaining == res.total_faults
