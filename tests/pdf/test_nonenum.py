"""Tests for non-enumerative robust sensitization counting.

The central property: the DP label count equals the size of the explicit
enumeration, for both criteria, on random circuits and random tests.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.benchcircuits import c17, random_circuit
from repro.comparison import ComparisonSpec, build_unit, robust_tests_for_unit
from repro.pdf import (
    RobustCriterion,
    count_robust_sensitized,
    robust_sensitization_labels,
    robustly_sensitized_paths,
    simulate_pair,
)
import pytest


class TestAgainstEnumeration:
    @given(st.integers(0, 4000), st.integers(0, 4000))
    @settings(max_examples=25, deadline=None)
    def test_count_matches_enumeration(self, seed, pat_seed):
        c = random_circuit("r", 6, 3, 25, seed=seed)
        rng = random.Random(pat_seed)
        v1 = {pi: rng.randint(0, 1) for pi in c.inputs}
        v2 = {pi: rng.randint(0, 1) for pi in c.inputs}
        pw = simulate_pair(c, v1, v2)
        for criterion in RobustCriterion:
            enumerated = robustly_sensitized_paths(c, pw, criterion)
            assert count_robust_sensitized(c, pw, criterion) == len(
                enumerated
            ), criterion

    def test_unit_test_sensitizes_exactly_one_path(self):
        spec = ComparisonSpec(("x1", "x2", "x3", "x4"), 11, 12)
        unit = build_unit(spec)
        for t in robust_tests_for_unit(spec):
            pw = simulate_pair(unit, t.v1, t.v2)
            assert count_robust_sensitized(
                unit, pw, RobustCriterion.STRICT
            ) == 1, (t.input_name, t.block)


class TestLabels:
    def test_pi_labels(self):
        c = c17()
        v1 = {pi: 0 for pi in c.inputs}
        v2 = dict(v1, **{"1": 1})
        pw = simulate_pair(c, v1, v2)
        labels = robust_sensitization_labels(c, pw)
        assert labels["1"] == 1
        assert all(labels[pi] == 0 for pi in c.inputs if pi != "1")

    def test_no_transition_all_zero(self):
        c = c17()
        v = {pi: 1 for pi in c.inputs}
        pw = simulate_pair(c, v, v)
        labels = robust_sensitization_labels(c, pw)
        assert all(v == 0 for v in labels.values())

    def test_requires_single_pair(self):
        from repro.pdf import simulate_pairs
        c = c17()
        pw = simulate_pairs(c, {}, {}, 2)
        with pytest.raises(ValueError):
            robust_sensitization_labels(c, pw)
        with pytest.raises(ValueError):
            count_robust_sensitized(c, pw)
