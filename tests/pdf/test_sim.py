"""Tests for the random two-pattern robust PDF campaign (Table 7 semantics)."""

from repro.analysis import count_paths
from repro.benchcircuits import c17, full_adder, random_circuit
from repro.comparison import ComparisonSpec, build_unit
from repro.pdf import random_pdf_campaign, total_path_faults


class TestTotals:
    def test_two_faults_per_path(self):
        c = c17()
        assert total_path_faults(c) == 2 * count_paths(c)


class TestCampaign:
    def test_comparison_unit_reaches_full_coverage(self):
        # Comparison units are fully robustly testable (Section 3.3), so a
        # random campaign on a small unit should reach 100%.
        unit = build_unit(ComparisonSpec(("a", "b", "c", "d"), 5, 10))
        res = random_pdf_campaign(
            unit, seed=3, max_patterns=20_000, plateau_window=4_000
        )
        assert res.total_faults == 2 * count_paths(unit)
        assert res.detected == res.total_faults
        assert res.coverage == 1.0

    def test_deterministic(self):
        c = c17()
        a = random_pdf_campaign(c, seed=11, max_patterns=2_000,
                                plateau_window=500)
        b = random_pdf_campaign(c, seed=11, max_patterns=2_000,
                                plateau_window=500)
        assert (a.detected, a.last_effective_pattern) == (
            b.detected, b.last_effective_pattern)

    def test_plateau_stops_campaign(self):
        c = c17()
        res = random_pdf_campaign(
            c, seed=1, max_patterns=1 << 20, plateau_window=1_000,
            batch_size=128,
        )
        assert res.plateau_reached
        assert res.patterns_applied < (1 << 20)

    def test_detected_bounded_by_total(self):
        for seed in range(3):
            c = random_circuit("r", 6, 3, 25, seed=seed)
            res = random_pdf_campaign(c, seed=seed, max_patterns=2_000,
                                      plateau_window=800)
            assert 0 <= res.detected <= res.total_faults
            assert res.undetected == res.total_faults - res.detected

    def test_detected_out_accumulates(self):
        c = full_adder()
        acc = set()
        random_pdf_campaign(c, seed=5, max_patterns=2_000,
                            plateau_window=500, detected_out=acc)
        assert acc
        for (path, rising) in acc:
            assert path[0] in c.inputs
            assert path[-1] in c.output_set
            assert isinstance(rising, bool)

    def test_effective_pattern_within_budget(self):
        c = full_adder()
        res = random_pdf_campaign(c, seed=5, max_patterns=3_000,
                                  plateau_window=1_000)
        if res.last_effective_pattern is not None:
            assert 1 <= res.last_effective_pattern <= res.patterns_applied

    def test_det_over_faults_format(self):
        c = full_adder()
        res = random_pdf_campaign(c, seed=5, max_patterns=1_000,
                                  plateau_window=400)
        text = res.det_over_faults()
        assert "/" in text
