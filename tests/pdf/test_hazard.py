"""Tests for the hazard-aware two-pattern simulator."""

import random

from hypothesis import given, settings, strategies as st

from repro.benchcircuits import random_circuit
from repro.netlist import CircuitBuilder
from repro.pdf import simulate_pair, simulate_pairs
from repro.sim import random_words, simulate


def _two_and():
    b = CircuitBuilder()
    a, x = b.inputs("a", "b")
    g = b.AND(a, x, name="g")
    b.outputs(g)
    return b.build()


class TestSettledValues:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_v1_v2_match_plain_simulation(self, seed, pat_seed):
        c = random_circuit("r", 6, 3, 30, seed=seed)
        rng = random.Random(pat_seed)
        n = 32
        w1 = random_words(c.inputs, n, rng)
        w2 = random_words(c.inputs, n, rng)
        pw = simulate_pairs(c, w1, w2, n)
        ref1 = simulate(c, w1, n)
        ref2 = simulate(c, w2, n)
        for net in c.nets():
            assert pw.v1[net] == ref1[net]
            assert pw.v2[net] == ref2[net]


class TestHazardRules:
    def test_stable_inputs_are_hazard_free(self):
        c = _two_and()
        pw = simulate_pair(c, {"a": 1, "b": 0}, {"a": 1, "b": 0})
        assert pw.g["g"] == 1

    def test_single_transition_is_hazard_free(self):
        c = _two_and()
        pw = simulate_pair(c, {"a": 0, "b": 1}, {"a": 1, "b": 1})
        assert pw.g["g"] == 1
        assert pw.rising("g") == 1

    def test_opposite_transitions_hazard(self):
        # a rises while b falls: AND output may pulse -> hazardous.
        c = _two_and()
        pw = simulate_pair(c, {"a": 0, "b": 1}, {"a": 1, "b": 0})
        assert pw.g["g"] == 0

    def test_stable_controlling_side_dominates_hazard(self):
        # b stays 0 (controlling for AND): output stable 0 and hazard-free
        # even though a has a transition arriving.
        b = CircuitBuilder()
        a, x, y = b.inputs("a", "b", "c")
        inner = b.AND(a, x, name="inner")
        outer = b.AND(inner, y, name="outer")
        b.outputs(outer)
        c = b.build()
        # inner hazardous: a rises, b falls
        pw = simulate_pair(c, {"a": 0, "b": 1, "c": 0}, {"a": 1, "b": 0, "c": 0})
        assert pw.g["inner"] == 0
        assert pw.g["outer"] == 1  # c=0 steady dominates

    def test_hazard_propagates_without_domination(self):
        b = CircuitBuilder()
        a, x, y = b.inputs("a", "b", "c")
        inner = b.AND(a, x, name="inner")
        outer = b.AND(inner, y, name="outer")
        b.outputs(outer)
        c = b.build()
        pw = simulate_pair(c, {"a": 0, "b": 1, "c": 1}, {"a": 1, "b": 0, "c": 1})
        assert pw.g["outer"] == 0

    def test_or_gate_stable_one_dominates(self):
        b = CircuitBuilder()
        a, x, y = b.inputs("a", "b", "c")
        inner = b.XOR(a, x, name="inner")
        outer = b.OR(inner, y, name="outer")
        b.outputs(outer)
        c = b.build()
        pw = simulate_pair(c, {"a": 0, "b": 1, "c": 1}, {"a": 1, "b": 0, "c": 1})
        assert pw.g["inner"] == 0   # two XOR transitions
        assert pw.g["outer"] == 1   # c steady 1 dominates OR

    def test_xor_single_transition_clean(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.XOR(a, x, name="g")
        b.outputs(g)
        c = b.build()
        pw = simulate_pair(c, {"a": 0, "b": 1}, {"a": 1, "b": 1})
        assert pw.g["g"] == 1
        assert pw.transition("g") == 1

    def test_xor_two_transitions_hazard(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.XOR(a, x, name="g")
        b.outputs(g)
        c = b.build()
        pw = simulate_pair(c, {"a": 0, "b": 0}, {"a": 1, "b": 1})
        assert pw.g["g"] == 0

    def test_inverter_preserves_hazard_state(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        n = b.NOT(g, name="n")
        b.outputs(n)
        c = b.build()
        pw = simulate_pair(c, {"a": 0, "b": 1}, {"a": 1, "b": 0})
        assert pw.g["n"] == pw.g["g"] == 0
        pw = simulate_pair(c, {"a": 0, "b": 1}, {"a": 1, "b": 1})
        assert pw.g["n"] == 1
        assert pw.transition("n") == 1
        assert pw.rising("n") == 0  # inverted: falling


class TestHelpers:
    def test_transition_rising_stable_at(self):
        c = _two_and()
        pw = simulate_pairs(c, {"a": 0b01, "b": 0b11},
                            {"a": 0b11, "b": 0b01}, 2)
        # pair 0: a 1->1, b 1->1 ; pair 1: a 0->1, b 1->0
        assert pw.transition("a") == 0b10
        assert pw.rising("a") == 0b10
        assert pw.stable_at("b", 1) == 0b01
        assert pw.stable_at("a", 1) == 0b01
