"""Tests for deterministic robust PDF test generation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import enumerate_paths
from repro.benchcircuits import c17, random_circuit
from repro.comparison import ComparisonSpec, build_unit
from repro.netlist import CircuitBuilder
from repro.pdf import (
    PdfAtpgStatus,
    RobustCriterion,
    generate_robust_tests,
    is_robust_test_for,
    random_pdf_campaign,
    robust_pdf_test,
    simulate_pair,
)

from ..comparison.test_spec import spec_strategy


class TestOnComparisonUnits:
    """Units are fully robustly testable; the generator must find every test."""

    @given(spec_strategy(max_n=5))
    @settings(max_examples=25, deadline=None)
    def test_all_unit_faults_testable(self, spec):
        unit = build_unit(spec)
        for path in enumerate_paths(unit):
            for rising in (True, False):
                res = robust_pdf_test(unit, path, rising,
                                      RobustCriterion.STRICT)
                assert res.found, (spec.describe(), path, rising)
                pw = simulate_pair(unit, res.v1, res.v2)
                assert is_robust_test_for(
                    unit, pw, tuple(path), rising, RobustCriterion.STRICT
                )


class TestVerdicts:
    def test_generated_tests_verify(self):
        c = c17()
        for path in enumerate_paths(c):
            for rising in (True, False):
                res = robust_pdf_test(c, path, rising)
                if res.found:
                    pw = simulate_pair(c, res.v1, res.v2)
                    assert is_robust_test_for(c, pw, tuple(path), rising)

    def test_constant_circuit_untestable(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        n = b.NOT(a)
        g = b.OR(a, n, name="g")
        b.outputs(g)
        c = b.build()
        for path in enumerate_paths(c):
            res = robust_pdf_test(c, path, True)
            assert res.status is PdfAtpgStatus.UNTESTABLE

    def test_multi_pin_path_untestable(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        g = b.XOR(a, a, name="g")
        b.outputs(g)
        c = b.build()
        res = robust_pdf_test(c, ("a", "g"), True)
        assert res.status is PdfAtpgStatus.UNTESTABLE

    def test_bad_path_rejected(self):
        c = c17()
        with pytest.raises(ValueError):
            robust_pdf_test(c, ("10", "22"), True)  # starts mid-circuit

    @given(st.integers(0, 2000))
    @settings(max_examples=8, deadline=None)
    def test_untestable_verdicts_agree_with_random_campaign(self, seed):
        """Faults detected by random tests must never be called untestable."""
        c = random_circuit("r", 5, 3, 16, seed=seed)
        detected = set()
        random_pdf_campaign(c, seed=seed, max_patterns=2_000,
                            plateau_window=800, detected_out=detected)
        rng = random.Random(seed)
        sample = list(detected)
        rng.shuffle(sample)
        for path, rising in sample[:5]:
            res = robust_pdf_test(c, path, rising, max_backtracks=50_000)
            assert res.status is not PdfAtpgStatus.UNTESTABLE, (path, rising)


class TestDriver:
    def test_generate_report_counts(self):
        c = c17()
        faults = [(tuple(p), r) for p in enumerate_paths(c)
                  for r in (True, False)]
        report = generate_robust_tests(c, faults)
        assert report.total == len(faults)
        assert report.testable == len(report.tests)
        for path, rising, v1, v2 in report.tests:
            pw = simulate_pair(c, v1, v2)
            assert is_robust_test_for(c, pw, path, rising)

    def test_abort_budget(self):
        c = random_circuit("r", 12, 4, 60, seed=3)
        paths = enumerate_paths(c, limit=3)
        res = robust_pdf_test(c, paths[0], True, max_backtracks=0)
        assert res.status in (PdfAtpgStatus.ABORTED, PdfAtpgStatus.TESTABLE,
                              PdfAtpgStatus.UNTESTABLE)
