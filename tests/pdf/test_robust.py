"""Tests for robust PDF sensitization enumeration.

Includes an independent scalar reference implementation of the robust
criteria (checked path-by-path) against which the mask-based DFS is
validated on random circuits and random test pairs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import enumerate_paths
from repro.benchcircuits import c17, random_circuit
from repro.netlist import CircuitBuilder, GateType
from repro.pdf import (
    RobustCriterion,
    is_robust_test_for,
    robust_faults_detected,
    robustly_sensitized_paths,
    simulate_pair,
    simulate_pairs,
)
from repro.sim import random_words


def reference_robust_check(circuit, pw, path, criterion):
    """Independent scalar implementation of the robust criteria.

    Checks a single path under a single test pair, reading the (v1, v2, g)
    values from the simulated PairWords (n_pairs must be 1).
    """
    assert pw.n_pairs == 1
    # every on-path net: settled transition (hazard-free only under STRICT)
    for net in path:
        if pw.transition(net) != 1:
            return False
        if criterion is RobustCriterion.STRICT and pw.g[net] != 1:
            return False
    # per-gate side conditions
    for prev, cur in zip(path, path[1:]):
        gate = circuit.gate(cur)
        gt = gate.gtype
        if gt in (GateType.BUF, GateType.NOT):
            continue
        if gt in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            nc = 1 if gt in (GateType.AND, GateType.NAND) else 0
            ends_at_nc = pw.v2[prev] == nc
            for i, f in enumerate(gate.fanins):
                if f == prev:
                    continue  # all pins with this net are on-path candidates
                if ends_at_nc or criterion is RobustCriterion.STRICT:
                    if not (pw.v1[f] == nc and pw.v2[f] == nc and pw.g[f]):
                        return False
                else:
                    if pw.v2[f] != nc:
                        return False
            # a multi-pin connection of the on-path net: other pins would
            # need to be steady while the net transitions -> impossible
            if gate.fanins.count(prev) > 1:
                return False
        elif gt in (GateType.XOR, GateType.XNOR):
            for f in gate.fanins:
                if f == prev:
                    continue
                if pw.transition(f) or not pw.g[f]:
                    return False
            if gate.fanins.count(prev) > 1:
                return False
        else:  # pragma: no cover
            raise AssertionError(gt)
    return True


class TestSmallCases:
    def test_and_rising_needs_steady_side(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        path = ("a", "g")
        # side b steady 1: robust for rising launch on a
        pw = simulate_pair(c, {"a": 0, "b": 1}, {"a": 1, "b": 1})
        assert is_robust_test_for(c, pw, path, rising=True)
        # side b rising with a rising: not robust (side not steady)
        pw = simulate_pair(c, {"a": 0, "b": 0}, {"a": 1, "b": 1})
        assert not is_robust_test_for(c, pw, path, rising=True)

    def test_and_falling_allows_side_final_nc(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        path = ("a", "g")
        # a falls; b rises to 1 (final non-controlling): STANDARD accepts...
        pw = simulate_pair(c, {"a": 1, "b": 0}, {"a": 0, "b": 1})
        # ...but the output has no settled transition (0 -> 0), so even
        # STANDARD rejects: the transition must reach the output.
        assert not is_robust_test_for(c, pw, path, rising=False)
        # b steady 1: robust under both criteria
        pw = simulate_pair(c, {"a": 1, "b": 1}, {"a": 0, "b": 1})
        assert is_robust_test_for(c, pw, path, rising=False)
        assert is_robust_test_for(c, pw, path, rising=False,
                                  criterion=RobustCriterion.STRICT)

    def test_standard_vs_strict_difference(self):
        # Three-input AND: on-path a falls; side b steady 1; side c has a
        # hazardous final-1 value (from an OR of opposing transitions).
        b = CircuitBuilder()
        a, x, p, q = b.inputs("a", "b", "p", "q")
        side = b.OR(p, q, name="side")
        g = b.AND(a, x, side, name="g")
        b.outputs(g)
        c = b.build()
        path = ("a", "g")
        pw = simulate_pair(c, {"a": 1, "b": 1, "p": 0, "q": 1},
                           {"a": 0, "b": 1, "p": 1, "q": 0})
        assert pw.g["side"] == 0 and pw.v2["side"] == 1
        assert is_robust_test_for(c, pw, path, rising=False,
                                  criterion=RobustCriterion.STANDARD)
        assert not is_robust_test_for(c, pw, path, rising=False,
                                      criterion=RobustCriterion.STRICT)

    def test_or_gate_polarity(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.OR(a, x, name="g")
        b.outputs(g)
        c = b.build()
        path = ("a", "g")
        # falling launch ends at non-controlling (0): side steady 0 needed
        pw = simulate_pair(c, {"a": 1, "b": 0}, {"a": 0, "b": 0})
        assert is_robust_test_for(c, pw, path, rising=False)
        # rising ends at controlling (1): side final 0 suffices
        pw = simulate_pair(c, {"a": 0, "b": 0}, {"a": 1, "b": 0})
        assert is_robust_test_for(c, pw, path, rising=True)

    def test_inversion_flips_observed_direction_not_fault_identity(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        n = b.NOT(a, name="n")
        b.outputs(n)
        c = b.build()
        pw = simulate_pair(c, {"a": 0}, {"a": 1})
        det = robust_faults_detected(c, pw)
        assert (("a", "n"), True) in det  # fault named by launch direction

    def test_no_transition_no_detection(self):
        c = c17()
        pw = simulate_pair(c, {i: 1 for i in c.inputs},
                           {i: 1 for i in c.inputs})
        assert robust_faults_detected(c, pw) == set()


class TestAgainstReference:
    @given(st.integers(0, 5_000), st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_dfs_matches_per_path_reference(self, seed, pat_seed):
        c = random_circuit("r", 5, 3, 20, seed=seed)
        rng = random.Random(pat_seed)
        v1 = {pi: rng.randint(0, 1) for pi in c.inputs}
        v2 = {pi: rng.randint(0, 1) for pi in c.inputs}
        pw = simulate_pair(c, v1, v2)
        for criterion in RobustCriterion:
            got = robust_faults_detected(c, pw, criterion)
            expected = set()
            for path in enumerate_paths(c):
                if reference_robust_check(c, pw, path, criterion):
                    rising = pw.rising(path[0]) == 1
                    expected.add((tuple(path), rising))
            assert got == expected, criterion

    @given(st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_strict_subset_of_standard(self, seed):
        c = random_circuit("r", 6, 3, 25, seed=seed)
        rng = random.Random(seed ^ 0xBEEF)
        w1 = random_words(c.inputs, 64, rng)
        w2 = random_words(c.inputs, 64, rng)
        pw = simulate_pairs(c, w1, w2, 64)
        strict = robust_faults_detected(c, pw, RobustCriterion.STRICT)
        standard = robust_faults_detected(c, pw, RobustCriterion.STANDARD)
        assert strict <= standard


class TestBatchConsistency:
    @given(st.integers(0, 5_000))
    @settings(max_examples=10, deadline=None)
    def test_batch_equals_union_of_singles(self, seed):
        c = random_circuit("r", 5, 3, 20, seed=seed)
        rng = random.Random(seed + 1)
        n = 16
        w1 = random_words(c.inputs, n, rng)
        w2 = random_words(c.inputs, n, rng)
        batch = robust_faults_detected(c, simulate_pairs(c, w1, w2, n))
        singles = set()
        for p in range(n):
            v1 = {pi: (w1[pi] >> p) & 1 for pi in c.inputs}
            v2 = {pi: (w2[pi] >> p) & 1 for pi in c.inputs}
            singles |= robust_faults_detected(c, simulate_pair(c, v1, v2))
        assert batch == singles

    def test_per_pattern_one_path_per_output(self):
        # at most one robustly propagating pin per gate per pattern =>
        # at most one sensitized path per primary output per pattern.
        for seed in range(10):
            c = random_circuit("r", 6, 4, 30, seed=seed)
            rng = random.Random(seed)
            v1 = {pi: rng.randint(0, 1) for pi in c.inputs}
            v2 = {pi: rng.randint(0, 1) for pi in c.inputs}
            pw = simulate_pair(c, v1, v2)
            recs = robustly_sensitized_paths(c, pw)
            per_po = {}
            for r in recs:
                per_po[r.path[-1]] = per_po.get(r.path[-1], 0) + 1
            assert all(v <= 1 for v in per_po.values())


class TestInputValidation:
    def test_is_robust_test_requires_single_pair(self):
        c = c17()
        pw = simulate_pairs(c, {}, {}, 2)
        with pytest.raises(ValueError):
            is_robust_test_for(c, pw, ("1", "10", "22"), True)
