"""NumPy and pure-Python identification kernels must be bit-identical.

`repro.comparison.identify_positions` has two implementations of the same
permutation scan: a vectorized one used when NumPy imports, and the
portable Python loop.  The parallel layer's determinism contract (and CI,
which runs without NumPy) requires them to agree hit-for-hit — same hit
order, same hit multiplicity, same tried-count.
"""

import random

import pytest

import repro.comparison.identify as idf
from repro.comparison import candidate_permutations, identify_positions

needs_numpy = pytest.mark.skipif(
    idf._np is None, reason="NumPy not installed; only one kernel exists"
)


def python_kernel(*args):
    """Run identify_positions with the NumPy path disabled."""
    saved = idf._np
    idf._np = None
    try:
        return identify_positions(*args)
    finally:
        idf._np = saved


@needs_numpy
class TestKernelIdentity:
    def test_randomized_cases(self):
        rng = random.Random(20250806)
        for _ in range(300):
            n = rng.randint(1, 6)
            table = rng.randrange(1 << (1 << n))
            args = (
                table, n, rng.choice([24, 120, 200]),
                rng.random() < 0.8, rng.randint(0, 5),
                rng.choice([1, 6, 16]),
            )
            assert identify_positions(*args) == python_kernel(*args), args

    def test_interval_function_hits(self):
        # [2, 5] over 3 inputs: a genuine comparison function.
        table = sum(1 << m for m in range(2, 6))
        np_hits, np_tried = identify_positions(table, 3, 24, True, 0, 16)
        assert np_hits, "interval function must be identified"
        assert (np_hits, np_tried) == python_kernel(table, 3, 24, True, 0, 16)

    def test_parity_scans_full_sample(self):
        # Odd parity is permutation-invariant and never an interval, so
        # the scan exhausts the sample with zero hits on both kernels.
        n = 3
        table = sum(1 << m for m in range(1 << n) if bin(m).count("1") % 2)
        hits, tried = identify_positions(table, n, 24, True, 0, 16)
        assert hits == ()
        assert tried == len(list(candidate_permutations(n, 24, 0)))
        assert (hits, tried) == python_kernel(table, n, 24, True, 0, 16)


class TestPermutationSample:
    def test_matches_generator(self):
        for n, budget, seed in [(3, 24, 0), (5, 200, 1), (7, 50, 3)]:
            assert list(idf._permutation_sample(n, budget, seed)) == \
                list(candidate_permutations(n, budget, seed))

    def test_memoized(self):
        a = idf._permutation_sample(4, 200, 9)
        b = idf._permutation_sample(4, 200, 9)
        assert a is b  # same materialized object, not a regeneration


@needs_numpy
class TestNumpyHelpers:
    def test_minterm_matrix_msb_first(self):
        mat = idf._minterm_matrix([5, 2], 3)  # 0b101, 0b010
        assert mat.tolist() == [[1, 0, 1], [0, 1, 0]]

    def test_lsb_condition_matches_python(self):
        rng = random.Random(11)
        for _ in range(200):
            n = rng.randint(1, 6)
            minterms = sorted(rng.sample(range(1 << n),
                                         rng.randint(1, 1 << n)))
            bits = idf._minterm_bits(minterms, n)
            assert idf._lsb_condition_mat(idf._minterm_matrix(minterms, n)) \
                == idf._lsb_condition_holds(bits, n)
