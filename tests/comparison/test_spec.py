"""Tests for ComparisonSpec semantics: bounds, free variables, evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comparison import ComparisonSpec
from repro.sim import tt_from_minterms


def spec_strategy(max_n=6):
    @st.composite
    def build(draw):
        n = draw(st.integers(1, max_n))
        size = 1 << n
        lower = draw(st.integers(0, size - 1))
        upper = draw(st.integers(lower, size - 1))
        if lower == 0 and upper == size - 1:
            upper -= 1  # avoid the constant function
            if upper < lower:
                lower = 1
                upper = 1
        complement = draw(st.booleans())
        names = tuple(f"v{j}" for j in range(n))
        return ComparisonSpec(names, lower, upper, complement)
    return build()


class TestValidation:
    def test_bounds_must_be_ordered(self):
        with pytest.raises(ValueError):
            ComparisonSpec(("a", "b"), 3, 1)

    def test_bounds_must_fit(self):
        with pytest.raises(ValueError):
            ComparisonSpec(("a", "b"), 0, 4)

    def test_constant_interval_rejected(self):
        with pytest.raises(ValueError):
            ComparisonSpec(("a", "b"), 0, 3)

    def test_no_inputs_rejected(self):
        with pytest.raises(ValueError):
            ComparisonSpec((), 0, 0)


class TestBits:
    def test_lower_upper_bits_msb_first(self):
        s = ComparisonSpec(("a", "b", "c", "d"), 5, 10)
        assert s.lower_bits() == (0, 1, 0, 1)
        assert s.upper_bits() == (1, 0, 1, 0)


class TestFreeVariables:
    def test_paper_example_l5_u7(self):
        # L=5=(0101), U=7=(0111): free prefix {x1, x2}.
        s = ComparisonSpec(("x1", "x2", "x3", "x4"), 5, 7)
        assert s.n_free == 2
        assert s.free_inputs == ("x1", "x2")
        assert s.free_values == (0, 1)
        assert s.suffix_lower == 1  # (01)
        assert s.suffix_upper == 3  # (11)

    def test_table1_spec_l11_u12(self):
        s = ComparisonSpec(("x1", "x2", "x3", "x4"), 11, 12)
        assert s.n_free == 1
        assert s.suffix_lower == 3
        assert s.suffix_upper == 4

    def test_no_free_variables(self):
        s = ComparisonSpec(("a", "b", "c"), 2, 5)  # 010 vs 101
        assert s.n_free == 0

    def test_all_free_single_minterm(self):
        s = ComparisonSpec(("a", "b", "c"), 5, 5)
        assert s.n_free == 3
        assert not s.has_geq_block
        assert not s.has_leq_block

    def test_single_prime_implicant_case(self):
        # Paper 3.2.2: f(y1 y2 y3) = y1 y3 under (y1, y3, y2): L=6, U=7.
        s = ComparisonSpec(("y1", "y3", "y2"), 6, 7)
        assert s.n_free == 2
        assert s.suffix_lower == 0
        assert s.suffix_upper == 1
        assert not s.has_geq_block  # L_F = 0
        assert not s.has_leq_block  # U_F = all ones


class TestBlocks:
    def test_trivial_lower_bound_omits_geq(self):
        s = ComparisonSpec(("a", "b", "c"), 0, 5)
        assert not s.has_geq_block
        assert s.has_leq_block

    def test_trivial_upper_bound_omits_leq(self):
        s = ComparisonSpec(("a", "b", "c"), 3, 7)
        assert s.has_geq_block
        assert not s.has_leq_block


class TestEvaluation:
    def test_interval_membership(self):
        s = ComparisonSpec(("a", "b", "c"), 2, 5)
        assert [s.value_of_minterm(m) for m in range(8)] == [
            0, 0, 1, 1, 1, 1, 0, 0]

    def test_complement_flips(self):
        s = ComparisonSpec(("a", "b", "c"), 2, 5, complement=True)
        assert [s.value_of_minterm(m) for m in range(8)] == [
            1, 1, 0, 0, 0, 0, 1, 1]

    def test_evaluate_uses_permutation(self):
        # inputs (y2, y1): y2 is the MSB.
        s = ComparisonSpec(("y2", "y1"), 2, 3)  # ON iff y2=1
        assert s.evaluate({"y1": 0, "y2": 1}) == 1
        assert s.evaluate({"y1": 1, "y2": 0}) == 0

    def test_truth_table_in_spec_order(self):
        s = ComparisonSpec(("a", "b"), 1, 2)
        assert s.truth_table(["a", "b"]) == tt_from_minterms([1, 2], 2)

    def test_truth_table_in_other_order(self):
        s = ComparisonSpec(("a", "b"), 1, 2)
        # over (b, a): minterm (b,a): f=1 iff (a,b) in {01,10} -> (b,a) in {10,01}
        assert s.truth_table(["b", "a"]) == tt_from_minterms([1, 2], 2)

    def test_truth_table_rejects_wrong_vars(self):
        s = ComparisonSpec(("a", "b"), 1, 2)
        with pytest.raises(ValueError):
            s.truth_table(["a", "c"])

    @given(spec_strategy())
    @settings(max_examples=60, deadline=None)
    def test_on_count_matches_interval_width(self, spec):
        width = spec.upper - spec.lower + 1
        on = sum(spec.value_of_minterm(m) for m in range(1 << spec.n))
        expected = (1 << spec.n) - width if spec.complement else width
        assert on == expected


class TestDescribe:
    def test_describe_mentions_bounds(self):
        s = ComparisonSpec(("a", "b"), 1, 2, complement=True)
        d = s.describe()
        assert "1" in d and "2" in d and d.startswith("NOT")
