"""Tests for the comparison/threshold function relationship (Section 3)."""

import pytest
from hypothesis import given, settings

from repro.comparison import (
    ComparisonSpec,
    ThresholdFunction,
    evaluate_as_threshold_pair,
    geq_block_threshold,
    leq_block_threshold,
)
from repro.sim import minterm_assignment

from .test_spec import spec_strategy


class TestThresholdFunction:
    def test_weights_must_match_inputs(self):
        with pytest.raises(ValueError):
            ThresholdFunction(("a", "b"), (1,), 1)

    def test_basic_evaluation(self):
        t = ThresholdFunction(("a", "b"), (2, 1), 2)
        assert t.evaluate({"a": 1, "b": 0}) == 1
        assert t.evaluate({"a": 0, "b": 1}) == 0

    def test_inverted(self):
        t = ThresholdFunction(("a",), (1,), 1, inverted=True)
        assert t.evaluate({"a": 1}) == 0
        assert t.evaluate({"a": 0}) == 1


class TestBlockViews:
    def test_geq_block_weights_are_powers_of_two(self):
        s = ComparisonSpec(("a", "b", "c"), 3, 6)
        t = geq_block_threshold(s)
        assert t.weights == (4, 2, 1)
        assert t.threshold == 3

    def test_geq_block_semantics(self):
        s = ComparisonSpec(("a", "b", "c"), 3, 6)
        t = geq_block_threshold(s)
        for m in range(8):
            a = minterm_assignment(m, s.inputs)
            assert t.evaluate(a) == int(m >= 3)

    def test_leq_block_is_complemented_geq(self):
        s = ComparisonSpec(("a", "b", "c"), 3, 6)
        t = leq_block_threshold(s)
        assert t.threshold == 7
        assert t.inverted
        for m in range(8):
            a = minterm_assignment(m, s.inputs)
            assert t.evaluate(a) == int(m <= 6)


class TestPairEquivalence:
    @given(spec_strategy(max_n=6))
    @settings(max_examples=60, deadline=None)
    def test_threshold_pair_matches_spec(self, spec):
        for m in range(1 << spec.n):
            a = minterm_assignment(m, spec.inputs)
            assert evaluate_as_threshold_pair(spec, a) == spec.evaluate(a)
