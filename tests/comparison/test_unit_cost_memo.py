"""The positional unit-cost memo must be transparent to callers."""

import random

from repro.analysis import internal_path_counts
from repro.comparison import ComparisonSpec, build_unit, unit_cost
from repro.comparison.unit import _positional_unit_cost


def reference_cost(spec, merge=True):
    """Measure the unit the slow way, without the memo."""
    unit = build_unit(spec, merge=merge)
    per = internal_path_counts(unit)
    return {
        "gates": len([g for g in unit.logic_gates()]),
        "paths_per_input": {pi: per.get(pi, 0) for pi in spec.inputs},
        "depth": unit.depth(),
    }


class TestMemoEquivalence:
    def test_matches_direct_measurement(self):
        rng = random.Random(0xC0)
        for _ in range(30):
            n = rng.randint(2, 6)
            lo = rng.randrange(1 << n)
            hi = rng.randrange(lo, 1 << n)
            spec = ComparisonSpec(
                tuple(f"net{chr(97 + i)}" for i in range(n)),
                lo, hi, rng.random() < 0.5,
            )
            cost = unit_cost(spec)
            ref = reference_cost(spec)
            assert cost.paths_per_input == ref["paths_per_input"]
            assert cost.depth == ref["depth"]
            assert cost.total_internal_paths == sum(
                ref["paths_per_input"].values()
            )

    def test_renamed_inputs_share_shape(self):
        # Same (n, L, U, complement): one underlying memo entry, costs
        # keyed back to each caller's own input names.
        _positional_unit_cost.cache_clear()
        s1 = ComparisonSpec(("p", "q", "r"), 2, 5, False)
        s2 = ComparisonSpec(("x", "y", "z"), 2, 5, False)
        c1 = unit_cost(s1)
        c2 = unit_cost(s2)
        info = _positional_unit_cost.cache_info()
        assert info.misses == 1 and info.hits == 1
        assert set(c1.paths_per_input) == {"p", "q", "r"}
        assert set(c2.paths_per_input) == {"x", "y", "z"}
        assert (list(c1.paths_per_input.values())
                == list(c2.paths_per_input.values()))
        assert c1.two_input_gates == c2.two_input_gates

    def test_merge_flag_keyed_separately(self):
        spec = ComparisonSpec(("a", "b", "c", "d"), 3, 11, True)
        merged = unit_cost(spec, merge=True)
        unmerged = unit_cost(spec, merge=False)
        assert merged.two_input_gates <= unmerged.two_input_gates
