"""Tests for the comparison-function census."""

import pytest

from repro.comparison import (
    comparison_fraction,
    comparison_truth_tables,
    count_comparison_functions,
    is_comparison_exact,
    identify_comparison,
)


class TestCensus:
    def test_small_counts(self):
        # n=1: the two literals x and NOT x ([1,1] and [0,0]).
        assert count_comparison_functions(1) == 2
        # n=2: all non-constant functions except XOR-complement pair
        # behave; the known counts pin the enumeration down.
        assert count_comparison_functions(2) == 11
        assert count_comparison_functions(2, include_complemented=True) == 14

    def test_census_matches_exact_identifier_n3(self):
        census = comparison_truth_tables(3, include_complemented=True)
        for table in range(1, 255):
            assert (table in census) == is_comparison_exact(
                table, ["a", "b", "c"]
            ), bin(table)

    def test_census_matches_sampled_identifier_n3(self):
        # the sampler is exhaustive for n=3 (6 permutations)
        census = comparison_truth_tables(3, include_complemented=True)
        for table in range(1, 255):
            found = identify_comparison(
                table, ["a", "b", "c"], max_specs=1
            ).found
            assert (table in census) == found, bin(table)

    def test_no_constants_in_census(self):
        for n in (1, 2, 3, 4):
            tables = comparison_truth_tables(n, include_complemented=True)
            size = 1 << n
            assert 0 not in tables
            assert (1 << size) - 1 not in tables

    def test_fraction_collapses(self):
        # the class thins out double-exponentially: this is why Section 4
        # replaces small subcircuits rather than whole output cones.
        fractions = [comparison_fraction(n) for n in (2, 3, 4)]
        assert fractions[0] > fractions[1] > fractions[2]
        assert fractions[2] < 0.05

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            count_comparison_functions(0)
