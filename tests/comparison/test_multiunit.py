"""Tests for multi-unit covers (Section 6 extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comparison import (
    build_multi_unit,
    find_multi_unit_cover,
)
from repro.sim import truth_table, tt_from_minterms


class TestFindCover:
    def test_single_unit_when_comparison(self):
        tt = tt_from_minterms([1, 5, 6, 9, 10, 14], 4)
        cover = find_multi_unit_cover(tt, ["y1", "y2", "y3", "y4"])
        assert cover is not None
        assert cover.n_units == 1

    def test_parity3_needs_multiple_units(self):
        tt = tt_from_minterms([1, 2, 4, 7], 3)
        cover = find_multi_unit_cover(tt, ["a", "b", "c"])
        assert cover is not None
        assert 2 <= cover.n_units <= 4
        # all specs share one permutation
        assert len({s.inputs for s in cover.specs}) == 1

    def test_max_units_respected(self):
        tt = tt_from_minterms([1, 2, 4, 7], 3)
        assert find_multi_unit_cover(tt, ["a", "b", "c"], max_units=1) is None

    def test_constants_rejected(self):
        assert find_multi_unit_cover(0, ["a", "b"]) is None
        assert find_multi_unit_cover(0b1111, ["a", "b"]) is None

    def test_describe(self):
        tt = tt_from_minterms([0, 3], 2)
        cover = find_multi_unit_cover(tt, ["a", "b"])
        assert " OR " in cover.describe() or cover.n_units == 1


class TestBuildCover:
    @given(st.integers(1, (1 << 16) - 2))
    @settings(max_examples=50, deadline=None)
    def test_cover_realizes_function_n4(self, table):
        variables = ["a", "b", "c", "d"]
        cover = find_multi_unit_cover(table, variables, max_units=8)
        assert cover is not None  # 8 runs always suffice for 4 variables
        circuit = build_multi_unit(cover)
        circuit.validate()
        assert truth_table(circuit, input_order=variables) == table

    def test_every_function_of_3_vars_coverable(self):
        variables = ["a", "b", "c"]
        for table in range(1, (1 << 8) - 1):
            cover = find_multi_unit_cover(table, variables, max_units=4)
            assert cover is not None, bin(table)
            got = truth_table(build_multi_unit(cover), input_order=variables)
            assert got == table, bin(table)

    def test_units_keep_two_path_property(self):
        from repro.analysis import internal_path_counts
        tt = tt_from_minterms([1, 2, 4, 7], 3)
        cover = find_multi_unit_cover(tt, ["a", "b", "c"])
        circuit = build_multi_unit(cover)
        counts = internal_path_counts(circuit)
        # each input appears in at most `n_units` units, each with <= 2
        assert all(v <= 2 * cover.n_units for v in counts.values())
