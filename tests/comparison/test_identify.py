"""Tests for comparison-function identification (Section 3.4 / Section 5)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.comparison import (
    ComparisonSpec,
    candidate_permutations,
    identify_comparison,
    is_comparison_function,
)
from repro.sim import tt_from_minterms, tt_permute

from .test_spec import spec_strategy


def brute_force_is_comparison(table, n, try_offset=True):
    """Ground truth straight from Definition 1: try every permutation."""
    size = 1 << n
    full = (1 << size) - 1
    if table in (0, full):
        return False
    candidates = [table, table ^ full] if try_offset else [table]
    for perm in itertools.permutations(range(n)):
        for t in candidates:
            pt = tt_permute(t, n, perm)
            lo = (pt & -pt).bit_length() - 1
            hi = pt.bit_length() - 1
            width = hi - lo + 1
            if pt == (((1 << width) - 1) << lo):
                return True
    return False


class TestKnownFunctions:
    def test_paper_f2_identified(self):
        tt = tt_from_minterms([1, 5, 6, 9, 10, 14], 4)
        res = identify_comparison(tt, ["y1", "y2", "y3", "y4"])
        assert res.found
        assert res.exhaustive
        # The paper's permutation (y4, y3, y2, y1) with [5, 10] must be found.
        descs = {(s.inputs, s.lower, s.upper, s.complement) for s in res.specs}
        assert (("y4", "y3", "y2", "y1"), 5, 10, False) in descs

    def test_and_gate_is_comparison(self):
        # AND: single ON minterm -> interval of width 1.
        assert is_comparison_function(0b1000, ["a", "b"])

    def test_or_gate_is_comparison(self):
        # OR ON-set {1,2,3} is the interval [1,3].
        assert is_comparison_function(0b1110, ["a", "b"])

    def test_xor_not_comparison_on_set_but_offset_neither(self):
        # XOR of 2: ON {1,2} consecutive! It IS a comparison function.
        assert is_comparison_function(0b0110, ["a", "b"])

    def test_three_input_xor_not_comparison(self):
        # parity of 3: ON {1,2,4,7}; no permutation makes that an interval,
        # and the OFF-set {0,3,5,6} is symmetric (also parity-like).
        tt = tt_from_minterms([1, 2, 4, 7], 3)
        assert not is_comparison_function(tt, ["a", "b", "c"])
        assert not brute_force_is_comparison(tt, 3)

    def test_constants_rejected(self):
        assert not is_comparison_function(0, ["a", "b"])
        assert not is_comparison_function(0b1111, ["a", "b"])

    def test_offset_identification_sets_complement(self):
        # f with OFF-set {3} (interval) but ON-set {0,1,2} also interval;
        # craft one where only the OFF-set works: ON {0,1,3} (not an
        # interval under any permutation of 2 vars? permutations: identity
        # ON={0,1,3} no; swap: minterm 1<->2: ON={0,2,3} no). OFF={2}
        # interval -> complemented spec expected.
        tt = tt_from_minterms([0, 1, 3], 2)
        res = identify_comparison(tt, ["a", "b"])
        assert res.found
        assert all(s.complement for s in res.specs)

    def test_every_spec_reproduces_the_function(self):
        tt = tt_from_minterms([1, 5, 6, 9, 10, 14], 4)
        variables = ["y1", "y2", "y3", "y4"]
        res = identify_comparison(tt, variables)
        for spec in res.specs:
            assert spec.truth_table(variables) == tt


class TestAgainstBruteForce:
    @given(st.integers(1, (1 << 8) - 2))
    @settings(max_examples=80, deadline=None)
    def test_matches_definition_n3(self, table):
        variables = ["a", "b", "c"]
        got = is_comparison_function(table, variables)
        assert got == brute_force_is_comparison(table, 3)

    @given(st.integers(1, (1 << 16) - 2))
    @settings(max_examples=40, deadline=None)
    def test_matches_definition_n4(self, table):
        variables = list("abcd")
        got = is_comparison_function(table, variables)
        assert got == brute_force_is_comparison(table, 4)

    @given(spec_strategy(max_n=5))
    @settings(max_examples=40, deadline=None)
    def test_every_comparison_spec_is_identified(self, spec):
        variables = list(spec.inputs)
        tt = spec.truth_table(variables)
        assert is_comparison_function(tt, variables)


class TestPermutationBudget:
    def test_exhaustive_for_small_n(self):
        perms = list(candidate_permutations(4, 200))
        assert len(perms) == 24
        assert perms[0] == (0, 1, 2, 3)
        assert len(set(perms)) == 24

    def test_budgeted_for_large_n(self):
        perms = list(candidate_permutations(6, 200, seed=1))
        assert len(perms) == 200
        assert perms[0] == tuple(range(6))
        assert len(set(perms)) == 200

    def test_budget_deterministic(self):
        a = list(candidate_permutations(7, 50, seed=3))
        b = list(candidate_permutations(7, 50, seed=3))
        assert a == b

    def test_result_reports_budget_use(self):
        tt = tt_from_minterms([9], 4)  # single minterm: identity works
        res = identify_comparison(tt, list("abcd"), max_specs=1)
        assert res.permutations_tried == 1

    def test_max_specs_caps_collection(self):
        # single minterm: every permutation yields a spec.
        tt = tt_from_minterms([0], 3)
        res = identify_comparison(tt, list("abc"), max_specs=4, try_offset=False)
        assert len(res.specs) == 4
