"""Tests for the exact (no-sampling) comparison-function identifier."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.comparison import (
    ComparisonSpec,
    exact_identify,
    identify_comparison,
    is_comparison_exact,
)
from repro.sim import tt_from_minterms

from .test_spec import spec_strategy


class TestAgainstExhaustiveSampler:
    """For n <= 5 the sampler is exhaustive, hence ground truth."""

    def test_complete_sweep_n3(self):
        variables = ["a", "b", "c"]
        for table in range(1, 255):
            sampled = identify_comparison(table, variables, max_specs=1).found
            assert is_comparison_exact(table, variables) == sampled, bin(table)

    @given(st.integers(1, (1 << 16) - 2))
    @settings(max_examples=60, deadline=None)
    def test_random_n4(self, table):
        variables = list("abcd")
        sampled = identify_comparison(table, variables, max_specs=1).found
        assert is_comparison_exact(table, variables) == sampled

    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_random_n5(self, seed):
        rng = random.Random(seed)
        table = rng.getrandbits(32)
        if table in (0, (1 << 32) - 1):
            return
        variables = [f"v{j}" for j in range(5)]
        sampled = identify_comparison(table, variables, max_specs=1).found
        assert is_comparison_exact(table, variables) == sampled


class TestWitnesses:
    @given(spec_strategy(max_n=6))
    @settings(max_examples=60, deadline=None)
    def test_witness_realizes_the_function(self, spec):
        variables = sorted(spec.inputs)
        table = spec.truth_table(variables)
        witness = exact_identify(table, variables)
        assert witness is not None
        assert witness.truth_table(variables) == table

    def test_never_misses_true_comparison_functions_n6(self):
        rng = random.Random(3)
        variables = [f"v{j}" for j in range(6)]
        misses_by_sampler = 0
        for _ in range(150):
            lo = rng.randrange(63)
            hi = rng.randrange(lo, 64)
            if lo == 0 and hi == 63:
                continue
            perm = list(variables)
            rng.shuffle(perm)
            spec = ComparisonSpec(tuple(perm), lo, hi)
            table = spec.truth_table(variables)
            assert is_comparison_exact(table, variables)
            if not identify_comparison(table, variables, max_specs=1).found:
                misses_by_sampler += 1
        # the 200-permutation sampler demonstrably misses some at n=6 —
        # the gap the exact procedure closes (Section 3.4's remark)
        assert misses_by_sampler > 0

    def test_constants_rejected(self):
        assert exact_identify(0, ["a", "b"]) is None
        assert exact_identify(0b1111, ["a", "b"]) is None

    def test_offset_witness_is_complemented(self):
        # ON {0,1,3}: only the OFF-set {2} is an interval.
        table = tt_from_minterms([0, 1, 3], 2)
        witness = exact_identify(table, ["a", "b"])
        assert witness is not None
        assert witness.complement
        assert witness.truth_table(["a", "b"]) == table

    def test_try_offset_false(self):
        table = tt_from_minterms([0, 1, 3], 2)
        assert exact_identify(table, ["a", "b"], try_offset=False) is None
