"""Exhaustive property tests for comparison-function identification.

For every interval ``[L, U]`` over ``n <= 3`` variables — i.e. every
comparison function small enough to enumerate completely — identification
must succeed *regardless of how the inputs are permuted or the polarity is
flipped*, because ``n! <= perm_budget`` makes the search exhaustive and
therefore exact.  Dually, functions that provably are not comparison
functions (3-input XOR/XNOR: their ON-sets are invariant under every input
permutation and never consecutive) must be rejected, which only an
exhaustive search can promise.
"""

import random

import pytest

from repro.comparison import ComparisonSpec, identify_comparison, is_comparison_function
from repro.sim.truthtable import tt_complement, tt_permute


def all_intervals(n):
    size = 1 << n
    for lower in range(size):
        for upper in range(lower, size):
            if lower == 0 and upper == size - 1:
                continue  # constant 1: excluded by ComparisonSpec
            yield lower, upper


def spec_table(n, lower, upper):
    names = tuple(f"v{i}" for i in range(n))
    spec = ComparisonSpec(names, lower, upper)
    return spec.truth_table(names)


class TestAllSmallIntervalsIdentified:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_identity_order(self, n):
        names = [f"v{i}" for i in range(n)]
        for lower, upper in all_intervals(n):
            table = spec_table(n, lower, upper)
            result = identify_comparison(table, names)
            assert result.exhaustive
            assert result.found, (n, lower, upper)
            # Every returned spec must reproduce the table exactly.
            for spec in result.specs:
                assert spec.truth_table(names) == table

    @pytest.mark.parametrize("n", [2, 3])
    def test_under_random_input_permutations(self, n):
        rng = random.Random(42)
        names = [f"v{i}" for i in range(n)]
        for lower, upper in all_intervals(n):
            table = spec_table(n, lower, upper)
            for _ in range(4):
                perm = list(range(n))
                rng.shuffle(perm)
                permuted = tt_permute(table, n, perm)
                result = identify_comparison(permuted, names)
                assert result.found, (lower, upper, perm)
                for spec in result.specs:
                    assert spec.truth_table(names) == permuted

    @pytest.mark.parametrize("n", [2, 3])
    def test_complemented_intervals_identified(self, n):
        """OFF-set intervals are found through the try_offset path."""
        names = [f"v{i}" for i in range(n)]
        for lower, upper in all_intervals(n):
            table = tt_complement(spec_table(n, lower, upper), n)
            if table == 0 or table == (1 << (1 << n)) - 1:
                continue
            result = identify_comparison(table, names)
            assert result.found, (lower, upper)
            for spec in result.specs:
                assert spec.truth_table(names) == table


class TestNonComparisonRejected:
    def test_3_input_xor_rejected(self):
        # ON-set {1, 2, 4, 7}: permutation-invariant, never consecutive.
        xor3 = 0b10010110
        names = ["a", "b", "c"]
        result = identify_comparison(xor3, names)
        assert result.exhaustive  # 3! = 6 <= 200: the verdict is a proof
        assert not result.found
        assert not is_comparison_function(xor3, names)

    def test_3_input_xnor_rejected(self):
        xnor3 = 0b10010110 ^ 0xFF
        assert not is_comparison_function(xnor3, ["a", "b", "c"])

    def test_2_input_xor_is_a_comparison_function(self):
        # Contrast case: ON-set {1, 2} IS the interval [1, 2].
        assert is_comparison_function(0b0110, ["a", "b"])

    def test_constants_rejected(self):
        assert not is_comparison_function(0, ["a", "b"])
        assert not is_comparison_function(0xF, ["a", "b"])
