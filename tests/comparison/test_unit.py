"""Tests for comparison-unit construction (Figures 1-5).

Central properties, asserted over random specs:
* the built unit computes exactly the spec's function;
* at most two paths from any input to the output (Section 3.1);
* free variables have at most one path; with one block omitted every input
  has at most one path (Section 3.2).
"""

import pytest
from hypothesis import given, settings

from repro.analysis import internal_path_counts
from repro.comparison import (
    ComparisonSpec,
    build_unit,
    best_spec,
    emit_comparison_unit,
    unit_cost,
)
from repro.netlist import CircuitBuilder, GateType, two_input_gate_count
from repro.sim import truth_table

from .test_spec import spec_strategy


class TestFigureExamples:
    def test_geq_3_block_figure_3a(self):
        # L=3=(0011) over 4 inputs: f = x1 + x2 + x3 x4.
        s = ComparisonSpec(("x1", "x2", "x3", "x4"), 3, 15)
        u = build_unit(s)
        t = truth_table(u, input_order=["x1", "x2", "x3", "x4"])
        expected = sum(1 << m for m in range(3, 16))
        assert t == expected

    def test_geq_12_block_figure_3b(self):
        # L=12=(1100): trailing zeros collapse; f = x1 x2.
        s = ComparisonSpec(("x1", "x2", "x3", "x4"), 12, 15)
        u = build_unit(s)
        t = truth_table(u, input_order=["x1", "x2", "x3", "x4"])
        assert t == sum(1 << m for m in range(12, 16))
        # only x1 and x2 reach the output
        counts = internal_path_counts(u)
        assert counts["x3"] == 0 and counts["x4"] == 0

    def test_leq_12_block_figure_3c(self):
        s = ComparisonSpec(("x1", "x2", "x3", "x4"), 0, 12)
        u = build_unit(s)
        t = truth_table(u, input_order=["x1", "x2", "x3", "x4"])
        assert t == sum(1 << m for m in range(13))

    def test_leq_3_block_figure_3d(self):
        # U=3=(0011): trailing ones collapse; f = ~x1 ~x2.
        s = ComparisonSpec(("x1", "x2", "x3", "x4"), 0, 3)
        u = build_unit(s)
        t = truth_table(u, input_order=["x1", "x2", "x3", "x4"])
        assert t == 0b1111
        counts = internal_path_counts(u)
        assert counts["x3"] == 0 and counts["x4"] == 0

    def test_geq_7_unit_figure_4_merging(self):
        # L=7=(0111): merged unit is OR(x1, AND(x2, x3, x4)).
        s = ComparisonSpec(("x1", "x2", "x3", "x4"), 7, 15)
        u = build_unit(s, merge=True)
        gates = [g for g in u.logic_gates()]
        types = sorted(g.gtype.value for g in gates)
        assert types == ["and", "buf", "or"] or types == ["and", "or"]
        wide_and = [g for g in gates if g.gtype is GateType.AND]
        assert len(wide_and) == 1
        assert len(wide_and[0].fanins) == 3

    def test_merging_preserves_two_input_count(self):
        s = ComparisonSpec(("x1", "x2", "x3", "x4"), 7, 15)
        merged = build_unit(s, merge=True)
        unmerged = build_unit(s, merge=False)
        assert (two_input_gate_count(merged)
                == two_input_gate_count(unmerged))
        assert (truth_table(merged, input_order=list(s.inputs))
                == truth_table(unmerged, input_order=list(s.inputs)))

    def test_figure_1_unit_f2(self):
        s = ComparisonSpec(("y4", "y3", "y2", "y1"), 5, 10)
        u = build_unit(s)
        t = truth_table(u, input_order=["y1", "y2", "y3", "y4"])
        from repro.sim import tt_from_minterms
        assert t == tt_from_minterms([1, 5, 6, 9, 10, 14], 4)

    def test_figure_5_free_variable_structure(self):
        # L=5=(0101), U=7=(0111): free x1, x2; suffix bounds L_F=(01), U_F=(11).
        s = ComparisonSpec(("x1", "x2", "x3", "x4"), 5, 7)
        u = build_unit(s)
        counts = internal_path_counts(u)
        assert counts["x1"] == 1  # free variables: one path
        assert counts["x2"] == 1
        # U_F all ones: no <= block, so suffix inputs also have one path.
        assert counts["x3"] == 1
        assert counts["x4"] == 1


class TestSpecialCases:
    def test_single_prime_implicant_single_and(self):
        # Section 3.2.2: f(y1,y2,y3)=y1 y3 -> one AND gate.
        s = ComparisonSpec(("y1", "y3", "y2"), 6, 7)
        u = build_unit(s)
        logic = u.logic_gates()
        non_buf = [g for g in logic if g.gtype is not GateType.BUF]
        assert len(non_buf) == 1
        assert non_buf[0].gtype is GateType.AND
        assert set(non_buf[0].fanins) == {"y1", "y3"}

    def test_single_minterm_all_free(self):
        s = ComparisonSpec(("a", "b", "c"), 5, 5)  # (101)
        u = build_unit(s)
        t = truth_table(u, input_order=["a", "b", "c"])
        assert t == 1 << 5

    def test_single_input_functions(self):
        ident = ComparisonSpec(("a",), 1, 1)
        assert truth_table(build_unit(ident), input_order=["a"]) == 0b10
        inv = ComparisonSpec(("a",), 0, 0)
        assert truth_table(build_unit(inv), input_order=["a"]) == 0b01

    def test_complement_flips_function(self):
        s = ComparisonSpec(("a", "b", "c"), 2, 5, complement=True)
        u = build_unit(s)
        t = truth_table(u, input_order=["a", "b", "c"])
        assert t == 0b11000011

    def test_complement_of_single_literal(self):
        s = ComparisonSpec(("a",), 1, 1, complement=True)
        u = build_unit(s)
        assert truth_table(u, input_order=["a"]) == 0b01


class TestEmitIntoHost:
    def test_emit_replaces_driver(self):
        b = CircuitBuilder("host")
        a, x, y = b.inputs("a", "b", "c")
        g = b.AND(a, x, name="g")
        out = b.OR(g, y, name="out")
        b.outputs(out)
        c = b.build()
        spec = ComparisonSpec(("a", "b"), 3, 3)  # a AND b
        created = emit_comparison_unit(c, spec, "g")
        c.validate()
        t = truth_table(c, input_order=["a", "b", "c"])
        # out = (a AND b) OR c
        expected = 0
        for m in range(8):
            av, bv, cv = (m >> 2) & 1, (m >> 1) & 1, m & 1
            if (av & bv) | cv:
                expected |= 1 << m
        assert t == expected
        assert isinstance(created, list)

    def test_emit_requires_existing_inputs(self):
        b = CircuitBuilder("host")
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        spec = ComparisonSpec(("a", "zz"), 3, 3)
        with pytest.raises(ValueError):
            emit_comparison_unit(c, spec, "g")

    def test_fresh_names_avoid_collisions(self):
        b = CircuitBuilder("host")
        a, x = b.inputs("a", "b")
        b.gate(GateType.AND, (a, x), name="cu_geq0")  # collide on purpose
        g = b.OR(a, x, name="g")
        b.outputs(g, "cu_geq0")
        c = b.build()
        spec = ComparisonSpec(("a", "b"), 1, 2)
        created = emit_comparison_unit(c, spec, "g")
        c.validate()
        assert "cu_geq0" not in created


class TestPathProperty:
    @given(spec_strategy(max_n=6))
    @settings(max_examples=80, deadline=None)
    def test_at_most_two_paths_per_input(self, spec):
        cost = unit_cost(spec)
        assert all(v <= 2 for v in cost.paths_per_input.values())

    @given(spec_strategy(max_n=6))
    @settings(max_examples=60, deadline=None)
    def test_free_variables_have_at_most_one_path(self, spec):
        cost = unit_cost(spec)
        for name in spec.free_inputs:
            assert cost.paths_per_input[name] <= 1

    @given(spec_strategy(max_n=6))
    @settings(max_examples=60, deadline=None)
    def test_one_block_implies_single_paths(self, spec):
        if spec.has_geq_block and spec.has_leq_block:
            return
        cost = unit_cost(spec)
        assert all(v <= 1 for v in cost.paths_per_input.values())


class TestFunctionalEquivalence:
    @given(spec_strategy(max_n=6))
    @settings(max_examples=100, deadline=None)
    def test_unit_computes_spec(self, spec):
        u = build_unit(spec)
        u.validate()
        order = sorted(spec.inputs)
        assert truth_table(u, input_order=order) == spec.truth_table(order)

    @given(spec_strategy(max_n=5))
    @settings(max_examples=40, deadline=None)
    def test_unmerged_unit_computes_spec(self, spec):
        u = build_unit(spec, merge=False)
        order = sorted(spec.inputs)
        assert truth_table(u, input_order=order) == spec.truth_table(order)


class TestDepthProperty:
    @given(spec_strategy(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_depth_bounded_by_n_plus_2(self, spec):
        # chain depth <= n-F gates, plus inverter, plus output AND.
        assert unit_cost(spec).depth <= spec.n + 2


class TestBestSpec:
    def test_picks_cheapest(self):
        variables = ("a", "b", "c")
        cheap = ComparisonSpec(variables, 4, 7)       # f = a: nearly free
        costly = ComparisonSpec(("c", "b", "a"), 2, 5)
        chosen, cost = best_spec([costly, cheap])
        assert chosen == cheap
        assert cost.two_input_gates <= unit_cost(costly).two_input_gates

    def test_empty_gives_none(self):
        assert best_spec([]) is None

    def test_deterministic_tiebreak(self):
        a = ComparisonSpec(("a", "b"), 1, 2)
        b = ComparisonSpec(("b", "a"), 1, 2)
        first = best_spec([a, b])
        second = best_spec([b, a])
        assert first[0] == second[0]
