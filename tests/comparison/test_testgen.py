"""Tests for Section 3.3 robust test generation for comparison units.

The headline reproduction: the generated test set for the L=11/U=12 unit is
exactly Table 1 of the paper, and — the section's theorem — every
comparison unit is *fully* robustly testable: the generated tests cover
every path delay fault of the built unit.
"""

from hypothesis import given, settings

from repro.analysis import enumerate_paths
from repro.comparison import (
    ComparisonSpec,
    build_unit,
    format_test_table,
    robust_tests_for_unit,
)
from repro.pdf import (
    RobustCriterion,
    robust_faults_detected,
    simulate_pair,
)

from .test_spec import spec_strategy


def table1_spec():
    return ComparisonSpec(("x1", "x2", "x3", "x4"), 11, 12)


class TestTable1:
    def test_row_count(self):
        tests = robust_tests_for_unit(table1_spec())
        # 7 structural paths, rising+falling each
        assert len(tests) == 14

    def test_exact_stable_values(self):
        spec = table1_spec()
        expected = {
            ("x1", "free"): {"x2": 0, "x3": 1, "x4": 1},
            ("x2", "geq"): {"x1": 1, "x3": 0, "x4": 0},
            ("x3", "geq"): {"x1": 1, "x2": 0, "x4": 1},
            ("x4", "geq"): {"x1": 1, "x2": 0, "x3": 1},
            ("x2", "leq"): {"x1": 1, "x3": 1, "x4": 1},
            ("x3", "leq"): {"x1": 1, "x2": 1, "x4": 0},
            ("x4", "leq"): {"x1": 1, "x2": 1, "x3": 0},
        }
        seen = set()
        for t in robust_tests_for_unit(spec):
            key = (t.input_name, t.block)
            assert t.stable_inputs() == expected[key], key
            seen.add(key)
        assert seen == set(expected)

    def test_transition_directions_present(self):
        tests = robust_tests_for_unit(table1_spec())
        by_key = {}
        for t in tests:
            by_key.setdefault((t.input_name, t.block), set()).add(t.rising)
        assert all(dirs == {True, False} for dirs in by_key.values())

    def test_launch_input_flips(self):
        for t in robust_tests_for_unit(table1_spec()):
            assert t.v1[t.input_name] != t.v2[t.input_name]
            assert t.v1[t.input_name] == (0 if t.rising else 1)

    def test_table_rendering(self):
        spec = table1_spec()
        text = format_test_table(spec, robust_tests_for_unit(spec))
        lines = text.splitlines()
        assert len(lines) == 9  # header + rule + 7 rows
        assert "0x1, 1x0" in text
        assert "x2, >=L_F" in text
        assert "x4, <=U_F" in text


class TestFullRobustCoverage:
    """Executable form of the Section 3.3 theorem."""

    def assert_complete(self, spec):
        unit = build_unit(spec)
        total = {
            (tuple(p), r)
            for p in enumerate_paths(unit)
            for r in (True, False)
        }
        detected = set()
        for t in robust_tests_for_unit(spec):
            pw = simulate_pair(unit, t.v1, t.v2)
            detected |= robust_faults_detected(
                unit, pw, RobustCriterion.STRICT
            )
        assert detected == total, spec.describe()

    def test_table1_unit_fully_covered(self):
        self.assert_complete(table1_spec())

    def test_paper_f2_unit_fully_covered(self):
        self.assert_complete(ComparisonSpec(("y4", "y3", "y2", "y1"), 5, 10))

    def test_no_free_variables(self):
        self.assert_complete(ComparisonSpec(("a", "b", "c"), 2, 5))

    def test_geq_only(self):
        self.assert_complete(ComparisonSpec(("a", "b", "c"), 3, 7))

    def test_leq_only(self):
        self.assert_complete(ComparisonSpec(("a", "b", "c"), 0, 5))

    def test_single_minterm(self):
        self.assert_complete(ComparisonSpec(("a", "b", "c"), 6, 6))

    def test_complemented_unit(self):
        self.assert_complete(
            ComparisonSpec(("a", "b", "c", "d"), 5, 9, complement=True)
        )

    @given(spec_strategy(max_n=6))
    @settings(max_examples=60, deadline=None)
    def test_random_specs_fully_covered(self, spec):
        self.assert_complete(spec)


class TestTestCount:
    @given(spec_strategy(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_two_tests_per_structural_path(self, spec):
        unit = build_unit(spec)
        n_paths = len(enumerate_paths(unit))
        tests = robust_tests_for_unit(spec)
        assert len(tests) == 2 * n_paths
