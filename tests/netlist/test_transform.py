"""Tests for constant propagation, buffer collapsing and simplify.

The key invariant — simplify never changes the circuit function — is also
checked property-style over random circuits.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchcircuits import random_circuit
from repro.netlist import (
    Circuit,
    CircuitBuilder,
    Gate,
    GateType,
    propagate_constants,
    collapse_buffers,
    simplify,
    substitute_with_constant,
)
from repro.sim import random_words, simulate


def _function_fingerprint(circuit, seed=7, n_patterns=256):
    rng = random.Random(seed)
    words = random_words(circuit.inputs, n_patterns, rng)
    vals = simulate(circuit, words, n_patterns)
    return tuple(vals[o] for o in circuit.outputs)


class TestConstantFolding:
    def test_and_with_const0_folds_to_const0(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        z = b.CONST0()
        g = b.AND(a, z, name="g")
        b.outputs(g)
        c = b.build()
        propagate_constants(c)
        assert c.gate("g").gtype is GateType.CONST0

    def test_and_with_const1_drops_it(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        one = b.CONST1()
        g = b.AND(a, x, one, name="g")
        b.outputs(g)
        c = b.build()
        propagate_constants(c)
        assert c.gate("g").gtype is GateType.AND
        assert c.gate("g").fanins == ("a", "b")

    def test_and_degenerates_to_buf(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        one = b.CONST1()
        g = b.AND(a, one, name="g")
        b.outputs(g)
        c = b.build()
        propagate_constants(c)
        assert c.gate("g").gtype is GateType.BUF

    def test_nand_with_const0_is_const1(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        z = b.CONST0()
        g = b.NAND(a, z, name="g")
        b.outputs(g)
        c = b.build()
        propagate_constants(c)
        assert c.gate("g").gtype is GateType.CONST1

    def test_nor_degenerates_to_not(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        z = b.CONST0()
        g = b.NOR(a, z, name="g")
        b.outputs(g)
        c = b.build()
        propagate_constants(c)
        assert c.gate("g").gtype is GateType.NOT

    def test_xor_const1_flips_polarity(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        one = b.CONST1()
        g = b.XOR(a, x, one, name="g")
        b.outputs(g)
        c = b.build()
        propagate_constants(c)
        assert c.gate("g").gtype is GateType.XNOR
        assert c.gate("g").fanins == ("a", "b")

    def test_xor_duplicate_fanins_cancel(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        c0 = Circuit("t")
        c0.add_input("a")
        c0.add_input("b")
        c0.add_gate("g", GateType.XOR, ("a", "a", "b"))
        c0.set_outputs(["g"])
        propagate_constants(c0)
        assert c0.gate("g").gtype is GateType.BUF
        assert c0.gate("g").fanins == ("b",)

    def test_and_duplicate_fanins_dedupe(self):
        c0 = Circuit("t")
        c0.add_input("a")
        c0.add_input("b")
        c0.add_gate("g", GateType.AND, ("a", "a", "b"))
        c0.set_outputs(["g"])
        propagate_constants(c0)
        assert c0.gate("g").fanins == ("a", "b")

    def test_not_of_constant(self):
        c0 = Circuit("t")
        c0.add_input("a")
        c0.add_gate("z", GateType.CONST0, ())
        c0.add_gate("g", GateType.NOT, ("z",))
        c0.set_outputs(["g"])
        propagate_constants(c0)
        assert c0.gate("g").gtype is GateType.CONST1

    def test_double_negation_becomes_buffer(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        n1 = b.NOT(a)
        n2 = b.NOT(n1, name="g")
        b.outputs(n2)
        c = b.build()
        simplify(c)
        # after simplify, the output is a buffer of a (kept: PO of a PI)
        assert c.gate("g").gtype is GateType.BUF
        assert c.gate("g").fanins == ("a",)


class TestCollapseBuffers:
    def test_internal_buffer_bypassed(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        buf = b.BUF(a)
        g = b.AND(buf, x, name="g")
        b.outputs(g)
        c = b.build()
        collapse_buffers(c)
        assert c.gate("g").fanins == ("a", "b")

    def test_po_buffer_of_pi_kept(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        buf = b.BUF(a, name="out")
        b.outputs(buf)
        c = b.build()
        collapse_buffers(c)
        assert c.gate("out").gtype is GateType.BUF


class TestSubstituteWithConstant:
    def test_internal_net_fixed(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x, name="g1")
        g2 = b.OR(g1, x, name="g2")
        b.outputs(g2)
        c = b.build()
        substitute_with_constant(c, "g1", 0)
        # g2 = OR(0, b) = b
        assert c.gate("g2").gtype is GateType.BUF
        assert c.gate("g2").fanins == ("b",)

    def test_primary_input_fixed_keeps_interface(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="g")
        b.outputs(g)
        c = b.build()
        substitute_with_constant(c, "a", 1)
        assert "a" in c.inputs  # interface preserved
        assert c.gate("g").gtype is GateType.BUF
        assert c.gate("g").fanins == ("b",)


class TestSimplifyPreservesFunction:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits_with_injected_constants(self, seed):
        c = random_circuit("r", 8, 4, 40, seed=seed)
        rng = random.Random(seed + 100)
        # Inject a few constants to exercise folding.
        nets = [g.name for g in c.logic_gates()]
        mutated = c.copy()
        for net in rng.sample(nets, min(3, len(nets))):
            gate = mutated.gate(net)
            if gate.gtype in (GateType.AND, GateType.OR) and len(gate.fanins) > 2:
                const = mutated.fresh_net("k")
                mutated.add_gate(const, GateType.CONST1, ())
                mutated.replace_gate(
                    gate.with_fanins(gate.fanins[:-1] + (const,))
                )
        reference = _function_fingerprint(mutated)
        simplify(mutated)
        mutated.validate()
        assert _function_fingerprint(mutated) == reference

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_simplify_is_identity_on_function(self, seed):
        c = random_circuit("r", 6, 3, 25, seed=seed)
        before = _function_fingerprint(c)
        simplify(c)
        c.validate()
        assert _function_fingerprint(c) == before

    def test_simplify_reaches_fixpoint(self):
        c = random_circuit("r", 8, 4, 40, seed=11)
        simplify(c)
        assert simplify(c) == 0
