"""Incremental cache maintenance: patched state vs from-scratch rebuilds.

The contract under test (see ``docs/INCREMENTAL.md``): after *any* mutation
the fanout map, canonical topological order, live (Pearce-Kelly) order and
structural levels must equal what an independent rebuild computes, the
mutation epoch must have advanced, and subscribers must have seen exactly
one event of the right kind.
"""

import random

import pytest

from repro.netlist import (
    CHANGE_ADD,
    CHANGE_DRIVER,
    CHANGE_OUTPUTS,
    CHANGE_REMOVE,
    CHANGE_RESET,
    Circuit,
    CircuitBuilder,
    CircuitError,
    Gate,
    GateType,
    NetChange,
    is_valid_topological_order,
    scratch_fanout_map,
    scratch_levels,
    scratch_topological_order,
)


def diamond():
    b = CircuitBuilder("diamond")
    a, c = b.inputs("a", "b")
    g1 = b.AND(a, c, name="g1")
    g2 = b.OR(g1, a, name="g2")
    g3 = b.NOT(g1, name="g3")
    g4 = b.AND(g2, g3, name="g4")
    b.outputs(g4)
    return b.build()


def force_caches(c: Circuit) -> None:
    c.fanout_map()
    c.topological_order()
    c.levels()


def assert_consistent(c: Circuit) -> None:
    """All incremental caches equal their from-scratch rebuilds."""
    fo = {n: sorted(rs) for n, rs in c.fanout_map().items()
          if rs or c.has_net(n)}
    want = {n: sorted(rs) for n, rs in scratch_fanout_map(c).items()}
    assert fo == want
    assert c.topological_order() == scratch_topological_order(c)
    if c._live_order is not None:
        live = [n for n in c._live_order if n is not None]
        assert is_valid_topological_order(c, live)
    assert c.levels() == scratch_levels(c)


class Recorder:
    """A subscriber that records every NetChange it is delivered."""

    def __init__(self):
        self.events = []

    def circuit_changed(self, circuit, change):
        self.events.append(change)


class TestEpochAndEvents:
    def test_each_mutation_bumps_epoch_once(self):
        c = diamond()
        rec = Recorder()
        c.subscribe(rec)
        e0 = c.epoch
        c.add_gate("g5", GateType.NOT, ("g4",))
        assert c.epoch == e0 + 1
        c.replace_gate(Gate("g5", GateType.BUF, ("g4",)))
        assert c.epoch == e0 + 2
        c.add_output("g5")
        assert c.epoch == e0 + 3
        assert [ev.kind for ev in rec.events] == [
            CHANGE_ADD, CHANGE_DRIVER, CHANGE_OUTPUTS,
        ]
        assert rec.events[0] == NetChange(CHANGE_ADD, "g5")

    def test_remove_and_sweep_emit_remove_events(self):
        c = diamond()
        c.add_gate("dead1", GateType.NOT, ("g1",))
        c.add_gate("dead2", GateType.NOT, ("dead1",))
        rec = Recorder()
        c.subscribe(rec)
        removed = c.sweep()
        assert removed == 2
        assert sorted((ev.kind, ev.net) for ev in rec.events) == [
            (CHANGE_REMOVE, "dead1"), (CHANGE_REMOVE, "dead2"),
        ]

    def test_dirty_notifies_reset(self):
        c = diamond()
        rec = Recorder()
        c.subscribe(rec)
        c._dirty()
        assert rec.events == [NetChange(CHANGE_RESET)]

    def test_unsubscribe_stops_delivery(self):
        c = diamond()
        rec = Recorder()
        c.subscribe(rec)
        c.unsubscribe(rec)
        c.add_output("g1")
        assert rec.events == []
        c.unsubscribe(rec)  # unknown observer: silently ignored

    def test_copy_does_not_carry_subscribers(self):
        c = diamond()
        rec = Recorder()
        c.subscribe(rec)
        c2 = c.copy()
        c2.add_output("g1")
        assert rec.events == []


class TestFreshNet:
    def test_no_collision_and_monotonic(self):
        c = diamond()
        n1 = c.fresh_net("t")
        c.add_gate(n1, GateType.NOT, ("g1",))
        n2 = c.fresh_net("t")
        assert n2 != n1 and n2 not in c

    def test_survives_manual_collisions(self):
        c = diamond()
        c.add_gate("t7", GateType.NOT, ("g1",))
        c._fresh_counters["t"] = 7
        n = c.fresh_net("t")
        assert n not in ("t7",) and n not in c

    def test_amortized_constant_after_removals(self):
        # The counter must not rescan from len(gates) after removals:
        # names it already handed out stay retired.
        c = diamond()
        seen = set()
        for _ in range(50):
            n = c.fresh_net("z")
            assert n not in seen
            seen.add(n)
            c.add_gate(n, GateType.NOT, ("g1",))
            c.remove_gate(n)

    def test_counters_copied(self):
        c = diamond()
        n1 = c.fresh_net("q")
        c2 = c.copy()
        assert c2.fresh_net("q") == c.fresh_net("q") != n1


class TestPatchedCaches:
    def test_replace_gate(self):
        c = diamond()
        force_caches(c)
        c.replace_gate(Gate("g2", GateType.NAND, ("a", "b")))
        assert_consistent(c)

    def test_rewire_fanin(self):
        c = diamond()
        force_caches(c)
        c.rewire_fanin("g4", "g3", "b")
        assert_consistent(c)

    def test_remove_gate(self):
        c = diamond()
        force_caches(c)
        c.set_outputs(["g2"])
        c.remove_gate("g4")
        assert_consistent(c)

    def test_substitute_net_multi_pin_reader(self):
        # A reader touching the substituted net on two pins must be rewired
        # exactly once (rewire_fanin replaces every pin at a time).
        c = diamond()
        c.add_gate("g5", GateType.AND, ("g1", "g1"))
        c.add_output("g5")
        force_caches(c)
        c.substitute_net("g1", "a")
        assert c.gate("g5").fanins == ("a", "a")
        assert_consistent(c)

    def test_sweep(self):
        c = diamond()
        c.add_gate("d1", GateType.NOT, ("g1",))
        c.add_gate("d2", GateType.AND, ("d1", "g2"))
        force_caches(c)
        c.sweep()
        assert not c.has_net("d1") and not c.has_net("d2")
        assert_consistent(c)

    def test_hole_compaction_keeps_live_order_valid(self):
        c = diamond()
        force_caches(c)
        for i in range(200):  # far past the 64-hole compaction threshold
            n = c.fresh_net("h")
            c.add_gate(n, GateType.NOT, ("g1",))
            c.remove_gate(n)
            if i % 37 == 0:
                assert_consistent(c)
        assert_consistent(c)


class TestCycleSemantics:
    def test_cycle_created_after_caches_raises_at_query(self):
        c = diamond()
        force_caches(c)
        # g1 -> g2 -> g1 is a combinational cycle; the mutation itself
        # succeeds (PK just drops the live caches) and the canonical
        # rebuild reports it at the next query.
        c.rewire_fanin("g1", "a", "g2")
        with pytest.raises(CircuitError):
            c.topological_order()
        with pytest.raises(ValueError):
            scratch_topological_order(c)
        # repairing the cycle restores service
        c.rewire_fanin("g1", "g2", "a")
        assert_consistent(c)


def mutate_once(c: Circuit, rng: random.Random) -> None:
    """One random structure mutation, guarded acyclic."""
    kind = rng.randrange(5)
    logic = [g.name for g in c.logic_gates()]
    if kind == 0 and logic:
        name = rng.choice(logic)
        pool = [n for n in c.nets()
                if n not in c.transitive_fanout([name])]
        if len(pool) >= 2:
            gtype = rng.choice([GateType.AND, GateType.OR, GateType.NAND,
                                GateType.XOR, GateType.NOT])
            arity = 1 if gtype is GateType.NOT else 2
            c.replace_gate(Gate(name, gtype,
                                tuple(rng.choice(pool)
                                      for _ in range(arity))))
    elif kind == 1 and logic:
        name = rng.choice([n for n in logic if c.gate(n).fanins] or logic)
        g = c.gate(name)
        if g.fanins:
            pool = [n for n in c.nets()
                    if n not in c.transitive_fanout([name])]
            if pool:
                c.rewire_fanin(name, rng.choice(g.fanins), rng.choice(pool))
    elif kind == 2:
        n = c.fresh_net("m")
        pool = c.nets()
        c.add_gate(n, GateType.NAND,
                   (rng.choice(pool), rng.choice(pool)))
        if rng.random() < 0.5:
            c.add_output(n)
    elif kind == 3 and logic:
        old = rng.choice(logic)
        pool = [n for n in c.nets()
                if n not in c.transitive_fanout([old])]
        if pool:
            c.substitute_net(old, rng.choice(pool))
    else:
        c.sweep()


class TestMutationProperty:
    """Satellite: mutation semantics vs from-scratch rebuild, randomized."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_walk_stays_consistent(self, seed):
        rng = random.Random(seed * 7919 + 13)
        b = CircuitBuilder(f"walk{seed}")
        ins = b.inputs(*[f"i{k}" for k in range(rng.randint(3, 6))])
        nets = list(ins)
        for k in range(rng.randint(5, 15)):
            g = b.NAND(rng.choice(nets), rng.choice(nets), name=f"g{k}")
            nets.append(g)
        b.outputs(*rng.sample(nets[len(ins):] or nets, 1))
        c = b.build()
        force_caches(c)
        for _ in range(30):
            mutate_once(c, rng)
            assert_consistent(c)
