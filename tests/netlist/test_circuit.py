"""Unit tests for the Circuit container: structure, caching, mutation."""

import pytest

from repro.netlist import Circuit, CircuitBuilder, CircuitError, Gate, GateType


def small_circuit():
    b = CircuitBuilder("small")
    a, c, d = b.inputs("a", "b", "c")
    g1 = b.AND(a, c, name="g1")
    g2 = b.OR(g1, d, name="g2")
    g3 = b.NOT(g1, name="g3")
    b.outputs(g2, g3)
    return b.build()


class TestConstruction:
    def test_inputs_in_order(self):
        c = small_circuit()
        assert c.inputs == ["a", "b", "c"]

    def test_outputs_in_order(self):
        assert small_circuit().outputs == ["g2", "g3"]

    def test_duplicate_net_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_input("a")

    def test_add_gate_rejects_input_type(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.add_gate("x", GateType.INPUT, ())

    def test_len_counts_all_nets(self):
        assert len(small_circuit()) == 6

    def test_contains(self):
        c = small_circuit()
        assert "g1" in c
        assert "nope" not in c


class TestQueries:
    def test_fanouts_list_reader_per_pin(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.XOR, ("a", "a"))
        c.set_outputs(["g"])
        assert c.fanouts("a") == ["g", "g"]

    def test_topological_order_inputs_first(self):
        c = small_circuit()
        order = c.topological_order()
        assert order.index("g1") > order.index("a")
        assert order.index("g2") > order.index("g1")
        assert len(order) == len(c)

    def test_cycle_detection(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.AND, ("a", "y"))
        c.add_gate("y", GateType.OR, ("x", "a"))
        c.set_outputs(["y"])
        with pytest.raises(CircuitError):
            c.topological_order()

    def test_levels(self):
        c = small_circuit()
        lv = c.levels()
        assert lv["a"] == 0
        assert lv["g1"] == 1
        assert lv["g2"] == 2

    def test_depth(self):
        assert small_circuit().depth() == 2

    def test_transitive_fanin(self):
        c = small_circuit()
        assert c.transitive_fanin(["g3"]) == {"g3", "g1", "a", "b"}

    def test_transitive_fanout(self):
        c = small_circuit()
        assert c.transitive_fanout(["g1"]) == {"g1", "g2", "g3"}

    def test_logic_gates_excludes_sources(self):
        c = small_circuit()
        assert {g.name for g in c.logic_gates()} == {"g1", "g2", "g3"}


class TestMutation:
    def test_replace_gate_changes_function(self):
        c = small_circuit()
        c.replace_gate(Gate("g1", GateType.OR, ("a", "b")))
        assert c.gate("g1").gtype is GateType.OR

    def test_replace_missing_net_fails(self):
        with pytest.raises(CircuitError):
            small_circuit().replace_gate(Gate("zz", GateType.CONST0))

    def test_remove_gate_requires_no_readers(self):
        c = small_circuit()
        with pytest.raises(CircuitError):
            c.remove_gate("g1")  # feeds g2 and g3

    def test_remove_gate_requires_not_output(self):
        c = small_circuit()
        with pytest.raises(CircuitError):
            c.remove_gate("g3")

    def test_remove_dead_gate(self):
        c = small_circuit()
        c.set_outputs(["g2"])
        c.remove_gate("g3")
        assert "g3" not in c

    def test_rewire_fanin(self):
        c = small_circuit()
        c.rewire_fanin("g2", "c", "a")
        assert c.gate("g2").fanins == ("g1", "a")

    def test_substitute_net_redirects_readers_and_outputs(self):
        c = small_circuit()
        c.substitute_net("g1", "a")
        assert c.gate("g2").fanins == ("a", "c")
        assert c.gate("g3").fanins == ("a",)

    def test_substitute_net_preserves_output_names(self):
        c = small_circuit()
        c.substitute_net("g2", "g1")
        # g2 is a primary output: its name survives as a buffer of g1.
        assert c.outputs == ["g2", "g3"]
        assert c.gate("g2").gtype is GateType.BUF
        assert c.gate("g2").fanins == ("g1",)

    def test_substitute_input_output_net_keeps_input(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.AND, ("a", "b"))
        c.set_outputs(["a", "g"])
        c.substitute_net("a", "b")
        # readers redirected, but the PI-as-PO slot still reads the input
        assert c.gate("g").fanins == ("b", "b")
        assert c.outputs == ["a", "g"]

    def test_sweep_removes_unreachable_logic(self):
        c = small_circuit()
        c.set_outputs(["g3"])
        removed = c.sweep()
        assert removed == 1
        assert "g2" not in c

    def test_sweep_keeps_primary_inputs(self):
        c = small_circuit()
        c.set_outputs(["g3"])  # g3 depends only on a, b
        c.sweep()
        assert c.inputs == ["a", "b", "c"]

    def test_fresh_net_avoids_collisions(self):
        c = small_circuit()
        n = c.fresh_net("g")
        assert n not in c

    def test_caches_invalidate_on_mutation(self):
        c = small_circuit()
        before = c.topological_order()
        c.add_gate("g4", GateType.AND, ("g2", "g3"))
        c.add_output("g4")
        after = c.topological_order()
        assert "g4" in after and "g4" not in before


class TestValidation:
    def test_valid_circuit_passes(self):
        small_circuit().validate()

    def test_undriven_fanin_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.AND, ("a", "ghost"))
        c.set_outputs(["g"])
        with pytest.raises(CircuitError):
            c.validate()

    def test_undriven_output_detected(self):
        c = Circuit()
        c.add_input("a")
        c.set_outputs(["ghost"])
        with pytest.raises(CircuitError):
            c.validate()

    def test_no_outputs_detected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.validate()


class TestCopy:
    def test_copy_is_independent(self):
        c = small_circuit()
        d = c.copy()
        d.replace_gate(Gate("g1", GateType.OR, ("a", "b")))
        assert c.gate("g1").gtype is GateType.AND

    def test_copy_preserves_everything(self):
        c = small_circuit()
        d = c.copy()
        assert c.structurally_equal(d)

    def test_structurally_equal_detects_difference(self):
        c = small_circuit()
        d = c.copy()
        d.replace_gate(Gate("g1", GateType.NAND, ("a", "b")))
        assert not c.structurally_equal(d)
