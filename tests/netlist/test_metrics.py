"""Tests for the equivalent-2-input-gate size measure and circuit stats."""

from repro.netlist import (
    CircuitBuilder,
    Gate,
    GateType,
    circuit_stats,
    gate_two_input_equivalents,
    literal_count,
    two_input_gate_count,
)


class TestGateEquivalents:
    def test_two_input_gate_counts_one(self):
        assert gate_two_input_equivalents(Gate("g", GateType.AND, ("a", "b"))) == 1

    def test_k_input_gate_counts_k_minus_1(self):
        g = Gate("g", GateType.OR, ("a", "b", "c", "d", "e"))
        assert gate_two_input_equivalents(g) == 4

    def test_inverter_free_by_default(self):
        g = Gate("g", GateType.NOT, ("a",))
        assert gate_two_input_equivalents(g) == 0
        assert gate_two_input_equivalents(g, count_inverters=True) == 1

    def test_buffer_always_free(self):
        g = Gate("g", GateType.BUF, ("a",))
        assert gate_two_input_equivalents(g, count_inverters=True) == 0

    def test_sources_free(self):
        assert gate_two_input_equivalents(Gate("i", GateType.INPUT)) == 0
        assert gate_two_input_equivalents(Gate("c", GateType.CONST1)) == 0


class TestCircuitCounts:
    def _circuit(self):
        b = CircuitBuilder("m")
        a, x, y = b.inputs("a", "b", "c")
        g1 = b.AND(a, x, y)       # 2 equivalents, 3 literals
        g2 = b.NOT(g1)            # 0 equivalents, 1 literal
        g3 = b.OR(g2, a, name="o")  # 1 equivalent, 2 literals
        b.outputs(g3)
        return b.build()

    def test_two_input_gate_count(self):
        assert two_input_gate_count(self._circuit()) == 3

    def test_decomposition_invariance(self):
        # AND(a,b,c) versus AND(AND(a,b),c) must count the same.
        b = CircuitBuilder("wide")
        a, x, y = b.inputs("a", "b", "c")
        g = b.AND(a, x, y, name="o")
        b.outputs(g)
        wide = b.build()

        b2 = CircuitBuilder("narrow")
        a, x, y = b2.inputs("a", "b", "c")
        h = b2.AND(a, x)
        g = b2.AND(h, y, name="o")
        b2.outputs(g)
        narrow = b2.build()

        assert two_input_gate_count(wide) == two_input_gate_count(narrow) == 2

    def test_literal_count(self):
        assert literal_count(self._circuit()) == 6

    def test_circuit_stats_row(self):
        s = circuit_stats(self._circuit())
        assert s.n_inputs == 3
        assert s.n_outputs == 1
        assert s.n_gates == 3
        assert s.two_input_gates == 3
        assert s.depth == 3
        assert s.row()["2-inp"] == 3
