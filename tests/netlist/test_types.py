"""Unit tests for the gate-type alphabet and scalar gate evaluation."""

import pytest

from repro.netlist import Gate, GateType, arity_ok, eval_gate


class TestArity:
    def test_sources_take_no_fanins(self):
        for g in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            assert arity_ok(g, 0)
            assert not arity_ok(g, 1)

    def test_unary_take_exactly_one(self):
        for g in (GateType.NOT, GateType.BUF):
            assert arity_ok(g, 1)
            assert not arity_ok(g, 0)
            assert not arity_ok(g, 2)

    def test_multi_input_need_two_or_more(self):
        for g in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
                  GateType.XOR, GateType.XNOR):
            assert not arity_ok(g, 1)
            assert arity_ok(g, 2)
            assert arity_ok(g, 5)

    def test_gate_constructor_enforces_arity(self):
        with pytest.raises(ValueError):
            Gate("g", GateType.AND, ("a",))
        with pytest.raises(ValueError):
            Gate("g", GateType.NOT, ("a", "b"))
        Gate("g", GateType.AND, ("a", "b"))  # ok

    def test_gate_fanins_coerced_to_tuple(self):
        g = Gate("g", GateType.AND, ["a", "b"])
        assert g.fanins == ("a", "b")


class TestEvalGate:
    @pytest.mark.parametrize("vals,expected", [
        ((0, 0), 0), ((0, 1), 0), ((1, 0), 0), ((1, 1), 1)])
    def test_and(self, vals, expected):
        assert eval_gate(GateType.AND, vals) == expected
        assert eval_gate(GateType.NAND, vals) == 1 - expected

    @pytest.mark.parametrize("vals,expected", [
        ((0, 0), 0), ((0, 1), 1), ((1, 0), 1), ((1, 1), 1)])
    def test_or(self, vals, expected):
        assert eval_gate(GateType.OR, vals) == expected
        assert eval_gate(GateType.NOR, vals) == 1 - expected

    @pytest.mark.parametrize("vals,expected", [
        ((0, 0), 0), ((0, 1), 1), ((1, 0), 1), ((1, 1), 0)])
    def test_xor(self, vals, expected):
        assert eval_gate(GateType.XOR, vals) == expected
        assert eval_gate(GateType.XNOR, vals) == 1 - expected

    def test_wide_gates(self):
        assert eval_gate(GateType.AND, (1, 1, 1, 1)) == 1
        assert eval_gate(GateType.AND, (1, 1, 0, 1)) == 0
        assert eval_gate(GateType.XOR, (1, 1, 1)) == 1
        assert eval_gate(GateType.XOR, (1, 1, 1, 1)) == 0

    def test_unary_and_constants(self):
        assert eval_gate(GateType.NOT, (0,)) == 1
        assert eval_gate(GateType.NOT, (1,)) == 0
        assert eval_gate(GateType.BUF, (1,)) == 1
        assert eval_gate(GateType.CONST0, ()) == 0
        assert eval_gate(GateType.CONST1, ()) == 1

    def test_inputs_have_no_rule(self):
        with pytest.raises(ValueError):
            eval_gate(GateType.INPUT, ())


class TestGateHelpers:
    def test_with_fanins_and_with_type(self):
        g = Gate("g", GateType.AND, ("a", "b"))
        assert g.with_fanins(("c", "d")).fanins == ("c", "d")
        assert g.with_type(GateType.NAND).gtype is GateType.NAND
        assert g.with_type(GateType.NAND).name == "g"

    def test_is_source(self):
        assert Gate("i", GateType.INPUT).is_source
        assert Gate("c", GateType.CONST1).is_source
        assert not Gate("g", GateType.AND, ("a", "b")).is_source
