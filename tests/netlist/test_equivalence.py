"""Tests for random and formal (miter + PODEM) equivalence checking."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchcircuits import (
    c17,
    paper_f1_impl1,
    paper_f1_impl2,
    random_circuit,
)
from repro.netlist import (
    CircuitBuilder,
    CircuitError,
    EquivalenceStatus,
    Gate,
    GateType,
    build_miter,
    formally_equivalent,
    random_equivalent,
)
from repro.sim import simulate_pattern


class TestMiter:
    def test_miter_structure(self):
        a = c17()
        b = c17().copy()
        miter, out = build_miter(a, b)
        miter.validate()
        assert miter.outputs == [out]
        assert miter.inputs == a.inputs

    def test_miter_computes_difference(self):
        a = paper_f1_impl1()
        b = paper_f1_impl2()
        miter, out = build_miter(a, b)
        # equivalent circuits: miter is 0 everywhere (spot checks)
        rng = random.Random(0)
        for _ in range(16):
            pattern = {pi: rng.randint(0, 1) for pi in a.inputs}
            assert simulate_pattern(miter, pattern)[out] == 0

    def test_interface_mismatch_rejected(self):
        a = c17()
        b = paper_f1_impl1()
        with pytest.raises(CircuitError):
            build_miter(a, b)


class TestFormalEquivalence:
    def test_paper_f1_implementations(self):
        r = formally_equivalent(paper_f1_impl1(), paper_f1_impl2())
        assert r.status is EquivalenceStatus.EQUIVALENT

    def test_detects_subtle_difference(self):
        a = paper_f1_impl1()
        b = paper_f1_impl1()
        # flip one gate type: OR -> NOR on a deep term
        g = b.gate("g4")
        b.replace_gate(Gate("g4", GateType.NAND, g.fanins))
        r = formally_equivalent(a, b)
        assert r.status is EquivalenceStatus.DIFFERENT
        assert r.counterexample is not None
        # counterexample really distinguishes them
        va = simulate_pattern(a, r.counterexample)["f1"]
        vb = simulate_pattern(b, r.counterexample)["f1"]
        assert va != vb

    def test_self_equivalence(self):
        c = random_circuit("r", 8, 4, 40, seed=5)
        r = formally_equivalent(c, c.copy())
        assert r.equivalent

    @given(st.integers(0, 2000))
    @settings(max_examples=5, deadline=None)
    def test_procedure_outputs_formally_equivalent(self, seed):
        from repro.resynth import procedure2
        c = random_circuit("r", 7, 3, 30, seed=seed)
        rep = procedure2(c, k=5)
        r = formally_equivalent(c, rep.circuit)
        assert r.equivalent

    def test_random_refutation_provides_counterexample(self):
        a = c17()
        b = c17().copy()
        g = b.gate("22")
        b.replace_gate(Gate("22", GateType.AND, g.fanins))
        r = random_equivalent(a, b)
        assert r.status is EquivalenceStatus.DIFFERENT
        cex = r.counterexample
        va = simulate_pattern(a, cex)
        vb = simulate_pattern(b, cex)
        assert any(va[o] != vb[o] for o in a.output_set)

    def test_random_alone_cannot_prove(self):
        c = c17()
        r = random_equivalent(c, c.copy())
        assert r.status is EquivalenceStatus.UNDECIDED
