"""Tests for structural hashing."""

import random

from repro.benchcircuits import random_circuit
from repro.netlist import (
    CircuitBuilder,
    GateType,
    structural_hash,
)
from repro.sim import outputs_equal, random_words


class TestStructuralHash:
    def test_merges_duplicates(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x)
        g2 = b.AND(x, a)  # commutative duplicate
        out = b.OR(g1, g2, name="out")
        b.outputs(out)
        c = b.build()
        merged = structural_hash(c)
        assert merged == 1
        # the OR now reads one net twice; duplicate fanin remains until
        # simplify() dedupes it
        assert len(c.logic_gates()) == 2

    def test_cascading_merges(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x)
        g2 = b.AND(a, x)
        h1 = b.NOT(g1)
        h2 = b.NOT(g2)  # becomes duplicate only after g-merge
        out = b.OR(h1, h2, name="out")
        b.outputs(out)
        c = b.build()
        merged = structural_hash(c)
        assert merged == 2

    def test_noncommutative_unary(self):
        b = CircuitBuilder()
        a, = b.inputs("a")
        n1 = b.NOT(a)
        n2 = b.NOT(a)
        out = b.XOR(n1, n2, name="out")
        b.outputs(out)
        c = b.build()
        assert structural_hash(c) == 1

    def test_function_preserved(self):
        for seed in range(4):
            c = random_circuit("r", 8, 4, 50, seed=seed)
            ref = c.copy()
            structural_hash(c)
            c.validate()
            rng = random.Random(seed)
            w = random_words(c.inputs, 512, rng)
            assert outputs_equal(ref, c, w, 512)

    def test_interface_preserved(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g1 = b.AND(a, x, name="o1")
        g2 = b.AND(a, x, name="o2")
        b.outputs(g1, g2)
        c = b.build()
        structural_hash(c)
        assert c.outputs == ["o1", "o2"]
        assert c.gate("o2").gtype is GateType.BUF

    def test_fixpoint(self):
        c = random_circuit("r", 8, 4, 50, seed=9)
        structural_hash(c)
        assert structural_hash(c) == 0
