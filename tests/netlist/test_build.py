"""Tests for CircuitBuilder and the equation-based fixture parser."""

import pytest

from repro.netlist import CircuitBuilder, CircuitError, GateType, from_eqns


class TestCircuitBuilder:
    def test_auto_naming_avoids_collisions(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "g1")  # 'g1' would be the first auto name
        g = b.AND(a, x)
        assert g != "g1"

    def test_explicit_names(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        g = b.AND(a, x, name="myand")
        assert g == "myand"

    def test_all_gate_helpers(self):
        b = CircuitBuilder()
        a, x = b.inputs("a", "b")
        nets = [
            b.AND(a, x), b.OR(a, x), b.NAND(a, x), b.NOR(a, x),
            b.XOR(a, x), b.XNOR(a, x), b.NOT(a), b.BUF(x),
            b.CONST0(), b.CONST1(),
        ]
        b.outputs(nets[0])
        c = b.build()
        types = [c.gate(n).gtype for n in nets]
        assert types == [
            GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
            GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF,
            GateType.CONST0, GateType.CONST1,
        ]

    def test_build_validates(self):
        b = CircuitBuilder()
        b.inputs("a")
        with pytest.raises(CircuitError):
            b.build()  # no outputs


class TestFromEqns:
    def test_basic_parse(self):
        c = from_eqns(
            "t",
            ["a", "b"],
            ["g1 = AND(a, b)", "g2 = NOT(g1)"],
            ["g2"],
        )
        assert c.gate("g1").gtype is GateType.AND
        assert c.gate("g2").fanins == ("g1",)

    def test_aliases(self):
        c = from_eqns(
            "t", ["a"],
            ["g1 = INV(a)", "g2 = BUFF(g1)"],
            ["g2"],
        )
        assert c.gate("g1").gtype is GateType.NOT
        assert c.gate("g2").gtype is GateType.BUF

    def test_comments_and_blanks_skipped(self):
        c = from_eqns(
            "t", ["a", "b"],
            ["# a comment", "", "g = OR(a, b)"],
            ["g"],
        )
        assert c.gate("g").gtype is GateType.OR

    def test_bad_line_raises(self):
        with pytest.raises(CircuitError):
            from_eqns("t", ["a"], ["garbage line"], ["a"])

    def test_unknown_type_raises(self):
        with pytest.raises(CircuitError):
            from_eqns("t", ["a", "b"], ["g = FROB(a, b)"], ["g"])
