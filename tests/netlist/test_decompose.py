"""Tests for 2-input decomposition: function-, size- and path-neutral."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import count_paths
from repro.benchcircuits import paper_f2_sop, random_circuit
from repro.netlist import (
    CircuitBuilder,
    GateType,
    decompose_two_input,
    two_input_gate_count,
)
from repro.sim import outputs_equal, random_words


class TestDecomposeTwoInput:
    def test_all_gates_narrow(self):
        d = decompose_two_input(paper_f2_sop())
        for g in d.logic_gates():
            assert len(g.fanins) <= 2

    def test_interface_preserved(self):
        c = paper_f2_sop()
        d = decompose_two_input(c)
        assert d.inputs == c.inputs
        assert d.outputs == c.outputs

    @given(st.integers(0, 3000))
    @settings(max_examples=15, deadline=None)
    def test_function_preserved(self, seed):
        c = random_circuit("r", 7, 3, 35, seed=seed)
        d = decompose_two_input(c)
        rng = random.Random(seed)
        w = random_words(c.inputs, 256, rng)
        assert outputs_equal(c, d, w, 256)

    @given(st.integers(0, 3000))
    @settings(max_examples=15, deadline=None)
    def test_metrics_invariant(self, seed):
        c = random_circuit("r", 7, 3, 35, seed=seed)
        d = decompose_two_input(c)
        assert two_input_gate_count(d) == two_input_gate_count(c)
        assert count_paths(d) == count_paths(c)

    def test_inverting_wide_gates(self):
        b = CircuitBuilder()
        ins = b.inputs("a", "b", "c", "d", "e")
        g1 = b.NAND(*ins, name="g1")
        g2 = b.NOR(*ins, name="g2")
        g3 = b.XNOR(*ins, name="g3")
        b.outputs(g1, g2, g3)
        c = b.build()
        d = decompose_two_input(c)
        rng = random.Random(0)
        w = random_words(c.inputs, 64, rng)
        assert outputs_equal(c, d, w, 64)

    def test_already_narrow_is_copied(self):
        from repro.benchcircuits import c17
        c = c17()
        d = decompose_two_input(c)
        assert d.structurally_equal(c)

    def test_balanced_depth(self):
        # 8-input AND decomposes to depth 3, not a depth-7 chain.
        b = CircuitBuilder()
        ins = b.inputs(*[f"i{j}" for j in range(8)])
        g = b.AND(*ins, name="g")
        b.outputs(g)
        d = decompose_two_input(b.build())
        assert d.depth() == 3
