"""JobSpec shape validation and content addressing."""

import json

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.service import JobSpec, JobSpecError, spec_from_doc, spec_from_json


def netlist_doc():
    return json.loads(circuit_to_json(c17()))


class TestContentAddressing:
    def test_id_is_stable(self):
        a = JobSpec(circuit="syn1423", k=5, seed=1)
        b = JobSpec(circuit="syn1423", k=5, seed=1)
        assert a.job_id == b.job_id
        assert a.job_id.startswith("j") and len(a.job_id) == 13

    def test_id_ignores_doc_key_order(self):
        doc = JobSpec(circuit="syn1423", k=5, seed=1).to_doc()
        shuffled = dict(reversed(list(doc.items())))
        assert spec_from_doc(shuffled).job_id == spec_from_doc(doc).job_id

    def test_id_distinguishes_every_knob(self):
        base = JobSpec(circuit="syn1423")
        variants = [
            JobSpec(circuit="syn1423", k=6),
            JobSpec(circuit="syn1423", seed=1),
            JobSpec(circuit="syn1423", procedure="procedure3"),
            JobSpec(circuit="syn1423", perm_budget=50),
            JobSpec(circuit="syn1423", max_passes=3),
            JobSpec(netlist=netlist_doc()),
        ]
        ids = {s.job_id for s in variants} | {base.job_id}
        assert len(ids) == len(variants) + 1

    def test_json_roundtrip_preserves_id(self):
        spec = JobSpec(netlist=netlist_doc(), procedure="combined",
                       gate_weight=2.5, k=4)
        again = spec_from_json(spec.to_json())
        assert again == spec
        assert again.job_id == spec.job_id

    def test_describe_mentions_id_and_source(self):
        spec = JobSpec(circuit="syn1423", k=5, seed=1)
        text = spec.describe()
        assert spec.job_id in text and "syn1423" in text


class TestValidation:
    def err(self, doc):
        with pytest.raises(JobSpecError) as exc:
            spec_from_doc(doc)
        return str(exc.value)

    def test_not_an_object(self):
        assert "JSON object" in self.err([1, 2, 3])
        assert "JSON object" in self.err(None)

    def test_unknown_procedure(self):
        msg = self.err({"circuit": "syn1423", "procedure": "procedure9"})
        assert "procedure9" in msg and "procedure2" in msg

    def test_circuit_and_netlist_are_exclusive(self):
        msg = self.err({"circuit": "syn1423", "netlist": netlist_doc()})
        assert "exactly one" in msg
        assert "exactly one" in self.err({})

    def test_unknown_suite_circuit(self):
        assert "nope" in self.err({"circuit": "nope"})

    def test_netlist_must_be_repro_netlist(self):
        msg = self.err({"netlist": {"format": "other"}})
        assert "repro-netlist" in msg

    def test_unknown_field_rejected(self):
        msg = self.err({"circuit": "syn1423", "kk": 5})
        assert "kk" in msg

    def test_int_ranges(self):
        assert "'k'" in self.err({"circuit": "syn1423", "k": 1})
        assert "'k'" in self.err({"circuit": "syn1423", "k": 99})
        assert "'jobs'" in self.err({"circuit": "syn1423", "jobs": 0})
        assert "'max_passes'" in self.err(
            {"circuit": "syn1423", "max_passes": 0})

    def test_bool_is_not_an_int(self):
        assert "integer" in self.err({"circuit": "syn1423", "k": True})

    def test_gate_weight_must_be_nonnegative_number(self):
        assert "gate_weight" in self.err(
            {"circuit": "syn1423", "gate_weight": -1})
        assert "gate_weight" in self.err(
            {"circuit": "syn1423", "gate_weight": "big"})

    def test_bad_json_text(self):
        with pytest.raises(JobSpecError) as exc:
            spec_from_json("{not json")
        assert "JSON" in str(exc.value)

    def test_defaults_applied(self):
        spec = spec_from_doc({"circuit": "syn1423"})
        assert spec.k == 5 and spec.jobs == 1
        assert spec.procedure == "procedure2"
