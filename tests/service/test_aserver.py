"""Protocol robustness of the stdlib ASGI host: malformed requests,
body/header bounds, and keep-alive framing over raw sockets."""

import json
import socket

import pytest

from repro.service import ArtifactStore, ServiceServer, SupervisorConfig


@pytest.fixture()
def server(tmp_path):
    store = ArtifactStore(str(tmp_path / "service"))
    config = SupervisorConfig(max_retries=0, poll_interval=0.02)
    with ServiceServer(store, port=0, config=config, max_workers=1) as srv:
        yield srv


def raw_exchange(server, payload: bytes, timeout: float = 10.0) -> bytes:
    with socket.create_connection(server.address, timeout=timeout) as sock:
        sock.sendall(payload)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
    return b"".join(chunks)


def test_malformed_request_line_is_400(server):
    answer = raw_exchange(server, b"NOT-A-REQUEST\r\n\r\n")
    assert answer.startswith(b"HTTP/1.1 400 ")
    assert b'"error"' in answer


def test_unknown_method_is_400(server):
    answer = raw_exchange(server, b"BREW /jobs HTTP/1.1\r\n\r\n")
    assert answer.startswith(b"HTTP/1.1 400 ")


def test_chunked_request_body_is_rejected(server):
    answer = raw_exchange(
        server,
        b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
    assert answer.startswith(b"HTTP/1.1 400 ")


def test_oversized_declared_body_is_413(server):
    huge = 1024 * 1024 * 1024  # 1 GiB declared, none sent
    answer = raw_exchange(
        server,
        f"POST /jobs HTTP/1.1\r\nContent-Length: {huge}\r\n\r\n"
        .encode("latin-1"))
    assert answer.startswith(b"HTTP/1.1 413 ")


def test_oversized_header_section_is_431(server):
    payload = (b"GET /jobs HTTP/1.1\r\nX-Pad: " + b"a" * (80 * 1024)
               + b"\r\n\r\n")
    answer = raw_exchange(server, payload)
    assert answer.startswith(b"HTTP/1.1 431 ")


def test_keep_alive_serves_sequential_requests(server):
    with socket.create_connection(server.address, timeout=10.0) as sock:
        fh = sock.makefile("rb")
        for _ in range(2):
            sock.sendall(b"GET /jobs HTTP/1.1\r\n"
                         b"Host: x\r\nAccept: application/json\r\n\r\n")
            status = fh.readline()
            assert status.startswith(b"HTTP/1.1 200")
            length = None
            while True:
                line = fh.readline().strip()
                if not line:
                    break
                name, _, value = line.partition(b":")
                if name.lower() == b"content-length":
                    length = int(value)
            assert length is not None  # fixed-length => keep-alive legal
            body = fh.read(length)
            assert json.loads(body) == {"jobs": []}


def test_http10_connection_closes_after_response(server):
    answer = raw_exchange(
        server, b"GET /jobs HTTP/1.0\r\nHost: x\r\n\r\n")
    assert answer.startswith(b"HTTP/1.1 200")
    assert b"Connection: close" in answer


def test_version_endpoint(server):
    answer = raw_exchange(
        server,
        b"GET /version HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
    body = answer.split(b"\r\n\r\n", 1)[1]
    doc = json.loads(body)
    assert doc["api_version"] == "1"
    assert b"X-Repro-Api-Version: 1" in answer
