"""Multi-tenancy: registry validation, API-key auth (401), per-tenant
quotas (429 + Retry-After), and priority scheduling order."""

import json

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.service import (
    ArtifactStore,
    BackpressureError,
    JobSpec,
    PUBLIC_TENANT,
    ResynthesisService,
    ServiceAPIError,
    ServiceClient,
    ServiceServer,
    SupervisorConfig,
    Tenant,
    TenantRegistry,
)


def c17_spec(**kw):
    defaults = dict(netlist=json.loads(circuit_to_json(c17())),
                    k=4, perm_budget=20, max_passes=2)
    defaults.update(kw)
    return JobSpec(**defaults)


def fast_config():
    return SupervisorConfig(max_retries=0, heartbeat_timeout=20.0,
                            heartbeat_interval=0.2, backoff_base=0.05,
                            poll_interval=0.02)


TWO_TENANTS = TenantRegistry([
    Tenant(name="alice", key="key-a", max_active=2, priority=5),
    Tenant(name="bob", key="key-b", priority=0),
])


class TestRegistry:
    def test_open_mode_resolves_public(self):
        reg = TenantRegistry()
        assert not reg.auth_required
        assert reg.resolve(None) is PUBLIC_TENANT
        assert reg.resolve("anything") is PUBLIC_TENANT

    def test_key_resolution_and_errors(self):
        from repro.service import AuthError

        assert TWO_TENANTS.auth_required
        assert TWO_TENANTS.resolve("key-a").name == "alice"
        with pytest.raises(AuthError):
            TWO_TENANTS.resolve(None)
        with pytest.raises(AuthError):
            TWO_TENANTS.resolve("wrong")

    def test_get_falls_back_to_public(self):
        assert TWO_TENANTS.get("alice").priority == 5
        assert TWO_TENANTS.get("gone") is PUBLIC_TENANT
        assert TWO_TENANTS.get(None) is PUBLIC_TENANT

    def test_from_doc_validation(self):
        with pytest.raises(ValueError):
            TenantRegistry.from_doc({"tenants": [{"name": "x"}]})  # no key
        with pytest.raises(ValueError):
            TenantRegistry.from_doc({"tenants": [
                {"name": "x", "key": "k"},
                {"name": "x", "key": "k2"},
            ]})  # duplicate name
        with pytest.raises(ValueError):
            TenantRegistry.from_doc({"tenants": [
                {"name": "x", "key": "k", "bogus": 1}]})
        reg = TenantRegistry.from_doc({"tenants": [
            {"name": "x", "key": "k", "max_active": 3, "priority": -1}]})
        assert reg.resolve("k").max_active == 3

    def test_backpressure_error_clamps_retry_after(self):
        assert BackpressureError("x", retry_after=0).retry_after == 1
        assert BackpressureError("x", retry_after=7).retry_after == 7


@pytest.fixture()
def auth_server(tmp_path):
    store = ArtifactStore(str(tmp_path / "service"))
    with ServiceServer(store, port=0, config=fast_config(),
                       max_workers=2, tenants=TWO_TENANTS) as srv:
        yield srv


class TestAuthOverHttp:
    def test_submit_without_key_is_401(self, auth_server):
        client = ServiceClient(auth_server.url, timeout=30.0)
        with pytest.raises(ServiceAPIError) as exc:
            client.submit(c17_spec())
        assert exc.value.code == 401

    def test_submit_with_unknown_key_is_401(self, auth_server):
        client = ServiceClient(auth_server.url, timeout=30.0,
                               api_key="nope")
        with pytest.raises(ServiceAPIError) as exc:
            client.submit(c17_spec())
        assert exc.value.code == 401

    def test_submit_with_key_records_tenant(self, auth_server):
        client = ServiceClient(auth_server.url, timeout=30.0,
                               api_key="key-a")
        job_id = client.submit(c17_spec())["id"]
        view = client.wait(job_id, timeout=60.0)
        assert view["tenant"] == "alice"
        rows = client.jobs(tenant="alice")
        assert [r["id"] for r in rows] == [job_id]
        assert client.jobs(tenant="bob") == []

    def test_reads_stay_open_without_key(self, auth_server):
        submitter = ServiceClient(auth_server.url, timeout=30.0,
                                  api_key="key-b")
        job_id = submitter.submit(c17_spec())["id"]
        anonymous = ServiceClient(auth_server.url, timeout=30.0)
        assert anonymous.job(job_id)["id"] == job_id
        assert "counters" in anonymous.metrics()


class TestQuotaAndPriority:
    def test_quota_exceeded_is_backpressure(self, tmp_path):
        # Engine-level: no scheduler running, so jobs stay queued and
        # the third submit must trip alice's max_active=2.
        store = ArtifactStore(str(tmp_path / "svc"))
        service = ResynthesisService(store, config=fast_config(),
                                     tenants=TWO_TENANTS)
        try:
            alice = TWO_TENANTS.resolve("key-a")
            service.submit(c17_spec(seed=1), alice)
            service.submit(c17_spec(seed=2), alice)
            with pytest.raises(BackpressureError) as exc:
                service.submit(c17_spec(seed=3), alice)
            assert exc.value.retry_after >= 1
            # bob is unaffected by alice's quota.
            service.submit(c17_spec(seed=3), TWO_TENANTS.resolve("key-b"))
            # Re-submitting an already-admitted spec dedups and must
            # never count against the quota.
            job_id, created = service.submit(c17_spec(seed=1), alice)
            assert created is False
        finally:
            service.stop(timeout=5.0)

    def test_quota_429_over_http_carries_retry_after(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "svc"))
        strict = TenantRegistry([
            Tenant(name="tiny", key="key-t", max_active=1)])
        # max_workers=1 with a pre-filled queue keeps the first job
        # queued long enough to trip the quota deterministically: the
        # service is created un-started inside ServiceServer and only
        # starts scheduling after __enter__, so submit both first.
        with ServiceServer(store, port=0, config=fast_config(),
                           max_workers=1, tenants=strict) as srv:
            client = ServiceClient(srv.url, timeout=30.0, api_key="key-t")
            first = client.submit(c17_spec(seed=10))
            try:
                second = client.submit(c17_spec(seed=11))
            except ServiceAPIError as exc:
                assert exc.code == 429
                assert exc.retry_after is not None and exc.retry_after >= 1
            else:
                # The first job finished before the second submit —
                # legal (quota counts *active* jobs), just not the
                # backpressure path this test wants; prove the quota
                # was really enforced at the engine level instead.
                assert first["id"] != second["id"]
            client.wait(first["id"], timeout=60.0)

    def test_priority_orders_the_queue(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "svc"))
        service = ResynthesisService(store, config=fast_config(),
                                     tenants=TWO_TENANTS)
        try:
            bob = TWO_TENANTS.resolve("key-b")
            alice = TWO_TENANTS.resolve("key-a")  # priority 5 > bob's 0
            b1, _ = service.submit(c17_spec(seed=1), bob)
            b2, _ = service.submit(c17_spec(seed=2), bob)
            a1, _ = service.submit(c17_spec(seed=3), alice)
            # Pop order: alice first despite submitting last, then bob
            # FIFO within his priority level.
            import heapq

            order = []
            while service._queue:
                order.append(heapq.heappop(service._queue)[2])
            assert order == [a1, b1, b2]
        finally:
            service.stop(timeout=5.0)

    def test_tenant_metrics_are_suffixed(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "svc"))
        service = ResynthesisService(store, config=fast_config(),
                                     tenants=TWO_TENANTS)
        try:
            service.submit(c17_spec(seed=1), TWO_TENANTS.resolve("key-a"))
            counters = service.metrics.snapshot()["counters"]
            assert counters["service_tenant_jobs_submitted_total_alice"] \
                == 1
        finally:
            service.stop(timeout=5.0)
