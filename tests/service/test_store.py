"""ArtifactStore: idempotent creation, events, checkpoints, reports."""

import json
import os

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.resynth import procedure2
from repro.service import ArtifactStore, JobSpec, StoreError
from repro.verify import netlist_dump


def spec():
    return JobSpec(netlist=json.loads(circuit_to_json(c17())), k=4,
                   perm_budget=20, max_passes=2)


def collect_checkpoints():
    ckpts = []
    procedure2(c17(), k=4, perm_budget=20, max_passes=2,
               on_pass=ckpts.append)
    return ckpts


class TestJobs:
    def test_create_is_idempotent(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, created = store.create_job(spec())
        assert created
        again, created2 = store.create_job(spec())
        assert again == job_id and not created2
        assert store.job_ids() == [job_id]
        assert store.has_job(job_id)

    def test_fresh_job_is_queued(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        status = store.status(job_id)
        assert status["state"] == "queued"
        assert status["attempts"] == 0

    def test_spec_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        assert store.load_spec(job_id) == spec()

    def test_unknown_job_raises(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(StoreError):
            store.load_spec("jdeadbeef0000")
        with pytest.raises(StoreError):
            store.status("jdeadbeef0000")
        with pytest.raises(StoreError):
            store.events("jdeadbeef0000")
        assert not store.has_job("jdeadbeef0000")

    def test_illegal_job_ids_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        for bad in ("", "../escape", "a/b", "..".join(["x", "y"])):
            with pytest.raises(StoreError):
                store.job_dir(bad)


class TestStatus:
    def test_transitions_keep_bookkeeping(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        created = store.status(job_id)["created"]
        store.set_status(job_id, "running", attempts=1)
        store.set_status(job_id, "failed", error="boom", traceback="tb")
        status = store.status(job_id)
        assert status["state"] == "failed"
        assert status["created"] == created
        assert status["attempts"] == 1  # carried over
        assert status["error"] == "boom"

    def test_error_does_not_leak_into_next_state(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        store.set_status(job_id, "failed", error="boom")
        store.set_status(job_id, "queued")
        assert "error" not in store.status(job_id)

    def test_unknown_state_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        with pytest.raises(StoreError):
            store.set_status(job_id, "exploded")


class TestEvents:
    def test_sequence_numbers_and_after_filter(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        assert store.append_event(job_id, "submitted") == 1
        assert store.append_event(job_id, "pass", pass_no=1) == 2
        assert store.append_event(job_id, "completed") == 3
        events = store.events(job_id)
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert [e["type"] for e in events] == ["submitted", "pass",
                                               "completed"]
        tail = store.events(job_id, after=2)
        assert [e["seq"] for e in tail] == [3]
        assert store.events(job_id, after=3) == []

    def test_payload_preserved(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        store.append_event(job_id, "pass", pass_no=2, gates=17)
        event = store.events(job_id)[0]
        assert event["pass_no"] == 2 and event["gates"] == 17
        assert event["ts"] > 0

    def test_seq_survives_large_events_and_process_handoff(self, tmp_path):
        # _last_seq reads only the file tail; events larger than its
        # read chunk and appends from a "different process" (a second
        # store instance, as in the supervisor/worker hand-off) must
        # still number contiguously.
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        assert store.append_event(job_id, "big", blob="x" * 10_000) == 1
        assert store.append_event(job_id, "small") == 2
        other = ArtifactStore(str(tmp_path))
        assert other.append_event(job_id, "handoff") == 3
        assert store.append_event(job_id, "back", blob="y" * 5_000) == 4
        assert [e["seq"] for e in store.events(job_id)] == [1, 2, 3, 4]

    def test_torn_tail_line_falls_back_to_scan(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        store.append_event(job_id, "a")
        store.append_event(job_id, "b")
        path = os.path.join(store.job_dir(job_id), "events.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 3, "type": "torn...')  # crash mid-append
        assert store.append_event(job_id, "c") == 3
        # The torn fragment is skipped; the healed log stays readable.
        assert [e["seq"] for e in store.events(job_id)] == [1, 2, 3]


class TestCheckpoints:
    def test_roundtrip_and_latest(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        ckpts = collect_checkpoints()
        for ckpt in ckpts:
            n = store.write_checkpoint(job_id, ckpt)
            assert n > 0
        assert store.checkpoint_passes(job_id) == [
            c.pass_no for c in ckpts
        ]
        latest = store.latest_checkpoint(job_id)
        assert latest.pass_no == ckpts[-1].pass_no
        assert latest.done == ckpts[-1].done
        assert netlist_dump(latest.circuit) == netlist_dump(
            ckpts[-1].circuit)

    def test_missing_checkpoint_raises(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        assert store.latest_checkpoint(job_id) is None
        with pytest.raises(StoreError):
            store.load_checkpoint(job_id, 3)


class TestReportAndErrors:
    def test_report_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        assert store.load_report(job_id) is None
        report = procedure2(c17(), k=4, perm_budget=20, max_passes=2)
        store.write_report(job_id, report)
        loaded = store.load_report(job_id)
        assert loaded.passes == report.passes
        assert loaded.gates_after == report.gates_after
        assert netlist_dump(loaded.circuit) == netlist_dump(report.circuit)
        doc = store.load_report_doc(job_id)
        assert doc["circuit"]["format"] == "repro-netlist"

    def test_pre_timings_report_on_disk_still_loads(self, tmp_path):
        # A report.json written before the structured "timings" mapping
        # existed (only the flat pass_seconds/total_seconds keys): the
        # store must keep loading it, reconstituting equivalent timings.
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        report = procedure2(c17(), k=4, perm_budget=20, max_passes=2)
        store.write_report(job_id, report)
        path = os.path.join(store.job_dir(job_id), "report.json")
        doc = json.load(open(path))
        assert "timings" in doc
        del doc["timings"]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        loaded = store.load_report(job_id)
        assert loaded.passes == report.passes
        assert loaded.gates_after == report.gates_after
        assert netlist_dump(loaded.circuit) == netlist_dump(report.circuit)
        assert loaded.pass_seconds == pytest.approx(report.pass_seconds)
        assert loaded.total_seconds == pytest.approx(report.total_seconds)
        assert set(loaded.timings) == {"pass_seconds", "total_seconds"}

    def test_worker_error_handoff(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        assert store.read_worker_error(job_id) is None
        store.write_worker_error(job_id, "boom", "Traceback ...")
        error = store.read_worker_error(job_id)
        assert error["message"] == "boom"
        assert error["traceback"].startswith("Traceback")
        store.clear_worker_error(job_id)
        assert store.read_worker_error(job_id) is None
        store.clear_worker_error(job_id)  # idempotent

    def test_no_torn_tmp_files_after_writes(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        store.heartbeat(job_id)
        store.write_worker_error(job_id, "x", "y")
        leftovers = [
            name for _, _, names in os.walk(str(tmp_path))
            for name in names if name.endswith(".tmp")
        ]
        assert leftovers == []
