"""run_job: checkpoint-every-pass execution with bit-identical resume."""

import json

import pytest

from repro.benchcircuits import c17
from repro.comparison import identification_cache
from repro.io import circuit_to_json
from repro.resynth import REPORT_NUMBER_FIELDS
from repro.service import ArtifactStore, JobSpec, run_job
from repro.verify import netlist_dump


def spec(**kw):
    defaults = dict(netlist=json.loads(circuit_to_json(c17())), k=4,
                    perm_budget=20, max_passes=3)
    defaults.update(kw)
    return JobSpec(**defaults)


class KillAfter(Exception):
    pass


def kill_after(pass_no):
    def hook(ckpt):
        if ckpt.pass_no >= pass_no:
            raise KillAfter(f"simulated death after pass {pass_no}")
    return hook


class TestStraightRun:
    def test_writes_report_checkpoints_and_events(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        report = run_job(store, job_id)
        assert store.load_report(job_id).passes == report.passes
        assert store.checkpoint_passes(job_id) == list(
            range(1, report.passes + 1))
        events = store.events(job_id)
        types = [e["type"] for e in events]
        assert types == ["pass"] * report.passes + ["completed"]
        # An observed pass event always implies a resumable checkpoint.
        for e in events[:-1]:
            assert e["checkpoint_bytes"] > 0
        assert events[-1]["replacements"] == report.replacements

    def test_progress_callback_beats_every_pass(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        beats = []
        report = run_job(store, job_id, progress=lambda: beats.append(1))
        assert len(beats) == report.passes


class TestResume:
    @pytest.mark.parametrize("killed_at", [1, 2])
    def test_interrupted_job_resumes_bit_identical(self, tmp_path,
                                                   killed_at):
        baseline_store = ArtifactStore(str(tmp_path / "baseline"))
        base_id, _ = baseline_store.create_job(spec())
        identification_cache().clear()
        straight = run_job(baseline_store, base_id)
        if killed_at >= straight.passes:
            pytest.skip("circuit converged before the kill point")

        store = ArtifactStore(str(tmp_path / "killed"))
        job_id, _ = store.create_job(spec())
        identification_cache().clear()
        with pytest.raises(KillAfter):
            run_job(store, job_id, on_pass=kill_after(killed_at))
        assert store.load_report(job_id) is None
        assert store.checkpoint_passes(job_id)[-1] == killed_at

        identification_cache().clear()  # a restarted worker is cold
        resumed = run_job(store, job_id)
        for field in REPORT_NUMBER_FIELDS:
            assert getattr(resumed, field) == getattr(straight, field), field
        assert netlist_dump(resumed.circuit) == netlist_dump(
            straight.circuit)
        types = [e["type"] for e in store.events(job_id)]
        assert "resumed" in types
        assert types[-1] == "completed"

    def test_rerun_after_completion_resumes_from_done(self, tmp_path):
        # A retry that arrives after the final (converged) pass must not
        # run extra passes: the checkpoint carries the done flag.
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec())
        first = run_job(store, job_id)
        again = run_job(store, job_id)
        assert again.passes == first.passes
        assert netlist_dump(again.circuit) == netlist_dump(first.circuit)

    def test_bad_netlist_surfaces_as_exception(self, tmp_path):
        # Cyclic inline netlist: passes shape validation, fails in the
        # worker when the circuit is actually built.
        doc = json.loads(circuit_to_json(c17()))
        cyclic = dict(doc)
        x = doc["inputs"][0]
        cyclic["gates"] = [
            {"name": "a", "type": "and", "fanins": ["b", x]},
            {"name": "b", "type": "and", "fanins": ["a", x]},
        ]
        cyclic["outputs"] = ["a"]
        store = ArtifactStore(str(tmp_path))
        job_id, _ = store.create_job(spec(netlist=cyclic))
        with pytest.raises(Exception):
            run_job(store, job_id)
        assert store.load_report(job_id) is None
