"""End-to-end HTTP API tests over a real socket on an ephemeral port.

The server drives real worker subprocesses; the small inline c17 jobs
keep each run in the sub-second range.  Covers the submit -> poll ->
result round trip (bit-identical to an in-process run), malformed-spec
400s, unknown-id 404s, dedup, long-polling, the crashed-worker failure
path, and the metrics endpoint.
"""

import json

import pytest

from repro.benchcircuits import c17
from repro.comparison import identification_cache
from repro.io import circuit_to_json
from repro.resynth import procedure2
from repro.service import (
    ArtifactStore,
    JobSpec,
    ServiceAPIError,
    ServiceClient,
    ServiceServer,
    SupervisorConfig,
)


def c17_doc():
    return json.loads(circuit_to_json(c17()))


def c17_spec(**kw):
    defaults = dict(netlist=c17_doc(), k=4, perm_budget=20, max_passes=2)
    defaults.update(kw)
    return JobSpec(**defaults)


@pytest.fixture()
def server(tmp_path):
    store = ArtifactStore(str(tmp_path / "service"))
    config = SupervisorConfig(max_retries=0, heartbeat_timeout=20.0,
                              heartbeat_interval=0.2, backoff_base=0.05,
                              poll_interval=0.02)
    with ServiceServer(store, port=0, config=config, max_workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestRoundTrip:
    def test_submit_poll_result_matches_in_process_run(self, client):
        submitted = client.submit(c17_spec())
        assert submitted["created"] is True
        job_id = submitted["id"]

        view = client.wait(job_id, timeout=60.0)
        assert view["state"] == "succeeded"
        assert view["attempts"] == 1
        assert view["checkpointed_passes"] == list(
            range(1, view["report"]["passes"] + 1))

        identification_cache().clear()
        direct = procedure2(c17(), k=4, perm_budget=20, max_passes=2)
        report = client.report(job_id)
        for field in ("passes", "replacements", "gates_before",
                      "gates_after", "paths_before", "paths_after"):
            assert report[field] == getattr(direct, field), field
        result = client.result(job_id)
        assert result == json.loads(circuit_to_json(direct.circuit))

    def test_resubmit_dedups_onto_existing_job(self, client):
        first = client.submit(c17_spec())
        client.wait(first["id"], timeout=60.0)
        second = client.submit(c17_spec())
        assert second["id"] == first["id"]
        assert second["created"] is False
        assert second["state"] == "succeeded"  # not re-run

    def test_jobs_listing(self, client):
        job_id = client.submit(c17_spec())["id"]
        client.wait(job_id, timeout=60.0)
        rows = client.jobs()
        assert [r["id"] for r in rows] == [job_id]
        assert rows[0]["state"] == "succeeded"

    def test_events_long_poll_and_pagination(self, client):
        job_id = client.submit(c17_spec())["id"]
        client.wait(job_id, timeout=60.0)
        chunk = client.events(job_id)
        types = [e["type"] for e in chunk["events"]]
        assert types[0] == "submitted"
        assert "pass" in types and "completed" in types
        assert chunk["state"] == "succeeded"
        # Pagination: asking after the last seq returns nothing, and the
        # terminal state makes the long poll return immediately.
        tail = client.events(job_id, after=chunk["next_after"], wait=10.0)
        assert tail["events"] == []
        assert tail["state"] == "succeeded"


class TestFailurePath:
    def test_crashed_worker_reaches_failed_with_traceback(self, client):
        doc = c17_doc()
        x = doc["inputs"][0]
        doc["gates"] = [
            {"name": "a", "type": "and", "fanins": ["b", x]},
            {"name": "b", "type": "and", "fanins": ["a", x]},
        ]
        doc["outputs"] = ["a"]
        job_id = client.submit(c17_spec(netlist=doc))["id"]
        view = client.wait(job_id, timeout=60.0)
        assert view["state"] == "failed"
        assert "Traceback" in view["traceback"]
        with pytest.raises(ServiceAPIError) as exc:
            client.report(job_id)
        assert exc.value.code == 404
        assert "failed" in exc.value.message


class TestShutdown:
    def test_stop_kills_workers_and_requeues_running_jobs(self, tmp_path):
        import os
        import sys
        import time

        from repro.service import ResynthesisService

        store = ArtifactStore(str(tmp_path / "service"))
        pid_file = tmp_path / "worker.pid"
        program = (
            "import os, time\n"
            f"open({str(pid_file)!r}, 'w').write(str(os.getpid()))\n"
            "time.sleep(60)\n"
        )
        config = SupervisorConfig(max_retries=5, heartbeat_timeout=60.0,
                                  poll_interval=0.01)
        service = ResynthesisService(
            store, config=config, max_workers=1,
            worker_command=lambda s, j, c: [sys.executable, "-c", program],
        )
        service.start()
        try:
            job_id, _ = service.submit(c17_spec())
            deadline = time.time() + 10.0
            while not pid_file.exists() and time.time() < deadline:
                time.sleep(0.01)
            assert pid_file.exists(), "worker never started"
        finally:
            service.stop(timeout=10.0)
        # Shutdown re-queued the in-flight job and left no orphan.
        assert store.status(job_id)["state"] == "queued"
        pid = int(pid_file.read_text())
        try:
            os.kill(pid, 0)
            alive = True
        except OSError:
            alive = False
        assert not alive
        # A fresh service over the same store re-admits the job.
        resumed = ResynthesisService(store, config=config, max_workers=1)
        assert job_id in resumed._queued


class TestBadRequests:
    def expect(self, client, code, call):
        with pytest.raises(ServiceAPIError) as exc:
            call()
        assert exc.value.code == code
        return exc.value.message

    def test_malformed_specs_get_400(self, client):
        msg = self.expect(client, 400,
                          lambda: client.submit_doc({"circuit": "nope"}))
        assert "nope" in msg
        self.expect(client, 400, lambda: client.submit_doc({}))
        self.expect(client, 400, lambda: client.submit_doc(
            {"circuit": "syn1423", "k": 99}))
        self.expect(client, 400, lambda: client.submit_doc(
            {"circuit": "syn1423", "bogus": 1}))

    def test_unparseable_body_gets_400(self, client, server):
        import urllib.error
        import urllib.request
        req = urllib.request.Request(
            server.url + "/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10.0)
        assert exc.value.code == 400

    def test_unknown_ids_get_404(self, client):
        for call in (
            lambda: client.job("jdeadbeef0000"),
            lambda: client.events("jdeadbeef0000"),
            lambda: client.report("jdeadbeef0000"),
            lambda: client.result("jdeadbeef0000"),
        ):
            msg = self.expect(client, 404, call)
            assert "jdeadbeef0000" in msg

    def test_unknown_routes_get_404(self, client):
        self.expect(client, 404, lambda: client._request("GET", "/nope"))
        self.expect(client, 404,
                    lambda: client._request("POST", "/nope", body={}))
        self.expect(client, 404, lambda: client._request(
            "GET", "/jobs/jdeadbeef0000/bogus"))

    def test_report_before_completion_is_404_not_crash(self, client,
                                                       server):
        # A queued job exists but has no report; the API must say so
        # rather than 404ing it as unknown.
        store = server.service.store
        job_id, _ = store.create_job(c17_spec(seed=42))
        msg = self.expect(client, 404, lambda: client.report(job_id))
        assert "no report yet" in msg


class TestMetrics:
    def test_counters_reflect_activity(self, client):
        job_id = client.submit(c17_spec())["id"]
        client.wait(job_id, timeout=60.0)
        client.submit(c17_spec())  # dedup
        try:
            client.job("jdeadbeef0000")
        except ServiceAPIError:
            pass
        snap = client.metrics()
        counters = snap["counters"]
        assert counters["service_jobs_submitted_total"] == 2
        assert counters["service_jobs_deduplicated_total"] == 1
        assert counters["service_jobs_succeeded_total"] == 1
        assert counters["service_http_errors_total"] >= 1
        assert counters["service_http_requests_total"] >= 4
        assert "service_pass_seconds" in snap["summaries"]

    def test_queue_wait_summary_appears_after_a_job_runs(self, client):
        job_id = client.submit(c17_spec())["id"]
        client.wait(job_id, timeout=60.0)
        snap = client.metrics()
        wait = snap["summaries"]["service_queue_wait_seconds"]
        assert wait["count"] >= 1
        assert wait["min"] >= 0.0

    def test_heartbeat_age_gauge_appears_after_a_job_runs(self, client):
        job_id = client.submit(c17_spec())["id"]
        client.wait(job_id, timeout=60.0)
        snap = client.metrics()
        assert snap["gauges"]["service_worker_heartbeat_age_seconds"] >= 0.0


class TestMetricsNegotiation:
    """GET /metrics: JSON by default, Prometheus when Accept prefers it."""

    def fetch(self, server, accept=None):
        import urllib.request

        headers = {"Accept": accept} if accept else {}
        req = urllib.request.Request(server.url + "/metrics",
                                     headers=headers)
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            return resp.headers.get("Content-Type"), resp.read().decode()

    def test_no_accept_header_keeps_json_default(self, server):
        ctype, body = self.fetch(server)
        assert ctype == "application/json"
        snap = json.loads(body)
        assert set(snap) == {"counters", "gauges", "summaries"}

    def test_wildcard_accept_keeps_json(self, server):
        ctype, _ = self.fetch(server, accept="*/*")
        assert ctype == "application/json"

    def test_explicit_json_accept_keeps_json(self, server):
        ctype, _ = self.fetch(server, accept="application/json")
        assert ctype == "application/json"

    def test_text_plain_gets_prometheus_exposition(self, server, client):
        from repro.obs import PROMETHEUS_CONTENT_TYPE

        job_id = client.submit(c17_spec())["id"]
        client.wait(job_id, timeout=60.0)
        ctype, body = self.fetch(server, accept="text/plain")
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE service_jobs_submitted counter" in body
        assert "service_jobs_submitted_total" in body
        with pytest.raises(json.JSONDecodeError):
            json.loads(body)

    def test_openmetrics_accept_gets_prometheus(self, server):
        ctype, _ = self.fetch(server, accept="application/openmetrics-text")
        assert ctype.startswith("text/plain")

    def test_qvalues_decide_ties_toward_json(self, server):
        # Prometheus's real scrape header: text wins via higher q.
        scrape = ("application/openmetrics-text;version=1.0.0;q=0.5,"
                  "text/plain;version=0.0.4;q=0.4,*/*;q=0.1")
        ctype, _ = self.fetch(server, accept=scrape)
        assert ctype.startswith("text/plain")
        # JSON q outranks text q: snapshot stays.
        ctype, _ = self.fetch(server,
                              accept="text/plain;q=0.4,application/json")
        assert ctype == "application/json"

    def test_other_endpoints_still_json(self, server, client):
        import urllib.request

        req = urllib.request.Request(server.url + "/jobs",
                                     headers={"Accept": "text/plain"})
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            assert resp.headers.get("Content-Type") == "application/json"
