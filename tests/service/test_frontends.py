"""Determinism contract across HTTP front ends: a job's report must be
bit-identical whether it ran behind the legacy threaded server or the
asyncio one — the front end only admits and serves, it never computes."""

import json

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.service import (
    ArtifactStore,
    JobSpec,
    ServiceClient,
    ServiceServer,
    SupervisorConfig,
    ThreadedServiceServer,
)

#: Report fields that must match exactly (timing fields legitimately
#: differ run to run; everything the algorithm decides must not).
REPORT_NUMBER_FIELDS = ("passes", "replacements", "gates_before",
                        "gates_after", "paths_before", "paths_after",
                        "literals_before", "literals_after")


def c17_spec(**kw):
    defaults = dict(netlist=json.loads(circuit_to_json(c17())),
                    k=4, perm_budget=20, max_passes=2)
    defaults.update(kw)
    return JobSpec(**defaults)


def fast_config():
    return SupervisorConfig(max_retries=0, heartbeat_timeout=20.0,
                            heartbeat_interval=0.2, backoff_base=0.05,
                            poll_interval=0.02)


def run_job_on(server_cls, tmp_path, name):
    store = ArtifactStore(str(tmp_path / name))
    with server_cls(store, port=0, config=fast_config(),
                    max_workers=2) as srv:
        client = ServiceClient(srv.url, timeout=30.0)
        job_id = client.submit(c17_spec())["id"]
        view = client.wait(job_id, timeout=60.0)
        assert view["state"] == "succeeded"
        report = client.report(job_id)
        events = client.events(job_id)["events"]
    return report, events


@pytest.mark.parametrize("seed", [0])
def test_reports_bit_identical_across_frontends(tmp_path, seed):
    threaded, threaded_events = run_job_on(ThreadedServiceServer,
                                           tmp_path, "threaded")
    asyncio_, async_events = run_job_on(ServiceServer, tmp_path, "async")
    for field in REPORT_NUMBER_FIELDS:
        if field in threaded:
            assert threaded[field] == asyncio_[field], field
    # The result netlist — the artifact of record — must be the same
    # document byte for byte.
    assert json.dumps(threaded["circuit"], sort_keys=True) \
        == json.dumps(asyncio_["circuit"], sort_keys=True)
    # Same event shapes too (timestamps differ; types and order do not).
    assert [e["type"] for e in threaded_events] \
        == [e["type"] for e in async_events]


def test_both_frontends_share_one_store(tmp_path):
    """A store written behind one front end is served by the other."""
    root = str(tmp_path / "shared")
    store = ArtifactStore(root)
    with ThreadedServiceServer(store, port=0, config=fast_config(),
                               max_workers=2) as srv:
        client = ServiceClient(srv.url, timeout=30.0)
        job_id = client.submit(c17_spec())["id"]
        client.wait(job_id, timeout=60.0)
        threaded_report = client.report(job_id)
    store2 = ArtifactStore(root)
    with ServiceServer(store2, port=0, config=fast_config(),
                       max_workers=2) as srv:
        client = ServiceClient(srv.url, timeout=30.0)
        assert client.report(job_id) == threaded_report
        answer = client.submit(c17_spec())
        assert answer["created"] is False  # dedup across front ends
