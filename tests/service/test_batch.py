"""Atomic batch submission: POST /jobs/batch semantics, whole-batch
backpressure, and dedup inside a batch."""

import json

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.service import (
    ArtifactStore,
    JobSpec,
    ServiceAPIError,
    ServiceClient,
    ServiceServer,
    SupervisorConfig,
)


def c17_spec(**kw):
    defaults = dict(netlist=json.loads(circuit_to_json(c17())),
                    k=4, perm_budget=20, max_passes=2)
    defaults.update(kw)
    return JobSpec(**defaults)


def fast_config():
    return SupervisorConfig(max_retries=0, heartbeat_timeout=20.0,
                            heartbeat_interval=0.2, backoff_base=0.05,
                            poll_interval=0.02)


@pytest.fixture()
def server(tmp_path):
    store = ArtifactStore(str(tmp_path / "service"))
    with ServiceServer(store, port=0, config=fast_config(),
                       max_workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestBatchSubmit:
    def test_batch_returns_rows_in_request_order(self, client):
        specs = [c17_spec(seed=i) for i in range(3)]
        rows = client.submit_batch(specs)
        assert [r["id"] for r in rows] == [s.job_id for s in specs]
        assert all(r["created"] for r in rows)
        for row in rows:
            client.wait(row["id"], timeout=60.0)

    def test_batch_dedups_against_store_and_itself(self, client):
        first = client.submit(c17_spec(seed=0))
        client.wait(first["id"], timeout=60.0)
        rows = client.submit_batch([
            c17_spec(seed=0),   # already in the store
            c17_spec(seed=40),  # new
            c17_spec(seed=40),  # duplicate within the batch
        ])
        assert rows[0]["created"] is False
        assert rows[0]["state"] == "succeeded"  # not re-run
        assert rows[1]["created"] is True
        assert rows[2]["created"] is False
        assert rows[1]["id"] == rows[2]["id"]
        client.wait(rows[1]["id"], timeout=60.0)

    def test_all_dedup_batch_answers_200_created_false(self, client):
        spec = c17_spec(seed=0)
        client.submit(spec)
        rows = client.submit_batch([spec])  # 200, not 201: nothing new
        assert rows == [{"id": spec.job_id, "state": rows[0]["state"],
                         "created": False}]

    def test_invalid_spec_rejects_whole_batch(self, client):
        with pytest.raises(ServiceAPIError) as exc:
            client.submit_batch_docs([
                c17_spec(seed=0).to_doc(),
                {"procedure": "bogus"},
            ])
        assert exc.value.code == 400
        assert "index 1" in exc.value.message
        assert client.jobs() == []  # nothing was admitted

    def test_empty_batch_is_400(self, client):
        with pytest.raises(ServiceAPIError) as exc:
            client.submit_batch([])
        assert exc.value.code == 400


class TestBatchBackpressure:
    def test_oversized_batch_rejected_whole(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "svc"))
        # queue_limit=2 and the service not yet draining fast enough: a
        # 3-spec batch must be rejected in full, admitting nothing.
        with ServiceServer(store, port=0, config=fast_config(),
                           max_workers=1, queue_limit=2) as srv:
            client = ServiceClient(srv.url, timeout=30.0)
            with pytest.raises(ServiceAPIError) as exc:
                client.submit_batch([c17_spec(seed=i)
                                     for i in range(60, 63)])
            assert exc.value.code == 429
            assert exc.value.retry_after is not None
            # Atomicity: zero of the three jobs was admitted.
            assert client.jobs() == []

    def test_batch_within_limit_is_admitted(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "svc"))
        with ServiceServer(store, port=0, config=fast_config(),
                           max_workers=2, queue_limit=2) as srv:
            client = ServiceClient(srv.url, timeout=30.0)
            rows = client.submit_batch([c17_spec(seed=i)
                                        for i in range(70, 72)])
            assert all(r["created"] for r in rows)
            for row in rows:
                client.wait(row["id"], timeout=60.0)
