"""ServiceClient robustness: timeouts, bounded GET retries, error taxonomy.

The contract: connection-level failures retry with exponential backoff
for GETs only (idempotent); POST/PUT fail fast (a lost response could
mean a duplicate submission); server-answered errors are deterministic
and never retried.  The retry budget exhausts into
:class:`ServiceConnectionError` — an ``OSError`` subclass so generic
connection handling (RemoteFabric's lost-shard path) catches it.
"""

import socket

import pytest

from repro.service import (
    ArtifactStore,
    ServiceAPIError,
    ServiceClient,
    ServiceConnectionError,
    ServiceServer,
)


def refused_url():
    """A URL on a port that nothing listens on."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"http://127.0.0.1:{port}"


def recording_client(**kw):
    client = ServiceClient(refused_url(), timeout=0.5, backoff=0.01, **kw)
    sleeps = []
    client._sleep = sleeps.append
    return client, sleeps


class TestConnectionRetries:
    def test_get_retries_with_exponential_backoff(self):
        client, sleeps = recording_client(retries=2)
        with pytest.raises(ServiceConnectionError) as err:
            client.jobs()
        assert err.value.attempts == 3
        assert sleeps == [0.01, 0.02]
        assert "failed after 3 attempt(s)" in str(err.value)
        assert isinstance(err.value.__cause__, OSError)

    def test_zero_retries_is_one_attempt(self):
        client, sleeps = recording_client(retries=0)
        with pytest.raises(ServiceConnectionError) as err:
            client.jobs()
        assert err.value.attempts == 1
        assert sleeps == []

    def test_post_is_never_retried(self):
        client, sleeps = recording_client(retries=5)
        with pytest.raises(ServiceConnectionError) as err:
            client.run_tasks([])
        assert err.value.attempts == 1
        assert sleeps == []

    def test_put_is_never_retried(self):
        client, sleeps = recording_client(retries=5)
        with pytest.raises(ServiceConnectionError) as err:
            client.put_memo_entry("m" + "0" * 16, {})
        assert err.value.attempts == 1
        assert sleeps == []

    def test_connection_error_is_an_oserror(self):
        client, _sleeps = recording_client(retries=0)
        with pytest.raises(OSError):
            client.jobs()


class TestServerAnsweredErrors:
    def test_api_error_is_not_retried(self, tmp_path):
        server = ServiceServer(ArtifactStore(str(tmp_path / "store")))
        server.start()
        try:
            client = ServiceClient(server.url, timeout=10.0, retries=5)
            sleeps = []
            client._sleep = sleeps.append
            with pytest.raises(ServiceAPIError) as err:
                client.job("no-such-job")
            assert err.value.code == 404
            assert sleeps == []  # deterministic answer, no retry
        finally:
            server.stop()


class TestValidation:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            ServiceClient("http://x", timeout=0)

    def test_retries_must_be_non_negative(self):
        with pytest.raises(ValueError):
            ServiceClient("http://x", retries=-1)
