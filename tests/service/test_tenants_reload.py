"""Tenants-file hot reload: pick up edits, reject orphaning/bad files.

The registry swap itself is tested directly on
:class:`ResynthesisService` (cheap, no sockets); one HTTP test pins the
end-to-end path — the reload check runs on tenant resolution, so a new
key starts working on the first request after the file changes.
"""

import json
import os

import pytest

from repro.service import (
    ArtifactStore,
    ResynthesisService,
    ServiceAPIError,
    ServiceClient,
    ServiceServer,
    SupervisorConfig,
)


def write_tenants(path, *rows):
    doc = {"tenants": [dict(r) for r in rows]}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    # File-stamp changes are (mtime_ns, size); bump mtime explicitly so
    # sub-resolution filesystems cannot hide a same-size rewrite.
    st = os.stat(path)
    os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))


ALICE = {"name": "alice", "key": "key-a"}
BOB = {"name": "bob", "key": "key-b"}
CAROL = {"name": "carol", "key": "key-c"}


@pytest.fixture()
def service(tmp_path):
    path = str(tmp_path / "tenants.json")
    write_tenants(path, ALICE, BOB)
    svc = ResynthesisService(ArtifactStore(str(tmp_path / "store")),
                             tenants_file=path)
    svc.tenants_path = path  # test convenience
    return svc


class TestReload:
    def test_unchanged_file_is_a_noop(self, service):
        assert service.maybe_reload_tenants() is False
        assert {t.name for t in service.tenants.tenants()} == \
            {"alice", "bob"}

    def test_edit_swaps_the_registry(self, service):
        write_tenants(service.tenants_path, ALICE, BOB, CAROL)
        assert service.maybe_reload_tenants() is True
        assert service.tenants.resolve("key-c").name == "carol"
        assert service.metrics.snapshot()["counters"][
            "service_tenant_reloads_total"] == 1

    def test_invalid_json_keeps_old_registry(self, service):
        with open(service.tenants_path, "w") as fh:
            fh.write("{nope")
        st = os.stat(service.tenants_path)
        os.utime(service.tenants_path,
                 ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        assert service.maybe_reload_tenants() is False
        assert service.tenants.resolve("key-a").name == "alice"
        # The bad file is not re-parsed until it changes again.
        assert service.maybe_reload_tenants() is False

    def test_invalid_shape_keeps_old_registry(self, service):
        write_tenants(service.tenants_path, {"name": "x"})  # no key
        assert service.maybe_reload_tenants() is False
        assert service.tenants.resolve("key-b").name == "bob"

    def test_removing_tenant_with_active_jobs_is_rejected(self, service):
        # An admitted-but-unfinished job pins its tenant.
        with service._lock:
            service._job_tenant["j0123"] = "bob"
        write_tenants(service.tenants_path, ALICE)
        assert service.maybe_reload_tenants() is False
        assert service.tenants.resolve("key-b").name == "bob"
        # Once the job drains, the same edit goes through.
        with service._lock:
            service._job_tenant.clear()
        write_tenants(service.tenants_path, ALICE)
        assert service.maybe_reload_tenants() is True
        assert {t.name for t in service.tenants.tenants()} == {"alice"}

    def test_removing_idle_tenant_is_fine(self, service):
        write_tenants(service.tenants_path, ALICE)
        assert service.maybe_reload_tenants() is True
        assert {t.name for t in service.tenants.tenants()} == {"alice"}

    def test_deleted_file_keeps_old_registry(self, service):
        os.unlink(service.tenants_path)
        assert service.maybe_reload_tenants() is False
        assert service.tenants.resolve("key-a").name == "alice"


class TestReloadOverHttp:
    def test_new_key_works_on_next_request(self, tmp_path):
        path = str(tmp_path / "tenants.json")
        write_tenants(path, ALICE)
        store = ArtifactStore(str(tmp_path / "store"))
        config = SupervisorConfig(max_retries=0, heartbeat_timeout=20.0,
                                  heartbeat_interval=0.2,
                                  backoff_base=0.05, poll_interval=0.02)
        bad_grid = {"circuits": []}  # 400 once past auth
        with ServiceServer(store, port=0, config=config,
                           tenants_file=path) as srv:
            carol = ServiceClient(srv.url, timeout=30.0, api_key="key-c")
            with pytest.raises(ServiceAPIError) as exc:
                carol.submit_sweep(bad_grid)
            assert exc.value.code == 401
            write_tenants(path, ALICE, CAROL)
            with pytest.raises(ServiceAPIError) as exc:
                carol.submit_sweep(bad_grid)
            assert exc.value.code == 400
