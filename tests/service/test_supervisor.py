"""WorkerSupervisor: crashes, heartbeat timeouts, bounded retries.

Most tests inject a fake ``worker_command`` (a tiny ``python -c``
program) so the supervision machinery is exercised without paying for a
real resynthesis run; the end-to-end tests at the bottom use the real
worker module.
"""

import json
import os
import sys

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.obs import Registry
from repro.service import (
    ArtifactStore,
    JobSpec,
    SupervisorConfig,
    WorkerSupervisor,
)
from repro.service.supervisor import default_worker_command


def make_job(tmp_path, **kw):
    store = ArtifactStore(str(tmp_path))
    defaults = dict(netlist=json.loads(circuit_to_json(c17())), k=4,
                    perm_budget=20, max_passes=2)
    defaults.update(kw)
    job_id, _ = store.create_job(JobSpec(**defaults))
    return store, job_id


def fake_worker(program):
    """A worker_command factory running ``python -c program``."""
    def command(store, job_id, config):
        return [sys.executable, "-c", program]
    return command


def fast_config(**kw):
    defaults = dict(max_retries=0, heartbeat_timeout=5.0,
                    backoff_base=0.01, poll_interval=0.01, kill_grace=2.0)
    defaults.update(kw)
    return SupervisorConfig(**defaults)


class TestFakeWorkers:
    def test_clean_exit_is_success(self, tmp_path):
        store, job_id = make_job(tmp_path)
        metrics = Registry()
        sup = WorkerSupervisor(store, fast_config(), metrics,
                               worker_command=fake_worker("pass"))
        outcome = sup.supervise(job_id)
        assert outcome.state == "succeeded"
        assert outcome.attempts == 1
        assert store.status(job_id)["state"] == "succeeded"
        assert metrics.counter_value("service_jobs_succeeded_total") == 1

    def test_nonzero_exit_reaches_failed(self, tmp_path):
        store, job_id = make_job(tmp_path)
        metrics = Registry()
        sup = WorkerSupervisor(
            store, fast_config(), metrics,
            worker_command=fake_worker("import sys; sys.exit(3)"),
        )
        outcome = sup.supervise(job_id)
        assert outcome.state == "failed"
        assert "code 3" in outcome.error
        status = store.status(job_id)
        assert status["state"] == "failed"
        assert "code 3" in status["reason"]
        assert metrics.counter_value("service_jobs_failed_total") == 1

    def test_fail_once_then_succeed_retries(self, tmp_path):
        store, job_id = make_job(tmp_path)
        marker = tmp_path / "attempted"
        program = (
            "import os, sys\n"
            f"marker = {str(marker)!r}\n"
            "if os.path.exists(marker):\n"
            "    sys.exit(0)\n"
            "open(marker, 'w').close()\n"
            "sys.exit(1)\n"
        )
        metrics = Registry()
        slept = []
        sup = WorkerSupervisor(
            store, fast_config(max_retries=2), metrics,
            worker_command=fake_worker(program), sleep=slept.append,
        )
        outcome = sup.supervise(job_id)
        assert outcome.state == "succeeded"
        assert outcome.attempts == 2
        assert metrics.counter_value("service_worker_retries_total") == 1
        types = [e["type"] for e in store.events(job_id)]
        assert types.count("attempt") == 2
        failed = [e for e in store.events(job_id)
                  if e["type"] == "attempt_failed"]
        assert len(failed) == 1 and failed[0]["will_retry"]
        # One backoff sleep happened (plus poll sleeps of poll_interval).
        assert any(s >= 0.01 for s in slept)

    def test_retries_are_bounded(self, tmp_path):
        store, job_id = make_job(tmp_path)
        sup = WorkerSupervisor(
            store, fast_config(max_retries=2),
            worker_command=fake_worker("import sys; sys.exit(1)"),
            sleep=lambda s: None,
        )
        outcome = sup.supervise(job_id)
        assert outcome.state == "failed"
        assert outcome.attempts == 3  # first + 2 retries
        failed = [e for e in store.events(job_id)
                  if e["type"] == "attempt_failed"]
        assert [e["will_retry"] for e in failed] == [True, True, False]

    def test_silent_worker_is_killed_on_heartbeat_timeout(self, tmp_path):
        store, job_id = make_job(tmp_path)
        metrics = Registry()
        sup = WorkerSupervisor(
            store, fast_config(heartbeat_timeout=0.3), metrics,
            worker_command=fake_worker("import time; time.sleep(60)"),
        )
        outcome = sup.supervise(job_id)
        assert outcome.state == "failed"
        assert "heartbeat" in outcome.error
        assert metrics.counter_value("service_heartbeat_timeouts_total") == 1

    def test_retry_after_heartbeat_timeout_succeeds(self, tmp_path):
        # Regression: the first attempt beats once and then hangs; its
        # stale beat must not be held against the retry (which would be
        # killed on the supervisor's first poll, before it could beat).
        store, job_id = make_job(tmp_path)
        marker = tmp_path / "attempted"
        program = (
            "import os, sys, time\n"
            "from repro.service.store import ArtifactStore\n"
            f"marker = {str(marker)!r}\n"
            "if os.path.exists(marker):\n"
            "    sys.exit(0)\n"
            "open(marker, 'w').close()\n"
            f"ArtifactStore({store.root!r}).heartbeat({job_id!r})\n"
            "time.sleep(60)\n"
        )
        metrics = Registry()
        sup = WorkerSupervisor(
            store, fast_config(max_retries=1, heartbeat_timeout=0.5),
            metrics, worker_command=fake_worker(program),
        )
        outcome = sup.supervise(job_id)
        assert outcome.state == "succeeded"
        assert outcome.attempts == 2
        assert metrics.counter_value("service_heartbeat_timeouts_total") == 1
        failed = [e for e in store.events(job_id)
                  if e["type"] == "attempt_failed"]
        assert len(failed) == 1 and "heartbeat" in failed[0]["reason"]

    def test_stop_terminates_worker_and_requeues(self, tmp_path):
        import threading
        import time as time_mod

        store, job_id = make_job(tmp_path)
        pid_file = tmp_path / "worker.pid"
        program = (
            "import os, time\n"
            f"open({str(pid_file)!r}, 'w').write(str(os.getpid()))\n"
            "time.sleep(60)\n"
        )
        sup = WorkerSupervisor(
            store, fast_config(max_retries=5, heartbeat_timeout=60.0),
            worker_command=fake_worker(program),
        )
        outcomes = []
        thread = threading.Thread(
            target=lambda: outcomes.append(sup.supervise(job_id)))
        thread.start()
        deadline = time_mod.time() + 10.0
        while not pid_file.exists() and time_mod.time() < deadline:
            time_mod.sleep(0.01)
        assert pid_file.exists(), "worker never started"
        sup.stop()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert outcomes and outcomes[0].state == "stopped"
        # The job went back to queued (checkpoints make resume safe)...
        assert store.status(job_id)["state"] == "queued"
        assert any(e["type"] == "stopped" for e in store.events(job_id))
        # ...and the worker subprocess did not outlive its supervisor.
        pid = int(pid_file.read_text())
        try:
            os.kill(pid, 0)
            alive = True
        except OSError:
            alive = False
        assert not alive

    def test_orphan_heartbeat_delays_first_launch(self, tmp_path):
        # A live beat from an unsupervised worker (crashed-service
        # orphan) must hold off the replacement until it goes stale —
        # the event log allows only one writer.
        store, job_id = make_job(tmp_path)
        store.heartbeat(job_id)
        slept = []
        sup = WorkerSupervisor(
            store, fast_config(heartbeat_timeout=0.4),
            worker_command=fake_worker("pass"),
            sleep=lambda s: slept.append(s) or __import__("time").sleep(s),
        )
        outcome = sup.supervise(job_id)
        assert outcome.state == "succeeded"
        # The guard polled at least once before the beat went stale, and
        # the orphan's beat was wiped before the new worker launched.
        assert slept
        assert store.last_heartbeat(job_id) is None

    def test_worker_error_file_beats_exit_code_diagnosis(self, tmp_path):
        store, job_id = make_job(tmp_path)
        # Relies on the supervisor injecting repro's parent onto the
        # child's PYTHONPATH, exactly like the real worker does.
        program = (
            "import sys\n"
            "from repro.service.store import ArtifactStore\n"
            "store = ArtifactStore({root!r})\n"
            "store.write_worker_error({job!r}, 'boom', 'Traceback: boom')\n"
            "sys.exit(1)\n"
        ).format(root=store.root, job=job_id)
        sup = WorkerSupervisor(store, fast_config(),
                               worker_command=fake_worker(program))
        outcome = sup.supervise(job_id)
        assert outcome.state == "failed"
        assert outcome.error == "boom"
        assert "boom" in outcome.traceback
        assert store.status(job_id)["traceback"] == outcome.traceback


class TestRealWorker:
    def test_real_worker_runs_job_to_success(self, tmp_path):
        store, job_id = make_job(tmp_path)
        sup = WorkerSupervisor(
            store, fast_config(heartbeat_interval=0.2),
            worker_command=default_worker_command,
        )
        outcome = sup.supervise(job_id)
        assert outcome.state == "succeeded"
        report = store.load_report(job_id)
        assert report is not None and report.passes >= 1
        assert store.checkpoint_passes(job_id)
        assert store.last_heartbeat(job_id) is not None

    def test_real_worker_crash_preserves_traceback(self, tmp_path):
        doc = json.loads(circuit_to_json(c17()))
        x = doc["inputs"][0]
        doc["gates"] = [
            {"name": "a", "type": "and", "fanins": ["b", x]},
            {"name": "b", "type": "and", "fanins": ["a", x]},
        ]
        doc["outputs"] = ["a"]
        store, job_id = make_job(tmp_path, netlist=doc)
        sup = WorkerSupervisor(store, fast_config(),
                               worker_command=default_worker_command)
        outcome = sup.supervise(job_id)
        assert outcome.state == "failed"
        assert outcome.traceback is not None
        assert "Traceback" in outcome.traceback
