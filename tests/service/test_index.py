"""The SQLite job index: unit behaviour and the no-filesystem-listing
acceptance contract (``GET /jobs`` must answer without touching a
single per-job directory)."""

import json
import os

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.service import (
    ArtifactStore,
    JobIndex,
    JobSpec,
    ServiceClient,
    ServiceServer,
    StoreError,
    SupervisorConfig,
    default_index_path,
)


def c17_spec(**kw):
    defaults = dict(netlist=json.loads(circuit_to_json(c17())),
                    k=4, perm_budget=20, max_passes=2)
    defaults.update(kw)
    return JobSpec(**defaults)


def fast_config():
    return SupervisorConfig(max_retries=0, heartbeat_timeout=20.0,
                            heartbeat_interval=0.2, backoff_base=0.05,
                            poll_interval=0.02)


class TestJobIndexUnit:
    def test_record_and_rows(self, tmp_path):
        index = JobIndex(str(tmp_path / "index.sqlite3"))
        index.record("j1", {"state": "queued", "attempts": 0,
                            "created": 1.0, "updated": 1.0,
                            "tenant": "alice"})
        index.record("j2", {"state": "succeeded", "attempts": 1,
                            "created": 2.0, "updated": 3.0})
        assert index.count() == 2
        assert index.count(state="queued") == 1
        rows = index.rows()
        assert [r["id"] for r in rows] == ["j1", "j2"]
        assert rows[0]["tenant"] == "alice"
        assert "tenant" not in rows[1]  # None values are dropped
        assert index.rows(state="succeeded")[0]["id"] == "j2"
        assert index.rows(tenant="alice")[0]["id"] == "j1"
        assert index.rows(tenant="nobody") == []
        index.close()

    def test_update_keeps_spec_columns_and_tenant(self, tmp_path):
        index = JobIndex(str(tmp_path / "index.sqlite3"))
        spec = c17_spec()
        index.record(spec.job_id,
                     {"state": "queued", "tenant": "alice"}, spec=spec)
        # A later status replace without the spec (the usual on_status
        # path) must not wipe the spec columns or the tenant.
        index.record(spec.job_id, {"state": "running", "attempts": 1})
        (row,) = index.rows()
        assert row["state"] == "running"
        assert row["attempts"] == 1
        assert row["tenant"] == "alice"
        assert row["procedure"] == "procedure2"
        assert row["k"] == 4
        index.close()

    def test_limit_and_offset(self, tmp_path):
        index = JobIndex(str(tmp_path / "index.sqlite3"))
        for i in range(5):
            index.record(f"j{i}", {"state": "queued"})
        assert [r["id"] for r in index.rows(limit=2)] == ["j0", "j1"]
        assert [r["id"] for r in index.rows(limit=2, offset=3)] \
            == ["j3", "j4"]
        assert [r["id"] for r in index.rows(offset=4)] == ["j4"]
        index.close()


class TestIndexThroughService:
    def test_listing_never_touches_job_directories(self, tmp_path,
                                                   monkeypatch):
        store = ArtifactStore(str(tmp_path / "service"))
        with ServiceServer(store, port=0, config=fast_config(),
                           max_workers=2) as srv:
            client = ServiceClient(srv.url, timeout=30.0)
            job_id = client.submit(c17_spec())["id"]
            client.wait(job_id, timeout=60.0)

            # From here on, any read of a per-job file is a failure.
            def forbidden(*a, **kw):
                raise AssertionError("listing touched a job directory")

            monkeypatch.setattr(store, "job_ids", forbidden)
            monkeypatch.setattr(store, "status", forbidden)
            monkeypatch.setattr(store, "load_spec", forbidden)
            rows = client.jobs()
            assert [r["id"] for r in rows] == [job_id]
            assert rows[0]["state"] == "succeeded"
            assert rows[0]["procedure"] == "procedure2"
            assert client.jobs(state="succeeded") == rows
            assert client.jobs(state="failed") == []

    def test_index_rebuilt_from_store_on_startup(self, tmp_path):
        root = str(tmp_path / "service")
        store = ArtifactStore(root)
        with ServiceServer(store, port=0, config=fast_config(),
                           max_workers=2) as srv:
            client = ServiceClient(srv.url, timeout=30.0)
            job_id = client.submit(c17_spec())["id"]
            client.wait(job_id, timeout=60.0)
        # The store, not the index, is the source of truth: delete the
        # index file entirely and a fresh service must rebuild it.
        os.unlink(default_index_path(root))
        store2 = ArtifactStore(root)
        with ServiceServer(store2, port=0, config=fast_config(),
                           max_workers=2) as srv:
            rows = ServiceClient(srv.url, timeout=30.0).jobs()
            assert [r["id"] for r in rows] == [job_id]
            assert rows[0]["state"] == "succeeded"

    def test_bad_filters_are_400(self, tmp_path):
        from repro.service import ServiceAPIError

        store = ArtifactStore(str(tmp_path / "service"))
        with ServiceServer(store, port=0, config=fast_config(),
                           max_workers=2) as srv:
            client = ServiceClient(srv.url, timeout=30.0)
            with pytest.raises(ServiceAPIError) as exc:
                client.jobs(state="bogus")
            assert exc.value.code == 400
            with pytest.raises(ServiceAPIError) as exc:
                client.jobs(limit=-1)
            assert exc.value.code == 400


def test_store_error_is_still_404(tmp_path):
    """StoreError surfacing is unchanged by the index layer."""
    from repro.service import ServiceAPIError

    store = ArtifactStore(str(tmp_path / "service"))
    with ServiceServer(store, port=0, config=fast_config(),
                       max_workers=2) as srv:
        client = ServiceClient(srv.url, timeout=30.0)
        with pytest.raises(ServiceAPIError) as exc:
            client.job("jdeadbeef0000")
        assert exc.value.code == 404
        assert "jdeadbeef0000" in exc.value.message
    with pytest.raises(StoreError):
        store.status("jdeadbeef0000")
