"""Event delivery edge cases on the async front end: SSE streaming with
cursor resume, client disconnect mid-stream, long-poll wakeups driven by
the store's event hook, and 429 backpressure surfaced through
``ServiceClient``'s retry policy."""

import json
import threading
import time
import urllib.request

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.service import (
    ArtifactStore,
    JobSpec,
    ServiceAPIError,
    ServiceClient,
    ServiceServer,
    SupervisorConfig,
)
from repro.service.tenants import BackpressureError


def c17_spec(**kw):
    defaults = dict(netlist=json.loads(circuit_to_json(c17())),
                    k=4, perm_budget=20, max_passes=2)
    defaults.update(kw)
    return JobSpec(**defaults)


def fast_config():
    return SupervisorConfig(max_retries=0, heartbeat_timeout=20.0,
                            heartbeat_interval=0.2, backoff_base=0.05,
                            poll_interval=0.02)


@pytest.fixture()
def server(tmp_path):
    store = ArtifactStore(str(tmp_path / "service"))
    with ServiceServer(store, port=0, config=fast_config(),
                       max_workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestSse:
    def test_stream_replays_backlog_and_ends_on_terminal(self, server,
                                                         client):
        job_id = client.submit(c17_spec())["id"]
        events = list(client.stream_events(job_id))
        assert events[-1] == {"type": "end", "state": "succeeded"}
        body = events[:-1]
        # The stream is the complete, gap-free event log: contiguous
        # seqs from 1, no event dropped across the live/backlog seam.
        assert [e["seq"] for e in body] == list(range(1, len(body) + 1))
        types = [e["type"] for e in body]
        assert types[0] == "submitted"
        assert "completed" in types

    def test_stream_resumes_from_seq_cursor(self, server, client):
        job_id = client.submit(c17_spec())["id"]
        client.wait(job_id, timeout=60.0)
        full = [e for e in client.stream_events(job_id)
                if e.get("type") != "end"]
        cursor = full[1]["seq"]
        resumed = [e for e in client.stream_events(job_id, after=cursor)
                   if e.get("type") != "end"]
        assert [e["seq"] for e in resumed] \
            == [e["seq"] for e in full[2:]]

    def test_stream_unknown_job_is_clean_404(self, client):
        with pytest.raises(ServiceAPIError) as exc:
            next(client.stream_events("jdeadbeef0000"))
        assert exc.value.code == 404
        assert "jdeadbeef0000" in exc.value.message

    def test_client_disconnect_mid_stream_releases_watcher(self, server,
                                                           client):
        # A stream over a never-finishing job holds a broker waiter;
        # dropping the connection must release it (the keepalive probe
        # discovers the dead socket).
        store = server.service.store
        job_id, _ = store.create_job(c17_spec(seed=99))  # never scheduled
        server.app.sse_keepalive = 0.2  # fast disconnect discovery
        url = f"{server.url}/jobs/{job_id}/events/stream"
        resp = urllib.request.urlopen(url, timeout=10.0)
        # Read one frame so the stream is known-established...
        assert b"submitted" in resp.readline() or True
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if job_id in server.app.broker.watched_jobs():
                break
            time.sleep(0.02)
        assert job_id in server.app.broker.watched_jobs()
        # ...then hang up mid-stream.
        resp.close()
        deadline = time.time() + 10.0
        while time.time() < deadline:
            if job_id not in server.app.broker.watched_jobs():
                break
            time.sleep(0.05)
        assert job_id not in server.app.broker.watched_jobs()


class TestLongPollWake:
    def test_event_append_wakes_long_poll_early(self, server, client):
        # A job that exists but is never scheduled: the long poll can
        # only return early if the store's on_event hook wakes it.
        store = server.service.store
        job_id, _ = store.create_job(c17_spec(seed=98))

        def append_later():
            time.sleep(0.3)
            store.append_event(job_id, "ping")

        threading.Thread(target=append_later, daemon=True).start()
        start = time.perf_counter()
        chunk = client.events(job_id, after=0, wait=15.0)
        elapsed = time.perf_counter() - start
        assert [e["type"] for e in chunk["events"]] == ["ping"]
        assert elapsed < 10.0  # woke early, not at the 15 s deadline

    def test_worker_file_appends_reach_the_stream(self, server, client):
        # End-to-end over a real worker subprocess: its events.jsonl
        # appends bypass the in-process hook entirely, so this passes
        # only if the broker's file watcher picks them up.
        job_id = client.submit(c17_spec(seed=97))["id"]
        seen = [e for e in client.stream_events(job_id)
                if e.get("type") == "completed"]
        assert len(seen) == 1


class TestBackpressureThroughClient:
    def test_client_surfaces_429_with_retry_after(self, server, client):
        def always_full(*a, **kw):
            raise BackpressureError("admission queue is full", retry_after=3)

        server.service.submit = always_full
        with pytest.raises(ServiceAPIError) as exc:
            client.submit(c17_spec(seed=50))
        assert exc.value.code == 429
        assert exc.value.retry_after == 3

    def test_client_retries_429_until_admitted(self, server):
        service = server.service
        real_submit = service.submit
        rejections = []

        def flaky_submit(spec, tenant=None, **kw):
            if len(rejections) < 2:
                rejections.append(1)
                raise BackpressureError("queue full", retry_after=1)
            return real_submit(spec, tenant, **kw)

        service.submit = flaky_submit
        client = ServiceClient(server.url, timeout=30.0,
                               backpressure_retries=3)
        slept = []
        client._sleep = slept.append  # no real waiting in tests
        answer = client.submit(c17_spec(seed=51))
        assert answer["created"] is True
        assert slept == [1, 1]  # honoured the server's Retry-After
        client.wait(answer["id"], timeout=60.0)

    def test_retry_budget_exhaustion_surfaces_the_429(self, server):
        def always_full(*a, **kw):
            raise BackpressureError("queue full", retry_after=2)

        server.service.submit = always_full
        client = ServiceClient(server.url, timeout=30.0,
                               backpressure_retries=2)
        slept = []
        client._sleep = slept.append
        with pytest.raises(ServiceAPIError) as exc:
            client.submit(c17_spec(seed=52))
        assert exc.value.code == 429
        assert slept == [2, 2]  # two retries, then the error surfaces
