"""The ``POST /tasks`` route and the service's task fabric.

The route is what turns a ``serve`` process into a
:class:`~repro.fabric.RemoteFabric` worker: wire task documents in,
per-task outcome rows out, with malformed input answered 400 and
execution failures kept *inside* their row (the calling fabric owns
retry policy).  Disabled by default — ``--task-workers N`` opts in.
"""

import pytest

from repro.fabric import FabricTask, SerialFabric
from repro.fabric.tasks import encode_result, encode_task
from repro.parallel.worker import identify_chunk
from repro.service import (
    ArtifactStore,
    ResynthesisService,
    ServiceAPIError,
    ServiceClient,
    ServiceServer,
)


def identify_task(table, n, inject_crash=False):
    return FabricTask("identify", {
        "items": [(table, n)],
        "perm_budget": 24,
        "try_offset": True,
        "seed": 3,
        "max_specs": 4,
        "inject_crash": inject_crash,
    })


@pytest.fixture()
def server(tmp_path):
    srv = ServiceServer(ArtifactStore(str(tmp_path / "store")),
                        task_workers=1)
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=10.0)


class TestTasksRoute:
    def test_round_trip_matches_local_execution(self, client):
        task = identify_task(0b0110, 2)
        answer = client.run_tasks([encode_task(task)])
        expected = identify_chunk([(0b0110, 2)], 24, True, 3, 4)
        assert answer == {"results": [
            {"ok": True, "result": encode_result("identify", expected)},
        ]}

    def test_batch_preserves_task_order(self, client):
        tasks = [identify_task(0b0110, 2), identify_task(0b1000, 2)]
        answer = client.run_tasks([encode_task(t) for t in tasks])
        locals_ = SerialFabric().map(tasks)
        got = [row["result"] for row in answer["results"]]
        assert got == [encode_result("identify", r) for r in locals_]

    def test_execution_failure_stays_in_its_row(self, client):
        tasks = [identify_task(0b0110, 2),
                 identify_task(0b1000, 2, inject_crash=True)]
        rows = client.run_tasks([encode_task(t) for t in tasks])["results"]
        assert rows[0]["ok"] is True
        assert rows[1]["ok"] is False
        assert "injected worker crash" in rows[1]["error"]

    def test_invalid_task_document_is_400(self, client):
        with pytest.raises(ServiceAPIError) as err:
            client.run_tasks([{"kind": "identify", "payload": {}}])
        assert err.value.code == 400
        assert "invalid task document" in err.value.message

    def test_unknown_kind_is_400(self, client):
        with pytest.raises(ServiceAPIError, match="unknown task kind"):
            client.run_tasks([{"kind": "no-such-kind", "payload": {}}])

    def test_malformed_body_is_400(self, client):
        with pytest.raises(ServiceAPIError) as err:
            client._request("POST", "/tasks", body={"nope": 1})
        assert err.value.code == 400

    def test_disabled_by_default_is_404(self, tmp_path):
        srv = ServiceServer(ArtifactStore(str(tmp_path / "plain")))
        srv.start()
        try:
            client = ServiceClient(srv.url, timeout=10.0)
            with pytest.raises(ServiceAPIError) as err:
                client.run_tasks([encode_task(identify_task(0b0110, 2))])
            assert err.value.code == 404
            assert "task execution not enabled" in err.value.message
        finally:
            srv.stop()


class TestServiceTaskFabric:
    def test_task_workers_zero_means_no_fabric(self, tmp_path):
        service = ResynthesisService(
            ArtifactStore(str(tmp_path / "store")))
        assert service.task_fabric is None
        with pytest.raises(RuntimeError, match="not enabled"):
            service.run_tasks([])

    def test_task_workers_one_is_serial(self, tmp_path):
        service = ResynthesisService(
            ArtifactStore(str(tmp_path / "store")), task_workers=1)
        assert service.task_fabric.name == "serial"
        # Server-side retries stay 0: the calling fabric owns policy.
        assert service.task_fabric.max_retries == 0

    def test_task_workers_many_is_a_process_pool(self, tmp_path):
        service = ResynthesisService(
            ArtifactStore(str(tmp_path / "store")), task_workers=2)
        try:
            assert service.task_fabric.name == "process"
            assert service.task_fabric.max_retries == 0
            docs = [encode_task(identify_task(0b0110, 2))]
            rows = service.run_tasks(docs)
            expected = identify_chunk([(0b0110, 2)], 24, True, 3, 4)
            assert rows == [{
                "ok": True, "result": encode_result("identify", expected),
            }]
        finally:
            service.stop()
        assert service.task_fabric._executor is None

    def test_negative_task_workers_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResynthesisService(ArtifactStore(str(tmp_path / "store")),
                               task_workers=-1)
