"""The sweep HTTP surface: POST /sweeps through report, events, dedup.

A submitted grid rides the normal job machinery (each cell is a job),
so these tests use real worker subprocesses over tiny inline c17 grids.
"""

import json

import pytest

from repro.benchcircuits import c17
from repro.io import circuit_to_json
from repro.service import (
    ArtifactStore,
    ServiceAPIError,
    ServiceClient,
    ServiceServer,
    SupervisorConfig,
)


def c17_doc():
    return json.loads(circuit_to_json(c17()))


def grid_doc(**kw):
    doc = {
        "format": "repro-sweepspec",
        "circuits": [c17_doc()],
        "procedures": ["procedure2"],
        "ks": [3, 4],
        "seeds": [1],
        "perm_budget": 20,
        "max_passes": 1,
    }
    doc.update(kw)
    return doc


@pytest.fixture()
def server(tmp_path):
    store = ArtifactStore(str(tmp_path / "service"))
    config = SupervisorConfig(max_retries=0, heartbeat_timeout=20.0,
                              heartbeat_interval=0.2, backoff_base=0.05,
                              poll_interval=0.02)
    with ServiceServer(store, port=0, config=config, max_workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestSweepLifecycle:
    def test_submit_run_report(self, client):
        created = client.submit_sweep(grid_doc())
        assert created["created"] is True
        assert created["cells"] == 2
        sweep_id = created["id"]
        final = client.sweep_wait(sweep_id, timeout=120.0)
        assert final["state"] == "succeeded"
        assert final["cells"] == 2
        report = client.sweep_report(sweep_id)
        assert report["sweep_id"] == sweep_id
        assert len(report["rows"]) == 2
        assert set(report["front"]) == {"c17"}
        # Every cell is an ordinary job, fetchable through the job API.
        for job_id in final["jobs"]:
            assert client.job(job_id)["state"] == "succeeded"

    def test_resubmit_dedups(self, client):
        first = client.submit_sweep(grid_doc())
        client.sweep_wait(first["id"], timeout=120.0)
        again = client.submit_sweep(grid_doc())
        assert again["id"] == first["id"]
        assert again["created"] is False

    def test_listing_includes_the_sweep(self, client):
        sweep_id = client.submit_sweep(grid_doc())["id"]
        client.sweep_wait(sweep_id, timeout=120.0)
        rows = client.sweeps()
        assert any(row["id"] == sweep_id and row["state"] == "succeeded"
                   for row in rows)

    def test_events_record_lifecycle(self, client):
        sweep_id = client.submit_sweep(grid_doc())["id"]
        client.sweep_wait(sweep_id, timeout=120.0)
        chunk = client.sweep_events(sweep_id)
        kinds = [e["type"] for e in chunk["events"]]
        assert kinds[0] == "submitted"
        assert kinds.count("cell") == 2
        assert kinds[-1] == "completed"
        seqs = [e["seq"] for e in chunk["events"]]
        assert seqs == sorted(seqs)

    def test_report_404_until_done(self, client):
        # An id the coordinator has never seen.
        with pytest.raises(ServiceAPIError) as exc:
            client.sweep_report("s000000000000")
        assert exc.value.code == 404

    def test_invalid_grid_400(self, client):
        with pytest.raises(ServiceAPIError) as exc:
            client.submit_sweep(grid_doc(ks=[1]))
        assert exc.value.code == 400
        with pytest.raises(ServiceAPIError) as exc:
            client.submit_sweep({"circuits": []})
        assert exc.value.code == 400

    def test_unknown_sweep_404(self, client):
        with pytest.raises(ServiceAPIError) as exc:
            client.sweep("s000000000000")
        assert exc.value.code == 404
        with pytest.raises(ServiceAPIError) as exc:
            client.sweep_events("s000000000000")
        assert exc.value.code == 404

    def test_report_matches_standalone_jobs(self, client):
        """Cell == job: each sweep row equals its standalone submit."""
        from repro.service import JobSpec
        from repro.sweep import SWEEP_ROW_NUMBER_FIELDS, sweep_from_doc

        sweep_id = client.submit_sweep(grid_doc())["id"]
        client.sweep_wait(sweep_id, timeout=120.0)
        report = client.sweep_report(sweep_id)
        spec = sweep_from_doc(grid_doc())
        for cell, row in zip(spec.cells(), report["rows"]):
            # Submitting the identical spec standalone joins the same
            # job (content address), whose report fed this row.
            created = client.submit(JobSpec(**{
                "netlist": c17_doc(), "procedure": cell.procedure,
                "k": cell.k, "seed": cell.seed, "perm_budget": 20,
                "max_passes": 1, "jobs": 1}))
            assert created["id"] == row["cell_id"]
            doc = client.report(row["cell_id"])
            assert doc["gates_after"] == row["gates_after"]
            assert doc["paths_after"] == row["paths_after"]
            for field in SWEEP_ROW_NUMBER_FIELDS:
                assert field in row


class TestRecovery:
    def test_coordinator_recovers_finished_sweep(self, tmp_path):
        store_root = str(tmp_path / "service")
        config = SupervisorConfig(max_retries=0, heartbeat_timeout=20.0,
                                  heartbeat_interval=0.2,
                                  backoff_base=0.05, poll_interval=0.02)
        with ServiceServer(ArtifactStore(store_root), port=0,
                           config=config, max_workers=2) as srv:
            client = ServiceClient(srv.url, timeout=30.0)
            sweep_id = client.submit_sweep(grid_doc())["id"]
            client.sweep_wait(sweep_id, timeout=120.0)
            report = client.sweep_report(sweep_id)
        # A fresh server over the same store knows the sweep.
        with ServiceServer(ArtifactStore(store_root), port=0,
                           config=config, max_workers=2) as srv:
            client = ServiceClient(srv.url, timeout=30.0)
            view = client.sweep(sweep_id)
            assert view["state"] == "succeeded"
            assert client.sweep_report(sweep_id) == report


class TestJobsSummary:
    def test_counts_by_tenant_and_state(self, client):
        sweep_id = client.submit_sweep(grid_doc())["id"]
        client.sweep_wait(sweep_id, timeout=120.0)
        summary = client.jobs_summary()
        assert summary["total"] >= 2
        assert summary["tenants"]["public"]["succeeded"] >= 2
        assert summary["states"]["succeeded"] >= 2

    def test_empty_store(self, client):
        summary = client.jobs_summary()
        assert summary == {"total": 0, "tenants": {}, "states": {}}
