"""Technology mapping: NAND2/INV decomposition + tree covering (Table 4)."""

from .library import Cell, DEFAULT_LIBRARY, Pattern, pattern_leaves
from .mapper import MappingResult, decompose_to_subject, map_circuit

__all__ = [
    "Cell",
    "DEFAULT_LIBRARY",
    "MappingResult",
    "Pattern",
    "decompose_to_subject",
    "map_circuit",
    "pattern_leaves",
]
