"""A small SIS/mcnc-style standard-cell library for tree-covering mapping.

Cells are described as pattern trees over the subject-graph primitives
(2-input NAND and inverter).  Pattern leaves are numbered cell inputs; the
cost of a cell is its literal count (one per cell input, the measure
Table 4 reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

#: Pattern grammar: ("in", index) | ("inv", p) | ("nand", p, q)
Pattern = Union[Tuple[str, int], Tuple[str, "Pattern"], Tuple[str, "Pattern", "Pattern"]]


@dataclass(frozen=True)
class Cell:
    """One library cell: name, input count (= literals), pattern tree."""

    name: str
    n_inputs: int
    pattern: Pattern

    def __post_init__(self) -> None:
        leaves = sorted(set(pattern_leaves(self.pattern)))
        if leaves != list(range(self.n_inputs)):
            raise ValueError(
                f"cell {self.name}: pattern leaves {leaves} do not "
                f"match n_inputs={self.n_inputs}"
            )

    @property
    def literals(self) -> int:
        """Literal cost of the cell (one per input)."""
        return self.n_inputs


def pattern_leaves(p: Pattern) -> List[int]:
    """All leaf indices occurring in a pattern (with multiplicity)."""
    if p[0] == "in":
        return [p[1]]
    if p[0] == "inv":
        return pattern_leaves(p[1])
    return pattern_leaves(p[1]) + pattern_leaves(p[2])


def _in(i: int) -> Pattern:
    return ("in", i)


def _inv(p: Pattern) -> Pattern:
    return ("inv", p)


def _nand(p: Pattern, q: Pattern) -> Pattern:
    return ("nand", p, q)


def _and(p: Pattern, q: Pattern) -> Pattern:
    return _inv(_nand(p, q))


#: The default library: inverter, NAND/NOR up to 4 inputs, AND2/OR2,
#: AOI/OAI cells and 2-input XOR/XNOR — a representative slice of the
#: mcnc.genlib cells SIS maps to.
DEFAULT_LIBRARY: Tuple[Cell, ...] = (
    Cell("inv", 1, _inv(_in(0))),
    Cell("nand2", 2, _nand(_in(0), _in(1))),
    Cell("nand3", 3, _nand(_and(_in(0), _in(1)), _in(2))),
    Cell("nand4", 4, _nand(_and(_in(0), _in(1)), _and(_in(2), _in(3)))),
    Cell("nor2", 2, _inv(_nand(_inv(_in(0)), _inv(_in(1))))),
    Cell("nor3", 3, _inv(_nand(_nand(_inv(_in(0)), _inv(_in(1))), _inv(_in(2))))),
    Cell("and2", 2, _and(_in(0), _in(1))),
    Cell("or2", 2, _nand(_inv(_in(0)), _inv(_in(1)))),
    Cell("aoi21", 3, _inv(_nand(_nand(_in(0), _in(1)), _inv(_in(2))))),
    Cell("oai21", 3, _nand(_nand(_inv(_in(0)), _inv(_in(1))), _in(2))),
    Cell(
        "aoi22", 4,
        _inv(_nand(_nand(_in(0), _in(1)), _nand(_in(2), _in(3)))),
    ),
    Cell(
        "xor2", 2,
        _nand(
            _nand(_in(0), _nand(_in(0), _in(1))),
            _nand(_in(1), _nand(_in(0), _in(1))),
        ),
    ),
)
