"""Tree-covering technology mapping (literal count + longest path).

The classical flow used by SIS's ``map`` command, which Table 4 of the
paper applies to its circuits:

1. decompose the netlist into a *subject graph* of 2-input NANDs and
   inverters (wide gates become balanced trees);
2. partition at fanout points — every multi-fanout node and every primary
   output is a tree root that must coincide with a cell output;
3. cover each tree by dynamic programming over library cell patterns,
   minimizing total literals;
4. report the literal count and the number of cells on the longest
   input-to-output path of the mapped network (the paper's "longest"
   column, its delay proxy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist import Circuit, CircuitBuilder, GateType, simplify
from .library import Cell, DEFAULT_LIBRARY, Pattern


def decompose_to_subject(circuit: Circuit) -> Circuit:
    """NAND2/INV subject graph computing the same outputs.

    Output net names are preserved; internal names are fresh.  Buffers
    collapse; constants are kept (they terminate trees like leaves).
    """
    subject = Circuit(f"{circuit.name}.subject")
    for pi in circuit.inputs:
        subject.add_input(pi)
    mapping: Dict[str, str] = {pi: pi for pi in circuit.inputs}
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"s{counter[0]}"

    def emit(gtype: GateType, fanins: Sequence[str], name: str = None) -> str:
        net = name if name is not None else fresh()
        subject.add_gate(net, gtype, fanins)
        return net

    def inv(x: str, name: str = None) -> str:
        return emit(GateType.NOT, (x,), name)

    def nand2(a: str, b: str, name: str = None) -> str:
        return emit(GateType.NAND, (a, b), name)

    def and_tree(xs: List[str], invert_out: bool, name: str = None) -> str:
        """Balanced AND tree; final gate NAND when invert_out."""
        xs = list(xs)
        while len(xs) > 2:
            nxt = []
            for i in range(0, len(xs) - 1, 2):
                nxt.append(inv(nand2(xs[i], xs[i + 1])))
            if len(xs) % 2:
                nxt.append(xs[-1])
            xs = nxt
        if len(xs) == 1:
            if invert_out:
                return inv(xs[0], name)
            return emit(GateType.BUF, (xs[0],), name)
        out = nand2(xs[0], xs[1], name if invert_out else None)
        if invert_out:
            return out
        return inv(out, name)

    def xor2(a: str, b: str, invert_out: bool, name: str = None) -> str:
        m = nand2(a, b)
        x = nand2(nand2(a, m), nand2(b, m), None if invert_out else name)
        if invert_out:
            return inv(x, name)
        return x

    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gtype
        if gt is GateType.INPUT:
            continue
        target = net if net in circuit.output_set else None
        fis = [mapping[f] for f in gate.fanins]
        if gt in (GateType.CONST0, GateType.CONST1):
            out = emit(gt, (), target)
        elif gt is GateType.BUF:
            out = emit(GateType.BUF, (fis[0],), target) if target else fis[0]
        elif gt is GateType.NOT:
            out = inv(fis[0], target)
        elif gt is GateType.AND:
            out = and_tree(fis, invert_out=False, name=target)
        elif gt is GateType.NAND:
            out = and_tree(fis, invert_out=True, name=target)
        elif gt is GateType.OR:
            # OR = NAND of inverted inputs (De Morgan).
            out = and_tree([inv(f) for f in fis], invert_out=True,
                           name=target)
        elif gt is GateType.NOR:
            out = and_tree([inv(f) for f in fis], invert_out=False,
                           name=target)
        elif gt in (GateType.XOR, GateType.XNOR):
            acc = fis[0]
            for i, f in enumerate(fis[1:]):
                last = i == len(fis) - 2
                invert = gt is GateType.XNOR
                if last:
                    acc = xor2(acc, f, invert_out=invert, name=target)
                else:
                    acc = xor2(acc, f, invert_out=False)
            out = acc
        else:  # pragma: no cover
            raise ValueError(f"cannot decompose {gt!r}")
        mapping[net] = out
    subject.set_outputs([mapping[o] if circuit.gate(o).gtype is GateType.INPUT
                         else o for o in circuit.outputs])
    # Collapse double inverters and dead logic left by the local rewrites
    # (NOT-NOT pairs would otherwise block wide-cell pattern matches).
    simplify(subject)
    subject.validate()
    return subject


@dataclass
class MappingResult:
    """Outcome of technology mapping."""

    literals: int
    longest_path: int
    cell_counts: Dict[str, int]
    subject_gates: int

    def row(self) -> Dict[str, int]:
        """Table 4 columns."""
        return {"literals": self.literals, "longest": self.longest_path}


def _match(
    circuit: Circuit,
    node: str,
    pattern: Pattern,
    is_root: bool,
    roots: set,
    leaves: Dict[int, str],
) -> Optional[Dict[int, str]]:
    """Try to match *pattern* rooted at *node*; returns leaf binding."""
    kind = pattern[0]
    if kind == "in":
        idx = pattern[1]
        if idx in leaves and leaves[idx] != node:
            return None
        leaves = dict(leaves)
        leaves[idx] = node
        return leaves
    # Internal pattern nodes may not be tree roots (fanout or PO), except
    # the cell's own output.
    if not is_root and node in roots:
        return None
    gate = circuit.gate(node)
    if kind == "inv":
        if gate.gtype is not GateType.NOT:
            return None
        return _match(circuit, gate.fanins[0], pattern[1], False, roots,
                      leaves)
    if kind == "nand":
        if gate.gtype is not GateType.NAND or len(gate.fanins) != 2:
            return None
        a, b = gate.fanins
        for x, y in ((a, b), (b, a)):
            got = _match(circuit, x, pattern[1], False, roots, leaves)
            if got is not None:
                got2 = _match(circuit, y, pattern[2], False, roots, got)
                if got2 is not None:
                    return got2
        return None
    raise ValueError(f"bad pattern {pattern!r}")  # pragma: no cover


def map_circuit(
    circuit: Circuit, library: Sequence[Cell] = DEFAULT_LIBRARY
) -> MappingResult:
    """Map *circuit* onto *library*; returns literal and delay figures.

    Tree covering DP: within a tree, a binding leaf that is another tree's
    root contributes zero cost (its cover is charged to its own tree) but
    contributes its full mapped depth (delay chains across trees).
    """
    subject = decompose_to_subject(circuit)
    roots = set(subject.output_set)
    fanout = subject.fanout_map()
    for net in subject.nets():
        if len(fanout.get(net, ())) > 1:
            roots.add(net)

    best_cost: Dict[str, int] = {}
    best_depth: Dict[str, int] = {}
    best_cell: Dict[str, Optional[Tuple[Cell, Dict[int, str]]]] = {}

    def is_leaf(net: str) -> bool:
        g = subject.gate(net)
        return g.gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1)

    def leaf_cost(net: str) -> int:
        if is_leaf(net) or net in roots:
            return 0
        return best_cost[net]

    order = subject.topological_order()
    for net in order:
        g = subject.gate(net)
        if is_leaf(net):
            best_cost[net] = 0
            best_depth[net] = 0
            continue
        if g.gtype is GateType.BUF:
            src = g.fanins[0]
            best_cost[net] = leaf_cost(src)
            best_depth[net] = best_depth[src]
            best_cell[net] = None
            continue
        best = None
        for cell in library:
            binding = _match(subject, net, cell.pattern, True, roots, {})
            if binding is None:
                continue
            distinct = set(binding.values())
            cost = cell.literals + sum(leaf_cost(b) for b in distinct)
            depth = 1 + max(
                (best_depth[b] for b in distinct), default=0
            )
            key = (cost, depth)
            if best is None or key < best[0]:
                best = (key, cell, binding)
        if best is None:  # pragma: no cover - library covers all primitives
            raise RuntimeError(f"no cell matches subject node {net}")
        best_cost[net] = best[0][0]
        best_depth[net] = best[0][1]
        best_cell[net] = (best[1], best[2])

    # Total literals: one cover per (non-leaf) root.
    total_literals = sum(
        best_cost[r] for r in roots if not is_leaf(r)
    )
    # Cells used: reconstruct each root's cover, descending through
    # internal (non-root) cell boundaries only.
    cell_counts: Dict[str, int] = {}
    for r in roots:
        if is_leaf(r):
            continue
        stack = [r]
        first = True
        while stack:
            cur = stack.pop()
            if not first and (is_leaf(cur) or cur in roots):
                continue
            first = False
            entry = best_cell.get(cur)
            if entry is None:  # BUF wire
                g = subject.gate(cur)
                if g.gtype is GateType.BUF:
                    stack.append(g.fanins[0])
                continue
            cell, binding = entry
            cell_counts[cell.name] = cell_counts.get(cell.name, 0) + 1
            stack.extend(set(binding.values()))

    longest = max(
        (best_depth[o] for o in subject.output_set), default=0
    )
    return MappingResult(
        literals=total_literals,
        longest_path=longest,
        cell_counts=cell_counts,
        subject_gates=len(subject.logic_gates()),
    )
