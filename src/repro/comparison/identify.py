"""Identification of comparison functions (Section 3.4, Section 5).

Given a truth table over ordered variables, the identifier searches input
permutations for one under which the ON-set minterms form a consecutive
decimal interval.  Following the paper's experimental setup (Section 5), the
OFF-set is tried as well: if the OFF minterms are consecutive, the function
is a *complemented* comparison function, realized by inverting a comparison
unit's output.  Up to ``perm_budget`` permutations are tried (the paper used
200); for ``n! <= perm_budget`` the search is exhaustive and therefore exact.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional, Sequence, Tuple

from ..sim.truthtable import tt_minterms
from .spec import ComparisonSpec

#: Default permutation budget, matching Section 5 of the paper.
DEFAULT_PERM_BUDGET = 200


def _minterm_bits(minterms: Sequence[int], n: int) -> List[Tuple[int, ...]]:
    """Decompose each minterm into an MSB-first bit tuple."""
    return [
        tuple((m >> (n - i - 1)) & 1 for i in range(n)) for m in minterms
    ]


def _interval_under_perm(
    bits: List[Tuple[int, ...]], n: int, perm: Sequence[int]
) -> Optional[Tuple[int, int]]:
    """If the minterms are consecutive under *perm*, return (L, U).

    ``perm[i] = j`` means the new position ``i`` (MSB first) reads the old
    position ``j``.  Exits early once the value span exceeds the minterm
    count (a span never shrinks, so the permutation is already refuted).
    """
    total = len(bits)
    lo = hi = None
    for b in bits:
        v = 0
        for i, j in enumerate(perm):
            if b[j]:
                v |= 1 << (n - i - 1)
        if lo is None:
            lo = hi = v
        elif v < lo:
            lo = v
        elif v > hi:
            hi = v
        if hi - lo >= total:
            return None
    if lo is None:
        return None
    if hi - lo + 1 == total:
        return lo, hi
    return None


def _lsb_condition_holds(bits: List[Tuple[int, ...]], n: int) -> bool:
    """Necessary condition for any permuted interval to exist.

    In an interval of ``W`` consecutive integers, the number of odd values
    is ``floor(W/2)`` or ``ceil(W/2)``; under a valid permutation some
    variable plays the LSB role, so some variable's ON-count with value 1
    must hit that window.  Cheap and exact — skipping the permutation loop
    when it fails cannot change any identification result.
    """
    w = len(bits)
    lo, hi = w // 2, (w + 1) // 2
    for j in range(n):
        c1 = sum(b[j] for b in bits)
        if lo <= c1 <= hi:
            return True
    return False


def candidate_permutations(
    n: int, perm_budget: int, seed: int = 0
) -> Iterator[Tuple[int, ...]]:
    """Yield up to *perm_budget* distinct permutations of ``0..n-1``.

    The identity comes first.  When ``n! <= perm_budget`` the enumeration is
    exhaustive (lexicographic); otherwise a deterministic seeded sample of
    distinct permutations is produced, mirroring the paper's "up to 200
    permutations" experimental procedure.
    """
    total = 1
    for i in range(2, n + 1):
        total *= i
    if total <= perm_budget:
        yield from itertools.permutations(range(n))
        return
    rng = random.Random((seed << 8) | n)
    seen = set()
    identity = tuple(range(n))
    seen.add(identity)
    yield identity
    produced = 1
    while produced < perm_budget:
        p = list(range(n))
        rng.shuffle(p)
        tp = tuple(p)
        if tp in seen:
            continue
        seen.add(tp)
        yield tp
        produced += 1


@dataclass(frozen=True)
class IdentificationResult:
    """All comparison-form realizations found for one function."""

    specs: Tuple[ComparisonSpec, ...]
    permutations_tried: int
    exhaustive: bool

    @property
    def found(self) -> bool:
        """True when at least one comparison realization was found."""
        return bool(self.specs)


@lru_cache(maxsize=200_000)
def _identify_positions(
    table: int,
    n: int,
    perm_budget: int,
    try_offset: bool,
    seed: int,
    max_specs: int,
):
    """Position-level identification core, memoized across callers.

    Resynthesis evaluates thousands of candidate cones that frequently
    share truth tables, so caching on the ``(table, n, knobs)`` key is a
    large constant-factor win.  Returns ``(hits, tried)`` where each hit is
    a ``(perm, L, U, complement)`` tuple.
    """
    size = 1 << n
    full = (1 << size) - 1
    if table == 0 or table == full:
        return ((), 0)
    on_bits = _minterm_bits(tt_minterms(table, n), n)
    off_bits = (
        _minterm_bits(tt_minterms(table ^ full, n), n) if try_offset else None
    )
    check_on = _lsb_condition_holds(on_bits, n)
    check_off = off_bits is not None and _lsb_condition_holds(off_bits, n)
    if not check_on and not check_off:
        return ((), 0)
    hits: List[Tuple[Tuple[int, ...], int, int, bool]] = []
    tried = 0
    for perm in candidate_permutations(n, perm_budget, seed):
        tried += 1
        if check_on:
            got = _interval_under_perm(on_bits, n, perm)
            if got is not None:
                hits.append((perm, got[0], got[1], False))
        if check_off:
            got = _interval_under_perm(off_bits, n, perm)
            if got is not None:
                hits.append((perm, got[0], got[1], True))
        if len(hits) >= max_specs:
            break
    return (tuple(hits), tried)


def identify_comparison(
    table: int,
    variables: Sequence[str],
    perm_budget: int = DEFAULT_PERM_BUDGET,
    try_offset: bool = True,
    seed: int = 0,
    max_specs: int = 16,
) -> IdentificationResult:
    """Search for comparison-function realizations of a truth table.

    Parameters
    ----------
    table:
        Truth table bitmask over *variables* (MSB-first convention).
    variables:
        Ordered variable names.
    perm_budget:
        Maximum permutations to try (paper: 200).
    try_offset:
        Also test the OFF-set (complemented realization), as in Section 5.
    seed:
        Seed for the permutation sample when the search is not exhaustive.
    max_specs:
        Stop collecting after this many successful realizations (the caller
        picks the cheapest; a handful is plenty of diversity).

    Returns
    -------
    IdentificationResult
        All realizations found (possibly none).  Constant functions are
        never reported as comparison functions; the resynthesis procedures
        handle them by direct constant substitution instead.
    """
    n = len(variables)
    fact = 1
    for i in range(2, n + 1):
        fact *= i
    exhaustive = fact <= perm_budget
    hits, tried = _identify_positions(
        table, n, perm_budget, try_offset, seed, max_specs
    )
    specs = tuple(
        ComparisonSpec(
            tuple(variables[j] for j in perm), lo, hi, complement=comp
        )
        for perm, lo, hi, comp in hits
    )
    return IdentificationResult(specs, tried, exhaustive)


def is_comparison_function(
    table: int,
    variables: Sequence[str],
    perm_budget: int = DEFAULT_PERM_BUDGET,
    try_offset: bool = True,
    seed: int = 0,
) -> bool:
    """Convenience predicate over :func:`identify_comparison`."""
    return identify_comparison(
        table, variables, perm_budget, try_offset, seed, max_specs=1
    ).found
