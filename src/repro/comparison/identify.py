"""Identification of comparison functions (Section 3.4, Section 5).

Given a truth table over ordered variables, the identifier searches input
permutations for one under which the ON-set minterms form a consecutive
decimal interval.  Following the paper's experimental setup (Section 5), the
OFF-set is tried as well: if the OFF minterms are consecutive, the function
is a *complemented* comparison function, realized by inverting a comparison
unit's output.  Up to ``perm_budget`` permutations are tried (the paper used
200); for ``n! <= perm_budget`` the search is exhaustive and therefore exact.

The position-level search (:func:`identify_positions`) is a pure function of
``(table, n, perm_budget, try_offset, seed, max_specs)``.  That purity is
what the parallel resynthesis layer (:mod:`repro.parallel`) relies on:
worker processes run the search on candidate-cone truth tables and the
coordinator installs the results into the shared
:class:`IdentificationCache` via :func:`warm_identification_cache` — a
cache hit returns bit-for-bit what a local search would have computed, so
results cannot depend on *where* the search ran.  When NumPy is importable
the permutation scan is vectorized (one small matrix product instead of a
Python loop per permutation); the pure-Python fallback produces identical
results, permutation for permutation.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..sim.truthtable import tt_minterms
from .spec import ComparisonSpec

try:  # NumPy accelerates the permutation scan but is never required.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: Default permutation budget, matching Section 5 of the paper.
DEFAULT_PERM_BUDGET = 200


def _minterm_bits(minterms: Sequence[int], n: int) -> List[Tuple[int, ...]]:
    """Decompose each minterm into an MSB-first bit tuple."""
    return [
        tuple((m >> (n - i - 1)) & 1 for i in range(n)) for m in minterms
    ]


def _interval_under_perm(
    bits: List[Tuple[int, ...]], n: int, perm: Sequence[int]
) -> Optional[Tuple[int, int]]:
    """If the minterms are consecutive under *perm*, return (L, U).

    ``perm[i] = j`` means the new position ``i`` (MSB first) reads the old
    position ``j``.  Exits early once the value span exceeds the minterm
    count (a span never shrinks, so the permutation is already refuted).
    """
    total = len(bits)
    lo = hi = None
    for b in bits:
        v = 0
        for i, j in enumerate(perm):
            if b[j]:
                v |= 1 << (n - i - 1)
        if lo is None:
            lo = hi = v
        elif v < lo:
            lo = v
        elif v > hi:
            hi = v
        if hi - lo >= total:
            return None
    if lo is None:
        return None
    if hi - lo + 1 == total:
        return lo, hi
    return None


def _lsb_condition_holds(bits: List[Tuple[int, ...]], n: int) -> bool:
    """Necessary condition for any permuted interval to exist.

    In an interval of ``W`` consecutive integers, the number of odd values
    is ``floor(W/2)`` or ``ceil(W/2)``; under a valid permutation some
    variable plays the LSB role, so some variable's ON-count with value 1
    must hit that window.  Cheap and exact — skipping the permutation loop
    when it fails cannot change any identification result.
    """
    w = len(bits)
    lo, hi = w // 2, (w + 1) // 2
    for j in range(n):
        c1 = sum(b[j] for b in bits)
        if lo <= c1 <= hi:
            return True
    return False


def candidate_permutations(
    n: int, perm_budget: int, seed: int = 0
) -> Iterator[Tuple[int, ...]]:
    """Yield up to *perm_budget* distinct permutations of ``0..n-1``.

    The identity comes first.  When ``n! <= perm_budget`` the enumeration is
    exhaustive (lexicographic); otherwise a deterministic seeded sample of
    distinct permutations is produced, mirroring the paper's "up to 200
    permutations" experimental procedure.
    """
    total = 1
    for i in range(2, n + 1):
        total *= i
    if total <= perm_budget:
        yield from itertools.permutations(range(n))
        return
    rng = random.Random((seed << 8) | n)
    seen = set()
    identity = tuple(range(n))
    seen.add(identity)
    yield identity
    produced = 1
    while produced < perm_budget:
        p = list(range(n))
        rng.shuffle(p)
        tp = tuple(p)
        if tp in seen:
            continue
        seen.add(tp)
        yield tp
        produced += 1


@dataclass(frozen=True)
class IdentificationResult:
    """All comparison-form realizations found for one function."""

    specs: Tuple[ComparisonSpec, ...]
    permutations_tried: int
    exhaustive: bool

    @property
    def found(self) -> bool:
        """True when at least one comparison realization was found."""
        return bool(self.specs)


#: A position-level hit: (permutation, lower, upper, complemented).
PositionHit = Tuple[Tuple[int, ...], int, int, bool]

#: The memoized value of one position-level search: (hits, permutations tried).
PositionResult = Tuple[Tuple[PositionHit, ...], int]

#: The cache key of one position-level search.  All six components change
#: the search outcome, so all six are part of the key.
PositionKey = Tuple[int, int, int, bool, int, int]


def identification_key(
    table: int,
    n: int,
    perm_budget: int,
    try_offset: bool,
    seed: int,
    max_specs: int,
) -> PositionKey:
    """Build the :class:`IdentificationCache` key for one search.

    The key is exactly the argument tuple of :func:`identify_positions`;
    it exists as a named helper so the coordinator, the worker processes
    and the cache agree on one canonical spelling.
    """
    return (table, n, perm_budget, try_offset, seed, max_specs)


class IdentificationCache:
    """Memo of position-level identification results.

    Keys are :func:`identification_key` tuples; values are the pure
    function value of :func:`identify_positions` for that key.  Unlike an
    ``functools.lru_cache``, entries can be installed from outside via
    :meth:`warm` — that is how the parallel evaluation layer publishes
    results computed in worker processes.  Resynthesis evaluates thousands
    of candidate cones that frequently share truth tables, so the memo is
    a large constant-factor win even in serial runs.
    """

    def __init__(self, max_entries: int = 200_000) -> None:
        self._table: Dict[PositionKey, PositionResult] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.warmed = 0

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: PositionKey) -> Optional[PositionResult]:
        """Return the memoized result for *key*, or None on a miss."""
        got = self._table.get(key)
        if got is None:
            self.misses += 1
        else:
            self.hits += 1
        return got

    def peek(self, key: PositionKey) -> Optional[PositionResult]:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return self._table.get(key)

    def put(self, key: PositionKey, value: PositionResult) -> None:
        """Memoize *value* under *key* (drops all entries when full)."""
        if len(self._table) >= self._max_entries:
            self._table.clear()
        self._table[key] = value

    def warm(
        self, entries: Iterable[Tuple[PositionKey, PositionResult]]
    ) -> int:
        """Install externally computed results; return the entry count.

        Because :func:`identify_positions` is pure, installing a correct
        entry is indistinguishable from having computed it locally — the
        parallel layer's determinism contract rests on this.
        """
        count = 0
        for key, value in entries:
            self.put(key, value)
            count += 1
        self.warmed += count
        return count

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._table.clear()


#: Process-global identification memo shared by every caller.
_CACHE = IdentificationCache()


def identification_cache() -> IdentificationCache:
    """Return the process-global :class:`IdentificationCache`."""
    return _CACHE


def warm_identification_cache(
    entries: Iterable[Tuple[PositionKey, PositionResult]]
) -> int:
    """Install entries into the process-global cache; return the count."""
    return _CACHE.warm(entries)


#: Memo of materialized permutation samples keyed by (n, perm_budget,
#: seed).  One resynthesis pass consumes the same sample tens of thousands
#: of times; regenerating it per identification call would dominate the
#: scan itself.
_PERM_CACHE: Dict[Tuple[int, int, int], Tuple[Tuple[int, ...], ...]] = {}

#: Memo of the NumPy weight matrices derived from the samples above.
_WEIGHTS_CACHE: Dict[Tuple[int, int, int], "object"] = {}


def _permutation_sample(
    n: int, perm_budget: int, seed: int
) -> Tuple[Tuple[int, ...], ...]:
    """Materialized (and memoized) :func:`candidate_permutations` output."""
    key = (n, perm_budget, seed)
    got = _PERM_CACHE.get(key)
    if got is None:
        if len(_PERM_CACHE) >= 1024:
            _PERM_CACHE.clear()
        got = tuple(candidate_permutations(n, perm_budget, seed))
        _PERM_CACHE[key] = got
    return got


def _permutation_weights(n: int, perm_budget: int, seed: int):
    """``(n, n_perms)`` int64 weight matrix for the sample's permutations.

    Column ``k`` holds the per-old-position weights of permutation ``k``:
    for permutation ``p`` the permuted decimal value of a minterm with bit
    tuple ``b`` is ``sum_i b[p[i]] << (n-1-i)``, i.e. a dot product of
    ``b`` with that column.  The matrix depends only on the sample, so it
    is built once per (n, perm_budget, seed) and reused by every scan.
    """
    key = (n, perm_budget, seed)
    got = _WEIGHTS_CACHE.get(key)
    if got is None:
        if len(_WEIGHTS_CACHE) >= 1024:
            _WEIGHTS_CACHE.clear()
        perms = _permutation_sample(n, perm_budget, seed)
        pmat = _np.asarray(perms, dtype=_np.int64)  # (perms, n)
        n_perms = pmat.shape[0]
        shifts = _np.left_shift(
            _np.int64(1), n - 1 - _np.arange(n, dtype=_np.int64)
        )
        weights = _np.zeros((n_perms, n), dtype=_np.int64)
        weights[_np.arange(n_perms)[:, None], pmat] = shifts[None, :]
        got = _np.ascontiguousarray(weights.T)  # (n, perms)
        _WEIGHTS_CACHE[key] = got
    return got


def _minterm_matrix(minterms: Sequence[int], n: int):
    """``(minterms, n)`` MSB-first bit matrix (NumPy twin of bit tuples)."""
    ms = _np.asarray(minterms, dtype=_np.int64)
    bitpos = _np.arange(n - 1, -1, -1, dtype=_np.int64)
    return (ms[:, None] >> bitpos[None, :]) & 1


def _lsb_condition_mat(mat) -> bool:
    """NumPy twin of :func:`_lsb_condition_holds` over a bit matrix."""
    w = mat.shape[0]
    c1 = mat.sum(axis=0)
    return bool(((c1 >= w // 2) & (c1 <= (w + 1) // 2)).any())


def _interval_scan(mat, weights_t, n_minterms: int):
    """Per-permutation interval test over a minterm bit matrix (NumPy).

    One integer matrix product evaluates every permutation's permuted
    values; min/max per column then gives the interval test.  Returns
    ``(lo, hi, ok)`` arrays indexed by permutation, identical to running
    :func:`_interval_under_perm` per permutation.
    """
    values = mat @ weights_t  # (minterms, perms)
    lo = values.min(axis=0)
    hi = values.max(axis=0)
    return lo, hi, (hi - lo + 1) == n_minterms


def identify_positions(
    table: int,
    n: int,
    perm_budget: int,
    try_offset: bool = True,
    seed: int = 0,
    max_specs: int = 16,
) -> PositionResult:
    """Position-level identification core (pure; no caching).

    Search the permutations of ``0..n-1`` for ones under which the ON set
    (and, with *try_offset*, the OFF set) of *table* is a consecutive
    decimal interval.  Return ``(hits, tried)`` where each hit is a
    ``(perm, L, U, complement)`` tuple, in the deterministic order the
    serial scan visits them (permutation order, ON before OFF), and
    *tried* is the number of permutations consumed.

    This function is deliberately free of process state so the parallel
    layer can run it anywhere: equal arguments give equal results, whether
    evaluated inline, from the cache, or in a worker process.  The NumPy
    path and the pure-Python path implement the same scan and are kept
    output-identical (see ``tests/comparison/test_identify_kernels.py``).
    """
    size = 1 << n
    full = (1 << size) - 1
    if table == 0 or table == full:
        return ((), 0)
    on_m = tt_minterms(table, n)
    off_m = tt_minterms(table ^ full, n) if try_offset else None
    hits: List[PositionHit] = []
    tried = 0
    if _np is not None:
        # Vectorized scan: precompute every permutation's interval, then
        # replay the serial collection loop (including its early stop) so
        # hit order, hit multiplicity and the tried-count stay identical.
        on_mat = _minterm_matrix(on_m, n)
        off_mat = _minterm_matrix(off_m, n) if off_m is not None else None
        check_on = _lsb_condition_mat(on_mat)
        check_off = off_mat is not None and _lsb_condition_mat(off_mat)
        if not check_on and not check_off:
            return ((), 0)
        perms = _permutation_sample(n, perm_budget, seed)
        weights_t = _permutation_weights(n, perm_budget, seed)
        on_ok = off_ok = None
        any_hit = False
        if check_on:
            on_lo, on_hi, on_ok = _interval_scan(on_mat, weights_t,
                                                 len(on_m))
            any_hit = bool(on_ok.any())
        if check_off:
            off_lo, off_hi, off_ok = _interval_scan(off_mat, weights_t,
                                                    len(off_m))
            any_hit = any_hit or bool(off_ok.any())
        if not any_hit:
            # The serial loop would try every permutation and break never.
            return ((), len(perms))
        for idx, perm in enumerate(perms):
            tried += 1
            if on_ok is not None and on_ok[idx]:
                hits.append((perm, int(on_lo[idx]), int(on_hi[idx]), False))
            if off_ok is not None and off_ok[idx]:
                hits.append((perm, int(off_lo[idx]), int(off_hi[idx]), True))
            if len(hits) >= max_specs:
                break
        return (tuple(hits), tried)
    on_bits = _minterm_bits(on_m, n)
    off_bits = _minterm_bits(off_m, n) if off_m is not None else None
    check_on = _lsb_condition_holds(on_bits, n)
    check_off = off_bits is not None and _lsb_condition_holds(off_bits, n)
    if not check_on and not check_off:
        return ((), 0)
    for perm in _permutation_sample(n, perm_budget, seed):
        tried += 1
        if check_on:
            got = _interval_under_perm(on_bits, n, perm)
            if got is not None:
                hits.append((perm, got[0], got[1], False))
        if check_off:
            got = _interval_under_perm(off_bits, n, perm)
            if got is not None:
                hits.append((perm, got[0], got[1], True))
        if len(hits) >= max_specs:
            break
    return (tuple(hits), tried)


def _identify_positions(
    table: int,
    n: int,
    perm_budget: int,
    try_offset: bool,
    seed: int,
    max_specs: int,
    memo=None,
) -> PositionResult:
    """Cached wrapper around :func:`identify_positions`.

    Cache order: the process-global :class:`IdentificationCache` first,
    then the optional persistent *memo* (a
    :class:`repro.memo.MemoStore`), then the search itself.  A memo hit
    is installed into the in-process cache and returned verbatim; a
    fresh computation is recorded back into the memo.  Because every
    tier stores the pure function value for the *exact* key, the answer
    is bit-identical whichever tier serves it.
    """
    key = identification_key(
        table, n, perm_budget, try_offset, seed, max_specs
    )
    got = _CACHE.get(key)
    if got is None and memo is not None:
        got = memo.lookup(table, n, perm_budget, try_offset, seed, max_specs)
        if got is not None:
            _CACHE.put(key, got)
    if got is None:
        got = identify_positions(
            table, n, perm_budget, try_offset, seed, max_specs
        )
        _CACHE.put(key, got)
        if memo is not None:
            memo.record(
                table, n, perm_budget, try_offset, seed, max_specs, got
            )
    return got


def identify_comparison(
    table: int,
    variables: Sequence[str],
    perm_budget: int = DEFAULT_PERM_BUDGET,
    try_offset: bool = True,
    seed: int = 0,
    max_specs: int = 16,
    memo=None,
) -> IdentificationResult:
    """Search for comparison-function realizations of a truth table.

    Parameters
    ----------
    table:
        Truth table bitmask over *variables* (MSB-first convention).
    variables:
        Ordered variable names.
    perm_budget:
        Maximum permutations to try (paper: 200).
    try_offset:
        Also test the OFF-set (complemented realization), as in Section 5.
    seed:
        Seed for the permutation sample when the search is not exhaustive.
    max_specs:
        Stop collecting after this many successful realizations (the caller
        picks the cheapest; a handful is plenty of diversity).
    memo:
        Optional persistent :class:`repro.memo.MemoStore` consulted (and
        fed) behind the in-process cache; never changes the result.

    Returns
    -------
    IdentificationResult
        All realizations found (possibly none).  Constant functions are
        never reported as comparison functions; the resynthesis procedures
        handle them by direct constant substitution instead.
    """
    n = len(variables)
    fact = 1
    for i in range(2, n + 1):
        fact *= i
    exhaustive = fact <= perm_budget
    hits, tried = _identify_positions(
        table, n, perm_budget, try_offset, seed, max_specs, memo=memo
    )
    specs = tuple(
        ComparisonSpec(
            tuple(variables[j] for j in perm), lo, hi, complement=comp
        )
        for perm, lo, hi, comp in hits
    )
    return IdentificationResult(specs, tried, exhaustive)


def is_comparison_function(
    table: int,
    variables: Sequence[str],
    perm_budget: int = DEFAULT_PERM_BUDGET,
    try_offset: bool = True,
    seed: int = 0,
) -> bool:
    """Convenience predicate over :func:`identify_comparison`."""
    return identify_comparison(
        table, variables, perm_budget, try_offset, seed, max_specs=1
    ).found
