"""Multi-unit covers: ``f = f_1 + f_2 + ... + f_k`` (Section 3.1, Section 6).

Any function can be written as an OR of comparison functions by splitting
its ON-set into subsets whose minterms are consecutive under a shared
permutation; the paper notes the construction but evaluates only
single-unit replacements, listing multi-unit synthesis as future work.
This module implements it: for each candidate permutation the ON minterms
(sorted by permuted value) split into maximal consecutive runs — each run
is one comparison function — and the permutation needing the fewest runs
wins.  The realization is the units' outputs ORed together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..netlist import Circuit, GateType
from ..sim.truthtable import tt_minterms
from .identify import DEFAULT_PERM_BUDGET, candidate_permutations
from .spec import ComparisonSpec
from .unit import _Namer, emit_comparison_unit


@dataclass(frozen=True)
class MultiUnitCover:
    """A cover of one function by comparison units under a shared permutation."""

    specs: Tuple[ComparisonSpec, ...]

    @property
    def n_units(self) -> int:
        """Number of comparison units in the cover."""
        return len(self.specs)

    def describe(self) -> str:
        """Human-readable summary."""
        return " OR ".join(s.describe() for s in self.specs)


def _runs_under_perm(
    minterms: Sequence[int], n: int, perm: Sequence[int]
) -> List[Tuple[int, int]]:
    """Maximal consecutive runs of the permuted minterm values."""
    values = []
    for m in minterms:
        v = 0
        for i, j in enumerate(perm):
            if (m >> (n - j - 1)) & 1:
                v |= 1 << (n - i - 1)
        values.append(v)
    values.sort()
    runs: List[Tuple[int, int]] = []
    start = prev = values[0]
    for v in values[1:]:
        if v == prev + 1:
            prev = v
            continue
        runs.append((start, prev))
        start = prev = v
    runs.append((start, prev))
    return runs


def find_multi_unit_cover(
    table: int,
    variables: Sequence[str],
    max_units: int = 4,
    perm_budget: int = DEFAULT_PERM_BUDGET,
    seed: int = 0,
) -> Optional[MultiUnitCover]:
    """Find the fewest-units cover of *table* within the permutation budget.

    Returns None for constant functions or when every permutation needs
    more than *max_units* runs.  With ``max_units=1`` this degenerates to
    (ON-set-only) single-unit identification.
    """
    n = len(variables)
    size = 1 << n
    if table == 0 or table == (1 << size) - 1:
        return None
    minterms = tt_minterms(table, n)
    best: Optional[List[Tuple[int, int]]] = None
    best_perm: Optional[Sequence[int]] = None
    for perm in candidate_permutations(n, perm_budget, seed):
        runs = _runs_under_perm(minterms, n, perm)
        if best is None or len(runs) < len(best):
            best = runs
            best_perm = perm
            if len(best) == 1:
                break
    if best is None or len(best) > max_units:
        return None
    inputs = tuple(variables[j] for j in best_perm)
    specs = tuple(
        ComparisonSpec(inputs, lo, hi) for lo, hi in best
    )
    return MultiUnitCover(specs)


def emit_multi_unit(
    circuit: Circuit,
    cover: MultiUnitCover,
    output_net: str,
    prefix: str = "mu_",
) -> List[str]:
    """Emit the cover into *circuit*: the units ORed onto *output_net*."""
    if cover.n_units == 1:
        return emit_comparison_unit(circuit, cover.specs[0], output_net,
                                    prefix=prefix)
    namer = _Namer(circuit, prefix)
    unit_outputs: List[str] = []
    created: List[str] = []
    for i, spec in enumerate(cover.specs):
        # Give each unit a placeholder net, then emit into it.
        unit_out = namer.fresh(f"u{i}_")
        circuit.add_gate(unit_out, GateType.CONST0, ())
        created.append(unit_out)
        created.extend(
            emit_comparison_unit(circuit, spec, unit_out,
                                 prefix=f"{prefix}{i}_")
        )
        unit_outputs.append(unit_out)
    from ..netlist import Gate

    circuit.replace_gate(Gate(output_net, GateType.OR, tuple(unit_outputs)))
    return created


def build_multi_unit(cover: MultiUnitCover) -> Circuit:
    """Standalone circuit computing the cover (output net ``"f"``)."""
    c = Circuit(f"multiunit[{cover.n_units}]")
    for pi in cover.specs[0].inputs:
        c.add_input(pi)
    c.add_gate("f", GateType.CONST0, ())
    emit_multi_unit(c, cover, "f")
    c.set_outputs(["f"])
    c.validate()
    return c
