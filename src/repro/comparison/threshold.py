"""The comparison-function / threshold-function relationship (Section 3 end).

The ``>= L`` comparison block is a threshold function with weight
``2**(n-i)`` on ``x_i`` and threshold ``T = L``; a ``<= U`` block is the
complement of a ``>= U+1`` threshold function with the same weights.  A
comparison function is therefore the AND of one threshold function and one
complemented threshold function, which this module makes concrete for use
in the examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .spec import ComparisonSpec


@dataclass(frozen=True)
class ThresholdFunction:
    """``f(x) = [ sum_i weight_i * x_i >= threshold ]``, optionally inverted."""

    inputs: Tuple[str, ...]
    weights: Tuple[int, ...]
    threshold: int
    inverted: bool = False

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.weights):
            raise ValueError("one weight per input required")

    def evaluate(self, assignment: Dict[str, int]) -> int:
        """Evaluate on a 0/1 assignment to the input names."""
        total = sum(
            w for name, w in zip(self.inputs, self.weights)
            if assignment[name] & 1
        )
        value = int(total >= self.threshold)
        return 1 - value if self.inverted else value


def geq_block_threshold(spec: ComparisonSpec) -> ThresholdFunction:
    """The ``>= L`` block of *spec* as a threshold function (weights 2^(n-i))."""
    n = spec.n
    weights = tuple(1 << (n - i - 1) for i in range(n))
    return ThresholdFunction(spec.inputs, weights, spec.lower)


def leq_block_threshold(spec: ComparisonSpec) -> ThresholdFunction:
    """The ``<= U`` block as a complemented ``>= U+1`` threshold function."""
    n = spec.n
    weights = tuple(1 << (n - i - 1) for i in range(n))
    return ThresholdFunction(spec.inputs, weights, spec.upper + 1, inverted=True)


def evaluate_as_threshold_pair(
    spec: ComparisonSpec, assignment: Dict[str, int]
) -> int:
    """Evaluate *spec* as AND of its two threshold-function views.

    Matches :meth:`ComparisonSpec.evaluate` for every assignment (a
    hypothesis test asserts this).
    """
    geq = geq_block_threshold(spec).evaluate(assignment)
    leq = leq_block_threshold(spec).evaluate(assignment)
    value = geq & leq
    return 1 - value if spec.complement else value
