"""Comparison unit construction (Section 3.1, 3.2; Figures 1-5).

A comparison unit realizes a :class:`~repro.comparison.spec.ComparisonSpec`
with:

* a ``>= L_F`` block — a chain of 2-input gates over the non-free inputs,
  gate ``G_i`` being AND when ``l_i = 1`` and OR when ``l_i = 0``, with
  trailing zero bits of ``L_F`` collapsing the right end of the chain
  (Figure 3b); omitted entirely when ``L_F = 0``;
* a ``<= U_F`` block — the same chain shape over *complemented* inputs,
  gate ``G_i`` being AND when ``u_i = 0`` and OR when ``u_i = 1``, with
  trailing one bits collapsing the right end (Figure 3d); omitted when
  ``U_F`` is all ones;
* an output AND gate fed by the block outputs and by the free variables
  directly (positive literal) or through an inverter (negative literal),
  per Figure 5.

Runs of equal-type consecutive chain gates are merged into one wider gate
(Figure 4) by default; merging never changes the equivalent-2-input-gate
count or the number of paths.  A complemented spec flips the output gate's
polarity (AND becomes NAND, etc.) instead of adding an inverter when it can.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist import (
    Circuit,
    DUAL_POLARITY,
    Gate,
    GateType,
    two_input_gate_count,
)
from .spec import ComparisonSpec


class _Namer:
    """Produces fresh, prefixed net names inside a host circuit."""

    def __init__(self, circuit: Circuit, prefix: str) -> None:
        self._circuit = circuit
        self._prefix = prefix
        self._i = 0
        self.created: List[str] = []

    def fresh(self, tag: str) -> str:
        while True:
            cand = f"{self._prefix}{tag}{self._i}"
            self._i += 1
            if not self._circuit.has_net(cand):
                return cand

    def add(self, circuit: Circuit, tag: str, gtype: GateType,
            fanins: Sequence[str]) -> str:
        net = self.fresh(tag)
        circuit.add_gate(net, gtype, fanins)
        self.created.append(net)
        return net


def _emit_chain(
    circuit: Circuit,
    namer: _Namer,
    operands: Sequence[str],
    gate_types: Sequence[GateType],
    tail: str,
    merge: bool,
    tag: str,
) -> str:
    """Emit the comparison-block chain.

    The chain computes ``op_0(operands[0], op_1(operands[1], ..., tail))``
    where ``op_i = gate_types[i]``.  With *merge*, maximal runs of
    equal-type gates become single wider gates.
    """
    cur = tail
    cur_type: Optional[GateType] = None
    cur_net_created = False
    for x, gtype in zip(reversed(operands), reversed(gate_types)):
        if merge and cur_net_created and gtype is cur_type:
            prev = circuit.gate(cur)
            circuit.replace_gate(prev.with_fanins((x,) + prev.fanins))
        else:
            cur = namer.add(circuit, tag, gtype, (x, cur))
            cur_type = gtype
            cur_net_created = True
    return cur


def _emit_geq_block(
    circuit: Circuit, namer: _Namer, spec: ComparisonSpec, merge: bool
) -> Optional[str]:
    """Emit the ``>= L_F`` block; returns its output net (None if omitted)."""
    if not spec.has_geq_block:
        return None
    xs = spec.bound_inputs
    k = len(xs)
    bits = [(spec.suffix_lower >> (k - i - 1)) & 1 for i in range(k)]
    t = max(i for i in range(k) if bits[i] == 1)  # last set bit
    # geq_t = x_t (direct connection, Figure 2a); chain upward from there.
    types = [GateType.AND if bits[i] else GateType.OR for i in range(t)]
    return _emit_chain(circuit, namer, xs[:t], types, xs[t], merge, "geq")


def _emit_leq_block(
    circuit: Circuit, namer: _Namer, spec: ComparisonSpec, merge: bool
) -> Optional[str]:
    """Emit the ``<= U_F`` block; returns its output net (None if omitted)."""
    if not spec.has_leq_block:
        return None
    xs = spec.bound_inputs
    k = len(xs)
    bits = [(spec.suffix_upper >> (k - i - 1)) & 1 for i in range(k)]
    t = max(i for i in range(k) if bits[i] == 0)  # last zero bit
    inverted = {}

    def inv(x: str) -> str:
        if x not in inverted:
            inverted[x] = namer.add(circuit, "inv", GateType.NOT, (x,))
        return inverted[x]

    types = [GateType.AND if bits[i] == 0 else GateType.OR for i in range(t)]
    operands = [inv(xs[i]) for i in range(t)]
    return _emit_chain(circuit, namer, operands, types, inv(xs[t]), merge, "leq")


def emit_comparison_unit(
    circuit: Circuit,
    spec: ComparisonSpec,
    output_net: str,
    prefix: str = "cu_",
    merge: bool = True,
) -> List[str]:
    """Emit a comparison unit into *circuit*, driving *output_net*.

    ``output_net`` must already exist (its previous driver is replaced);
    the spec's input nets must exist as well.  Returns the list of freshly
    created internal nets.  The caller is responsible for sweeping any
    logic orphaned by the replacement.
    """
    for pi in spec.inputs:
        if not circuit.has_net(pi):
            raise ValueError(f"spec input {pi!r} is not a net of the circuit")
    namer = _Namer(circuit, prefix)

    fanins: List[str] = []
    for name, bit in zip(spec.free_inputs, spec.free_values):
        if bit:
            fanins.append(name)
        else:
            fanins.append(namer.add(circuit, "nf", GateType.NOT, (name,)))
    geq = _emit_geq_block(circuit, namer, spec, merge)
    if geq is not None:
        fanins.append(geq)
    leq = _emit_leq_block(circuit, namer, spec, merge)
    if leq is not None:
        fanins.append(leq)

    if not fanins:
        raise AssertionError(
            "comparison spec reduced to a constant; specs exclude constants"
        )

    if len(fanins) == 1:
        src = fanins[0]
        if spec.complement:
            src_gate = circuit.gate(src) if circuit.has_net(src) else None
            if src in namer.created and src_gate.gtype in DUAL_POLARITY:
                # Flip the polarity of the gate we just created.
                circuit.replace_gate(src_gate.with_type(
                    DUAL_POLARITY[src_gate.gtype]))
                final = Gate(output_net, GateType.BUF, (src,))
            else:
                final = Gate(output_net, GateType.NOT, (src,))
        else:
            final = Gate(output_net, GateType.BUF, (src,))
    else:
        gtype = GateType.NAND if spec.complement else GateType.AND
        final = Gate(output_net, gtype, tuple(fanins))
    circuit.replace_gate(final)
    return namer.created


def build_unit(spec: ComparisonSpec, merge: bool = True) -> Circuit:
    """Build a standalone circuit realizing *spec* (output net ``"f"``).

    Inputs appear in spec order (``x_1`` first).  Used for costing,
    verification and the worked figures.
    """
    c = Circuit(f"unit[{spec.describe()}]")
    for pi in spec.inputs:
        c.add_input(pi)
    out = "f"
    while c.has_net(out):
        out += "_"
    c.add_gate(out, GateType.CONST0, ())  # placeholder driver, replaced below
    emit_comparison_unit(c, spec, out, prefix="u_", merge=merge)
    c.set_outputs([out])
    c.validate()
    return c


@dataclass(frozen=True)
class UnitCost:
    """Size and path figures of a comparison unit realization."""

    two_input_gates: int
    total_internal_paths: int
    paths_per_input: Dict[str, int]
    depth: int


@lru_cache(maxsize=1 << 16)
def _positional_unit_cost(
    n: int, lower: int, upper: int, complement: bool, merge: bool
) -> Tuple[int, int, Tuple[int, ...], int]:
    """Measure a unit for the spec shape ``(n, L, U, complement)``.

    A unit's structure — and therefore its cost — depends only on the
    input count, the bounds and the polarity, never on the input *names*;
    building and measuring one representative per shape lets repeated
    spec evaluations (the dominant resynthesis cost) hit a memo.
    """
    from ..analysis import internal_path_counts  # local import: avoid cycle

    spec = ComparisonSpec(
        tuple(f"x{i + 1}" for i in range(n)), lower, upper, complement
    )
    unit = build_unit(spec, merge=merge)
    per_input = internal_path_counts(unit)
    per = tuple(per_input.get(pi, 0) for pi in spec.inputs)
    return (two_input_gate_count(unit), sum(per), per, unit.depth())


def unit_cost(spec: ComparisonSpec, merge: bool = True) -> UnitCost:
    """Cost a spec by building its unit and measuring it (memoized).

    ``paths_per_input`` maps each spec input to the number of paths from it
    to the unit output (0, 1 or 2 — Section 3.1's headline property, which
    tests assert).
    """
    gates, total, per, depth = _positional_unit_cost(
        spec.n, spec.lower, spec.upper, spec.complement, merge
    )
    return UnitCost(
        two_input_gates=gates,
        total_internal_paths=total,
        paths_per_input={pi: per[i] for i, pi in enumerate(spec.inputs)},
        depth=depth,
    )


def best_spec(
    specs: Sequence[ComparisonSpec], merge: bool = True
) -> Optional[Tuple[ComparisonSpec, UnitCost]]:
    """Pick the realization with fewest gates, then fewest internal paths.

    Ties beyond that break deterministically on the spec's description so
    results are reproducible across runs.
    """
    scored = [
        (unit_cost(s, merge=merge), s) for s in specs
    ]
    if not scored:
        return None
    scored.sort(
        key=lambda cs: (
            cs[0].two_input_gates,
            cs[0].total_internal_paths,
            cs[1].describe(),
        )
    )
    cost, spec = scored[0]
    return spec, cost
