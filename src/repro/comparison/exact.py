"""Exact comparison-function identification without the ``n!`` factor.

Section 3.4 notes the brute-force identifier's ``O(n! 2^n)`` cost and
remarks that the factorial can be removed by a reformulation; the paper
omits the procedure.  This module supplies one: a memoized recursive
decision procedure over cofactors.

Under a permutation with MSB ``v``, the ON-set of ``f`` is an interval
``[L, U]`` iff one of:

* it lies in the lower half — ``f|v=1 = 0`` and ``f|v=0`` is an interval
  (recursively, over the remaining variables, any order);
* it lies in the upper half — symmetric;
* it straddles — ``f|v=0`` is an *upper* interval ``[L', max]`` and
  ``f|v=1`` a *lower* interval ``[0, U']`` **under one shared ordering**
  of the remaining variables.

The shared-ordering constraint couples the cofactors, so the helper
predicate recurses on *pairs*: ``updown(g, h)`` = "some shared ordering
makes ``g`` an upper interval and ``h`` a lower interval".  Peeling the
next MSB splits each of ``g`` and ``h`` two ways, giving four coupled
subcases, each again an ``updown`` pair.  Memoization over the cofactor
tables keeps this polynomial in practice; results carry a witness
(permutation and bounds), so the outcome is checkable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.truthtable import tt_complement
from .spec import ComparisonSpec

#: witness: (perm_positions, L, U) over the *local* variable indices.
_Witness = Tuple[Tuple[int, ...], int, int]


def _cofactors(table: int, k: int, pos: int) -> Tuple[int, int]:
    """Cofactors (f|x_pos=0, f|x_pos=1) over the remaining k-1 variables.

    *pos* is 0-based MSB-first; the remaining variables keep their
    relative order.
    """
    weight = k - pos - 1
    stride = 1 << weight
    f0 = 0
    f1 = 0
    for m in range(1 << k):
        if m & stride:
            if (table >> m) & 1:
                f1 |= 1 << _squeeze(m, weight)
        else:
            if (table >> m) & 1:
                f0 |= 1 << _squeeze(m, weight)
    return f0, f1


def _squeeze(m: int, weight: int) -> int:
    """Drop the bit of *weight* from minterm *m* (compact the rest)."""
    high = m >> (weight + 1)
    low = m & ((1 << weight) - 1)
    return (high << weight) | low


class ExactIdentifier:
    """Memoized exact decision procedure (one instance per query size)."""

    def __init__(self) -> None:
        self._comp: Dict[Tuple[int, int], Optional[_Witness]] = {}
        self._updown: Dict[Tuple[int, int, int], Optional[Tuple[Tuple[int, ...], int, int]]] = {}

    # -- interval (general) -------------------------------------------------

    def comp(self, table: int, k: int) -> Optional[_Witness]:
        """Witness that the ON-set is an interval under some ordering."""
        full = (1 << (1 << k)) - 1
        if k == 0:
            return ((), 0, 0) if table & 1 else None
        if table == 0:
            return None  # empty ON-set: not a comparison function
        if table == full:
            return (tuple(range(k)), 0, (1 << k) - 1)
        key = (table, k)
        if key in self._comp:
            return self._comp[key]
        self._comp[key] = None  # placeholder until computed
        result: Optional[_Witness] = None
        for pos in range(k):
            f0, f1 = _cofactors(table, k, pos)
            if f1 == 0:
                sub = self.comp(f0, k - 1)
                if sub is not None:
                    perm, lo, hi = sub
                    result = (
                        (pos,) + tuple(self._lift(perm, pos)), lo, hi
                    )
                    break
            if f0 == 0:
                sub = self.comp(f1, k - 1)
                if sub is not None:
                    perm, lo, hi = sub
                    half = 1 << (k - 1)
                    result = (
                        (pos,) + tuple(self._lift(perm, pos)),
                        half + lo, half + hi,
                    )
                    break
            if f0 != 0 and f1 != 0:
                sub = self.updown(f0, f1, k - 1)
                if sub is not None:
                    perm, lo, hi = sub
                    half = 1 << (k - 1)
                    result = (
                        (pos,) + tuple(self._lift(perm, pos)),
                        lo, half + hi,
                    )
                    break
        self._comp[key] = result
        return result

    # -- coupled upper/lower intervals ---------------------------------------

    def updown(
        self, g: int, h: int, k: int
    ) -> Optional[Tuple[Tuple[int, ...], int, int]]:
        """Shared ordering making ``g = [lo, max]`` and ``h = [0, hi]``.

        Returns ``(perm, lo, hi)`` over the local indices, or None.
        Requires ``g`` and ``h`` nonempty (callers guarantee it).
        """
        full = (1 << (1 << k)) - 1
        if k == 0:
            if g & 1 and h & 1:
                return ((), 0, 0)
            return None
        if g == full and h == full:
            return (tuple(range(k)), 0, (1 << k) - 1)
        key = (g, h, k)
        if key in self._updown:
            return self._updown[key]
        self._updown[key] = None
        result = None
        half = 1 << (k - 1)
        sub_full = (1 << (1 << (k - 1))) - 1 if k > 1 else 1
        for pos in range(k):
            g0, g1 = _cofactors(g, k, pos)
            h0, h1 = _cofactors(h, k, pos)
            # g upper-interval cases: (g0 = 0, g1 upper) or
            #                         (g0 upper, g1 = full)
            # h lower-interval cases: (h1 = 0, h0 lower) or
            #                         (h0 = full, h1 lower)
            for g_low_case in (True, False):
                if g_low_case:
                    if g0 != 0:
                        continue
                    g_sub = g1
                    g_off = half
                else:
                    if g1 != sub_full:
                        continue
                    g_sub = g0
                    g_off = 0
                for h_low_case in (True, False):
                    if h_low_case:
                        if h1 != 0:
                            continue
                        h_sub = h0
                        h_off = 0
                    else:
                        if h0 != sub_full:
                            continue
                        h_sub = h1
                        h_off = half
                    if g_sub == 0 or h_sub == 0:
                        continue
                    sub = self.updown(g_sub, h_sub, k - 1)
                    if sub is not None:
                        perm, lo, hi = sub
                        result = (
                            (pos,) + tuple(self._lift(perm, pos)),
                            g_off + lo, h_off + hi,
                        )
                        break
                if result is not None:
                    break
            if result is not None:
                break
        self._updown[key] = result
        return result

    @staticmethod
    def _lift(perm: Sequence[int], removed: int) -> List[int]:
        """Reinsert the removed position into a sub-permutation's indices."""
        return [p if p < removed else p + 1 for p in perm]


def exact_identify(
    table: int,
    variables: Sequence[str],
    try_offset: bool = True,
) -> Optional[ComparisonSpec]:
    """Exact identification (no permutation sampling).

    Returns a witness spec or None; constants return None (as with the
    sampled identifier, the procedures handle constants separately).
    """
    n = len(variables)
    size = 1 << n
    full = (1 << size) - 1
    if table in (0, full):
        return None
    ident = ExactIdentifier()
    witness = ident.comp(table, n)
    if witness is not None:
        perm, lo, hi = witness
        return ComparisonSpec(
            tuple(variables[j] for j in perm), lo, hi, complement=False
        )
    if try_offset:
        witness = ident.comp(tt_complement(table, n), n)
        if witness is not None:
            perm, lo, hi = witness
            return ComparisonSpec(
                tuple(variables[j] for j in perm), lo, hi, complement=True
            )
    return None


def is_comparison_exact(
    table: int, variables: Sequence[str], try_offset: bool = True
) -> bool:
    """Exact membership predicate (Definition 1, no sampling)."""
    return exact_identify(table, variables, try_offset) is not None
