"""Robust path-delay-fault test generation for comparison units (Section 3.3).

The paper shows (proof omitted there, reproduced as executable checks in our
test suite) that comparison units built per Figure 5 are fully robustly
testable, and demonstrates the test-set construction on the L=11, U=12 unit
(Table 1).  This module implements that construction for any spec:

* free variable ``x_i``: transition on ``x_i``; the other free variables at
  their fixed values; the non-free variables held at ``L_F`` (any stable
  value in ``[L_F, U_F]`` works — the construction uses the lower bound,
  exactly as the worked example applies 3).
* non-free ``x_j`` through the ``>= L_F`` block: prefix variables at their
  ``L_F`` bits; suffix variables at the *smallest* value that makes the
  chain side input non-controlling (all zeros when ``l_j = 0``, the bound's
  own suffix when ``l_j = 1``); free variables at their fixed values.
* non-free ``x_j`` through the ``<= U_F`` block: prefix at the ``U_F``
  bits; suffix at the *largest* admissible value (all ones when
  ``u_j = 1``, the bound's own suffix when ``u_j = 0``).

Because the first non-free position always has ``l_1 = 0`` and ``u_1 = 1``
(it is the first bit where the bounds disagree), the opposite block's output
is guaranteed stable at 1 for every such test, which is what makes the tests
robust.  ``tests/comparison/test_testgen.py`` verifies robustness of every
generated test against the generic criteria in :mod:`repro.pdf.robust`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .spec import ComparisonSpec


@dataclass(frozen=True)
class TwoPatternTest:
    """A two-pattern test targeting one path delay fault of a unit.

    ``v1``/``v2`` assign 0/1 to every spec input (original net names).
    ``input_name`` is the launching input; ``block`` names the tested path
    segment (``"free"``, ``"geq"`` or ``"leq"``); ``rising`` gives the
    launch transition direction.
    """

    input_name: str
    block: str
    rising: bool
    v1: Dict[str, int]
    v2: Dict[str, int]

    @property
    def transition(self) -> str:
        """Paper notation for the launch transition (``0x1`` / ``1x0``)."""
        return "0x1" if self.rising else "1x0"

    def stable_inputs(self) -> Dict[str, int]:
        """The stable side inputs (everything except the launching input)."""
        return {k: v for k, v in self.v1.items() if k != self.input_name}


def _spread(value: int, names: Sequence[str]) -> Dict[str, int]:
    """Distribute *value*'s bits (MSB first) over *names*."""
    k = len(names)
    return {names[i]: (value >> (k - i - 1)) & 1 for i in range(k)}


def _both_directions(
    input_name: str, block: str, base: Dict[str, int]
) -> List[TwoPatternTest]:
    """Rising and falling tests from a stable base assignment."""
    out = []
    for rising in (True, False):
        v1 = dict(base)
        v2 = dict(base)
        v1[input_name] = 0 if rising else 1
        v2[input_name] = 1 if rising else 0
        out.append(TwoPatternTest(input_name, block, rising, v1, v2))
    return out


def robust_tests_for_unit(spec: ComparisonSpec) -> List[TwoPatternTest]:
    """Complete robust test set for the comparison unit realizing *spec*.

    One rising and one falling test per structural path of the unit; the
    complement flag is irrelevant (an output inversion changes the observed
    transition's direction, not the test patterns).
    """
    tests: List[TwoPatternTest] = []
    free = list(spec.free_inputs)
    free_vals = dict(zip(free, spec.free_values))
    bound = list(spec.bound_inputs)
    k = len(bound)
    lf_bits = [(spec.suffix_lower >> (k - i - 1)) & 1 for i in range(k)] if k else []
    uf_bits = [(spec.suffix_upper >> (k - i - 1)) & 1 for i in range(k)] if k else []

    # -- free-variable paths (Figure 5's direct AND-gate inputs) -----------
    for name in free:
        base = dict(free_vals)
        base.update(_spread(spec.suffix_lower, bound))
        tests.extend(_both_directions(name, "free", base))

    # -- paths through the >= L_F block -------------------------------------
    if spec.has_geq_block:
        t = max(i for i in range(k) if lf_bits[i] == 1)
        for j in range(t + 1):
            base = dict(free_vals)
            for i in range(j):
                base[bound[i]] = lf_bits[i]
            for i in range(j + 1, k):
                base[bound[i]] = lf_bits[i] if lf_bits[j] == 1 else 0
            base[bound[j]] = 0  # placeholder; _both_directions overwrites
            tests.extend(_both_directions(bound[j], "geq", base))

    # -- paths through the <= U_F block -------------------------------------
    if spec.has_leq_block:
        t = max(i for i in range(k) if uf_bits[i] == 0)
        for j in range(t + 1):
            base = dict(free_vals)
            for i in range(j):
                base[bound[i]] = uf_bits[i]
            for i in range(j + 1, k):
                base[bound[i]] = uf_bits[i] if uf_bits[j] == 0 else 1
            base[bound[j]] = 0
            tests.extend(_both_directions(bound[j], "leq", base))

    return tests


def format_test_table(spec: ComparisonSpec, tests: Iterable[TwoPatternTest]) -> str:
    """Render a test set in the style of Table 1 of the paper.

    Stable inputs print as ``000``/``111``; the launching input prints as
    ``0x1`` or ``1x0``.  Rising/falling tests for the same fault share a row
    (as in the paper), so the table has one row per structural path.
    """
    cols = list(spec.inputs)
    header = ["fault"] + cols
    rows: List[List[str]] = []
    seen: Dict[Tuple[str, str], List[str]] = {}
    for t in tests:
        key = (t.input_name, t.block)
        if key in seen:
            continue
        label = {
            "free": t.input_name,
            "geq": f"{t.input_name}, >=L_F",
            "leq": f"{t.input_name}, <=U_F",
        }[t.block]
        row = [label]
        for c in cols:
            if c == t.input_name:
                row.append("0x1, 1x0")
            else:
                row.append("111" if t.v1[c] else "000")
        seen[key] = row
        rows.append(row)
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt.format(*r) for r in rows)
    return "\n".join(lines)
