"""Census of comparison functions: enumerate the class exhaustively.

Useful for calibrating identification (every census member must be
identified; nothing outside it may be) and for quantifying how special the
class is — the fraction of all ``2^(2^n)`` functions that are comparison
functions collapses double-exponentially, which is why Section 4 searches
small subcircuits rather than whole cones.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Dict, FrozenSet, List, Set, Tuple


@lru_cache(maxsize=None)
def comparison_truth_tables(
    n: int, include_complemented: bool = False
) -> FrozenSet[int]:
    """All truth tables of n-variable comparison functions (Definition 1).

    Enumerates every permutation and every ``0 <= L <= U < 2^n`` (excluding
    the constant full interval) and collects the induced tables over the
    identity variable order.  ``include_complemented`` adds the OFF-set
    variant the paper's Section 5 also exploits.
    """
    if n < 1:
        raise ValueError("n must be positive")
    size = 1 << n
    full = (1 << size) - 1
    tables: Set[int] = set()
    for perm in itertools.permutations(range(n)):
        # value of each identity-order minterm under the permutation
        mapped = [0] * size
        for m in range(size):
            v = 0
            for i, j in enumerate(perm):
                if (m >> (n - j - 1)) & 1:
                    v |= 1 << (n - i - 1)
            mapped[m] = v
        # For each L: tables for [L, U] as U grows are nested; build by
        # accumulating minterms sorted by mapped value.
        order = sorted(range(size), key=mapped.__getitem__)
        prefix = 0
        prefixes = []
        for m in order:
            prefix |= 1 << m
            prefixes.append(prefix)
        for lo_idx in range(size):
            base = prefixes[lo_idx - 1] if lo_idx else 0
            for hi_idx in range(lo_idx, size):
                table = prefixes[hi_idx] & ~base
                if table != full:
                    tables.add(table)
    if include_complemented:
        tables |= {t ^ full for t in tables}
        tables.discard(0)
        tables.discard(full)
    return frozenset(tables)


def count_comparison_functions(
    n: int, include_complemented: bool = False
) -> int:
    """Number of distinct n-variable comparison functions."""
    return len(comparison_truth_tables(n, include_complemented))


def comparison_fraction(n: int, include_complemented: bool = True) -> float:
    """Share of all n-variable Boolean functions that are comparison
    functions (with the OFF-set variant, as the resynthesis uses)."""
    total = 2 ** (1 << n)
    return count_comparison_functions(n, include_complemented) / total
