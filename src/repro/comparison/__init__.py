"""Comparison functions and comparison units — the paper's core contribution."""

from .spec import ComparisonSpec
from .identify import (
    DEFAULT_PERM_BUDGET,
    IdentificationCache,
    IdentificationResult,
    candidate_permutations,
    identification_cache,
    identification_key,
    identify_comparison,
    identify_positions,
    is_comparison_function,
    warm_identification_cache,
)
from .unit import (
    UnitCost,
    best_spec,
    build_unit,
    emit_comparison_unit,
    unit_cost,
)
from .testgen import (
    TwoPatternTest,
    format_test_table,
    robust_tests_for_unit,
)
from .census import (
    comparison_fraction,
    comparison_truth_tables,
    count_comparison_functions,
)
from .exact import (
    ExactIdentifier,
    exact_identify,
    is_comparison_exact,
)
from .multiunit import (
    MultiUnitCover,
    build_multi_unit,
    emit_multi_unit,
    find_multi_unit_cover,
)
from .threshold import (
    ThresholdFunction,
    evaluate_as_threshold_pair,
    geq_block_threshold,
    leq_block_threshold,
)

__all__ = [
    "ComparisonSpec",
    "DEFAULT_PERM_BUDGET",
    "ExactIdentifier",
    "IdentificationCache",
    "IdentificationResult",
    "MultiUnitCover",
    "ThresholdFunction",
    "TwoPatternTest",
    "UnitCost",
    "best_spec",
    "build_multi_unit",
    "build_unit",
    "candidate_permutations",
    "comparison_fraction",
    "comparison_truth_tables",
    "count_comparison_functions",
    "emit_comparison_unit",
    "emit_multi_unit",
    "exact_identify",
    "evaluate_as_threshold_pair",
    "find_multi_unit_cover",
    "format_test_table",
    "geq_block_threshold",
    "identification_cache",
    "identification_key",
    "identify_comparison",
    "identify_positions",
    "is_comparison_exact",
    "is_comparison_function",
    "leq_block_threshold",
    "robust_tests_for_unit",
    "unit_cost",
    "warm_identification_cache",
]
