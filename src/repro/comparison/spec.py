"""The :class:`ComparisonSpec`: a comparison function in canonical form.

Definition 1 of the paper: ``f(y_1..y_n)`` is a *comparison function* when
there is a permutation ``(x_1..x_n)`` of its variables and bounds ``L <= U``
such that ``f = 1`` exactly on the minterms whose decimal value (``x_1`` the
most significant bit) lies in ``[L, U]``.  Section 5 additionally uses
*complemented* comparison functions — the OFF-set is the interval — realized
by complementing a comparison unit's output; the ``complement`` flag records
that case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ComparisonSpec:
    """A comparison function: permuted inputs, interval bounds, polarity.

    Attributes
    ----------
    inputs:
        Original variable names in permuted order: ``inputs[0]`` plays the
        role of ``x_1`` (the most significant bit).
    lower, upper:
        The interval bounds ``L`` and ``U`` (inclusive), ``0 <= L <= U < 2**n``.
    complement:
        When True the represented function is 1 *outside* ``[L, U]`` (the
        unit output is inverted).
    """

    inputs: Tuple[str, ...]
    lower: int
    upper: int
    complement: bool = False

    def __post_init__(self) -> None:
        n = len(self.inputs)
        if n == 0:
            raise ValueError("comparison function needs at least one input")
        if not 0 <= self.lower <= self.upper < (1 << n):
            raise ValueError(
                f"bounds L={self.lower}, U={self.upper} invalid for n={n}"
            )
        if self.lower == 0 and self.upper == (1 << n) - 1:
            raise ValueError("interval covers all minterms: constant function")

    @property
    def n(self) -> int:
        """Number of inputs."""
        return len(self.inputs)

    # -- bit views ---------------------------------------------------------

    def lower_bits(self) -> Tuple[int, ...]:
        """``L`` as an MSB-first bit tuple ``(l_1, ..., l_n)``."""
        return tuple((self.lower >> (self.n - i - 1)) & 1 for i in range(self.n))

    def upper_bits(self) -> Tuple[int, ...]:
        """``U`` as an MSB-first bit tuple ``(u_1, ..., u_n)``."""
        return tuple((self.upper >> (self.n - i - 1)) & 1 for i in range(self.n))

    # -- free variables (Definition 2) --------------------------------------

    @property
    def n_free(self) -> int:
        """Length ``F`` of the free-variable prefix (where ``l_i == u_i``)."""
        lb, ub = self.lower_bits(), self.upper_bits()
        f = 0
        while f < self.n and lb[f] == ub[f]:
            f += 1
        return f

    @property
    def free_inputs(self) -> Tuple[str, ...]:
        """The free variables ``X_F`` (a prefix of :attr:`inputs`)."""
        return self.inputs[: self.n_free]

    @property
    def bound_inputs(self) -> Tuple[str, ...]:
        """The non-free variables (drive the comparison blocks)."""
        return self.inputs[self.n_free:]

    @property
    def free_values(self) -> Tuple[int, ...]:
        """Fixed values of the free variables on every ON minterm."""
        return self.lower_bits()[: self.n_free]

    @property
    def suffix_lower(self) -> int:
        """``L_F``: the lower bound restricted to the non-free variables."""
        f = self.n_free
        return self.lower & ((1 << (self.n - f)) - 1)

    @property
    def suffix_upper(self) -> int:
        """``U_F``: the upper bound restricted to the non-free variables."""
        f = self.n_free
        return self.upper & ((1 << (self.n - f)) - 1)

    @property
    def has_geq_block(self) -> bool:
        """True when the ``>= L_F`` block is present (``L_F != 0``)."""
        return self.suffix_lower != 0

    @property
    def has_leq_block(self) -> bool:
        """True when the ``<= U_F`` block is present (``U_F`` not all ones)."""
        return self.suffix_upper != (1 << (self.n - self.n_free)) - 1

    # -- semantics -----------------------------------------------------------

    def value_of_minterm(self, m: int) -> int:
        """Function value on the permuted minterm of decimal value *m*."""
        inside = self.lower <= m <= self.upper
        return int(inside != self.complement)

    def evaluate(self, assignment: Dict[str, int]) -> int:
        """Function value on an assignment to the original variable names."""
        m = 0
        for i, name in enumerate(self.inputs):
            if assignment[name] & 1:
                m |= 1 << (self.n - i - 1)
        return self.value_of_minterm(m)

    def truth_table(self, variable_order: Sequence[str]) -> int:
        """Truth table over *variable_order* (MSB first), polarity included."""
        if sorted(variable_order) != sorted(self.inputs):
            raise ValueError("variable_order must use exactly the spec inputs")
        n = self.n
        pos = {name: i for i, name in enumerate(variable_order)}
        table = 0
        for m_ext in range(1 << n):
            assignment = {
                name: (m_ext >> (n - pos[name] - 1)) & 1 for name in self.inputs
            }
            if self.evaluate(assignment):
                table |= 1 << m_ext
        return table

    def describe(self) -> str:
        """One-line human-readable summary."""
        perm = ", ".join(self.inputs)
        pol = "NOT " if self.complement else ""
        return f"{pol}[{self.lower} <= ({perm}) <= {self.upper}]"
