"""Bit-parallel logic simulation, pattern sources, truth-table extraction."""

from .logicsim import (
    eval_gate_packed,
    output_words,
    outputs_equal,
    simulate,
    simulate_pattern,
)
from .patterns import (
    assignment_minterm,
    exhaustive_input_word,
    exhaustive_words,
    iter_pattern_batches,
    minterm_assignment,
    pattern_bits,
    random_words,
)
from .timing import (
    TimingSimulator,
    Waveform,
    detects_path_fault,
    robust_against_random_delays,
    static_arrival_times,
)
from .truthtable import (
    MAX_TT_INPUTS,
    TruthTableCache,
    cone_signature,
    signature_truth_table,
    truth_table,
    truth_tables,
    tt_complement,
    tt_from_minterms,
    tt_minterms,
    tt_permute,
    tt_support,
)

__all__ = [
    "MAX_TT_INPUTS",
    "TimingSimulator",
    "TruthTableCache",
    "Waveform",
    "assignment_minterm",
    "cone_signature",
    "detects_path_fault",
    "eval_gate_packed",
    "exhaustive_input_word",
    "exhaustive_words",
    "iter_pattern_batches",
    "minterm_assignment",
    "output_words",
    "outputs_equal",
    "pattern_bits",
    "random_words",
    "robust_against_random_delays",
    "signature_truth_table",
    "simulate",
    "static_arrival_times",
    "simulate_pattern",
    "truth_table",
    "truth_tables",
    "tt_complement",
    "tt_from_minterms",
    "tt_minterms",
    "tt_permute",
    "tt_support",
]
