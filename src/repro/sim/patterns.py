"""Pattern sources: exhaustive and seeded-random packed pattern words.

The minterm convention throughout the project follows the paper: for an
ordered input list ``(x_1, ..., x_n)``, ``x_1`` is the most significant bit,
so the minterm applied as pattern ``p`` (0-based) assigns
``x_i = (p >> (n - i)) & 1`` (1-based ``i``).  Exhaustive words are arranged
so that *pattern index equals minterm decimal value*, which lets truth tables
be read directly out of output words.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence


def exhaustive_input_word(position: int, n_inputs: int) -> int:
    """Packed word for the input at *position* (0-based, MSB first).

    Over the ``2**n_inputs`` exhaustive patterns ordered by minterm value,
    input ``x_{position+1}`` has weight ``2**(n_inputs - position - 1)``:
    its word is a square wave of that half-period, starting with zeros.
    """
    if not 0 <= position < n_inputs:
        raise ValueError(f"position {position} out of range for {n_inputs} inputs")
    weight = n_inputs - position - 1
    half = 1 << weight  # run length of equal bits
    n_patterns = 1 << n_inputs
    # Bit p must be (p >> weight) & 1: zeros for p in [0, half), ones for
    # [half, 2*half), repeating.
    block = ((1 << half) - 1) << half  # one period: half zeros then half ones
    word = 0
    period = half << 1
    for start in range(0, n_patterns, period):
        word |= block << start
    return word


def exhaustive_words(inputs: Sequence[str]) -> Dict[str, int]:
    """Packed exhaustive words for an ordered input list (MSB first)."""
    n = len(inputs)
    if n > 24:
        raise ValueError(f"refusing exhaustive simulation of {n} inputs")
    return {
        name: exhaustive_input_word(i, n) for i, name in enumerate(inputs)
    }


def random_words(
    inputs: Sequence[str], n_patterns: int, rng: random.Random
) -> Dict[str, int]:
    """Independent uniform random packed words for each input."""
    return {name: rng.getrandbits(n_patterns) for name in inputs}


def pattern_bits(words: Dict[str, int], inputs: Sequence[str], p: int) -> Dict[str, int]:
    """Extract pattern *p* from packed *words* as a scalar assignment."""
    return {name: (words[name] >> p) & 1 for name in inputs}


def minterm_assignment(minterm: int, inputs: Sequence[str]) -> Dict[str, int]:
    """Scalar assignment for a minterm value under the MSB-first convention."""
    n = len(inputs)
    return {
        name: (minterm >> (n - i - 1)) & 1 for i, name in enumerate(inputs)
    }


def assignment_minterm(assignment: Dict[str, int], inputs: Sequence[str]) -> int:
    """Decimal minterm value of a scalar assignment (MSB-first)."""
    n = len(inputs)
    value = 0
    for i, name in enumerate(inputs):
        if assignment[name] & 1:
            value |= 1 << (n - i - 1)
    return value


def iter_pattern_batches(
    inputs: Sequence[str],
    total_patterns: int,
    batch_size: int,
    seed: int,
) -> Iterator[tuple]:
    """Yield seeded random pattern batches as ``(words, width)`` tuples.

    Batches have *batch_size* patterns except possibly the last.  The
    pattern stream is a deterministic function of ``(seed, batch_size)``,
    so experiments that report "the last effective pattern" (Table 6) are
    reproducible; comparisons between circuits must use the same seed and
    batch size, which the experiment drivers enforce.
    """
    rng = random.Random(seed)
    produced = 0
    while produced < total_patterns:
        width = min(batch_size, total_patterns - produced)
        yield random_words(inputs, width, rng), width
        produced += width
