"""Truth-table extraction by exhaustive bit-parallel simulation.

A truth table over ``n`` ordered inputs is an int bitmask: bit ``m`` is the
function value on the minterm of decimal value ``m`` (MSB-first input
convention; see :mod:`repro.sim.patterns`).  Truth tables are how candidate
subcircuit functions are handed to the comparison-function identifier.

Candidate cones are keyed by :func:`cone_signature`, a canonical, picklable
serialization of the cone's gate DAG with inputs reduced to positions.  A
signature is self-contained: :func:`signature_truth_table` evaluates it
directly — without materializing a :class:`~repro.netlist.Circuit` — and
produces exactly the table that extracting the subcircuit and simulating it
exhaustively would.  The signature is therefore both the
:class:`TruthTableCache` key and the unit of work shipped to worker
processes by :mod:`repro.parallel`.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

from ..netlist import Circuit, GateType
from .logicsim import eval_gate_packed, simulate
from .patterns import exhaustive_input_word, exhaustive_words

#: Safety bound for exhaustive extraction (2**MAX_TT_INPUTS patterns).
MAX_TT_INPUTS = 16


def truth_table(
    circuit: Circuit,
    output: Optional[str] = None,
    input_order: Optional[Sequence[str]] = None,
) -> int:
    """Truth table (bitmask over minterms) of one circuit output.

    Parameters
    ----------
    circuit:
        The circuit to evaluate.
    output:
        The output net; defaults to the circuit's only output.
    input_order:
        Ordered input list (MSB first); defaults to declaration order.
    """
    tables = truth_tables(circuit, input_order)
    if output is None:
        outs = circuit.outputs
        if len(set(outs)) != 1:
            raise ValueError("output must be given for multi-output circuits")
        output = outs[0]
    return tables[output]


def truth_tables(
    circuit: Circuit, input_order: Optional[Sequence[str]] = None
) -> Dict[str, int]:
    """Truth tables of every primary output of *circuit*."""
    inputs: List[str] = list(input_order) if input_order else circuit.inputs
    if set(inputs) != set(circuit.inputs):
        raise ValueError("input_order must be a permutation of circuit inputs")
    n = len(inputs)
    if n > MAX_TT_INPUTS:
        raise ValueError(f"{n} inputs exceeds MAX_TT_INPUTS={MAX_TT_INPUTS}")
    words = exhaustive_words(inputs)
    values = simulate(circuit, words, 1 << n)
    return {o: values[o] for o in circuit.output_set}


def tt_minterms(table: int, n_inputs: int) -> List[int]:
    """Minterm values (ascending) where the truth table is 1."""
    return [m for m in range(1 << n_inputs) if (table >> m) & 1]


def tt_from_minterms(minterms: Sequence[int], n_inputs: int) -> int:
    """Build a truth-table bitmask from a minterm list."""
    size = 1 << n_inputs
    table = 0
    for m in minterms:
        if not 0 <= m < size:
            raise ValueError(f"minterm {m} out of range for {n_inputs} inputs")
        table |= 1 << m
    return table


def tt_complement(table: int, n_inputs: int) -> int:
    """Complement a truth table."""
    return table ^ ((1 << (1 << n_inputs)) - 1)


def tt_permute(table: int, n_inputs: int, perm: Sequence[int]) -> int:
    """Apply an input permutation to a truth table.

    ``perm[i] = j`` means new input position ``i`` (MSB first) reads old
    input position ``j``; i.e. the permuted function is
    ``f'(x_0..x_{n-1}) = f(y_0..y_{n-1})`` with ``y_{perm[i]} = x_i``.
    """
    if sorted(perm) != list(range(n_inputs)):
        raise ValueError(f"{perm!r} is not a permutation of 0..{n_inputs - 1}")
    out = 0
    for m in range(1 << n_inputs):
        # Map new-minterm m to old-minterm m_old.
        m_old = 0
        for new_pos, old_pos in enumerate(perm):
            bit = (m >> (n_inputs - new_pos - 1)) & 1
            if bit:
                m_old |= 1 << (n_inputs - old_pos - 1)
        if (table >> m_old) & 1:
            out |= 1 << m
    return out


def cone_signature(
    circuit: Circuit,
    output: str,
    members: AbstractSet[str],
    input_order: Sequence[str],
) -> Tuple:
    """Canonical structural key of a single-output cone.

    The key serializes the cone's gate DAG with inputs replaced by their
    position in *input_order*, so it is independent of net names: two
    cones with equal signatures compute the same function of their
    (positional) inputs, and a truth table computed for one is valid for
    the other.  Used as the :class:`TruthTableCache` key.
    """
    idx = {net: i for i, net in enumerate(input_order)}
    memo: Dict[str, Tuple] = {}

    def sig(net: str) -> Tuple:
        if net not in members:
            return ("i", idx[net])
        s = memo.get(net)
        if s is None:
            g = circuit.gate(net)
            memo[net] = s = (g.gtype.value,) + tuple(sig(f) for f in g.fanins)
        return s

    return sig(output)


def signature_truth_table(signature: Tuple, n_inputs: int) -> int:
    """Evaluate a :func:`cone_signature` to its truth table.

    The signature's shared-subtree structure (member nodes are created
    once, so reconvergent fanout shares tuple objects — a property pickle
    preserves) makes evaluation linear in the member count: each distinct
    node is evaluated once over the packed exhaustive words.  The result
    is bit-identical to extracting the cone as a standalone circuit and
    running :func:`truth_table` over it, without the cost of building and
    validating a :class:`~repro.netlist.Circuit`.
    """
    if n_inputs > MAX_TT_INPUTS:
        raise ValueError(
            f"{n_inputs} inputs exceeds MAX_TT_INPUTS={MAX_TT_INPUTS}"
        )
    words = [
        exhaustive_input_word(i, n_inputs) for i in range(n_inputs)
    ]
    mask = (1 << (1 << n_inputs)) - 1
    memo: Dict[int, int] = {}

    def ev(node: Tuple) -> int:
        got = memo.get(id(node))
        if got is None:
            if node[0] == "i":
                got = words[node[1]]
            else:
                got = eval_gate_packed(
                    GateType(node[0]), [ev(c) for c in node[1:]], mask
                )
            memo[id(node)] = got
        return got

    return ev(signature)


class TruthTableCache:
    """Memo of cone truth tables keyed by :func:`cone_signature`.

    Re-enumerated candidate cones — across selection sites and across
    resynthesis passes — hit the memo and skip exhaustive resimulation.
    """

    def __init__(self, max_entries: int = 1 << 17) -> None:
        self._table: Dict[Tuple, int] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: Tuple) -> Optional[int]:
        """The memoized table for *key*, or None on a miss."""
        tt = self._table.get(key)
        if tt is None:
            self.misses += 1
        else:
            self.hits += 1
        return tt

    def peek(self, key: Tuple) -> Optional[int]:
        """Like :meth:`get` but without touching the hit/miss counters.

        Used by bookkeeping passes (e.g. the parallel layer's shipping
        decision) so the counters keep describing the sweep itself.
        """
        return self._table.get(key)

    def put(self, key: Tuple, table: int) -> None:
        """Memoize *table* under *key* (drops all entries when full)."""
        if len(self._table) >= self._max_entries:
            self._table.clear()
        self._table[key] = table

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._table.clear()


def tt_support(table: int, n_inputs: int) -> List[int]:
    """Input positions (0-based, MSB first) the function actually depends on."""
    support = []
    size = 1 << n_inputs
    for pos in range(n_inputs):
        weight = n_inputs - pos - 1
        stride = 1 << weight
        depends = False
        for m in range(size):
            if m & stride:
                continue
            if ((table >> m) & 1) != ((table >> (m | stride)) & 1):
                depends = True
                break
        if depends:
            support.append(pos)
    return support
