"""Bit-parallel true-value logic simulation.

Patterns are packed into arbitrary-precision Python integers: bit ``p`` of a
net's value word is the net's logic value under pattern ``p``.  Gate
evaluation is then a handful of native big-int operations per gate per pass,
which is what makes the random-pattern experiments of Tables 6 and 7 feasible
in pure Python.  This is the same idea as parallel-pattern simulation in
FSIM [17], with the word width unbounded instead of 32.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from ..netlist import Circuit, GateType


def _all_ones(n_patterns: int) -> int:
    return (1 << n_patterns) - 1


def eval_gate_packed(
    gtype: GateType, fanin_words: Sequence[int], mask: int
) -> int:
    """Evaluate one gate over packed pattern words (bitwise semantics)."""
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    if gtype is GateType.BUF:
        return fanin_words[0]
    if gtype is GateType.NOT:
        return fanin_words[0] ^ mask
    if gtype is GateType.AND or gtype is GateType.NAND:
        v = mask
        for w in fanin_words:
            v &= w
        return v if gtype is GateType.AND else v ^ mask
    if gtype is GateType.OR or gtype is GateType.NOR:
        v = 0
        for w in fanin_words:
            v |= w
        return v if gtype is GateType.OR else v ^ mask
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        v = 0
        for w in fanin_words:
            v ^= w
        return v if gtype is GateType.XOR else v ^ mask
    raise ValueError(f"cannot evaluate gate type {gtype!r}")


def simulate(
    circuit: Circuit,
    input_words: Mapping[str, int],
    n_patterns: int,
) -> Dict[str, int]:
    """Simulate *n_patterns* patterns in one bit-parallel pass.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    input_words:
        Packed value word for every primary input (missing inputs default
        to the all-zero word).
    n_patterns:
        Number of patterns packed in each word.

    Returns
    -------
    dict
        Packed value word for every net in the circuit.
    """
    mask = _all_ones(n_patterns)
    values: Dict[str, int] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        if gate.gtype is GateType.INPUT:
            values[net] = input_words.get(net, 0) & mask
        else:
            values[net] = eval_gate_packed(
                gate.gtype, [values[f] for f in gate.fanins], mask
            )
    return values


def simulate_pattern(circuit: Circuit, assignment: Mapping[str, int]) -> Dict[str, int]:
    """Simulate a single pattern given scalar 0/1 input values."""
    words = {pi: (assignment.get(pi, 0) & 1) for pi in circuit.inputs}
    return simulate(circuit, words, 1)


def output_words(
    circuit: Circuit, input_words: Mapping[str, int], n_patterns: int
) -> Dict[str, int]:
    """Like :func:`simulate`, returning only the primary-output words."""
    values = simulate(circuit, input_words, n_patterns)
    return {o: values[o] for o in circuit.output_set}


def outputs_equal(
    a: Circuit, b: Circuit, input_words: Mapping[str, int], n_patterns: int
) -> bool:
    """True when circuits *a* and *b* agree on all outputs for the patterns.

    The circuits must share input and output net names (the resynthesis
    procedures preserve the interface, so this is the natural equivalence
    check for them).
    """
    if a.output_set != b.output_set:
        return False
    va = simulate(a, input_words, n_patterns)
    vb = simulate(b, input_words, n_patterns)
    return all(va[o] == vb[o] for o in a.output_set)
