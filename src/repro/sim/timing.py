"""Event-driven timing simulation with delay-fault injection.

This is the physical model underneath the path delay fault abstraction: each
gate gets a real delay, a two-pattern test is applied as an input step at
``t = 0`` from the settled first vector, and waveforms propagate by event
scheduling.  A **path delay fault** is injected by adding extra delay to
every gate along the path *for transitions arriving from the on-path fanin*
(a lumped distributed fault, the model the paper targets).

The test suite uses this as an independent oracle for
:mod:`repro.pdf.robust`: a robust two-pattern test must detect the fault —
sampled output differs from the fault-free settled value — for **every**
assignment of gate delays tried, whereas non-robust tests can be defeated
by an adversarial delay assignment.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import Circuit, GateType, eval_gate


@dataclass
class Waveform:
    """A net's simulated waveform: initial value + (time, value) changes."""

    initial: int
    events: List[Tuple[float, int]] = field(default_factory=list)

    def value_at(self, t: float) -> int:
        """Settled value at time *t* (events at exactly *t* included)."""
        v = self.initial
        for when, val in self.events:
            if when <= t:
                v = val
            else:
                break
        return v

    @property
    def final(self) -> int:
        """The settled value."""
        return self.events[-1][1] if self.events else self.initial

    @property
    def transition_count(self) -> int:
        """Number of value changes (2+ means a glitch occurred)."""
        return len(self.events)


class TimingSimulator:
    """Event-driven two-vector simulation of one circuit.

    Parameters
    ----------
    circuit:
        The combinational circuit.
    gate_delays:
        Map net -> gate delay (defaults to 1.0 for every gate).  Inertial
        filtering is not modeled (pure transport delays), which is the
        conservative choice for hazard behaviour.
    """

    def __init__(
        self,
        circuit: Circuit,
        gate_delays: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.circuit = circuit
        self.delays = dict(gate_delays or {})
        self._topo = circuit.topological_order()
        self._fanout = circuit.fanout_map()

    def delay_of(self, net: str) -> float:
        """Delay of the gate driving *net* (sources have none)."""
        return self.delays.get(net, 1.0)

    def run(
        self,
        v1: Mapping[str, int],
        v2: Mapping[str, int],
        fault_path: Optional[Sequence[str]] = None,
        extra_delay: float = 0.0,
    ) -> Dict[str, Waveform]:
        """Apply ``v1 -> v2`` at ``t=0``; return every net's waveform.

        ``fault_path`` (a PI-to-PO net tuple) with ``extra_delay`` injects a
        path delay fault: every on-path gate adds ``extra_delay /
        (len(path) - 1)`` to transitions arriving from its on-path fanin.

        The delay model is a transport *pin-delay* model: the gate delay
        (plus any injected fault delay) applies to each driver-to-pin edge,
        and gate evaluation at the pins is instantaneous.  Keeping the
        delay on the pins makes causality exact even when different pins of
        one gate carry different delays (as the fault injection requires),
        so settled values always agree with static logic evaluation.
        """
        on_path_pairs = set()
        per_gate_extra = 0.0
        if fault_path is not None and len(fault_path) > 1 and extra_delay:
            per_gate_extra = extra_delay / (len(fault_path) - 1)
            on_path_pairs = set(zip(fault_path, fault_path[1:]))

        # Settle the first vector (zero-delay steady state).
        settled: Dict[str, int] = {}
        for net in self._topo:
            gate = self.circuit.gate(net)
            if gate.gtype is GateType.INPUT:
                settled[net] = v1.get(net, 0) & 1
            else:
                settled[net] = eval_gate(
                    gate.gtype, tuple(settled[f] for f in gate.fanins)
                )

        waves: Dict[str, Waveform] = {
            net: Waveform(settled[net]) for net in self._topo
        }
        current = dict(settled)
        pins: Dict[str, List[int]] = {
            g.name: [settled[f] for f in g.fanins]
            for g in self.circuit.gates()
            if g.gtype not in (GateType.INPUT, GateType.CONST0,
                               GateType.CONST1)
        }

        counter = itertools.count()
        # Events update one gate input pin: (time, seq, reader, pin, value)
        heap: List[Tuple[float, int, str, int, int]] = []

        def propagate(net: str, value: int, t: float) -> None:
            for reader in set(self._fanout.get(net, ())):
                gate = self.circuit.gate(reader)
                delay = self.delay_of(reader)
                if (net, reader) in on_path_pairs:
                    delay += per_gate_extra
                for pin, f in enumerate(gate.fanins):
                    if f == net:
                        heapq.heappush(
                            heap,
                            (t + delay, next(counter), reader, pin, value),
                        )

        for pi in self.circuit.inputs:
            new = v2.get(pi, 0) & 1
            if new != current[pi]:
                current[pi] = new
                waves[pi].events.append((0.0, new))
                propagate(pi, new, 0.0)

        while heap:
            t, _, reader, pin, value = heapq.heappop(heap)
            if pins[reader][pin] == value:
                continue
            pins[reader][pin] = value
            out = eval_gate(
                self.circuit.gate(reader).gtype, tuple(pins[reader])
            )
            if out != current[reader]:
                current[reader] = out
                waves[reader].events.append((t, out))
                propagate(reader, out, t)
        return waves

    def sampled_outputs(
        self,
        v1: Mapping[str, int],
        v2: Mapping[str, int],
        sample_time: float,
        fault_path: Optional[Sequence[str]] = None,
        extra_delay: float = 0.0,
    ) -> Dict[str, int]:
        """Output values latched at *sample_time*."""
        waves = self.run(v1, v2, fault_path, extra_delay)
        return {
            o: waves[o].value_at(sample_time)
            for o in self.circuit.output_set
        }


def static_arrival_times(
    circuit: Circuit, gate_delays: Optional[Mapping[str, float]] = None
) -> Dict[str, float]:
    """Topological worst-case arrival time of every net.

    This — not the (input-pair-dependent) simulated settling time — is
    what a clock period must cover: a transient pulse in any (faulty or
    fault-free) response is bounded by the static arrival of the path that
    carries its trailing edge.
    """
    sim = TimingSimulator(circuit, gate_delays)
    arrival: Dict[str, float] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        if gate.gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            arrival[net] = 0.0
        else:
            arrival[net] = sim.delay_of(net) + max(
                (arrival[f] for f in gate.fanins), default=0.0
            )
    return arrival


def detects_path_fault(
    circuit: Circuit,
    v1: Mapping[str, int],
    v2: Mapping[str, int],
    path: Sequence[str],
    gate_delays: Optional[Mapping[str, float]] = None,
    slack_factor: float = 4.0,
) -> bool:
    """Does the two-pattern test catch a (gross) delay fault on *path*?

    The clock period is the static worst-case arrival time plus margin
    (every fault-free path meets timing — the single-fault assumption);
    the faulty circuit gets *slack_factor* times that budget added along
    the target path.  Detection = some sampled output differs from its
    fault-free settled value.
    """
    sim = TimingSimulator(circuit, gate_delays)
    good = sim.run(v1, v2)
    arrivals = static_arrival_times(circuit, gate_delays)
    sample = max(arrivals.values(), default=0.0) + 0.5
    extra = slack_factor * (sample + 1.0)
    faulty = sim.sampled_outputs(v1, v2, sample, path, extra)
    for o in circuit.output_set:
        if faulty[o] != good[o].final:
            return True
    return False


def robust_against_random_delays(
    circuit: Circuit,
    v1: Mapping[str, int],
    v2: Mapping[str, int],
    path: Sequence[str],
    trials: int = 20,
    seed: int = 0,
) -> bool:
    """Empirical robustness check: detection under many delay assignments.

    Tries *trials* random positive gate-delay assignments; a truly robust
    test detects the fault under all of them.  (Passing is necessary, not
    sufficient — it is a refutation tool for tests, used as an independent
    oracle against the analytic criteria.)
    """
    rng = random.Random(seed)
    nets = [g.name for g in circuit.logic_gates()]
    for _ in range(trials):
        delays = {n: 0.1 + 2.0 * rng.random() for n in nets}
        if not detects_path_fault(circuit, v1, v2, path, delays):
            return False
    return True
