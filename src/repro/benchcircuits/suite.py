"""The ``syn*`` benchmark suite: scaled stand-ins for the paper's ``irs*``.

The paper evaluates on irredundant, fully-scanned ISCAS-89 combinational
cores with more than 10,000 paths.  Those netlists are not distributable
here, so each ``irs`` circuit gets a deterministic synthetic stand-in of
similar *character* at roughly 10-30x smaller scale: a seeded composition
of datapath blocks (adders, multipliers, comparators) and control blocks
(decoders, priority chains, interval decodes, random control SOPs), with
cross-block wiring.  Each suite circuit is simplified and passed through
redundancy removal at build time, mirroring the paper's use of [15] to
obtain irredundant starting points.

Interval decodes use a CIDR-style prime-cube cover, so they are already
irredundant yet still path-expensive compared to a comparison unit — the
structure on which Procedure 2's headline path reductions occur, just as
address/state decoders are in the real ISCAS circuits.
"""

from __future__ import annotations

import os
import random
from functools import lru_cache
from typing import Callable, Dict, List, Sequence, Tuple

from ..netlist import Circuit, CircuitBuilder, simplify
from . import blocks


def interval_cubes(lower: int, upper: int, n: int) -> List[Tuple[int, int]]:
    """Disjoint aligned cube cover of ``[lower, upper]`` (CIDR-style).

    Returns ``(base, size)`` blocks with ``size`` a power of two dividing
    the alignment of ``base``.  At most ``2n`` cubes; the cover is
    irredundant because the blocks are disjoint.
    """
    if not 0 <= lower <= upper < (1 << n):
        raise ValueError("bad interval")
    cubes: List[Tuple[int, int]] = []
    lo = lower
    while lo <= upper:
        size = lo & -lo if lo else 1 << n
        while lo + size - 1 > upper:
            size >>= 1
        cubes.append((lo, size))
        lo += size
    return cubes


def interval_decode_sop(
    b: CircuitBuilder, xs: Sequence[str], lower: int, upper: int
) -> str:
    """Two-level prime-cube implementation of an interval decode.

    Irredundant (disjoint cubes) but with one path per cube literal —
    exactly the kind of decode logic Procedure 2 collapses into a
    comparison unit.
    """
    n = len(xs)
    inv: Dict[str, str] = {}

    def lit(i: int, value: int) -> str:
        if value:
            return xs[i]
        if xs[i] not in inv:
            inv[xs[i]] = b.NOT(xs[i])
        return inv[xs[i]]

    terms = []
    for base, size in interval_cubes(lower, upper, n):
        fixed = n - (size.bit_length() - 1)
        lits = [lit(i, (base >> (n - i - 1)) & 1) for i in range(fixed)]
        if not lits:
            return b.CONST1()
        terms.append(lits[0] if len(lits) == 1 else b.AND(*lits))
    return terms[0] if len(terms) == 1 else b.OR(*terms)


class _Composer:
    """Draws block inputs from the live signal pool and tracks sinks."""

    def __init__(self, b: CircuitBuilder, inputs: List[str], rng) -> None:
        self.b = b
        self.rng = rng
        self.pool: List[str] = list(inputs)
        self.consumed: set = set()
        self.sinks: List[str] = []

    def draw(self, k: int, fresh_bias: float = 0.6) -> List[str]:
        """Draw *k* distinct signals, biased toward recent/unconsumed ones."""
        chosen: List[str] = []
        tries = 0
        while len(chosen) < k and tries < 20 * k:
            tries += 1
            if self.rng.random() < fresh_bias:
                unconsumed = [s for s in self.pool if s not in self.consumed]
                src = unconsumed if unconsumed else self.pool
            else:
                src = self.pool
            cand = src[self.rng.randrange(len(src))]
            if cand not in chosen:
                chosen.append(cand)
        while len(chosen) < k:  # degenerate pools
            chosen.append(self.pool[self.rng.randrange(len(self.pool))])
        for cand in chosen:
            self.consumed.add(cand)
        return chosen

    def publish(self, nets: Sequence[str]) -> None:
        """Add block outputs to the pool and sink candidates."""
        for n in nets:
            self.pool.append(n)
            self.sinks.append(n)


def _add_block(c: _Composer, kind: str) -> None:
    b, rng = c.b, c.rng
    if kind == "adder":
        w = rng.randint(3, 5)
        xs, ys = c.draw(w), c.draw(w)
        cin = c.draw(1)[0]
        c.publish(blocks.ripple_adder(b, xs, ys, cin))
    elif kind == "mult":
        w = rng.randint(3, 4)
        c.publish(blocks.array_multiplier(b, c.draw(w), c.draw(w)))
    elif kind == "bigmult":
        c.publish(blocks.array_multiplier(b, c.draw(5), c.draw(5)))
    elif kind == "cmp":
        w = rng.randint(3, 5)
        c.publish([blocks.magnitude_comparator(b, c.draw(w), c.draw(w))])
    elif kind == "eq":
        w = rng.randint(3, 5)
        c.publish([blocks.equality_comparator(b, c.draw(w), c.draw(w))])
    elif kind == "decoder":
        c.publish(blocks.decoder(b, c.draw(rng.randint(2, 3))))
    elif kind == "mux":
        k = rng.randint(2, 3)
        sel = c.draw(k)
        data = c.draw(1 << k)
        c.publish([blocks.mux_tree(b, data, sel)])
    elif kind == "interval":
        n = rng.randint(4, 6)
        xs = c.draw(n)
        size = 1 << n
        lower = rng.randrange(size - 1)
        upper = rng.randrange(lower, size)
        if lower == 0 and upper == size - 1:
            upper = size - 2
        c.publish([interval_decode_sop(b, xs, lower, upper)])
    elif kind == "priority":
        c.publish(blocks.priority_encoder(b, c.draw(rng.randint(4, 6))))
    elif kind == "control":
        xs = c.draw(rng.randint(5, 8))
        c.publish([
            blocks.random_control_sop(b, xs, rng.randint(4, 8), rng)
        ])
    elif kind == "parity":
        c.publish([blocks.parity_tree(b, c.draw(rng.randint(3, 5)))])
    else:  # pragma: no cover
        raise ValueError(f"unknown block kind {kind!r}")


def composed_circuit(
    name: str,
    n_inputs: int,
    recipe: Sequence[Tuple[str, int]],
    seed: int,
    n_outputs: int = None,
) -> Circuit:
    """Compose a circuit from a ``(block kind, count)`` recipe (seeded)."""
    rng = random.Random(seed)
    b = CircuitBuilder(name)
    inputs = b.inputs(*[f"i{j}" for j in range(n_inputs)])
    composer = _Composer(b, list(inputs), rng)
    expanded: List[str] = []
    for kind, count in recipe:
        expanded.extend([kind] * count)
    rng.shuffle(expanded)
    for kind in expanded:
        _add_block(composer, kind)
    # Primary outputs: every block output that nothing consumed, plus a
    # sample of consumed ones (observability like scan cells provide).
    unconsumed = [s for s in composer.sinks if s not in composer.consumed]
    extra = [s for s in composer.sinks if s in composer.consumed]
    rng.shuffle(extra)
    n_extra = max(1, len(composer.sinks) // 3)
    outputs = unconsumed + extra[:n_extra]
    if n_outputs is not None:
        outputs = outputs[:n_outputs] if len(outputs) >= n_outputs else outputs
    b.outputs(*dict.fromkeys(outputs))
    circuit = b.build()
    simplify(circuit)
    circuit.validate()
    return circuit


#: Recipes for the eight suite members.  Shapes mirror the character of
#: the corresponding ``irs`` circuit (see EXPERIMENTS.md for the mapping):
#: ``syn15850`` is path-heavy (multiplier datapath), ``syn35932`` is wide
#: and shallow, the others are control-dominated mixes.
SUITE_RECIPES: Dict[str, Tuple[int, int, Tuple[Tuple[str, int], ...]]] = {
    "syn1423": (20, 101, (
        ("adder", 2), ("cmp", 2), ("interval", 2), ("control", 2),
        ("mux", 1), ("parity", 1),
    )),
    "syn5378": (40, 202, (
        ("control", 8), ("decoder", 3), ("interval", 4), ("priority", 3),
        ("eq", 3), ("mux", 3),
    )),
    "syn9234": (40, 303, (
        ("interval", 6), ("decoder", 2), ("control", 4), ("cmp", 2),
        ("mux", 2), ("adder", 1),
    )),
    "syn13207": (52, 404, (
        ("interval", 6), ("decoder", 3), ("control", 6), ("cmp", 3),
        ("adder", 2), ("priority", 2), ("mux", 3),
    )),
    "syn15850": (48, 505, (
        ("bigmult", 1), ("mult", 1), ("adder", 3), ("interval", 4),
        ("control", 4), ("cmp", 1),
    )),
    "syn35932": (80, 606, (
        ("adder", 6), ("control", 10), ("interval", 7), ("eq", 4),
        ("priority", 4), ("decoder", 3), ("parity", 2),
    )),
    "syn38417": (60, 707, (
        ("mult", 2), ("adder", 3), ("interval", 5), ("control", 6),
        ("mux", 3), ("cmp", 2),
    )),
    "syn38584": (64, 808, (
        ("control", 11), ("interval", 7), ("decoder", 4), ("adder", 3),
        ("priority", 3), ("eq", 3), ("mux", 3), ("mult", 1),
    )),
}

#: The four circuits the paper uses for the RAMBO_C comparison (Table 3).
TABLE3_CIRCUITS = ("syn1423", "syn5378", "syn9234", "syn13207")


def suite_names() -> List[str]:
    """Suite circuit names in the paper's table order."""
    return list(SUITE_RECIPES)


@lru_cache(maxsize=None)
def raw_suite_circuit(name: str) -> Circuit:
    """The composed (pre-redundancy-removal) suite circuit."""
    n_inputs, seed, recipe = SUITE_RECIPES[name]
    return composed_circuit(name, n_inputs, recipe, seed)


#: Directory holding materialized (post-redundancy-removal) suite circuits.
DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


@lru_cache(maxsize=None)
def suite_circuit(name: str) -> Circuit:
    """The irredundant suite circuit (the ``irs`` analogue).

    Loaded from the materialized JSON netlist when available (the suite is
    deterministic, so the files in ``benchcircuits/data/`` are simply a
    cache); otherwise built on the spot — composition, simplification,
    then redundancy removal (as the paper obtains irredundant circuits via
    [15]) — and materialized for the next run when the directory is
    writable.
    """
    from ..io.json_io import load_json, save_json

    path = os.path.join(DATA_DIR, f"{name}.json")
    if os.path.exists(path):
        return load_json(path)

    from ..atpg import remove_redundancies

    raw = raw_suite_circuit(name)
    report = remove_redundancies(raw, random_patterns=1024, seed=11)
    circuit = report.circuit
    circuit.name = name
    try:
        os.makedirs(DATA_DIR, exist_ok=True)
        save_json(circuit, path)
    except OSError:  # pragma: no cover - read-only installs are fine
        pass
    return circuit


def materialize_suite() -> List[str]:
    """Build and persist every suite circuit; returns the file paths."""
    paths = []
    for name in suite_names():
        suite_circuit(name)
        paths.append(os.path.join(DATA_DIR, f"{name}.json"))
    return paths
