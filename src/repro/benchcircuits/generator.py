"""Deterministic synthetic combinational circuit generation.

The paper evaluates on irredundant, fully-scanned ISCAS-89 combinational
cores (``irs*``).  Those netlists cannot be shipped here, so the benchmark
suite (see :mod:`repro.benchcircuits.suite`) uses seeded synthetic circuits
with comparable structure: random gate DAGs with locality-biased fanin
selection (which produces the reconvergent fanout and depth that make path
counts large) at ~10-30x smaller scale.  Everything is a pure function of
its seed, so experiments reproduce bit-for-bit.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..netlist import Circuit, GateType

#: Default gate-type mix: AND/OR-dominated, as in the ISCAS circuits.
DEFAULT_GATE_MIX = (
    (GateType.AND, 28),
    (GateType.OR, 24),
    (GateType.NAND, 18),
    (GateType.NOR, 12),
    (GateType.NOT, 14),
    (GateType.XOR, 2),
    (GateType.BUF, 2),
)


def _pick_weighted(rng: random.Random, mix: Sequence) -> GateType:
    total = sum(w for _, w in mix)
    r = rng.randrange(total)
    for gtype, w in mix:
        if r < w:
            return gtype
        r -= w
    return mix[-1][0]


def _estimate_probability(gtype: GateType, probs: Sequence[float]) -> float:
    """Signal probability estimate under input independence."""
    if gtype in (GateType.AND, GateType.NAND):
        p = 1.0
        for q in probs:
            p *= q
        return p if gtype is GateType.AND else 1.0 - p
    if gtype in (GateType.OR, GateType.NOR):
        p = 1.0
        for q in probs:
            p *= 1.0 - q
        return 1.0 - p if gtype is GateType.OR else p
    if gtype in (GateType.XOR, GateType.XNOR):
        p = 0.0
        for q in probs:
            p = p * (1.0 - q) + (1.0 - p) * q
        return p if gtype is GateType.XOR else 1.0 - p
    if gtype is GateType.NOT:
        return 1.0 - probs[0]
    return probs[0]  # BUF


def random_circuit(
    name: str,
    n_inputs: int,
    n_outputs: int,
    n_gates: int,
    seed: int,
    max_fanin: int = 4,
    locality: float = 0.75,
    gate_mix: Sequence = DEFAULT_GATE_MIX,
) -> Circuit:
    """Generate a random combinational circuit.

    Parameters
    ----------
    n_inputs, n_outputs, n_gates:
        Interface and size.  ``n_gates`` counts logic gates (incl. NOT/BUF).
    seed:
        Everything is a deterministic function of this seed.
    max_fanin:
        Maximum gate fanin (AND/OR/... gates draw 2..max_fanin inputs).
    locality:
        Probability that a fanin is drawn from the most recent quarter of
        the net pool rather than uniformly; higher values give deeper
        circuits with more reconvergence (hence more paths).
    gate_mix:
        ``(GateType, weight)`` pairs for the gate-type distribution.

    The result is validated, every primary output is driven, and dead logic
    is swept (so ``n_gates`` is an upper bound on the surviving gate count).
    """
    if n_inputs < 2:
        raise ValueError("need at least 2 inputs")
    if n_outputs < 1:
        raise ValueError("need at least 1 output")
    rng = random.Random(seed)
    c = Circuit(name)
    pool: List[str] = [c.add_input(f"i{j}") for j in range(n_inputs)]
    prob = {net: 0.5 for net in pool}

    def draw_fanin(exclude: set) -> Optional[str]:
        lo = int(len(pool) * 0.75)
        for _ in range(8):
            if rng.random() < locality and lo < len(pool):
                cand = pool[rng.randrange(lo, len(pool))]
            else:
                cand = pool[rng.randrange(len(pool))]
            if cand not in exclude:
                return cand
        for cand in reversed(pool):
            if cand not in exclude:
                return cand
        return None

    for j in range(n_gates):
        gtype = _pick_weighted(rng, gate_mix)
        if gtype in (GateType.NOT, GateType.BUF):
            k = 1
        else:
            # Mostly 2-input gates (as in the ISCAS suite); wide gates
            # push signal probabilities to the rails.
            r = rng.random()
            if r < 0.7 or max_fanin == 2:
                k = 2
            elif r < 0.9 or max_fanin == 3:
                k = 3
            else:
                k = rng.randint(4, max_fanin)
        chosen: List[str] = []
        exclude: set = set()
        for _ in range(k):
            f = draw_fanin(exclude)
            if f is None:
                break
            chosen.append(f)
            exclude.add(f)
        if len(chosen) < k:
            continue
        if len(chosen) == 1 and gtype not in (GateType.NOT, GateType.BUF):
            gtype = GateType.BUF
        if gtype not in (GateType.NOT, GateType.BUF):
            # Pick, among a few weighted draws, the type keeping the output
            # signal probability closest to 1/2 — without this, deep random
            # AND/OR netlists saturate to constant outputs.
            probs = [prob[f] for f in chosen]
            candidates = {gtype}
            candidates.add(_pick_weighted(rng, gate_mix))
            candidates.add(_pick_weighted(rng, gate_mix))
            candidates = {
                g for g in candidates if g not in (GateType.NOT, GateType.BUF)
            }
            gtype = min(
                sorted(candidates, key=lambda g: g.value),
                key=lambda g: abs(_estimate_probability(g, probs) - 0.5),
            )
        net = c.add_gate(f"g{j}", gtype, chosen)
        prob[net] = _estimate_probability(gtype, [prob[f] for f in chosen])
        pool.append(net)

    # Outputs: prefer sinks (nets nobody reads) so most logic stays live.
    fo = c.fanout_map()
    sinks = [n for n in pool if not fo.get(n) and c.gate(n).gtype is not GateType.INPUT]
    rng.shuffle(sinks)
    outputs: List[str] = sinks[:n_outputs]
    internal = [n for n in pool if c.gate(n).gtype is not GateType.INPUT]
    while len(outputs) < n_outputs and internal:
        cand = internal[rng.randrange(len(internal))]
        if cand not in outputs:
            outputs.append(cand)
        elif len(set(internal)) <= len(outputs):
            break
    if not outputs:
        raise ValueError("generated circuit has no logic to expose as outputs")
    c.set_outputs(outputs)
    c.sweep()
    c.validate()
    return c


def random_two_level(
    name: str,
    n_inputs: int,
    n_terms: int,
    seed: int,
    term_size: int = 3,
) -> Circuit:
    """A random AND-OR (sum-of-products) circuit — handy for small tests."""
    rng = random.Random(seed)
    c = Circuit(name)
    ins = [c.add_input(f"i{j}") for j in range(n_inputs)]
    inverted = {}

    def literal(net: str) -> str:
        if rng.random() < 0.5:
            return net
        if net not in inverted:
            inverted[net] = c.add_gate(f"n_{net}", GateType.NOT, (net,))
        return inverted[net]

    terms = []
    for t in range(n_terms):
        support = rng.sample(ins, min(term_size, n_inputs))
        lits = [literal(s) for s in support]
        if len(lits) == 1:
            terms.append(lits[0])
        else:
            terms.append(c.add_gate(f"t{t}", GateType.AND, lits))
    if len(terms) == 1:
        out = c.add_gate("out", GateType.BUF, (terms[0],))
    else:
        out = c.add_gate("out", GateType.OR, terms)
    c.set_outputs([out])
    c.validate()
    return c
