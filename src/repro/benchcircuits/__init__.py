"""Benchmark circuits: embedded classics and the synthetic seeded suite."""

from .classics import (
    c17,
    full_adder,
    paper_f1_impl1,
    paper_f1_impl2,
    paper_f2_sop,
    two_bit_comparator,
)
from .generator import DEFAULT_GATE_MIX, random_circuit, random_two_level

__all__ = [
    "DEFAULT_GATE_MIX",
    "c17",
    "full_adder",
    "paper_f1_impl1",
    "paper_f1_impl2",
    "paper_f2_sop",
    "random_circuit",
    "random_two_level",
    "two_bit_comparator",
]
