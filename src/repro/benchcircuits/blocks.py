"""Parameterized structural blocks for composing benchmark circuits.

The ISCAS-89 combinational cores mix datapath structures (adders,
comparators, shifters) with flat control logic (decoders, priority chains,
two-level decode SOPs).  The suite builder (:mod:`repro.benchcircuits.suite`)
tiles these blocks to obtain circuits with comparable structure: mostly
irredundant, reconvergent, path-rich, and containing both
comparison-replaceable control cones and arithmetic cones that are not.

Every block generator appends gates into a caller-supplied
:class:`~repro.netlist.CircuitBuilder` and returns its output nets.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..netlist import CircuitBuilder


def full_adder_block(
    b: CircuitBuilder, a: str, x: str, cin: str
) -> Tuple[str, str]:
    """One full adder; returns (sum, carry)."""
    p = b.XOR(a, x)
    s = b.XOR(p, cin)
    g1 = b.AND(a, x)
    g2 = b.AND(p, cin)
    c = b.OR(g1, g2)
    return s, c


def ripple_adder(
    b: CircuitBuilder, xs: Sequence[str], ys: Sequence[str], cin: str
) -> List[str]:
    """n-bit ripple-carry adder (LSB first); returns sum bits + carry out."""
    if len(xs) != len(ys):
        raise ValueError("operand widths differ")
    carry = cin
    sums: List[str] = []
    for a, y in zip(xs, ys):
        s, carry = full_adder_block(b, a, y, carry)
        sums.append(s)
    sums.append(carry)
    return sums


def array_multiplier(
    b: CircuitBuilder, xs: Sequence[str], ys: Sequence[str]
) -> List[str]:
    """Carry-save array multiplier (LSB first); returns product bits.

    Path counts grow quickly with width — the suite uses this to mimic the
    path-heavy ISCAS members (e.g. ``irs15850``'s 23M paths).
    """
    n, m = len(xs), len(ys)
    zero = b.CONST0()
    acc: List[str] = [b.AND(x, ys[0]) for x in xs]
    result: List[str] = []
    for i in range(1, m):
        result.append(acc[0])
        shifted = acc[1:]
        row = [b.AND(x, ys[i]) for x in xs]
        width = max(len(shifted), len(row))
        shifted = shifted + [zero] * (width - len(shifted))
        row = row + [zero] * (width - len(row))
        acc = ripple_adder(b, shifted, row, zero)
    result.extend(acc)
    return result


def equality_comparator(
    b: CircuitBuilder, xs: Sequence[str], ys: Sequence[str]
) -> str:
    """``1`` iff the two vectors are equal."""
    bits = [b.XNOR(a, y) for a, y in zip(xs, ys)]
    return bits[0] if len(bits) == 1 else b.AND(*bits)


def magnitude_comparator(
    b: CircuitBuilder, xs: Sequence[str], ys: Sequence[str]
) -> str:
    """``1`` iff vector ``xs`` > ``ys`` (MSB first) — reconvergent chain."""
    gt = None
    eq_prefix = None
    for a, y in zip(xs, ys):
        ny = b.NOT(y)
        here = b.AND(a, ny)
        term = here if eq_prefix is None else b.AND(eq_prefix, here)
        gt = term if gt is None else b.OR(gt, term)
        bit_eq = b.XNOR(a, y)
        eq_prefix = bit_eq if eq_prefix is None else b.AND(eq_prefix, bit_eq)
    return gt


def decoder(b: CircuitBuilder, xs: Sequence[str]) -> List[str]:
    """Full decoder: 2^n one-hot outputs from n select lines (MSB first)."""
    n = len(xs)
    inv = [b.NOT(x) for x in xs]
    outs = []
    for m in range(1 << n):
        lits = [
            xs[i] if (m >> (n - i - 1)) & 1 else inv[i] for i in range(n)
        ]
        outs.append(lits[0] if n == 1 else b.AND(*lits))
    return outs


def mux_tree(
    b: CircuitBuilder, data: Sequence[str], selects: Sequence[str]
) -> str:
    """2^k-to-1 multiplexer tree (selects MSB first)."""
    if len(data) != (1 << len(selects)):
        raise ValueError("data width must be 2**len(selects)")
    level = list(data)
    for s in reversed(selects):
        ns = b.NOT(s)
        nxt = []
        for i in range(0, len(level), 2):
            a = b.AND(level[i], ns)
            c = b.AND(level[i + 1], s)
            nxt.append(b.OR(a, c))
        level = nxt
    return level[0]


def interval_sop(
    b: CircuitBuilder, xs: Sequence[str], lower: int, upper: int
) -> str:
    """Flat SOP implementation of ``lower <= (xs) <= upper`` (MSB first).

    This is a comparison function implemented the *expensive* way (one
    product term per minterm) — the kind of decode logic where Procedure 2
    achieves its large path reductions when it swaps in a comparison unit.
    """
    n = len(xs)
    if not 0 <= lower <= upper < (1 << n):
        raise ValueError("bad interval")
    inv = {x: b.NOT(x) for x in xs}
    terms = []
    for m in range(lower, upper + 1):
        lits = [
            xs[i] if (m >> (n - i - 1)) & 1 else inv[xs[i]]
            for i in range(n)
        ]
        terms.append(lits[0] if n == 1 else b.AND(*lits))
    return terms[0] if len(terms) == 1 else b.OR(*terms)


def priority_encoder(
    b: CircuitBuilder, requests: Sequence[str]
) -> List[str]:
    """Grant outputs of a priority chain (highest index wins last)."""
    grants: List[str] = []
    blocked = None
    for r in requests:
        if blocked is None:
            grants.append(b.BUF(r))
            blocked = r
        else:
            nb = b.NOT(blocked)
            grants.append(b.AND(r, nb))
            blocked = b.OR(blocked, r)
    return grants


def random_control_sop(
    b: CircuitBuilder,
    xs: Sequence[str],
    n_terms: int,
    rng: random.Random,
    term_size: int = 3,
) -> str:
    """Random multi-cube control function (subsumption-filtered).

    Cubes are random products of *term_size* literals over *xs*; cubes
    subsumed by an earlier cube are dropped, which keeps the SOP close to
    irredundant.
    """
    cubes: List[dict] = []
    attempts = 0
    while len(cubes) < n_terms and attempts < n_terms * 6:
        attempts += 1
        support = rng.sample(list(xs), min(term_size, len(xs)))
        cube = {s: rng.randint(0, 1) for s in support}
        dominated = False
        for other in cubes:
            if all(cube.get(k) == v for k, v in other.items()):
                dominated = True  # existing cube covers this one
                break
            if all(other.get(k) == v for k, v in cube.items()):
                dominated = True  # avoid covering an existing cube too
                break
        if not dominated:
            cubes.append(cube)
    inv = {}

    def lit(net: str, value: int) -> str:
        if value:
            return net
        if net not in inv:
            inv[net] = b.NOT(net)
        return inv[net]

    terms = []
    for cube in cubes:
        lits = [lit(kv, v) for kv, v in cube.items()]
        terms.append(lits[0] if len(lits) == 1 else b.AND(*lits))
    if not terms:
        return b.CONST0()
    return terms[0] if len(terms) == 1 else b.OR(*terms)


def parity_tree(b: CircuitBuilder, xs: Sequence[str]) -> str:
    """Balanced XOR tree (not comparison-replaceable beyond 2 inputs)."""
    level = list(xs)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(b.XOR(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
