"""Small classic circuits and the paper's worked examples as fixtures.

Includes ISCAS-85 ``c17`` (small enough to embed verbatim) and gate-level
realizations of the Section 2 / Section 3 example functions ``f1`` (both
minimal SOP forms) and ``f2``.
"""

from __future__ import annotations

from ..io import read_bench
from ..netlist import Circuit, CircuitBuilder

_C17_BENCH = """
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


def c17() -> Circuit:
    """The ISCAS-85 c17 benchmark (6 NAND gates)."""
    return read_bench(_C17_BENCH, name="c17")


def paper_f1_impl1() -> Circuit:
    """Section 2 example, first form: ``~x1 x2 x4 + x1 ~x2 ~x3 + x2 ~x3 x4``."""
    b = CircuitBuilder("f1_impl1")
    x1, x2, x3, x4 = b.inputs("x1", "x2", "x3", "x4")
    nx1, nx2, nx3 = b.NOT(x1), b.NOT(x2), b.NOT(x3)
    t1 = b.AND(nx1, x2, x4)
    t2 = b.AND(x1, nx2, nx3)
    t3 = b.AND(x2, nx3, x4)
    f = b.OR(t1, t2, t3, name="f1")
    b.outputs(f)
    return b.build()


def paper_f1_impl2() -> Circuit:
    """Section 2 example, second form: ``~x1 x2 x4 + x1 ~x2 ~x3 + x1 ~x3 x4``.

    The scanned paper text prints the third term as ``x1 ~x2 x4``, but that
    expression is not equivalent to ``f_{1,1}`` and contradicts the paper's
    own ``K_p`` table (which has ``K_p(x2) = 2`` and ``K_p(x3) = 2`` for this
    form).  The intended term is ``x1 ~x3 x4``: with it the two forms are
    equivalent (ON-set {5, 7, 8, 9, 13}) and the ``K_p`` values match the
    paper exactly (3, 2, 2, 2).
    """
    b = CircuitBuilder("f1_impl2")
    x1, x2, x3, x4 = b.inputs("x1", "x2", "x3", "x4")
    nx1, nx2, nx3 = b.NOT(x1), b.NOT(x2), b.NOT(x3)
    t1 = b.AND(nx1, x2, x4)
    t2 = b.AND(x1, nx2, nx3)
    t3 = b.AND(x1, nx3, x4)
    f = b.OR(t1, t2, t3, name="f1")
    b.outputs(f)
    return b.build()


def paper_f2_sop() -> Circuit:
    """Section 3 example function ``f2`` (minterms {1,5,6,9,10,14}) as SOP.

    A straightforward (non-comparison-unit) realization used to demonstrate
    identification and replacement:
    ``f2 = ~y2 ~y3 y4 + y2 y3 ~y4 + ~y1(y2 xor y3) y4 ... `` written here as
    the canonical minterm-grouped SOP ``~y3 y4 (y1 xor y2)' ...``; we simply
    use the 6-minterm two-level form.
    """
    b = CircuitBuilder("f2_sop")
    ys = b.inputs("y1", "y2", "y3", "y4")

    def minterm(bits):
        lits = []
        for y, bit in zip(ys, bits):
            lits.append(y if bit else b.NOT(y))
        return b.AND(*lits)

    terms = [
        minterm((0, 0, 0, 1)),  # 1
        minterm((0, 1, 0, 1)),  # 5
        minterm((0, 1, 1, 0)),  # 6
        minterm((1, 0, 0, 1)),  # 9
        minterm((1, 0, 1, 0)),  # 10
        minterm((1, 1, 1, 0)),  # 14
    ]
    f = b.OR(*terms, name="f2")
    b.outputs(f)
    return b.build()


def full_adder() -> Circuit:
    """A 1-bit full adder (XOR-rich small fixture)."""
    b = CircuitBuilder("full_adder")
    a, x, cin = b.inputs("a", "b", "cin")
    s1 = b.XOR(a, x)
    s = b.XOR(s1, cin, name="sum")
    c1 = b.AND(a, x)
    c2 = b.AND(s1, cin)
    cout = b.OR(c1, c2, name="cout")
    b.outputs(s, cout)
    return b.build()


def two_bit_comparator() -> Circuit:
    """``out = 1`` iff the 2-bit value (a1 a0) > (b1 b0) — reconvergent fixture."""
    b = CircuitBuilder("cmp2")
    a1, a0, b1, b0 = b.inputs("a1", "a0", "b1", "b0")
    nb1, nb0 = b.NOT(b1), b.NOT(b0)
    gt_hi = b.AND(a1, nb1)
    eq_hi = b.XNOR(a1, b1)
    gt_lo = b.AND(a0, nb0)
    cascade = b.AND(eq_hi, gt_lo)
    out = b.OR(gt_hi, cascade, name="gt")
    b.outputs(out)
    return b.build()
