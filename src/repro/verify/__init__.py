"""Differential verification & fuzzing (``repro.verify``).

The correctness tooling for the rest of the package: a naive scalar
reference interpreter, pluggable differential oracles that cross-check the
independent engines (packed simulation, event-driven fault simulation, the
PODEM miter, comparison-unit construction, the serial-vs-parallel
resynthesis sweep, checkpoint/resume of the sweep), a delta-debugging
counterexample shrinker, deterministic JSON repro artifacts, and a seeded
fuzz driver with seed- and time-budgeted modes.

Entry points: :func:`run_fuzz` (library), ``repro-resynth fuzz`` /
``python -m repro fuzz`` (CLI), and the replayable corpus regression under
``tests/verify/corpus/``.  See ``docs/VERIFICATION.md`` for the full tour.
"""

from .artifact import (
    ReproArtifact,
    load_artifact,
    replay_artifact,
    write_artifact,
)
from .fuzz import (
    FuzzConfig,
    FuzzFinding,
    FuzzReport,
    generate_case,
    run_fuzz,
)
from .oracles import (
    ComparisonUnitOracle,
    FaultSimOracle,
    IncrementalOracle,
    MemoOracle,
    ORACLE_NAMES,
    Oracle,
    ParallelOracle,
    ResumeOracle,
    ResynthOracle,
    SimulatorOracle,
    Violation,
    default_oracles,
    incremental_state_mismatch,
    inject_stuck_fault,
    netlist_dump,
    spec_from_seed,
)
from .refsim import (
    buggy_gate_eval,
    ref_output_vector,
    ref_simulate_pattern,
    ref_truth_tables,
)
from .shrink import ShrinkResult, shrink_circuit

__all__ = [
    "ComparisonUnitOracle",
    "FaultSimOracle",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzReport",
    "IncrementalOracle",
    "MemoOracle",
    "ORACLE_NAMES",
    "Oracle",
    "ParallelOracle",
    "ReproArtifact",
    "ResumeOracle",
    "ResynthOracle",
    "ShrinkResult",
    "SimulatorOracle",
    "Violation",
    "buggy_gate_eval",
    "default_oracles",
    "generate_case",
    "incremental_state_mismatch",
    "inject_stuck_fault",
    "load_artifact",
    "netlist_dump",
    "ref_output_vector",
    "ref_simulate_pattern",
    "ref_truth_tables",
    "replay_artifact",
    "run_fuzz",
    "shrink_circuit",
    "spec_from_seed",
    "write_artifact",
]
