"""The seeded differential fuzz driver.

One fuzz *case* is a seed: it determines the generated random circuit (via
:func:`repro.benchcircuits.generator.random_circuit` with seed-drawn size
parameters) and any oracle-private instances (the comparison-unit oracle
derives its spec from the seed directly).  Every requested oracle runs on
every case; a violation triggers counterexample shrinking (the predicate
being "the same oracle still fails on this circuit") and, when an artifact
directory is configured, a deterministic JSON repro dump.

Budgets are either a fixed seed count (reproducible CI smoke runs) or a
wall-clock allowance (long local campaigns); both walk the same seed
sequence ``seed_base, seed_base + 1, ...`` so a time-budgeted run's
failures can be re-run by seed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..benchcircuits.generator import DEFAULT_GATE_MIX, random_circuit
from ..netlist import Circuit, GateType
from .artifact import ReproArtifact, write_artifact
from .oracles import Oracle, Violation, default_oracles
from .shrink import ShrinkResult, shrink_circuit


@dataclass(frozen=True)
class FuzzConfig:
    """Size envelope for generated fuzz circuits."""

    min_inputs: int = 3
    max_inputs: int = 8
    min_gates: int = 6
    max_gates: int = 30
    max_outputs: int = 3

    def __post_init__(self) -> None:
        if not 2 <= self.min_inputs <= self.max_inputs:
            raise ValueError("need 2 <= min_inputs <= max_inputs")
        if not 1 <= self.min_gates <= self.max_gates:
            raise ValueError("need 1 <= min_gates <= max_gates")
        if self.max_outputs < 1:
            raise ValueError("need at least one output")


#: The generator's ISCAS-like mix omits XNOR entirely; a fuzzer must
#: exercise every evaluable gate type, so it gets its own mix.
FUZZ_GATE_MIX = tuple(DEFAULT_GATE_MIX) + ((GateType.XNOR, 2),)


def generate_case(seed: int, config: FuzzConfig = FuzzConfig()) -> Circuit:
    """The deterministic random circuit for one fuzz seed."""
    rng = random.Random((seed << 16) ^ 0xF022)
    n_inputs = rng.randint(config.min_inputs, config.max_inputs)
    n_gates = rng.randint(config.min_gates, config.max_gates)
    n_outputs = rng.randint(1, config.max_outputs)
    return random_circuit(
        f"fuzz{seed}",
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        n_gates=n_gates,
        seed=seed,
        gate_mix=FUZZ_GATE_MIX,
    )


@dataclass
class FuzzFinding:
    """A violation plus its shrink outcome and artifact location."""

    violation: Violation
    shrink: Optional[ShrinkResult] = None
    artifact_path: Optional[str] = None

    @property
    def shrunk_circuit(self) -> Optional[Circuit]:
        """The minimized witness (None for seed-only violations)."""
        if self.shrink is not None:
            return self.shrink.circuit
        return self.violation.circuit


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seeds_run: int = 0
    checks_run: Dict[str, int] = field(default_factory=dict)
    findings: List[FuzzFinding] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no oracle reported a violation."""
        return not self.findings

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        checks = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.checks_run.items())
        )
        lines = [
            f"fuzz: {self.seeds_run} seed(s), checks [{checks}] "
            f"in {self.elapsed_seconds:.1f}s — "
            + ("no violations" if self.ok
               else f"{len(self.findings)} VIOLATION(S)")
        ]
        for f in self.findings:
            lines.append("  " + f.violation.describe())
            if f.shrink is not None:
                lines.append(
                    f"    shrunk {f.shrink.original_gates} -> "
                    f"{f.shrink.shrunk_gates} gates "
                    f"({f.shrink.steps_taken} steps)"
                )
            if f.artifact_path:
                lines.append(f"    repro: {f.artifact_path}")
        return "\n".join(lines)


def _shrink_violation(
    oracle: Oracle, seed: int, violation: Violation
) -> Optional[ShrinkResult]:
    if violation.circuit is None or not oracle.uses_circuit:
        return None

    def still_fails(candidate: Circuit) -> bool:
        return bool(oracle.check_circuit(candidate, seed))

    return shrink_circuit(violation.circuit, still_fails)


def run_fuzz(
    oracles: Optional[Sequence[Oracle]] = None,
    seeds: Optional[int] = None,
    seconds: Optional[float] = None,
    seed_base: int = 0,
    config: FuzzConfig = FuzzConfig(),
    artifact_dir: Optional[str] = None,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run the differential fuzzer.

    Parameters
    ----------
    oracles:
        Oracle instances to run (default: the full standard set).
    seeds, seconds:
        The budget — a fixed number of seeds, a wall-clock allowance, or
        both (whichever is exhausted first).  At least one is required.
    seed_base:
        First seed of the walked sequence.
    config:
        Size envelope for generated circuits.
    artifact_dir:
        When given, every finding is persisted there as a JSON repro.
    shrink:
        Delta-debug circuit-carrying violations before reporting.
    progress:
        Optional sink for per-finding progress lines.
    """
    if seeds is None and seconds is None:
        raise ValueError("need a budget: seeds=N and/or seconds=S")
    if oracles is None:
        oracles = default_oracles()

    report = FuzzReport()
    start = time.monotonic()
    seed = seed_base
    while True:
        if seeds is not None and report.seeds_run >= seeds:
            break
        if seconds is not None and time.monotonic() - start >= seconds:
            break
        circuit = generate_case(seed, config)
        for oracle in oracles:
            report.checks_run[oracle.name] = (
                report.checks_run.get(oracle.name, 0) + 1
            )
            if oracle.uses_circuit:
                violations = oracle.check_circuit(circuit, seed)
            else:
                violations = oracle.check_seed(seed)
            for violation in violations:
                shrunk = (
                    _shrink_violation(oracle, seed, violation)
                    if shrink else None
                )
                finding = FuzzFinding(violation=violation, shrink=shrunk)
                if artifact_dir is not None:
                    artifact = ReproArtifact.from_violation(violation)
                    if shrunk is not None:
                        artifact.circuit = shrunk.circuit
                    finding.artifact_path = write_artifact(
                        artifact, artifact_dir
                    )
                report.findings.append(finding)
                if progress is not None:
                    progress(finding.violation.describe())
        report.seeds_run += 1
        seed += 1
    report.elapsed_seconds = time.monotonic() - start
    return report
