"""Naive scalar reference interpreter — the slow engine everyone trusts.

The packed simulator in :mod:`repro.sim.logicsim` is the project's hot path,
and hot paths are where bugs hide.  This module provides a deliberately
boring second opinion: one pattern at a time, one gate at a time, evaluated
through :func:`repro.netlist.types.eval_gate` (the written-down single-bit
semantics of every gate type).  There is no packing, no masking, no
event-driven anything — nothing to get wrong, which is exactly the point.

The evaluator is injectable so the differential oracles can *prove they
would notice* an engine bug: :func:`buggy_gate_eval` builds an evaluator
that silently misreads one gate type as another, and the fuzz driver's
``--inject`` mode checks that the sim oracle catches it and that the
shrinker reduces the witness circuit to a handful of gates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import Circuit, GateType
from ..netlist.types import eval_gate

#: Signature of a scalar gate evaluator: (gtype, fanin values) -> 0/1.
GateEval = Callable[[GateType, Tuple[int, ...]], int]

#: Exhaustive reference extraction is bounded well below the packed
#: simulator's own MAX_TT_INPUTS: the scalar engine is O(2^n * gates).
MAX_REF_INPUTS = 12


def ref_simulate_pattern(
    circuit: Circuit,
    assignment: Mapping[str, int],
    gate_eval: GateEval = eval_gate,
) -> Dict[str, int]:
    """Evaluate every net on one scalar input assignment.

    Missing inputs default to 0, matching the packed simulator's contract.
    """
    values: Dict[str, int] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        if gate.gtype is GateType.INPUT:
            values[net] = assignment.get(net, 0) & 1
        else:
            values[net] = gate_eval(
                gate.gtype, tuple(values[f] for f in gate.fanins)
            )
    return values


def ref_output_vector(
    circuit: Circuit,
    assignment: Mapping[str, int],
    gate_eval: GateEval = eval_gate,
) -> List[int]:
    """Primary-output values (declaration order) on one assignment."""
    values = ref_simulate_pattern(circuit, assignment, gate_eval)
    return [values[o] for o in circuit.outputs]


def ref_truth_tables(
    circuit: Circuit,
    input_order: Optional[Sequence[str]] = None,
    gate_eval: GateEval = eval_gate,
) -> Dict[str, int]:
    """Truth table of every primary output by exhaustive scalar evaluation.

    Same bitmask convention as :func:`repro.sim.truthtable.truth_tables`
    (bit ``m`` is the value on the minterm of decimal value ``m``, inputs
    MSB-first), so results from the two engines compare directly.
    """
    inputs = list(input_order) if input_order else circuit.inputs
    if set(inputs) != set(circuit.inputs):
        raise ValueError("input_order must be a permutation of circuit inputs")
    n = len(inputs)
    if n > MAX_REF_INPUTS:
        raise ValueError(f"{n} inputs exceeds MAX_REF_INPUTS={MAX_REF_INPUTS}")
    tables: Dict[str, int] = {o: 0 for o in circuit.output_set}
    for m in range(1 << n):
        assignment = {
            name: (m >> (n - i - 1)) & 1 for i, name in enumerate(inputs)
        }
        values = ref_simulate_pattern(circuit, assignment, gate_eval)
        for o in tables:
            if values[o]:
                tables[o] |= 1 << m
    return tables


def buggy_gate_eval(victim: GateType, impostor: GateType) -> GateEval:
    """An evaluator that misreads *victim* gates as *impostor* gates.

    Used by the fuzzer's self-test (``repro fuzz --inject``): running the
    differential sim oracle against this evaluator must produce a violation
    whenever the generated circuit exercises the victim type, and the
    shrunk witness is (near-)minimal — typically a single victim gate.
    """
    if victim is impostor:
        raise ValueError("victim and impostor must differ")

    def evaluate(gtype: GateType, values: Tuple[int, ...]) -> int:
        if gtype is victim:
            gtype = impostor
        return eval_gate(gtype, values)

    return evaluate
