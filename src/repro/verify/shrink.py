"""Delta-debugging counterexample shrinker for failing circuits.

Given a circuit on which some predicate (``fails``) holds — in practice
"this oracle still reports a violation" — the shrinker greedily applies
semantic simplifications that keep the predicate true, until a fixpoint:

* drop primary outputs (try each single-output projection first);
* replace a gate by a constant (``CONST0``/``CONST1``);
* replace a gate by a buffer of one of its fanins;
* drop one fanin of a wide (``> 2``-input) gate;
* remove primary inputs nothing reads.

Every accepted step is followed by a dead-logic sweep, so the result is a
small, fully live witness.  The search order is deterministic (reverse
topological, candidate order fixed), which keeps repro artifacts stable
across runs.  Predicates that raise on a mutated circuit are treated as
"does not reproduce" — mutations can build structurally legal circuits the
predicate's engines reject, and those are simply not taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..netlist import Circuit, Gate, GateType

#: A predicate deciding whether the failure of interest still reproduces.
FailsPredicate = Callable[[Circuit], bool]


@dataclass
class ShrinkResult:
    """The shrunk circuit plus bookkeeping about the search."""

    circuit: Circuit
    original_gates: int
    shrunk_gates: int
    steps_taken: int
    candidates_tried: int

    @property
    def reduction(self) -> int:
        """Logic gates removed by shrinking."""
        return self.original_gates - self.shrunk_gates


def _safe_fails(fails: FailsPredicate, circuit: Circuit) -> bool:
    try:
        circuit.validate()
        return bool(fails(circuit))
    except Exception:
        return False


def _gate_candidates(circuit: Circuit, net: str) -> List[Gate]:
    """Simpler replacement gates for the driver of *net*, in fixed order."""
    gate = circuit.gate(net)
    candidates: List[Gate] = [
        Gate(net, GateType.CONST0, ()),
        Gate(net, GateType.CONST1, ()),
    ]
    seen = set()
    for f in gate.fanins:
        if f not in seen and f != net:
            seen.add(f)
            candidates.append(Gate(net, GateType.BUF, (f,)))
    if len(gate.fanins) > 2:
        for i in range(len(gate.fanins)):
            fanins = gate.fanins[:i] + gate.fanins[i + 1:]
            candidates.append(Gate(net, gate.gtype, fanins))
    return candidates


def _try_outputs(
    work: Circuit, fails: FailsPredicate
) -> Optional[Circuit]:
    """Try to project the circuit onto a single failing output."""
    if len(work.outputs) <= 1:
        return None
    for out in work.outputs:
        cand = work.copy()
        cand.set_outputs([out])
        cand.sweep()
        if _safe_fails(fails, cand):
            return cand
    return None


def shrink_circuit(
    circuit: Circuit,
    fails: FailsPredicate,
    max_steps: int = 10_000,
) -> ShrinkResult:
    """Minimize *circuit* while *fails* keeps holding.

    The original circuit is not mutated.  ``fails(circuit)`` must be true
    on entry; otherwise the circuit is returned unshrunk.
    """
    original_gates = len(circuit.logic_gates())
    if not _safe_fails(fails, circuit):
        return ShrinkResult(circuit.copy(), original_gates,
                            original_gates, 0, 0)

    work = circuit.copy(f"{circuit.name}.shrunk")
    steps = 0
    tried = 0
    changed = True
    while changed and steps < max_steps:
        changed = False

        projected = _try_outputs(work, fails)
        tried += 1
        if projected is not None:
            projected.name = work.name
            work = projected
            steps += 1
            changed = True

        for net in reversed(work.topological_order()):
            if steps >= max_steps:
                break
            if not work.has_net(net):
                continue  # swept away by an earlier accepted step
            if work.gate(net).gtype in (GateType.INPUT, GateType.CONST0,
                                        GateType.CONST1):
                continue
            for candidate in _gate_candidates(work, net):
                if candidate == work.gate(net):
                    continue  # no-op; accepting it would loop forever
                tried += 1
                cand = work.copy()
                cand.replace_gate(candidate)
                cand.sweep()
                if _safe_fails(fails, cand):
                    cand.name = work.name
                    work = cand
                    steps += 1
                    changed = True
                    break

        # Bypass buffers: BUF gates are what gate-level replacement leaves
        # behind; substituting readers (or the output list) through them is
        # the only way to actually delete a net.
        for net in reversed(work.topological_order()):
            if steps >= max_steps:
                break
            if not work.has_net(net):
                continue
            gate = work.gate(net)
            if gate.gtype is not GateType.BUF:
                continue
            cand = work.copy()
            if net in cand.output_set:
                cand.set_outputs([
                    gate.fanins[0] if o == net else o for o in cand.outputs
                ])
            else:
                cand.substitute_net(net, gate.fanins[0])
            cand.sweep()
            tried += 1
            if _safe_fails(fails, cand):
                cand.name = work.name
                work = cand
                steps += 1
                changed = True

        # Dead primary inputs: removing them needs no re-check of the
        # predicate's semantics, but the predicate may *depend* on the
        # interface, so it is re-run like any other step.
        for pi in list(work.inputs):
            if work.fanouts(pi) or pi in work.output_set:
                continue
            cand = work.copy()
            cand.remove_gate(pi)
            tried += 1
            if _safe_fails(fails, cand):
                work = cand
                steps += 1
                changed = True

    return ShrinkResult(
        circuit=work,
        original_gates=original_gates,
        shrunk_gates=len(work.logic_gates()),
        steps_taken=steps,
        candidates_tried=tried,
    )
