"""Differential oracles: independent engines cross-checking each other.

Each oracle encodes one correctness invariant of the codebase as an
executable check over a (usually randomly generated) instance:

``sim``
    The packed bit-parallel simulator, the exhaustive truth-table extractor
    and the naive scalar reference interpreter must agree on every net of
    every circuit (three implementations of the same semantics).
``fault``
    :meth:`repro.faults.fsim.FaultSimulator.detection_word` — event-driven
    single-fault propagation — must agree with brute force: structurally
    inject the stuck-at fault into a copy of the circuit and resimulate it
    whole, comparing primary outputs.
``resynth``
    Procedures 2 and 3 must preserve circuit function; the PODEM miter of
    :func:`repro.netlist.equivalence.formally_equivalent` is the judge
    (with the procedures' own inline random verification switched *off*,
    so the check is genuinely independent).
``unit``
    A comparison unit built for a random spec ``(n, L, U, complement)``
    must realize exactly the interval ON-set, have at most two paths from
    any input to the output (Section 3.1), and its generated robust
    path-delay tests must cover every path delay fault of the unit under
    hazard-aware robust detection (Section 3.3).
``incremental``
    The incrementally maintained circuit caches (fanout map, topological
    orders, levels) and the :class:`~repro.analysis.AnalysisSession` path
    labels must equal independent from-scratch rebuilds after *every*
    mutation of a seeded random mutation sequence applied to the fuzz
    circuit (:mod:`repro.netlist.incremental` provides the ground-truth
    rebuilds).
``parallel``
    Procedures 2 and 3 run with ``jobs=1`` and with a worker pool
    (``jobs=2``) must produce bit-identical reports *and* bit-identical
    result netlists — the :mod:`repro.parallel` determinism contract,
    checked with the shared identification cache cleared between runs so
    the parallel run genuinely consumes worker-computed results.
``resume``
    A sweep killed after a random pass and resumed from its serialized
    checkpoint must produce a report and a result netlist bit-identical
    to the uninterrupted run — the checkpoint/resume contract of
    :mod:`repro.service` (docs/SERVICE.md), checked with the
    identification cache cleared before the resumed leg so it is as cold
    as a genuinely restarted worker process.
``memo``
    Procedures 2 and 3 assisted by the persistent identification cache
    (:mod:`repro.memo`) — recording cold, replaying warm, replaying
    after a JSON round-trip of every entry file, under ``jobs=2`` and
    resumed from a checkpoint — must all be bit-identical to a memo-less
    baseline (docs/MEMO.md: the store may only change the wall clock).

Violations carry enough context to reproduce: the seed, a message, the
offending circuit (when one exists) and structured details.  The fuzz
driver in :mod:`repro.verify.fuzz` shrinks circuit-carrying violations and
persists them as JSON artifacts (:mod:`repro.verify.artifact`).
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..comparison import (
    ComparisonSpec,
    build_unit,
    robust_tests_for_unit,
    unit_cost,
)
from ..faults import FaultSimulator, StuckFault, fault_universe
from ..netlist import (
    Circuit,
    CircuitError,
    Gate,
    GateType,
    MULTI_INPUT_TYPES,
    UNARY_TYPES,
    is_valid_topological_order,
    scratch_fanout_map,
    scratch_levels,
    scratch_path_labels,
    scratch_topological_order,
)
from ..netlist.equivalence import EquivalenceStatus, formally_equivalent
from ..pdf import RobustCriterion, robust_faults_detected, simulate_pair
from ..analysis import AnalysisSession, enumerate_paths
from ..sim.logicsim import simulate
from ..sim.patterns import pattern_bits, random_words
from ..sim.truthtable import truth_tables
from .refsim import (
    GateEval,
    ref_output_vector,
    ref_simulate_pattern,
    ref_truth_tables,
)
from ..netlist.types import eval_gate


@dataclass
class Violation:
    """One oracle failure: an instance on which two engines disagreed."""

    oracle: str
    seed: int
    message: str
    circuit: Optional[Circuit] = None
    details: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line human-readable summary."""
        where = f" on {self.circuit.name}" if self.circuit is not None else ""
        return f"[{self.oracle}] seed={self.seed}{where}: {self.message}"


class Oracle:
    """Base class: a named differential check.

    Circuit oracles implement :meth:`check_circuit`; instance-generating
    oracles (``uses_circuit = False``) implement :meth:`check_seed` and
    ignore the fuzz driver's shared random circuit.
    """

    name: str = "oracle"
    uses_circuit: bool = True

    def check_circuit(self, circuit: Circuit, seed: int) -> List[Violation]:
        """Run the check on *circuit*; return all violations found."""
        raise NotImplementedError

    def check_seed(self, seed: int) -> List[Violation]:
        """Run the check on an instance derived from *seed* alone."""
        raise NotImplementedError


# --------------------------------------------------------------------- #
# sim: packed simulator vs scalar reference vs truth tables
# --------------------------------------------------------------------- #


class SimulatorOracle(Oracle):
    """Cross-check the three value-computation engines.

    For circuits with at most :attr:`exhaustive_inputs` inputs the check is
    exhaustive (every minterm, every net); larger circuits get a seeded
    random batch with per-pattern scalar replay.  ``gate_eval`` injects the
    scalar semantics — the fuzzer's ``--inject`` self-test passes a
    deliberately corrupted evaluator here to prove the oracle has teeth.
    """

    name = "sim"

    def __init__(
        self,
        gate_eval: GateEval = eval_gate,
        exhaustive_inputs: int = 10,
        random_patterns: int = 64,
    ) -> None:
        self._eval = gate_eval
        self._exhaustive_inputs = exhaustive_inputs
        self._random_patterns = random_patterns

    def check_circuit(self, circuit: Circuit, seed: int) -> List[Violation]:
        n = len(circuit.inputs)
        if n <= self._exhaustive_inputs:
            return self._check_exhaustive(circuit, seed)
        return self._check_random(circuit, seed)

    def _check_exhaustive(self, circuit: Circuit, seed: int) -> List[Violation]:
        packed = truth_tables(circuit)  # packed simulate, exhaustive words
        scalar = ref_truth_tables(circuit, gate_eval=self._eval)
        for out in sorted(circuit.output_set):
            if packed[out] != scalar[out]:
                bit = (packed[out] ^ scalar[out])
                minterm = (bit & -bit).bit_length() - 1
                return [Violation(
                    self.name, seed,
                    f"packed vs scalar truth-table mismatch on output "
                    f"{out!r} (first differing minterm {minterm})",
                    circuit=circuit,
                    details={
                        "output": out,
                        "minterm": minterm,
                        "packed_table": packed[out],
                        "scalar_table": scalar[out],
                    },
                )]
        return []

    def _check_random(self, circuit: Circuit, seed: int) -> List[Violation]:
        rng = random.Random((seed << 16) ^ 0x51A0)
        n_pat = self._random_patterns
        words = random_words(circuit.inputs, n_pat, rng)
        packed = simulate(circuit, words, n_pat)
        for p in range(n_pat):
            assignment = pattern_bits(words, circuit.inputs, p)
            scalar = ref_simulate_pattern(circuit, assignment, self._eval)
            for net in circuit.topological_order():
                if ((packed[net] >> p) & 1) != scalar[net]:
                    return [Violation(
                        self.name, seed,
                        f"packed vs scalar mismatch on net {net!r} "
                        f"(pattern {p})",
                        circuit=circuit,
                        details={"net": net, "assignment": assignment},
                    )]
        return []


# --------------------------------------------------------------------- #
# fault: event-driven fault sim vs explicit fault injection
# --------------------------------------------------------------------- #


def inject_stuck_fault(
    circuit: Circuit, fault: StuckFault
) -> Tuple[Circuit, List[str]]:
    """Build the faulty machine for *fault* by explicit structural mutation.

    Returns ``(faulty_circuit, faulty_outputs)`` where ``faulty_outputs``
    lists the nets to read as primary outputs, positionally aligned with
    the good circuit's ``outputs`` (names may differ when the fault sits on
    a primary input that is also a primary output).
    """
    faulty = circuit.copy(f"{circuit.name}#{fault.describe()}")
    const = faulty.fresh_net("__sa_")
    faulty.add_gate(
        const, GateType.CONST1 if fault.value else GateType.CONST0, ()
    )
    outputs = list(faulty.outputs)
    if fault.is_branch:
        reader = faulty.gate(fault.reader)
        fanins = tuple(
            const if i == fault.pin else f
            for i, f in enumerate(reader.fanins)
        )
        faulty.replace_gate(reader.with_fanins(fanins))
    else:
        gate = faulty.gate(fault.net)
        if gate.gtype is GateType.INPUT:
            # An input net cannot change type; reroute its readers instead
            # and substitute it in the output list when it is also a PO.
            for r in set(faulty.fanouts(fault.net)):
                faulty.rewire_fanin(r, fault.net, const)
            outputs = [const if o == fault.net else o for o in outputs]
        else:
            faulty.replace_gate(Gate(
                fault.net,
                GateType.CONST1 if fault.value else GateType.CONST0,
                (),
            ))
    faulty.validate()
    return faulty, outputs


class FaultSimOracle(Oracle):
    """Event-driven fault propagation vs whole-circuit resimulation.

    For a sample of the collapsed fault universe, the packed
    :meth:`~repro.faults.fsim.FaultSimulator.detection_word` must equal the
    mask computed by simulating the explicitly mutated faulty circuit and
    comparing primary outputs pattern by pattern.
    """

    name = "fault"

    def __init__(self, n_patterns: int = 64, max_faults: int = 48) -> None:
        self._n_patterns = n_patterns
        self._max_faults = max_faults

    def check_circuit(self, circuit: Circuit, seed: int) -> List[Violation]:
        rng = random.Random((seed << 16) ^ 0xFA17)
        faults = fault_universe(circuit)
        if len(faults) > self._max_faults:
            faults = rng.sample(faults, self._max_faults)
        n_pat = self._n_patterns
        words = random_words(circuit.inputs, n_pat, rng)
        fsim = FaultSimulator(circuit)
        good = fsim.good_values(words, n_pat)
        good_out = [good[o] for o in circuit.outputs]
        for fault in faults:
            packed_mask = fsim.detection_word(fault, good, n_pat)
            brute_mask = self._brute_force_mask(
                circuit, fault, words, n_pat, good_out
            )
            if packed_mask != brute_mask:
                return [Violation(
                    self.name, seed,
                    f"detection mask mismatch for {fault.describe()}: "
                    f"event-driven {packed_mask:#x} vs brute-force "
                    f"{brute_mask:#x}",
                    circuit=circuit,
                    details={
                        "fault": {
                            "net": fault.net,
                            "value": fault.value,
                            "reader": fault.reader,
                            "pin": fault.pin,
                        },
                        "packed_mask": packed_mask,
                        "brute_mask": brute_mask,
                    },
                )]
        return []

    def _brute_force_mask(
        self,
        circuit: Circuit,
        fault: StuckFault,
        words,
        n_patterns: int,
        good_out: Sequence[int],
    ) -> int:
        faulty, faulty_outputs = inject_stuck_fault(circuit, fault)
        # The faulty circuit keeps the good circuit's input list: stuck
        # inputs stay declared (their readers were rerouted).
        values = simulate(faulty, words, n_patterns)
        mask = 0
        for g, o in zip(good_out, faulty_outputs):
            mask |= g ^ values[o]
        return mask


# --------------------------------------------------------------------- #
# resynth: Procedures 2/3 vs the formal miter
# --------------------------------------------------------------------- #


class ResynthOracle(Oracle):
    """Function preservation of the resynthesis procedures.

    Runs Procedure 2 and Procedure 3 with their inline random verification
    disabled, then formally compares the result against the original via
    the PODEM miter.  ``DIFFERENT`` is a violation; ``UNDECIDED`` (PODEM
    abort) is recorded but not failed — on fuzz-sized circuits the budget
    is never the binding constraint.
    """

    name = "resynth"

    def __init__(
        self,
        k: int = 4,
        perm_budget: int = 24,
        max_passes: int = 3,
        max_inputs: int = 10,
        max_backtracks: int = 50_000,
    ) -> None:
        self._k = k
        self._perm_budget = perm_budget
        self._max_passes = max_passes
        self._max_inputs = max_inputs
        self._max_backtracks = max_backtracks
        self.undecided = 0  # observability for fuzz reports/tests

    def check_circuit(self, circuit: Circuit, seed: int) -> List[Violation]:
        from ..resynth import procedure2, procedure3

        if len(circuit.inputs) > self._max_inputs:
            return []
        violations: List[Violation] = []
        for proc in (procedure2, procedure3):
            report = proc(
                circuit,
                k=self._k,
                perm_budget=self._perm_budget,
                seed=seed,
                max_passes=self._max_passes,
                verify_patterns=0,
            )
            verdict = formally_equivalent(
                circuit, report.circuit,
                max_backtracks=self._max_backtracks, seed=seed,
            )
            if verdict.status is EquivalenceStatus.DIFFERENT:
                violations.append(Violation(
                    self.name, seed,
                    f"{proc.__name__} changed the function "
                    f"({report.summary()})",
                    circuit=circuit,
                    details={
                        "procedure": proc.__name__,
                        "counterexample": verdict.counterexample,
                        "replacements": report.replacements,
                    },
                ))
            elif verdict.status is EquivalenceStatus.UNDECIDED:
                self.undecided += 1
        return violations


def netlist_dump(circuit: Circuit):
    """A bit-comparable structural dump (topo-ordered gates + outputs).

    Two circuits with equal dumps are gate-for-gate, name-for-name,
    order-for-order identical — the comparison the ``parallel`` and
    ``resume`` determinism oracles run on result netlists.
    """
    return (
        [
            (net, circuit.gate(net).gtype.value,
             tuple(circuit.gate(net).fanins))
            for net in circuit.topological_order()
        ],
        list(circuit.outputs),
    )


# --------------------------------------------------------------------- #
# parallel: serial sweep vs worker-pool sweep
# --------------------------------------------------------------------- #


class ParallelOracle(Oracle):
    """Backend equivalence of the resynthesis procedures.

    Runs Procedures 2 and 3 on every fan-out path against the ``jobs=1``
    serial reference — a local worker pool (``jobs=2``) and, when
    enabled, a :class:`~repro.fabric.RemoteFabric` over a real
    in-process service server at pinned shard counts 1 and 2 — and
    requires the reports and the resulting netlists to agree bit for bit
    (the :mod:`repro.parallel` / :mod:`repro.fabric` determinism
    contract; docs/FABRIC.md).  The process-global identification cache
    is cleared before each run: without that, the serial run would
    pre-answer every question the workers are supposed to answer, and a
    wrong worker-side result could never be observed.

    The remote legs cross the full JSON wire (``POST /tasks`` on a
    ``task_workers=1`` server), so the oracle also fuzzes the codecs of
    :mod:`repro.fabric.tasks` with generated circuits.
    """

    name = "parallel"

    def __init__(
        self,
        k: int = 4,
        perm_budget: int = 24,
        max_passes: int = 2,
        max_inputs: int = 8,
        jobs: int = 2,
        remote: bool = True,
        remote_shards: Tuple[int, ...] = (1, 2),
    ) -> None:
        self._k = k
        self._perm_budget = perm_budget
        self._max_passes = max_passes
        self._max_inputs = max_inputs
        self._jobs = jobs
        self._remote = remote
        self._remote_shards = tuple(remote_shards)
        self._server = None

    def _server_url(self) -> str:
        """One lazily started task server shared by every remote leg."""
        if self._server is None:
            import tempfile

            from ..service import ArtifactStore, ServiceServer

            root = tempfile.mkdtemp(prefix="repro-fuzz-fabric-")
            self._server = ServiceServer(ArtifactStore(root),
                                         task_workers=1)
            self._server.start()
        return self._server.url

    def _legs(self):
        """``(label, procedure-kwargs factory)`` per non-reference leg."""
        legs = [(f"jobs={self._jobs}", lambda: {"jobs": self._jobs})]
        if self._remote:
            from ..fabric.remote import RemoteFabric

            for shards in self._remote_shards:
                legs.append((
                    f"remote shards={shards}",
                    lambda shards=shards: {"fabric": RemoteFabric(
                        [self._server_url()], shards=shards,
                        heartbeat_timeout=60.0)},
                ))
        return legs

    def check_circuit(self, circuit: Circuit, seed: int) -> List[Violation]:
        from ..comparison import identification_cache
        from ..resynth import procedure2, procedure3

        if len(circuit.inputs) > self._max_inputs:
            return []
        violations: List[Violation] = []
        common = dict(
            k=self._k,
            perm_budget=self._perm_budget,
            seed=seed,
            max_passes=self._max_passes,
            verify_patterns=0,
        )
        numbers = (
            "passes", "replacements", "gates_before", "gates_after",
            "paths_before", "paths_after",
        )
        for proc in (procedure2, procedure3):
            identification_cache().clear()
            serial = proc(circuit, **common)
            for label, make_kwargs in self._legs():
                identification_cache().clear()
                kwargs = make_kwargs()
                fabric = kwargs.get("fabric")
                try:
                    leg = proc(circuit, **common, **kwargs)
                finally:
                    if fabric is not None:
                        fabric.close()
                diverged = [
                    f for f in numbers
                    if getattr(serial, f) != getattr(leg, f)
                ]
                if not diverged and (
                    netlist_dump(serial.circuit)
                    != netlist_dump(leg.circuit)
                ):
                    diverged = ["netlist"]
                if diverged:
                    violations.append(Violation(
                        self.name, seed,
                        f"{proc.__name__} diverged between jobs=1 and "
                        f"{label} on: {', '.join(diverged)} "
                        f"(serial: {serial.summary()}; "
                        f"{label}: {leg.summary()})",
                        circuit=circuit,
                        details={
                            "procedure": proc.__name__,
                            "diverged": diverged,
                            "leg": label,
                            "serial": {
                                f: getattr(serial, f) for f in numbers
                            },
                            label: {f: getattr(leg, f) for f in numbers},
                        },
                    ))
            identification_cache().clear()
        return violations


# --------------------------------------------------------------------- #
# resume: straight-through sweep vs kill-at-a-pass + checkpoint resume
# --------------------------------------------------------------------- #


class ResumeOracle(Oracle):
    """Checkpoint/resume equivalence of the resynthesis procedures.

    Runs Procedures 2 and 3 straight through while collecting every
    pass-boundary checkpoint, then simulates a worker killed after a
    seed-chosen pass: the checkpoint is round-tripped through its JSON
    serialization (so the oracle also fuzzes
    :mod:`repro.resynth.serialize`), the process-global identification
    cache is cleared (a restarted worker is cold), and the run is
    resumed.  The resumed report must match the uninterrupted one on
    every deterministic field and the result netlists must agree bit for
    bit — the contract that makes the job service's crash recovery
    invisible in its results (docs/SERVICE.md).
    """

    name = "resume"

    def __init__(
        self,
        k: int = 4,
        perm_budget: int = 24,
        max_passes: int = 3,
        max_inputs: int = 8,
    ) -> None:
        self._k = k
        self._perm_budget = perm_budget
        self._max_passes = max_passes
        self._max_inputs = max_inputs

    def check_circuit(self, circuit: Circuit, seed: int) -> List[Violation]:
        from ..comparison import identification_cache
        from ..resynth import (
            REPORT_NUMBER_FIELDS,
            checkpoint_from_json,
            checkpoint_to_json,
            procedure2,
            procedure3,
        )

        if len(circuit.inputs) > self._max_inputs:
            return []
        violations: List[Violation] = []
        rng = random.Random((seed << 16) ^ 0x2E5E)
        for proc in (procedure2, procedure3):
            checkpoints = []
            identification_cache().clear()
            straight = proc(
                circuit,
                k=self._k,
                perm_budget=self._perm_budget,
                seed=seed,
                max_passes=self._max_passes,
                verify_patterns=0,
                on_pass=checkpoints.append,
            )
            if not checkpoints:
                continue  # cannot happen (>=1 pass always runs); defensive
            kill_after = rng.choice(checkpoints)
            restored = checkpoint_from_json(checkpoint_to_json(kill_after))
            identification_cache().clear()
            resumed = proc(
                circuit,
                k=self._k,
                perm_budget=self._perm_budget,
                seed=seed,
                max_passes=self._max_passes,
                verify_patterns=0,
                resume=restored,
            )
            identification_cache().clear()
            diverged = [
                f for f in REPORT_NUMBER_FIELDS
                if getattr(straight, f) != getattr(resumed, f)
            ]
            if not diverged and (
                netlist_dump(straight.circuit)
                != netlist_dump(resumed.circuit)
            ):
                diverged = ["netlist"]
            if diverged:
                violations.append(Violation(
                    self.name, seed,
                    f"{proc.__name__} diverged after resume from the "
                    f"pass-{kill_after.pass_no} checkpoint on: "
                    f"{', '.join(diverged)} "
                    f"(straight: {straight.summary()}; "
                    f"resumed: {resumed.summary()})",
                    circuit=circuit,
                    details={
                        "procedure": proc.__name__,
                        "diverged": diverged,
                        "killed_after_pass": kill_after.pass_no,
                        "straight": {
                            f: getattr(straight, f)
                            for f in REPORT_NUMBER_FIELDS
                        },
                        "resumed": {
                            f: getattr(resumed, f)
                            for f in REPORT_NUMBER_FIELDS
                        },
                    },
                ))
        return violations


# --------------------------------------------------------------------- #
# memo: cold sweep vs persistent-identification-cache sweep
# --------------------------------------------------------------------- #


class MemoOracle(Oracle):
    """Cached ≡ cold equivalence of the persistent identification memo.

    For Procedures 2 and 3, a memo-less baseline run is compared bit for
    bit (every :data:`~repro.resynth.REPORT_NUMBER_FIELDS` entry plus the
    result netlist) against five memo-assisted runs on one shared
    :class:`repro.memo.MemoStore` directory:

    1. ``cold`` — an empty store being *written* (recording must not
       perturb the sweep);
    2. ``warm`` — a fresh store instance over the now-populated
       directory (every identification answered from disk); the oracle
       also demands a nonzero hit count, so a silently dead cache cannot
       pass;
    3. ``roundtrip`` — warm again, after every entry file is re-parsed
       and re-serialized with different JSON formatting (the store's
       value encoding must survive the round trip exactly);
    4. ``jobs`` — a ``jobs=2`` run over the warm store (the parallel
       primer consults the memo before shipping searches);
    5. ``resume`` — a warm-store run resumed from a seed-chosen
       pass-boundary checkpoint of the baseline.

    The process-global identification cache is cleared before every leg:
    without that, the in-process tier would pre-answer every question the
    memo is supposed to answer, and a wrong stored result could never be
    observed.
    """

    name = "memo"

    def __init__(
        self,
        k: int = 4,
        perm_budget: int = 24,
        max_passes: int = 2,
        max_inputs: int = 8,
        jobs: int = 2,
    ) -> None:
        self._k = k
        self._perm_budget = perm_budget
        self._max_passes = max_passes
        self._max_inputs = max_inputs
        self._jobs = jobs

    def _run(self, proc, circuit: Circuit, seed: int, **kw):
        from ..comparison import identification_cache

        identification_cache().clear()
        return proc(
            circuit,
            k=self._k,
            perm_budget=self._perm_budget,
            seed=seed,
            max_passes=self._max_passes,
            verify_patterns=0,
            **kw,
        )

    @staticmethod
    def _roundtrip_store(root: str) -> None:
        """Re-serialize every entry file with different formatting."""
        entries = os.path.join(root, "entries")
        for dirpath, _dirs, names in os.walk(entries):
            for fname in names:
                if not fname.endswith(".json"):
                    continue
                path = os.path.join(dirpath, fname)
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh, separators=(",", ":"),
                              sort_keys=False)

    def check_circuit(self, circuit: Circuit, seed: int) -> List[Violation]:
        from ..comparison import identification_cache
        from ..memo import MemoStore
        from ..resynth import REPORT_NUMBER_FIELDS, procedure2, procedure3

        if len(circuit.inputs) > self._max_inputs:
            return []
        violations: List[Violation] = []
        rng = random.Random((seed << 16) ^ 0x3E30)
        for proc in (procedure2, procedure3):
            with tempfile.TemporaryDirectory(prefix="memo-oracle-") as root:
                checkpoints = []
                baseline = self._run(proc, circuit, seed,
                                     on_pass=checkpoints.append)
                cold_store = MemoStore(root)
                legs = [("cold", self._run(
                    proc, circuit, seed, memo=cold_store))]
                warm_store = MemoStore(root)
                legs.append(("warm", self._run(
                    proc, circuit, seed, memo=warm_store)))
                if cold_store.stats.puts and not warm_store.stats.hits:
                    violations.append(Violation(
                        self.name, seed,
                        f"{proc.__name__}: warm store served no hits "
                        f"({cold_store.stats.puts} results were recorded)",
                        circuit=circuit,
                        details={"procedure": proc.__name__,
                                 "puts": cold_store.stats.puts},
                    ))
                self._roundtrip_store(root)
                legs.append(("roundtrip", self._run(
                    proc, circuit, seed, memo=MemoStore(root))))
                legs.append(("jobs", self._run(
                    proc, circuit, seed, memo=MemoStore(root),
                    jobs=self._jobs)))
                if checkpoints:
                    resume_from = rng.choice(checkpoints)
                    legs.append(("resume", self._run(
                        proc, circuit, seed, memo=MemoStore(root),
                        resume=resume_from)))
                identification_cache().clear()
                base_dump = netlist_dump(baseline.circuit)
                for leg, report in legs:
                    diverged = [
                        f for f in REPORT_NUMBER_FIELDS
                        if getattr(baseline, f) != getattr(report, f)
                    ]
                    if not diverged and (
                        netlist_dump(report.circuit) != base_dump
                    ):
                        diverged = ["netlist"]
                    if diverged:
                        violations.append(Violation(
                            self.name, seed,
                            f"{proc.__name__} diverged between the "
                            f"memo-less baseline and the {leg!r} memo leg "
                            f"on: {', '.join(diverged)} "
                            f"(baseline: {baseline.summary()}; "
                            f"{leg}: {report.summary()})",
                            circuit=circuit,
                            details={
                                "procedure": proc.__name__,
                                "leg": leg,
                                "diverged": diverged,
                                "baseline": {
                                    f: getattr(baseline, f)
                                    for f in REPORT_NUMBER_FIELDS
                                },
                                leg: {
                                    f: getattr(report, f)
                                    for f in REPORT_NUMBER_FIELDS
                                },
                            },
                        ))
        return violations


# --------------------------------------------------------------------- #
# sweep: backend/resume equivalence of whole sweep grids + front check
# --------------------------------------------------------------------- #


class SweepOracle(Oracle):
    """Backend, resume and front invariants of :mod:`repro.sweep`.

    Builds a small grid over the fuzz circuit (inline netlist x
    Procedures 2 and 3 x two K values) and runs it through every
    :class:`~repro.sweep.SweepRunner` backend — serial (the reference),
    a process pool, and a :class:`~repro.fabric.RemoteFabric` over a
    real in-process service server (so each ``resynth_cell`` task
    crosses the full JSON wire) — plus a **resume** leg: a finished
    serial sweep with a seed-chosen subset of its cell files deleted,
    re-run with ``resume=True``, which must re-execute exactly the
    deleted cells and nothing else.  Every leg's report rows must agree
    with the reference on :data:`~repro.sweep.SWEEP_ROW_NUMBER_FIELDS`
    and on the front.

    Independently of leg agreement, the reference front itself is
    checked against a from-scratch dominance scan written here (not the
    library's :func:`~repro.sweep.pareto_front`), and one seed-chosen
    cell is re-run as a *standalone* procedure call to pin the cell ==
    job bit-identity contract (docs/SWEEP.md).
    """

    name = "sweep"

    def __init__(
        self,
        ks: Tuple[int, ...] = (3, 4),
        perm_budget: int = 24,
        max_passes: int = 2,
        max_inputs: int = 8,
        remote: bool = True,
    ) -> None:
        self._ks = tuple(ks)
        self._perm_budget = perm_budget
        self._max_passes = max_passes
        self._max_inputs = max_inputs
        self._remote = remote
        self._server = None

    def _server_url(self) -> str:
        """One lazily started task server shared by every remote leg."""
        if self._server is None:
            from ..service import ArtifactStore, ServiceServer

            root = tempfile.mkdtemp(prefix="repro-fuzz-sweep-")
            self._server = ServiceServer(ArtifactStore(root),
                                         task_workers=1)
            self._server.start()
        return self._server.url

    @staticmethod
    def _brute_force_front(rows: List[Dict[str, object]]) -> set:
        """Independent dominance scan (the referee for the front)."""
        front = set()
        for row in rows:
            a = (row["gates_after"], row["paths_after"], row["depth"])
            dominated = False
            for other in rows:
                if other is row:
                    continue
                b = (other["gates_after"], other["paths_after"],
                     other["depth"])
                if b[0] <= a[0] and b[1] <= a[1] and b[2] <= a[2] \
                        and b != a:
                    dominated = True
                    break
            if not dominated:
                front.add(row["cell_id"])
        return front

    def _run_leg(self, spec, root: str, fabric=None, resume: bool = False,
                 on_cell=None):
        from ..comparison import identification_cache
        from ..sweep import SweepRunner

        identification_cache().clear()
        try:
            return SweepRunner(spec, root, fabric=fabric).run(
                resume=resume, on_cell=on_cell)
        finally:
            if fabric is not None:
                fabric.close()

    def check_circuit(self, circuit: Circuit, seed: int) -> List[Violation]:
        import shutil

        from ..comparison import identification_cache
        from ..fabric import ProcessFabric
        from ..io.json_io import circuit_to_json
        from ..service.runner import procedure_call
        from ..sweep import SWEEP_ROW_NUMBER_FIELDS, SweepSpec, cell_row

        if len(circuit.inputs) > self._max_inputs:
            return []
        netlist = json.loads(circuit_to_json(circuit))
        spec = SweepSpec(
            circuits=(netlist,),
            procedures=("procedure2", "procedure3"),
            ks=self._ks,
            seeds=(seed,),
            perm_budget=self._perm_budget,
            max_passes=self._max_passes,
            verify_patterns=0,
        )
        rng = random.Random((seed << 16) ^ 0x53EE)
        violations: List[Violation] = []
        work = tempfile.mkdtemp(prefix="repro-fuzz-sweepdir-")
        try:
            reference = self._run_leg(spec, os.path.join(work, "serial"))
            legs = [("process jobs=2", self._run_leg(
                spec, os.path.join(work, "process"),
                fabric=ProcessFabric(2)))]
            if self._remote:
                from ..fabric.remote import RemoteFabric

                legs.append(("remote shards=2", self._run_leg(
                    spec, os.path.join(work, "remote"),
                    fabric=RemoteFabric([self._server_url()], shards=2,
                                        heartbeat_timeout=60.0))))
            # Resume leg: finish serially, delete a cell subset + the
            # aggregate, re-run with resume=True; only deleted cells may
            # re-execute.
            resume_root = os.path.join(work, "resume")
            self._run_leg(spec, resume_root)
            cells = spec.cells()
            victims = sorted(
                {rng.choice(cells).cell_id for _ in range(2)})
            for cell_id in victims:
                os.unlink(os.path.join(resume_root, "cells",
                                       f"{cell_id}.json"))
            os.unlink(os.path.join(resume_root, "report.json"))
            executed: List[str] = []
            resumed = self._run_leg(
                spec, resume_root, resume=True,
                on_cell=lambda cell, doc: executed.append(cell.cell_id))
            if sorted(executed) != victims:
                violations.append(Violation(
                    self.name, seed,
                    f"resumed sweep re-ran {sorted(executed)} instead of "
                    f"exactly the deleted cells {victims}",
                    circuit=circuit,
                    details={"executed": sorted(executed),
                             "deleted": victims},
                ))
            legs.append(("resumed", resumed))
            # Leg agreement on the deterministic row fields and front.
            ref_rows = {row["cell_id"]: row for row in reference.rows}
            for label, leg in legs:
                for row in leg.rows:
                    ref = ref_rows.get(row["cell_id"])
                    diverged = [
                        f for f in SWEEP_ROW_NUMBER_FIELDS
                        if ref is None or ref[f] != row[f]
                    ]
                    if diverged:
                        violations.append(Violation(
                            self.name, seed,
                            f"sweep cell {row['cell_id']} diverged "
                            f"between serial and {label} on: "
                            f"{', '.join(diverged)}",
                            circuit=circuit,
                            details={"leg": label, "cell": row["cell_id"],
                                     "diverged": diverged,
                                     "serial": ref, label: row},
                        ))
                if leg.front != reference.front:
                    violations.append(Violation(
                        self.name, seed,
                        f"sweep front diverged between serial and "
                        f"{label}: {reference.front} vs {leg.front}",
                        circuit=circuit,
                        details={"leg": label,
                                 "serial": reference.front,
                                 label: leg.front},
                    ))
            # The reference front vs an independent dominance scan.
            for name, front_ids in reference.front.items():
                group = [row for row in reference.rows
                         if row["circuit"] == name]
                expected = self._brute_force_front(group)
                if set(front_ids) != expected:
                    violations.append(Violation(
                        self.name, seed,
                        f"Pareto front of {name!r} disagrees with the "
                        f"brute-force dominance scan: {sorted(front_ids)}"
                        f" vs {sorted(expected)}",
                        circuit=circuit,
                        details={"circuit": name,
                                 "front": sorted(front_ids),
                                 "brute_force": sorted(expected)},
                    ))
            # One cell vs a standalone procedure run (cell == job).
            probe = rng.choice(cells)
            identification_cache().clear()
            from ..service.jobspec import resolve_circuit

            standalone = procedure_call(probe.spec)(
                resolve_circuit(probe.spec))
            from ..resynth.serialize import report_to_doc

            standalone_row = cell_row(probe, report_to_doc(standalone))
            ref = ref_rows[probe.cell_id]
            diverged = [f for f in SWEEP_ROW_NUMBER_FIELDS
                        if ref[f] != standalone_row[f]]
            if diverged:
                violations.append(Violation(
                    self.name, seed,
                    f"sweep cell {probe.cell_id} diverged from the "
                    f"standalone {probe.procedure} run on: "
                    f"{', '.join(diverged)}",
                    circuit=circuit,
                    details={"cell": probe.cell_id, "diverged": diverged,
                             "sweep": ref, "standalone": standalone_row},
                ))
            identification_cache().clear()
        finally:
            shutil.rmtree(work, ignore_errors=True)
        return violations


# --------------------------------------------------------------------- #
# unit: comparison-unit construction invariants
# --------------------------------------------------------------------- #


def spec_from_seed(seed: int, max_n: int = 6) -> ComparisonSpec:
    """Derive a random non-constant comparison spec from a seed."""
    rng = random.Random((seed << 16) ^ 0x0C0C)
    n = rng.randint(2, max_n)
    names = [f"x{i + 1}" for i in range(n)]
    rng.shuffle(names)
    size = 1 << n
    while True:
        lower = rng.randrange(size)
        upper = rng.randrange(lower, size)
        if not (lower == 0 and upper == size - 1):
            break
    return ComparisonSpec(
        tuple(names), lower, upper, complement=rng.random() < 0.5
    )


class ComparisonUnitOracle(Oracle):
    """Section 3 invariants of every comparison-unit construction.

    For the spec derived from the seed: (1) the built unit's truth table
    equals the interval spec's; (2) every input reaches the output through
    at most two paths; (3) the generated robust two-pattern tests cover
    every path delay fault of the unit under the strict robust criterion.
    """

    name = "unit"
    uses_circuit = False

    def __init__(self, max_n: int = 6) -> None:
        self._max_n = max_n

    def check_seed(self, seed: int) -> List[Violation]:
        spec = spec_from_seed(seed, self._max_n)
        return self.check_spec(spec, seed)

    def check_spec(self, spec: ComparisonSpec, seed: int) -> List[Violation]:
        """Run all three invariants on one explicit spec."""
        unit = build_unit(spec)
        details = {"spec": {
            "inputs": list(spec.inputs),
            "lower": spec.lower,
            "upper": spec.upper,
            "complement": spec.complement,
        }}

        got = truth_tables(unit, input_order=list(spec.inputs))[unit.outputs[0]]
        want = spec.truth_table(spec.inputs)
        if got != want:
            bit = got ^ want
            minterm = (bit & -bit).bit_length() - 1
            return [Violation(
                self.name, seed,
                f"unit ON-set differs from [{spec.lower}, {spec.upper}] "
                f"(first differing minterm {minterm})",
                circuit=unit,
                details={**details, "minterm": minterm},
            )]

        cost = unit_cost(spec)
        bad = {pi: c for pi, c in cost.paths_per_input.items() if c > 2}
        if bad:
            return [Violation(
                self.name, seed,
                f"more than two paths from input(s) {sorted(bad)} "
                f"to the unit output",
                circuit=unit,
                details={**details, "paths_per_input": cost.paths_per_input},
            )]

        total = {
            (tuple(p), rising)
            for p in enumerate_paths(unit)
            for rising in (True, False)
        }
        detected = set()
        for test in robust_tests_for_unit(spec):
            pw = simulate_pair(unit, test.v1, test.v2)
            detected |= robust_faults_detected(
                unit, pw, RobustCriterion.STRICT
            )
        if detected != total:
            missed = sorted(total - detected)
            return [Violation(
                self.name, seed,
                f"{len(missed)} path delay fault(s) not robustly covered "
                f"by the generated test set",
                circuit=unit,
                details={
                    **details,
                    "missed": [
                        {"path": list(p), "rising": r} for p, r in missed[:8]
                    ],
                },
            )]
        return []


# --------------------------------------------------------------------- #
# incremental: patched caches and session labels vs from-scratch rebuilds
# --------------------------------------------------------------------- #


def incremental_state_mismatch(
    circuit: Circuit, session: Optional[AnalysisSession] = None
) -> Optional[str]:
    """First divergence between incremental state and scratch rebuilds.

    Compares the circuit's live fanout map, canonical topological order,
    internal Pearce-Kelly order and levels — plus, when a *session* is
    given, its path labels — against the independent reference rebuilds of
    :mod:`repro.netlist.incremental`.  Returns a description of the first
    mismatch, or None when everything agrees.
    """
    fo = circuit.fanout_map()

    def norm(m: Dict[str, List[str]]) -> Dict[str, List[str]]:
        # Reader-list order is mutation-history dependent; empty entries
        # for vanished dangling nets are cosmetically allowed.
        return {
            n: sorted(rs) for n, rs in m.items() if rs or circuit.has_net(n)
        }

    if norm(fo) != norm(scratch_fanout_map(circuit)):
        return "fanout map diverged from scratch rebuild"
    try:
        want_topo = scratch_topological_order(circuit)
    except ValueError:
        try:
            circuit.topological_order()
        except CircuitError:
            return None  # both sides agree the circuit is cyclic
        return "cache missed a combinational cycle the rebuild found"
    order = circuit.topological_order()
    if order != want_topo:
        return "canonical topological order diverged from scratch Kahn"
    live_order = circuit._live_order  # whitebox: the PK-maintained order
    if live_order is not None:
        live = [n for n in live_order if n is not None]
        if not is_valid_topological_order(circuit, live):
            return "live (Pearce-Kelly) order is not a valid topo order"
    if circuit.levels() != scratch_levels(circuit):
        return "levels diverged from scratch rebuild"
    if session is not None:
        if session.labels() != scratch_path_labels(circuit):
            return "session path labels diverged from scratch Procedure 1"
    return None


class IncrementalOracle(Oracle):
    """Incremental maintenance ≡ from-scratch recompute, after every step.

    Copies the fuzz circuit, forces every cache and attaches an
    :class:`~repro.analysis.AnalysisSession`, then applies a seeded random
    mutation sequence drawn from the real mutation API —
    ``replace_gate``, ``rewire_fanin``, ``substitute_net``, ``add_gate``,
    ``remove_gate``, ``sweep``, ``add_output`` — re-checking
    :func:`incremental_state_mismatch` after **every** mutation.  All
    mutations are acyclicity-guarded via transitive-fanout checks, so a
    divergence is always a maintenance bug, never an invalid instance.
    """

    name = "incremental"

    def __init__(self, steps: int = 24) -> None:
        self._steps = steps

    def check_circuit(self, circuit: Circuit, seed: int) -> List[Violation]:
        work = circuit.copy()
        rng = random.Random((seed << 16) ^ 0x1C4E)
        session = AnalysisSession(work)
        try:
            # Force every cache so each mutation exercises the patch paths.
            work.fanout_map()
            work.topological_order()
            work.levels()
            session.labels()
            epoch = work.epoch
            for step in range(self._steps):
                desc = self._mutate(work, rng)
                if desc is None:
                    continue
                if work.epoch <= epoch:
                    return [self._violation(
                        circuit, seed, step, desc,
                        "mutation did not advance the epoch counter",
                    )]
                epoch = work.epoch
                msg = incremental_state_mismatch(work, session)
                if msg is not None:
                    return [self._violation(circuit, seed, step, desc, msg)]
        finally:
            session.close()
        return []

    def _violation(
        self, circuit: Circuit, seed: int, step: int, desc: str, msg: str
    ) -> Violation:
        return Violation(
            self.name, seed,
            f"after step {step} ({desc}): {msg}",
            circuit=circuit,
            details={"step": step, "mutation": desc},
        )

    # -- seeded mutation generator ------------------------------------- #

    def _mutate(self, work: Circuit, rng: random.Random) -> Optional[str]:
        """Apply one random mutation; returns its description (None: skip)."""
        ops = [
            self._op_replace, self._op_rewire, self._op_substitute,
            self._op_add_gate, self._op_remove, self._op_sweep,
            self._op_add_output,
        ]
        weights = [4, 4, 3, 3, 2, 2, 1]
        op = rng.choices(ops, weights=weights, k=1)[0]
        return op(work, rng)

    @staticmethod
    def _logic_nets(work: Circuit) -> List[str]:
        return [g.name for g in work.logic_gates()]

    @staticmethod
    def _random_gate(
        work: Circuit, rng: random.Random, name: str, pool: List[str]
    ) -> Optional[Gate]:
        """A random legal gate named *name* over fanins drawn from *pool*."""
        if not pool:
            return None
        gtype = rng.choice(sorted(
            UNARY_TYPES | MULTI_INPUT_TYPES, key=lambda t: t.value
        ))
        arity = 1 if gtype in UNARY_TYPES else rng.randint(
            2, min(3, max(2, len(pool)))
        )
        if len(pool) < arity:
            return None
        fanins = tuple(rng.choice(pool) for _ in range(arity))
        return Gate(name, gtype, fanins)

    def _op_replace(self, work: Circuit, rng: random.Random) -> Optional[str]:
        nets = self._logic_nets(work)
        if not nets:
            return None
        name = rng.choice(nets)
        downstream = work.transitive_fanout([name])
        pool = [n for n in work.nets() if n not in downstream]
        gate = self._random_gate(work, rng, name, pool)
        if gate is None:
            return None
        work.replace_gate(gate)
        return f"replace_gate({name})"

    def _op_rewire(self, work: Circuit, rng: random.Random) -> Optional[str]:
        withins = [g.name for g in work.logic_gates() if g.fanins]
        if not withins:
            return None
        name = rng.choice(withins)
        old = rng.choice(work.gate(name).fanins)
        downstream = work.transitive_fanout([name])
        pool = [n for n in work.nets() if n not in downstream]
        if not pool:
            return None
        new = rng.choice(pool)
        work.rewire_fanin(name, old, new)
        return f"rewire_fanin({name}, {old}->{new})"

    def _op_substitute(self, work: Circuit, rng: random.Random) -> Optional[str]:
        nets = self._logic_nets(work)
        if not nets:
            return None
        old = rng.choice(nets)
        if not work.fanouts(old) and old not in work.output_set:
            return None  # substitute_net would be a pure (epoch-less) no-op
        downstream = work.transitive_fanout([old])
        pool = [n for n in work.nets() if n not in downstream]
        if not pool:
            return None
        new = rng.choice(pool)
        work.substitute_net(old, new)
        return f"substitute_net({old}->{new})"

    def _op_add_gate(self, work: Circuit, rng: random.Random) -> Optional[str]:
        name = work.fresh_net("fz")
        gate = self._random_gate(work, rng, name, work.nets())
        if gate is None:
            return None
        work.add_gate(name, gate.gtype, gate.fanins)
        if rng.random() < 0.5:
            work.add_output(name)
        return f"add_gate({name})"

    def _op_remove(self, work: Circuit, rng: random.Random) -> Optional[str]:
        outs = work.output_set
        dead = [
            g.name for g in work.logic_gates()
            if not work.fanouts(g.name) and g.name not in outs
        ]
        if not dead:
            return None
        net = rng.choice(dead)
        work.remove_gate(net)
        return f"remove_gate({net})"

    def _op_sweep(self, work: Circuit, rng: random.Random) -> Optional[str]:
        removed = work.sweep()
        if not removed:
            return None
        return f"sweep(removed={removed})"

    def _op_add_output(self, work: Circuit, rng: random.Random) -> Optional[str]:
        nets = work.nets()
        if not nets:
            return None
        net = rng.choice(nets)
        work.add_output(net)
        return f"add_output({net})"


#: Construction order for ``--oracle all``.
ORACLE_NAMES = ("sim", "fault", "resynth", "unit", "incremental",
                "parallel", "resume", "memo", "sweep")


def default_oracles(
    names: Optional[Sequence[str]] = None,
    gate_eval: GateEval = eval_gate,
) -> List[Oracle]:
    """Instantiate the standard oracle set (optionally a named subset)."""
    factories = {
        "sim": lambda: SimulatorOracle(gate_eval=gate_eval),
        "fault": FaultSimOracle,
        "resynth": ResynthOracle,
        "unit": ComparisonUnitOracle,
        "incremental": IncrementalOracle,
        "parallel": ParallelOracle,
        "resume": ResumeOracle,
        "memo": MemoOracle,
        "sweep": SweepOracle,
    }
    wanted = list(names) if names else list(ORACLE_NAMES)
    oracles: List[Oracle] = []
    for n in wanted:
        if n not in factories:
            raise ValueError(
                f"unknown oracle {n!r}; choose from {sorted(factories)}"
            )
        oracles.append(factories[n]())
    return oracles
