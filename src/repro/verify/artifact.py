"""Deterministic JSON repro artifacts for oracle violations.

An artifact is everything needed to re-run one failing check without the
fuzzer: the oracle name, the seed, the (usually shrunk) witness circuit in
the exact :mod:`repro.io.json_io` netlist form, and the violation's
structured details.  Serialization is canonical (sorted keys, fixed
indent, no timestamps), so re-shrinking the same failure writes the same
bytes — artifacts diff cleanly in version control, and the checked-in
corpus under ``tests/verify/corpus/`` stays stable.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..io.json_io import circuit_from_json, circuit_to_json
from ..netlist import Circuit
from .oracles import Oracle, Violation

ARTIFACT_FORMAT = "repro-verify-repro"
ARTIFACT_VERSION = 1


@dataclass
class ReproArtifact:
    """A persisted, replayable oracle violation."""

    oracle: str
    seed: int
    message: str
    circuit: Optional[Circuit] = None
    details: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_violation(cls, violation: Violation) -> "ReproArtifact":
        """Wrap a :class:`~repro.verify.oracles.Violation`."""
        return cls(
            oracle=violation.oracle,
            seed=violation.seed,
            message=violation.message,
            circuit=violation.circuit,
            details=dict(violation.details),
        )

    def to_json(self) -> str:
        """Canonical JSON text (stable across runs)."""
        doc = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "oracle": self.oracle,
            "seed": self.seed,
            "message": self.message,
            "details": self.details,
            "circuit": (
                json.loads(circuit_to_json(self.circuit))
                if self.circuit is not None else None
            ),
        }
        return json.dumps(doc, indent=1, sort_keys=True, default=str)

    @classmethod
    def from_json(cls, text: str) -> "ReproArtifact":
        """Parse an artifact previously produced by :meth:`to_json`."""
        doc = json.loads(text)
        if doc.get("format") != ARTIFACT_FORMAT:
            raise ValueError("not a repro-verify-repro JSON document")
        if doc.get("version") != ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported artifact version {doc.get('version')}"
            )
        circuit = None
        if doc.get("circuit") is not None:
            circuit = circuit_from_json(json.dumps(doc["circuit"]))
        return cls(
            oracle=doc["oracle"],
            seed=int(doc["seed"]),
            message=doc["message"],
            circuit=circuit,
            details=dict(doc.get("details") or {}),
        )

    def filename(self) -> str:
        """Deterministic content-addressed filename."""
        digest = hashlib.sha256(self.to_json().encode()).hexdigest()[:10]
        return f"{self.oracle}_seed{self.seed}_{digest}.json"


def write_artifact(artifact: ReproArtifact, directory: str) -> str:
    """Write *artifact* under *directory*; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, artifact.filename())
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(artifact.to_json())
        fh.write("\n")
    return path


def load_artifact(path: str) -> ReproArtifact:
    """Read one artifact file."""
    with open(path, "r", encoding="utf-8") as fh:
        return ReproArtifact.from_json(fh.read())


def replay_artifact(
    artifact: ReproArtifact, oracles: Sequence[Oracle]
) -> List[Violation]:
    """Re-run the artifact's oracle on its stored instance.

    Circuit-carrying artifacts replay through ``check_circuit`` on the
    stored witness; seed-only artifacts replay through ``check_seed``.
    An empty result means the failure no longer reproduces (i.e. the bug
    is fixed — which is what the corpus regression test asserts).
    """
    matching = [o for o in oracles if o.name == artifact.oracle]
    if not matching:
        raise ValueError(f"no oracle named {artifact.oracle!r} supplied")
    oracle = matching[0]
    if artifact.circuit is not None and oracle.uses_circuit:
        return oracle.check_circuit(artifact.circuit, artifact.seed)
    return oracle.check_seed(artifact.seed)
