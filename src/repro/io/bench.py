"""ISCAS-89 ``.bench`` format reader and writer.

The paper's benchmark circuits (``irs*``) are the fully-scanned combinational
cores of the ISCAS-89 circuits: every D flip-flop is cut, its output becoming
a pseudo primary input and its data input a pseudo primary output.  The
reader performs that conversion by default (``scan=True``), so reading
``s1423.bench`` directly yields the paper's ``irs1423``.
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO, Tuple, Union

from ..netlist import Circuit, CircuitError, Gate, GateType

_BENCH_TYPES: Dict[str, GateType] = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
}

_TYPE_NAMES: Dict[GateType, str] = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
}

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^\s=]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*?)\s*\)$"
)


class BenchFormatError(CircuitError):
    """Raised on malformed ``.bench`` input."""


def read_bench(
    source: Union[str, TextIO], name: str = "bench", scan: bool = True
) -> Circuit:
    """Parse ``.bench`` text (or a file object) into a :class:`Circuit`.

    Parameters
    ----------
    source:
        The bench text, or an open text file.
    name:
        Name for the resulting circuit.
    scan:
        When True (default), D flip-flops are cut full-scan style: the DFF
        output net becomes a pseudo primary input and its data input net a
        pseudo primary output.  When False, DFFs raise an error (the model
        is purely combinational).
    """
    text = source if isinstance(source, str) else source.read()
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Tuple[str, str, List[str]]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _DECL_RE.match(line)
        if m:
            (inputs if m.group(1).upper() == "INPUT" else outputs).append(
                m.group(2)
            )
            continue
        m = _GATE_RE.match(line)
        if m:
            out, ty, args = m.group(1), m.group(2).upper(), m.group(3)
            fanins = [a.strip() for a in args.split(",") if a.strip()]
            gates.append((out, ty, fanins))
            continue
        raise BenchFormatError(f"cannot parse bench line: {raw!r}")

    circuit = Circuit(name)
    for pi in inputs:
        circuit.add_input(pi)

    pseudo_outputs: List[str] = []
    for out, ty, fanins in gates:
        if ty in ("DFF", "FF", "DFFSR"):
            if not scan:
                raise BenchFormatError(
                    f"flip-flop {out!r} in combinational-only mode"
                )
            if len(fanins) != 1:
                raise BenchFormatError(f"DFF {out!r} must have one data input")
            circuit.add_input(out)  # state output -> pseudo PI
            pseudo_outputs.append(fanins[0])  # state input -> pseudo PO
            continue
        gtype = _BENCH_TYPES.get(ty)
        if gtype is None:
            raise BenchFormatError(f"unknown bench gate type {ty!r}")
        if gtype in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
                     GateType.XOR, GateType.XNOR) and len(fanins) == 1:
            gtype = GateType.BUF  # some bench files use 1-input AND/OR
        circuit.add_gate(out, gtype, fanins)

    circuit.set_outputs(outputs + pseudo_outputs)
    circuit.validate()
    return circuit


def write_bench(circuit: Circuit) -> str:
    """Serialize *circuit* to ``.bench`` text.

    Constants have no bench primitive; they are emitted as self-feeding
    idioms ``c = AND(x, NOT x)``-free by expanding into a tied pattern:
    ``CONST0`` becomes ``AND(pi, NOT(pi))`` over the first primary input.
    Circuits produced by :func:`repro.netlist.simplify` normally contain no
    constants reaching outputs, so this path is rarely exercised.
    """
    lines: List[str] = [f"# {circuit.name}"]
    for pi in circuit.inputs:
        lines.append(f"INPUT({pi})")
    for po in circuit.outputs:
        lines.append(f"OUTPUT({po})")
    aux: List[str] = []
    const_helpers: Dict[GateType, str] = {}

    def const_net(gtype: GateType) -> str:
        if gtype not in const_helpers:
            if not circuit.inputs:
                raise BenchFormatError("cannot emit constants without inputs")
            pi = circuit.inputs[0]
            base = f"__{'one' if gtype is GateType.CONST1 else 'zero'}"
            inv = f"{base}_inv"
            aux.append(f"{inv} = NOT({pi})")
            if gtype is GateType.CONST0:
                aux.append(f"{base} = AND({pi}, {inv})")
            else:
                aux.append(f"{base} = OR({pi}, {inv})")
            const_helpers[gtype] = base
        return const_helpers[gtype]

    for gate in circuit.gates():
        if gate.gtype is GateType.INPUT:
            continue
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            helper = const_net(gate.gtype)
            lines.append(f"{gate.name} = BUFF({helper})")
            continue
        args = ", ".join(gate.fanins)
        lines.append(f"{gate.name} = {_TYPE_NAMES[gate.gtype]}({args})")
    lines[1:1] = []  # keep header first; aux helpers go before their users
    # Helpers reference only a primary input, so placing them right after
    # the declarations keeps the file topologically readable.
    decl_end = 1 + len(circuit.inputs) + len(circuit.outputs)
    lines[decl_end:decl_end] = aux
    return "\n".join(lines) + "\n"


def load_bench(path: str, name: str = None, scan: bool = True) -> Circuit:
    """Read a ``.bench`` file from *path*."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return read_bench(text, name=name, scan=scan)


def save_bench(circuit: Circuit, path: str) -> None:
    """Write *circuit* to a ``.bench`` file at *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(write_bench(circuit))
