"""Graphviz DOT export and plain-text netlist rendering.

``write_dot`` emits a schematic-style digraph (inputs as boxes, gates as
labeled nodes, outputs marked); ``format_netlist`` gives a compact
topologically-ordered text listing used by the examples and by error
reports.  Optional highlighting marks a path (e.g. a path delay fault
under discussion) or a set of nets (e.g. a comparison unit's gates).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from ..netlist import Circuit, GateType

_SHAPE = {
    GateType.INPUT: "box",
    GateType.CONST0: "plaintext",
    GateType.CONST1: "plaintext",
}


def write_dot(
    circuit: Circuit,
    highlight_path: Optional[Sequence[str]] = None,
    highlight_nets: Optional[Iterable[str]] = None,
) -> str:
    """Render *circuit* as Graphviz DOT text."""
    hi_edges: Set = set()
    if highlight_path:
        hi_edges = set(zip(highlight_path, highlight_path[1:]))
    hi_nets: Set[str] = set(highlight_nets or ())
    if highlight_path:
        hi_nets |= set(highlight_path)

    lines = [f'digraph "{circuit.name}" {{', "  rankdir=LR;"]
    outputs = circuit.output_set
    for gate in circuit.gates():
        shape = _SHAPE.get(gate.gtype, "ellipse")
        label = gate.name if gate.gtype is GateType.INPUT else (
            f"{gate.name}\\n{gate.gtype.value.upper()}"
        )
        attrs = [f'label="{label}"', f"shape={shape}"]
        if gate.name in outputs:
            attrs.append("peripheries=2")
        if gate.name in hi_nets:
            attrs.append('color=red')
            attrs.append('fontcolor=red')
        lines.append(f'  "{gate.name}" [{", ".join(attrs)}];')
    for gate in circuit.gates():
        for f in gate.fanins:
            attrs = ' [color=red, penwidth=2]' if (f, gate.name) in hi_edges \
                else ""
            lines.append(f'  "{f}" -> "{gate.name}"{attrs};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_dot(circuit: Circuit, path: str, **kwargs) -> None:
    """Write DOT text to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(write_dot(circuit, **kwargs))


def format_netlist(circuit: Circuit, include_inputs: bool = True) -> str:
    """Topologically-ordered one-gate-per-line text rendering."""
    lines = [f"# {circuit.name}"]
    if include_inputs:
        lines.append("inputs:  " + " ".join(circuit.inputs))
        lines.append("outputs: " + " ".join(circuit.outputs))
    outputs = circuit.output_set
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        if gate.gtype is GateType.INPUT:
            continue
        mark = " *" if net in outputs else ""
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            lines.append(f"{net} = {gate.gtype.value.upper()}{mark}")
        else:
            args = ", ".join(gate.fanins)
            lines.append(
                f"{net} = {gate.gtype.value.upper()}({args}){mark}"
            )
    return "\n".join(lines)
