"""Structural Verilog netlist writer.

Emits a single flat module using Verilog gate primitives (``and``, ``or``,
``nand``, ``nor``, ``xor``, ``xnor``, ``not``, ``buf``) so the output is
accepted by any Verilog tool without a cell library.  Net names are
sanitized to Verilog identifiers (with an escape map emitted as comments
when renaming was necessary).
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..netlist import Circuit, GateType

_PRIMITIVE = {
    GateType.AND: "and",
    GateType.NAND: "nand",
    GateType.OR: "or",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
}

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")

_KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "wire", "assign", "and",
    "or", "nand", "nor", "xor", "xnor", "not", "buf", "reg", "begin",
    "end", "always", "if", "else", "case", "endcase", "for", "while",
})


def _sanitize_names(circuit: Circuit) -> Dict[str, str]:
    """Map every net to a legal, unique Verilog identifier."""
    used = set()
    mapping: Dict[str, str] = {}
    for net in circuit.nets():
        cand = net
        if not _ID_RE.match(cand) or cand in _KEYWORDS:
            cand = "n_" + re.sub(r"[^A-Za-z0-9_]", "_", cand)
            if not _ID_RE.match(cand):
                cand = "n_" + cand
        base = cand
        k = 1
        while cand in used:
            cand = f"{base}_{k}"
            k += 1
        used.add(cand)
        mapping[net] = cand
    return mapping


def write_verilog(circuit: Circuit, module_name: str = None) -> str:
    """Serialize *circuit* as structural Verilog text."""
    name = module_name or re.sub(r"[^A-Za-z0-9_]", "_", circuit.name)
    if not _ID_RE.match(name):
        name = "m_" + name
    nm = _sanitize_names(circuit)

    inputs = [nm[pi] for pi in circuit.inputs]
    # a PO net may be a PI: give it a distinct output wire via buf
    outputs: List[str] = []
    out_aliases: List[str] = []
    seen_out = set()
    for i, po in enumerate(circuit.outputs):
        oname = nm[po]
        if po in circuit.inputs or oname in seen_out:
            alias = f"po_{i}_{oname}"
            out_aliases.append(f"  buf u_po{i} ({alias}, {oname});")
            oname = alias
        seen_out.add(oname)
        outputs.append(oname)

    lines = [f"// generated from {circuit.name}",
             f"module {name} ("]
    ports = inputs + outputs
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    if inputs:
        lines.append("  input " + ", ".join(inputs) + ";")
    if outputs:
        lines.append("  output " + ", ".join(outputs) + ";")

    wires = [
        nm[g.name] for g in circuit.gates()
        if g.gtype is not GateType.INPUT and nm[g.name] not in outputs
    ]
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")

    renames = [
        f"  // net {net!r} emitted as {new}"
        for net, new in nm.items() if net != new
    ]
    lines.extend(renames)

    idx = 0
    for gate in circuit.gates():
        if gate.gtype is GateType.INPUT:
            continue
        out = nm[gate.name]
        if gate.gtype is GateType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
            continue
        if gate.gtype is GateType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
            continue
        prim = _PRIMITIVE[gate.gtype]
        args = ", ".join([out] + [nm[f] for f in gate.fanins])
        lines.append(f"  {prim} u{idx} ({args});")
        idx += 1
    lines.extend(out_aliases)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(circuit: Circuit, path: str, module_name: str = None) -> None:
    """Write structural Verilog to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(write_verilog(circuit, module_name))
