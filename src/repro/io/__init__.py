"""Netlist file formats: ISCAS-89 ``.bench`` and structural BLIF."""

from .bench import (
    BenchFormatError,
    load_bench,
    read_bench,
    save_bench,
    write_bench,
)
from .blif import BlifFormatError, read_blif, write_blif
from .dot import format_netlist, save_dot, write_dot
from .verilog import save_verilog, write_verilog
from .json_io import (
    circuit_from_json,
    circuit_to_json,
    load_json,
    save_json,
)

__all__ = [
    "BenchFormatError",
    "BlifFormatError",
    "circuit_from_json",
    "circuit_to_json",
    "format_netlist",
    "load_bench",
    "load_json",
    "read_bench",
    "read_blif",
    "save_bench",
    "save_dot",
    "save_json",
    "save_verilog",
    "write_bench",
    "write_dot",
    "write_blif",
    "write_verilog",
]
