"""BLIF writer (for interoperability with SIS-lineage tools).

Only the structural subset is emitted: ``.model``, ``.inputs``, ``.outputs``
and one ``.names`` block per gate.  The reader supports the same subset,
which is enough to round-trip our own output and to import simple
SIS-produced netlists.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, TextIO, Union

from ..netlist import Circuit, CircuitError, GateType


class BlifFormatError(CircuitError):
    """Raised on malformed BLIF input."""


def _names_block(gate) -> List[str]:
    """Emit the ``.names`` cover for one gate."""
    ins = " ".join(gate.fanins)
    head = f".names {ins} {gate.name}".replace("  ", " ")
    k = len(gate.fanins)
    g = gate.gtype
    if g is GateType.CONST0:
        return [f".names {gate.name}"]
    if g is GateType.CONST1:
        return [f".names {gate.name}", "1"]
    if g is GateType.BUF:
        return [head, "1 1"]
    if g is GateType.NOT:
        return [head, "0 1"]
    if g is GateType.AND:
        return [head, "1" * k + " 1"]
    if g is GateType.NAND:
        return [head] + [("-" * i) + "0" + ("-" * (k - i - 1)) + " 1"
                         for i in range(k)]
    if g is GateType.OR:
        return [head] + [("-" * i) + "1" + ("-" * (k - i - 1)) + " 1"
                         for i in range(k)]
    if g is GateType.NOR:
        return [head, "0" * k + " 1"]
    if g in (GateType.XOR, GateType.XNOR):
        want = 1 if g is GateType.XOR else 0
        rows = [head]
        for bits in product("01", repeat=k):
            if sum(b == "1" for b in bits) % 2 == want:
                rows.append("".join(bits) + " 1")
        return rows
    raise BlifFormatError(f"cannot emit gate type {g!r}")


def write_blif(circuit: Circuit) -> str:
    """Serialize *circuit* as BLIF text."""
    lines = [f".model {circuit.name}"]
    lines.append(".inputs " + " ".join(circuit.inputs))
    lines.append(".outputs " + " ".join(circuit.outputs))
    for gate in circuit.gates():
        if gate.gtype is GateType.INPUT:
            continue
        lines.extend(_names_block(gate))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _cover_to_gate_type(cover: List[str], k: int) -> GateType:
    """Recognize the gate type of a ``.names`` single-output cover.

    Only the covers produced by :func:`write_blif` (plus their 0-terminated
    duals) are recognized; anything else raises.
    """
    if k == 0:
        if not cover:
            return GateType.CONST0
        if cover == ["1"]:
            return GateType.CONST1
        raise BlifFormatError(f"unrecognized constant cover {cover!r}")
    rows = [r.split() for r in cover]
    if any(len(r) != 2 or r[1] != "1" for r in rows):
        raise BlifFormatError("only on-set single-output covers are supported")
    cubes = [r[0] for r in rows]
    if k == 1:
        if cubes == ["1"]:
            return GateType.BUF
        if cubes == ["0"]:
            return GateType.NOT
        raise BlifFormatError(f"unrecognized 1-input cover {cubes!r}")
    if cubes == ["1" * k]:
        return GateType.AND
    if cubes == ["0" * k]:
        return GateType.NOR
    single_one = sorted(
        ("-" * i) + "1" + ("-" * (k - i - 1)) for i in range(k)
    )
    single_zero = sorted(
        ("-" * i) + "0" + ("-" * (k - i - 1)) for i in range(k)
    )
    if sorted(cubes) == single_one:
        return GateType.OR
    if sorted(cubes) == single_zero:
        return GateType.NAND
    full = [c for c in cubes if "-" not in c]
    if len(full) == len(cubes) and len(cubes) == (1 << (k - 1)):
        parities = {sum(ch == "1" for ch in c) % 2 for c in cubes}
        if parities == {1}:
            return GateType.XOR
        if parities == {0}:
            return GateType.XNOR
    raise BlifFormatError(f"unrecognized cover for {k}-input gate")


def read_blif(source: Union[str, TextIO], name: str = None) -> Circuit:
    """Parse the structural BLIF subset produced by :func:`write_blif`."""
    text = source if isinstance(source, str) else source.read()
    # Join continuation lines.
    logical: List[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if logical and logical[-1].endswith("\\"):
            logical[-1] = logical[-1][:-1] + " " + line.strip()
        else:
            logical.append(line.strip())

    model = name or "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    names_blocks: List[tuple] = []
    current: tuple = None
    for line in logical:
        if line.startswith(".model"):
            parts = line.split()
            if len(parts) > 1 and name is None:
                model = parts[1]
        elif line.startswith(".inputs"):
            inputs.extend(line.split()[1:])
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
        elif line.startswith(".names"):
            sig = line.split()[1:]
            if not sig:
                raise BlifFormatError(".names with no signals")
            current = (sig[:-1], sig[-1], [])
            names_blocks.append(current)
        elif line.startswith(".end"):
            break
        elif line.startswith("."):
            raise BlifFormatError(f"unsupported BLIF construct: {line!r}")
        else:
            if current is None:
                raise BlifFormatError(f"cover row outside .names: {line!r}")
            current[2].append(line)

    circuit = Circuit(model)
    for pi in inputs:
        circuit.add_input(pi)
    for fanins, out, cover in names_blocks:
        gtype = _cover_to_gate_type(cover, len(fanins))
        circuit.add_gate(out, gtype, fanins)
    circuit.set_outputs(outputs)
    circuit.validate()
    return circuit
