"""Exact JSON netlist serialization.

Unlike ``.bench`` (which has no constant primitive and therefore emits
helper idioms), the JSON form round-trips a :class:`Circuit` exactly —
gate for gate, name for name, order for order.  The benchmark suite uses
it to materialize its deterministically-built circuits.
"""

from __future__ import annotations

import json
from typing import Union

from ..netlist import Circuit, CircuitError, GateType


FORMAT_VERSION = 1


def circuit_to_json(circuit: Circuit) -> str:
    """Serialize *circuit* to a JSON string (exact round-trip)."""
    doc = {
        "format": "repro-netlist",
        "version": FORMAT_VERSION,
        "name": circuit.name,
        "inputs": circuit.inputs,
        "outputs": circuit.outputs,
        "gates": [
            {"name": g.name, "type": g.gtype.value, "fanins": list(g.fanins)}
            for g in circuit.gates()
            if g.gtype is not GateType.INPUT
        ],
    }
    return json.dumps(doc, indent=1)


def circuit_from_json(text: str) -> Circuit:
    """Parse a circuit previously produced by :func:`circuit_to_json`."""
    doc = json.loads(text)
    if doc.get("format") != "repro-netlist":
        raise CircuitError("not a repro-netlist JSON document")
    if doc.get("version") != FORMAT_VERSION:
        raise CircuitError(f"unsupported netlist version {doc.get('version')}")
    circuit = Circuit(doc["name"])
    for pi in doc["inputs"]:
        circuit.add_input(pi)
    types = {t.value: t for t in GateType}
    for g in doc["gates"]:
        circuit.add_gate(g["name"], types[g["type"]], g["fanins"])
    circuit.set_outputs(doc["outputs"])
    circuit.validate()
    return circuit


def save_json(circuit: Circuit, path: str) -> None:
    """Write *circuit* to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(circuit_to_json(circuit))


def load_json(path: str) -> Circuit:
    """Read a circuit from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return circuit_from_json(fh.read())
