"""Parallel-pattern single-fault-propagation stuck-at fault simulation.

The algorithmic family of FSIM [17]: simulate a word of patterns once for
the good machine, then for each (still-undetected) fault propagate only the
faulty differences through the fault's output cone, event-driven, comparing
primary outputs.  Patterns are packed in arbitrary-width integers, so one
pass handles hundreds of patterns per fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..netlist import Circuit, GateType
from ..sim.logicsim import eval_gate_packed, simulate
from .model import StuckFault


class FaultSimulator:
    """Reusable fault-simulation engine for one circuit.

    Precomputes topological order, fanout and per-fault propagation cones;
    :meth:`detect` then processes one packed pattern batch.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._topo = circuit.topological_order()
        self._topo_pos = {n: i for i, n in enumerate(self._topo)}
        self._fanout = circuit.fanout_map()
        self._outputs = circuit.output_set
        self._cone_cache: Dict[str, Tuple[str, ...]] = {}

    def _cone_order(self, net: str) -> Tuple[str, ...]:
        """Nets in the transitive fanout of *net* (incl.), topo-sorted."""
        cached = self._cone_cache.get(net)
        if cached is None:
            cone = self.circuit.transitive_fanout([net])
            cached = tuple(sorted(cone, key=self._topo_pos.__getitem__))
            self._cone_cache[net] = cached
        return cached

    def good_values(
        self, input_words: Mapping[str, int], n_patterns: int
    ) -> Dict[str, int]:
        """Good-machine simulation of a packed batch."""
        return simulate(self.circuit, input_words, n_patterns)

    def detection_word(
        self,
        fault: StuckFault,
        good: Mapping[str, int],
        n_patterns: int,
    ) -> int:
        """Mask of patterns in the batch that detect *fault*.

        Event-driven forward propagation of the faulty machine through the
        fault's cone; a pattern detects the fault when some primary output
        differs from the good machine.
        """
        mask = (1 << n_patterns) - 1
        stuck_word = mask if fault.value else 0
        faulty: Dict[str, int] = {}

        if fault.is_branch:
            # The faulty value exists only on one gate input pin: evaluate
            # the reader with the pin forced, then propagate from there.
            reader = self.circuit.gate(fault.reader)
            pin_words = [
                stuck_word if i == fault.pin else good[f]
                for i, f in enumerate(reader.fanins)
            ]
            out = eval_gate_packed(reader.gtype, pin_words, mask)
            if out == good[fault.reader]:
                return 0
            faulty[fault.reader] = out
            start = fault.reader
        else:
            if stuck_word == good[fault.net]:
                return 0
            faulty[fault.net] = stuck_word
            start = fault.net

        detected = 0
        if start in self._outputs:
            detected |= faulty[start] ^ good[start]
        for net in self._cone_order(start):
            if net == start:
                continue
            gate = self.circuit.gate(net)
            if not any(f in faulty for f in gate.fanins):
                continue
            words = [faulty.get(f, good[f]) for f in gate.fanins]
            out = eval_gate_packed(gate.gtype, words, mask)
            if out == good[net]:
                continue  # difference died here
            faulty[net] = out
            if net in self._outputs:
                detected |= out ^ good[net]
                if detected == mask:
                    return detected
        return detected

    def detect(
        self,
        faults: Iterable[StuckFault],
        input_words: Mapping[str, int],
        n_patterns: int,
    ) -> Dict[StuckFault, int]:
        """Detection word for every fault in *faults* (0 = undetected)."""
        good = self.good_values(input_words, n_patterns)
        return {
            f: self.detection_word(f, good, n_patterns) for f in faults
        }


def simulate_faults(
    circuit: Circuit,
    faults: Sequence[StuckFault],
    input_words: Mapping[str, int],
    n_patterns: int,
) -> Dict[StuckFault, int]:
    """One-shot convenience wrapper over :class:`FaultSimulator`."""
    return FaultSimulator(circuit).detect(faults, input_words, n_patterns)


def serial_detects(
    circuit: Circuit,
    fault: StuckFault,
    assignment: Mapping[str, int],
) -> bool:
    """Reference serial fault simulation of a single scalar pattern.

    Builds the faulty response by brute force (used as a test oracle for
    the packed engine, and by ATPG verification).
    """
    words = {pi: assignment.get(pi, 0) & 1 for pi in circuit.inputs}
    sim = FaultSimulator(circuit)
    good = sim.good_values(words, 1)
    return sim.detection_word(fault, good, 1) == 1
