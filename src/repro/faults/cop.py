"""COP testability measures: signal probability, observability, detectability.

The classical controllability/observability program (COP) estimates, under
the independence assumption, each net's probability of being 1 under
uniform random inputs and each net's probability of being observed at some
output.  The product gives a per-fault random-pattern detection probability
estimate — the quantity behind Table 6's "last effective pattern" column
(a circuit's random-pattern testability is governed by its hardest fault).
These are estimates, not guarantees; the test suite checks them against
measured detection frequencies on small circuits.
"""

from __future__ import annotations

from typing import Dict

from ..netlist import Circuit, GateType
from .model import StuckFault


def signal_probabilities(circuit: Circuit) -> Dict[str, float]:
    """COP controllability: P(net = 1) under independent uniform inputs."""
    prob: Dict[str, float] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gtype
        if gt is GateType.INPUT:
            prob[net] = 0.5
        elif gt is GateType.CONST0:
            prob[net] = 0.0
        elif gt is GateType.CONST1:
            prob[net] = 1.0
        elif gt is GateType.BUF:
            prob[net] = prob[gate.fanins[0]]
        elif gt is GateType.NOT:
            prob[net] = 1.0 - prob[gate.fanins[0]]
        elif gt in (GateType.AND, GateType.NAND):
            p = 1.0
            for f in gate.fanins:
                p *= prob[f]
            prob[net] = p if gt is GateType.AND else 1.0 - p
        elif gt in (GateType.OR, GateType.NOR):
            p = 1.0
            for f in gate.fanins:
                p *= 1.0 - prob[f]
            prob[net] = 1.0 - p if gt is GateType.OR else p
        else:  # XOR family
            p = 0.0
            for f in gate.fanins:
                q = prob[f]
                p = p * (1.0 - q) + (1.0 - p) * q
            prob[net] = p if gt is GateType.XOR else 1.0 - p
    return prob


def observabilities(
    circuit: Circuit, prob: Dict[str, float] = None
) -> Dict[str, float]:
    """COP observability: P(a change on the net reaches some output).

    Computed outputs-to-inputs: an output net has observability 1; a gate
    input's observability is the gate output's observability times the
    probability that the other inputs hold non-controlling values (for
    XOR, 1).  Fanout combines with the standard independence union.
    """
    if prob is None:
        prob = signal_probabilities(circuit)
    obs: Dict[str, float] = {n: 0.0 for n in circuit.nets()}
    for o in circuit.output_set:
        obs[o] = 1.0
    for net in reversed(circuit.topological_order()):
        gate = circuit.gate(net)
        gt = gate.gtype
        if gt in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            continue
        out_obs = obs[net]
        if out_obs == 0.0:
            continue
        for i, f in enumerate(gate.fanins):
            if gt in (GateType.BUF, GateType.NOT):
                through = out_obs
            elif gt in (GateType.AND, GateType.NAND):
                side = 1.0
                for j, g2 in enumerate(gate.fanins):
                    if j != i:
                        side *= prob[g2]
                through = out_obs * side
            elif gt in (GateType.OR, GateType.NOR):
                side = 1.0
                for j, g2 in enumerate(gate.fanins):
                    if j != i:
                        side *= 1.0 - prob[g2]
                through = out_obs * side
            else:  # XOR family: always sensitized
                through = out_obs
            # independence union across fanout branches
            obs[f] = 1.0 - (1.0 - obs[f]) * (1.0 - through)
    return obs


def detection_probability(
    circuit: Circuit,
    fault: StuckFault,
    prob: Dict[str, float] = None,
    obs: Dict[str, float] = None,
) -> float:
    """COP estimate of P(a uniform random pattern detects *fault*).

    Activation probability (the line holds the opposite value) times the
    line's observability.  Branch faults use the stem's controllability
    and an observability computed through the faulty pin's gate only.
    """
    if prob is None:
        prob = signal_probabilities(circuit)
    if obs is None:
        obs = observabilities(circuit, prob)
    p1 = prob[fault.net]
    activation = p1 if fault.value == 0 else 1.0 - p1
    if not fault.is_branch:
        return activation * obs[fault.net]
    gate = circuit.gate(fault.reader)
    gt = gate.gtype
    out_obs = obs[fault.reader]
    if gt in (GateType.BUF, GateType.NOT):
        through = out_obs
    elif gt in (GateType.AND, GateType.NAND):
        side = 1.0
        for j, g2 in enumerate(gate.fanins):
            if j != fault.pin:
                side *= prob[g2]
        through = out_obs * side
    elif gt in (GateType.OR, GateType.NOR):
        side = 1.0
        for j, g2 in enumerate(gate.fanins):
            if j != fault.pin:
                side *= 1.0 - prob[g2]
        through = out_obs * side
    else:
        through = out_obs
    return activation * through


def hardest_faults(
    circuit: Circuit, faults, limit: int = 10
) -> list:
    """The *limit* faults with the lowest estimated detection probability."""
    prob = signal_probabilities(circuit)
    obs = observabilities(circuit, prob)
    scored = [
        (detection_probability(circuit, f, prob, obs), f) for f in faults
    ]
    scored.sort(key=lambda t: (t[0], t[1].net, t[1].value))
    return scored[:limit]
