"""Fault dictionaries and stuck-at fault diagnosis.

A *fault dictionary* records, for a fixed test set, which tests detect
each fault and on which outputs — the classical data structure for
post-test diagnosis.  Given an observed faulty response, candidate faults
are ranked by syndrome match.  Built on the same PPSFP engine as the
campaigns, so constructing a dictionary over hundreds of tests is one
packed pass per fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import Circuit
from ..sim.logicsim import simulate
from .fsim import FaultSimulator
from .model import StuckFault, fault_universe

#: A syndrome: per output net, the packed word of tests where the response
#: differs from the good machine.
Syndrome = Dict[str, int]


def _response_words(
    circuit: Circuit, patterns: Sequence[Tuple[int, ...]]
) -> Tuple[Dict[str, int], int]:
    inputs = circuit.inputs
    words = {pi: 0 for pi in inputs}
    for p_idx, pattern in enumerate(patterns):
        for i, pi in enumerate(inputs):
            if pattern[i]:
                words[pi] |= 1 << p_idx
    return words, len(patterns)


@dataclass
class FaultDictionary:
    """Per-fault output syndromes for a fixed test set."""

    circuit_name: str
    inputs: List[str]
    outputs: List[str]
    patterns: List[Tuple[int, ...]]
    syndromes: Dict[StuckFault, Syndrome] = field(repr=False,
                                                  default_factory=dict)

    @property
    def n_tests(self) -> int:
        """Number of tests in the dictionary."""
        return len(self.patterns)

    def detecting_tests(self, fault: StuckFault) -> List[int]:
        """0-based indices of tests detecting *fault*."""
        syn = self.syndromes.get(fault)
        if syn is None:
            return []
        word = 0
        for w in syn.values():
            word |= w
        return [i for i in range(self.n_tests) if (word >> i) & 1]

    def undetected_faults(self) -> List[StuckFault]:
        """Faults with an all-zero syndrome."""
        return [
            f for f, syn in self.syndromes.items()
            if not any(syn.values())
        ]

    def diagnose(self, observed: Syndrome, top: int = 5) -> List[Tuple[StuckFault, int]]:
        """Rank faults by Hamming distance between syndromes (best first).

        *observed* maps each output to the packed word of tests on which
        the device under diagnosis mismatched the good machine.
        """
        scored = []
        for fault, syn in self.syndromes.items():
            dist = 0
            for o in self.outputs:
                dist += bin(syn.get(o, 0) ^ observed.get(o, 0)).count("1")
            scored.append((dist, fault))
        scored.sort(key=lambda t: (t[0], t[1].net, t[1].value,
                                   t[1].reader or "", t[1].pin or -1))
        return [(fault, dist) for dist, fault in scored[:top]]


def build_fault_dictionary(
    circuit: Circuit,
    patterns: Sequence[Tuple[int, ...]],
    faults: Optional[Sequence[StuckFault]] = None,
) -> FaultDictionary:
    """Construct the full-response dictionary for *patterns*."""
    if faults is None:
        faults = fault_universe(circuit)
    words, n = _response_words(circuit, patterns)
    sim = FaultSimulator(circuit)
    good = sim.good_values(words, n)
    dictionary = FaultDictionary(
        circuit_name=circuit.name,
        inputs=list(circuit.inputs),
        outputs=list(circuit.outputs),
        patterns=[tuple(p) for p in patterns],
    )
    for fault in faults:
        syn = _fault_syndrome(sim, circuit, fault, good, n)
        dictionary.syndromes[fault] = syn
    return dictionary


def _fault_syndrome(
    sim: FaultSimulator,
    circuit: Circuit,
    fault: StuckFault,
    good: Mapping[str, int],
    n: int,
) -> Syndrome:
    """Per-output difference words for one fault (event-driven propagation)."""
    # Reuse the detection machinery but keep per-output granularity: re-run
    # the faulty propagation and compare each output.
    from ..netlist import GateType
    from ..sim.logicsim import eval_gate_packed

    mask = (1 << n) - 1
    stuck_word = mask if fault.value else 0
    faulty: Dict[str, int] = {}
    if fault.is_branch:
        reader = circuit.gate(fault.reader)
        pin_words = [
            stuck_word if i == fault.pin else good[f]
            for i, f in enumerate(reader.fanins)
        ]
        out = eval_gate_packed(reader.gtype, pin_words, mask)
        if out != good[fault.reader]:
            faulty[fault.reader] = out
        start = fault.reader
    else:
        if stuck_word != good[fault.net]:
            faulty[fault.net] = stuck_word
        start = fault.net
    if faulty:
        for net in sim._cone_order(start):
            if net == start:
                continue
            gate = circuit.gate(net)
            if not any(f in faulty for f in gate.fanins):
                continue
            words = [faulty.get(f, good[f]) for f in gate.fanins]
            out = eval_gate_packed(gate.gtype, words, mask)
            if out != good[net]:
                faulty[net] = out
    return {
        o: (faulty.get(o, good[o]) ^ good[o]) for o in circuit.outputs
    }


def observed_syndrome(
    good_circuit: Circuit,
    faulty_circuit: Circuit,
    patterns: Sequence[Tuple[int, ...]],
) -> Syndrome:
    """Syndrome of a (possibly different) faulty implementation under test.

    Simulates both circuits on *patterns* and returns the per-output
    difference words — the input :meth:`FaultDictionary.diagnose` expects.
    """
    words, n = _response_words(good_circuit, patterns)
    good = simulate(good_circuit, words, n)
    bad = simulate(faulty_circuit, words, n)
    return {
        go: good[go] ^ bad[bo]
        for go, bo in zip(good_circuit.outputs, faulty_circuit.outputs)
    }
