"""Single stuck-at fault model: fault sites, universes, collapsing.

Fault sites follow the classical line model: every net (gate output or
primary input) has stem faults, and every gate input pin fed by a fanout
stem has its own branch faults (a branch fault differs from the stem fault
only when the stem actually fans out).  Equivalence collapsing uses the
standard structural rules:

* AND: any input s-a-0 == output s-a-0 (NAND: == output s-a-1);
* OR: any input s-a-1 == output s-a-1 (NOR: == output s-a-0);
* NOT/BUF: input faults == (inverted/equal) output faults.

One representative per equivalence class is kept, which matches the fault
counts tools like FSIM [17] report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..netlist import Circuit, GateType


@dataclass(frozen=True)
class StuckFault:
    """A single stuck-at fault.

    ``net`` is the faulty line.  For a stem (net) fault ``reader`` and
    ``pin`` are None; for a branch fault they identify the gate input pin
    (reader gate's output net, pin index) that is stuck.
    """

    net: str
    value: int
    reader: Optional[str] = None
    pin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck value must be 0 or 1")
        if (self.reader is None) != (self.pin is None):
            raise ValueError("branch faults need both reader and pin")

    @property
    def is_branch(self) -> bool:
        """True for a gate-input-pin (fanout branch) fault."""
        return self.reader is not None

    def describe(self) -> str:
        """Human-readable fault name, e.g. ``"g5 s-a-1"`` or ``"g2.in0 s-a-0"``."""
        if self.is_branch:
            return f"{self.reader}.in{self.pin}({self.net}) s-a-{self.value}"
        return f"{self.net} s-a-{self.value}"


def all_faults(circuit: Circuit) -> List[StuckFault]:
    """The uncollapsed fault universe.

    Stem faults on every *observable* net (one with a structural path to a
    primary output — faults on floating lines are trivially untestable and
    not part of the circuit proper), plus branch faults on every input pin
    whose driving net fans out to more than one pin (otherwise the branch
    is indistinguishable from the stem).
    """
    faults: List[StuckFault] = []
    fanout = circuit.fanout_map()
    observable = circuit.transitive_fanin(circuit.outputs)
    for net in circuit.nets():
        if net not in observable:
            continue
        gate = circuit.gate(net)
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            continue
        for v in (0, 1):
            faults.append(StuckFault(net, v))
    for gate in circuit.gates():
        if gate.name not in observable:
            continue
        for pin, f in enumerate(gate.fanins):
            if len(fanout.get(f, ())) > 1:
                for v in (0, 1):
                    faults.append(StuckFault(f, v, reader=gate.name, pin=pin))
    return faults


def collapsed_faults(circuit: Circuit) -> List[StuckFault]:
    """Equivalence-collapsed fault list (one representative per class).

    Collapsing is applied across each gate: for an AND gate, every input
    s-a-0 is equivalent to the output s-a-0, so the input representatives
    are dropped in favour of the output fault; dually for OR/NOR/NAND.
    NOT/BUF input faults collapse into output faults entirely.  Branch
    faults of fanout stems are always kept (they are checkpoint sites).
    """
    keep: Set[StuckFault] = set()
    fanout = circuit.fanout_map()
    observable = circuit.transitive_fanin(circuit.outputs)

    for gate in circuit.gates():
        gt = gate.gtype
        if gt in (GateType.CONST0, GateType.CONST1):
            continue
        if gate.name not in observable:
            continue
        # Stem faults (PIs and gate outputs) always kept.
        keep.add(StuckFault(gate.name, 0))
        keep.add(StuckFault(gate.name, 1))

    # Input-pin faults: keep the ones not equivalent to the gate's output
    # fault.  A pin fault site exists per pin; for non-fanout drivers the
    # pin is the driver's stem, already represented, so only the
    # *non-equivalent* value needs a branch entry when the driver fans out.
    for gate in circuit.gates():
        gt = gate.gtype
        if gt in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            continue
        if gate.name not in observable:
            continue
        for pin, f in enumerate(gate.fanins):
            branches = len(fanout.get(f, ()))
            if branches <= 1:
                continue  # stem faults cover it
            for v in (0, 1):
                if _pin_equivalent_to_output(gt, v):
                    continue
                keep.add(StuckFault(f, v, reader=gate.name, pin=pin))
    return sorted(
        keep, key=lambda f: (f.net, f.value, f.reader or "", f.pin or -1)
    )


def _pin_equivalent_to_output(gt: GateType, value: int) -> bool:
    """Is an input s-a-*value* equivalent to an output fault of the gate?"""
    if gt in (GateType.BUF, GateType.NOT):
        return True
    if gt in (GateType.AND, GateType.NAND):
        return value == 0
    if gt in (GateType.OR, GateType.NOR):
        return value == 1
    return False  # XOR/XNOR inputs are not equivalent to output faults


def fault_universe(circuit: Circuit, collapse: bool = True) -> List[StuckFault]:
    """The fault list used by simulators and ATPG (collapsed by default)."""
    return collapsed_faults(circuit) if collapse else all_faults(circuit)
