"""Random-pattern stuck-at testability campaigns (Table 6 semantics).

Applies seeded random patterns in packed batches with fault dropping,
recording for each fault the index of the first detecting pattern.  The
report mirrors Table 6's columns: total faults, faults remaining undetected
after the budget, and the last *effective* pattern (the highest pattern
index that detected a previously-undetected fault).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..netlist import Circuit
from ..sim.patterns import random_words
from .fsim import FaultSimulator
from .model import StuckFault, fault_universe


@dataclass
class StuckAtCoverageResult:
    """Outcome of a random-pattern stuck-at campaign."""

    circuit_name: str
    total_faults: int
    detected: int
    patterns_applied: int
    last_effective_pattern: Optional[int]
    first_detection: Dict[StuckFault, int] = field(repr=False, default_factory=dict)

    @property
    def remaining(self) -> int:
        """Faults still undetected when the campaign ended."""
        return self.total_faults - self.detected

    @property
    def coverage(self) -> float:
        """Detected fraction."""
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults

    def undetected_faults(
        self, faults: Sequence[StuckFault]
    ) -> List[StuckFault]:
        """Subset of *faults* never detected (order preserved)."""
        return [f for f in faults if f not in self.first_detection]


def random_stuck_at_campaign(
    circuit: Circuit,
    faults: Optional[Sequence[StuckFault]] = None,
    seed: int = 0,
    max_patterns: int = 1 << 16,
    batch_size: int = 256,
    stop_when_complete: bool = True,
) -> StuckAtCoverageResult:
    """Random-pattern fault simulation with fault dropping.

    Parameters
    ----------
    faults:
        Fault list; defaults to the collapsed universe.
    seed, max_patterns, batch_size:
        Campaign shape.  Pattern indices are 1-based in the report, like
        the paper's "eff.patt" column.
    stop_when_complete:
        Stop early once every fault has been detected.
    """
    if faults is None:
        faults = fault_universe(circuit)
    sim = FaultSimulator(circuit)
    rng = random.Random(seed)
    active = list(faults)
    first_detection: Dict[StuckFault, int] = {}
    applied = 0
    last_effective: Optional[int] = None

    while applied < max_patterns and (active or not stop_when_complete):
        if not active:
            break
        width = min(batch_size, max_patterns - applied)
        words = random_words(circuit.inputs, width, rng)
        good = sim.good_values(words, width)
        survivors: List[StuckFault] = []
        for fault in active:
            det = sim.detection_word(fault, good, width)
            if det:
                first_bit = (det & -det).bit_length() - 1
                index = applied + first_bit + 1
                first_detection[fault] = index
                if last_effective is None or index > last_effective:
                    last_effective = index
            else:
                survivors.append(fault)
        active = survivors
        applied += width

    return StuckAtCoverageResult(
        circuit_name=circuit.name,
        total_faults=len(faults),
        detected=len(first_detection),
        patterns_applied=applied,
        last_effective_pattern=last_effective,
        first_detection=first_detection,
    )
