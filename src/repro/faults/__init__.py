"""Stuck-at faults: model, collapsing, parallel-pattern fault simulation,
random-pattern testability campaigns (Table 6 substrate)."""

from .model import (
    StuckFault,
    all_faults,
    collapsed_faults,
    fault_universe,
)
from .cop import (
    detection_probability,
    hardest_faults,
    observabilities,
    signal_probabilities,
)
from .dictionary import (
    FaultDictionary,
    build_fault_dictionary,
    observed_syndrome,
)
from .fsim import FaultSimulator, serial_detects, simulate_faults
from .random_test import StuckAtCoverageResult, random_stuck_at_campaign

__all__ = [
    "FaultDictionary",
    "FaultSimulator",
    "StuckAtCoverageResult",
    "StuckFault",
    "all_faults",
    "build_fault_dictionary",
    "collapsed_faults",
    "detection_probability",
    "hardest_faults",
    "observabilities",
    "observed_syndrome",
    "fault_universe",
    "random_stuck_at_campaign",
    "serial_detects",
    "signal_probabilities",
    "simulate_faults",
]
