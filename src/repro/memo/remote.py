"""RemoteMemo: the identification memo over the service HTTP API.

:class:`~repro.fabric.RemoteFabric` workers have no shared filesystem,
so a :class:`~repro.memo.MemoStore` directory cannot be the fleet-wide
memo.  :class:`RemoteMemo` is the drop-in replacement: the same
``lookup``/``record`` surface (so the planner and the procedures cannot
tell the difference), backed by the service's ``GET/PUT /memo/<id>``
routes, where the server holds one authoritative :class:`MemoStore`.

Trust discipline mirrors the store's decode-or-quarantine rule: a
``GET`` response is decoded with the *same* strict validator as an entry
file (:func:`repro.memo.store.decode_entry_doc`) against the key this
client computed locally — a corrupt, truncated, or mismatched document
degrades to a miss, never to a wrong hit.  ``PUT`` ships one-row entry
documents; the server merges monotonically, so concurrent recorders in a
fleet lose nothing.

Failure discipline is fail-open: the memo is purely an accelerator, so
an unreachable or erroring server degrades lookups to misses and drops
records silently (counted in ``stats``/obs) rather than failing the run.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from threading import RLock
from typing import Dict, Optional

from ..comparison.identify import (
    PositionKey,
    PositionResult,
    identification_key,
)
from ..obs import Registry, get_registry
from .keys import MEMO_VERSION, memo_key_doc, memo_key_id
from .store import (
    ENTRY_FORMAT,
    LOOKUP_BUCKETS,
    MemoStats,
    _encode_result,
    decode_entry_doc,
)

__all__ = ["RemoteMemo"]


class RemoteMemo:
    """MemoStore-compatible identification memo served over HTTP.

    Parameters
    ----------
    base_url:
        The service base URL (``repro-resynth serve --memo DIR`` makes
        the server side authoritative).
    timeout:
        Per-request socket timeout.  Memo traffic is latency-sensitive
        (one lookup guards one permutation search), hence the small
        default; a slow server degrades to misses, not stalls.
    hot_entries:
        In-process LRU bound over raw search keys, exactly as in
        :class:`~repro.memo.MemoStore` — warm lookups never touch the
        network.
    registry:
        Target for the ``memo_*`` metrics (plus
        ``memo_remote_errors_total`` for fail-open degradations);
        default: the process-wide registry.
    client:
        Injectable transport (tests); defaults to a
        :class:`repro.service.client.ServiceClient`, whose GET retries
        also cover transient memo-server blips.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        hot_entries: int = 1 << 17,
        registry: Optional[Registry] = None,
        client=None,
    ) -> None:
        if hot_entries < 1:
            raise ValueError(f"hot_entries must be >= 1, got {hot_entries}")
        if client is None:
            from ..service.client import ServiceClient

            client = ServiceClient(base_url, timeout=timeout)
        self._client = client
        self.base_url = base_url.rstrip("/")
        self.hot_entries = hot_entries
        self._lock = RLock()
        self._hot: "OrderedDict[PositionKey, PositionResult]" = OrderedDict()
        self.stats = MemoStats()
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._hits = registry.get_counter(
            "memo_hits_total", "identification memo lookups served")
        self._misses = registry.get_counter(
            "memo_misses_total", "identification memo lookups missed")
        self._puts = registry.get_counter(
            "memo_puts_total", "identification results persisted")
        self._corrupt = registry.get_counter(
            "memo_corrupt_entries_total",
            "entry files dropped as unparseable/invalid (served as misses)")
        self._hot_evictions = registry.get_counter(
            "memo_hot_evictions_total",
            "hot-tier rows evicted by the in-process LRU bound")
        self._remote_errors = registry.get_counter(
            "memo_remote_errors_total",
            "memo requests degraded fail-open (connection/API errors)")
        self._lookup_hist = registry.get_histogram(
            "memo_lookup_seconds", "latency of one memo lookup",
            buckets=LOOKUP_BUCKETS)

    def __len__(self) -> int:
        """Hot-tier row count."""
        with self._lock:
            return len(self._hot)

    # ------------------------------------------------------------------ #

    def _hot_put(self, raw: PositionKey, result: PositionResult) -> None:
        hot = self._hot
        if raw in hot:
            hot.move_to_end(raw)
            hot[raw] = result
            return
        while len(hot) >= self.hot_entries:
            hot.popitem(last=False)
            self.stats.hot_evictions += 1
            self._hot_evictions.inc()
        hot[raw] = result

    def _connection_errors(self):
        from ..service.client import ServiceAPIError, ServiceConnectionError

        return ServiceAPIError, ServiceConnectionError

    # ------------------------------------------------------------------ #
    # the cache surface (MemoStore-compatible)
    # ------------------------------------------------------------------ #

    def lookup(
        self,
        table: int,
        n: int,
        perm_budget: int,
        try_offset: bool,
        seed: int,
        max_specs: int,
    ) -> Optional[PositionResult]:
        """The stored result for one search, or None on a miss.

        Hot tier first; then one ``GET /memo/<id>`` whose response must
        clear the store's strict entry validation against the locally
        computed key.  404, connection failure, or any anomaly in the
        document is a miss.
        """
        start = time.perf_counter()
        api_error, conn_error = self._connection_errors()
        raw = identification_key(
            table, n, perm_budget, try_offset, seed, max_specs)
        with self._lock:
            got = self._hot.get(raw)
            if got is not None:
                self._hot.move_to_end(raw)
        if got is None:
            key_doc = memo_key_doc(
                table, n, perm_budget, try_offset, seed, max_specs)
            class_id = memo_key_id(key_doc)
            doc = None
            try:
                doc = self._client.memo_entry(class_id)
            except api_error as exc:
                if exc.code != 404:
                    self.stats.corrupt += 1
                    self._remote_errors.inc()
            except (conn_error, OSError):
                self._remote_errors.inc()
            if doc is not None:
                try:
                    rows = decode_entry_doc(doc, key_doc, raw[1:])
                except (ValueError, KeyError, TypeError):
                    # Quarantine client-side: a bad wire document is a
                    # miss, never a wrong hit.
                    self.stats.corrupt += 1
                    self._corrupt.inc()
                else:
                    with self._lock:
                        for row_key, result in rows.items():
                            self._hot_put(row_key, result)
                        got = self._hot.get(raw)
        if got is None:
            self.stats.misses += 1
            self._misses.inc()
        else:
            self.stats.hits += 1
            self._hits.inc()
        self._lookup_hist.observe(time.perf_counter() - start)
        return got

    def record(
        self,
        table: int,
        n: int,
        perm_budget: int,
        try_offset: bool,
        seed: int,
        max_specs: int,
        result: PositionResult,
    ) -> None:
        """Install one freshly computed result locally and ship it.

        The PUT carries a one-row entry document; the server merges it
        into the authoritative store (monotone, so racing recorders keep
        each other's rows).  An unreachable server only loses the
        persistence, never the local hot-tier install.
        """
        api_error, conn_error = self._connection_errors()
        raw = identification_key(
            table, n, perm_budget, try_offset, seed, max_specs)
        with self._lock:
            self._hot_put(raw, result)
        key_doc = memo_key_doc(
            table, n, perm_budget, try_offset, seed, max_specs)
        class_id = memo_key_id(key_doc)
        doc: Dict[str, object] = {
            "format": ENTRY_FORMAT,
            "version": MEMO_VERSION,
            "key": key_doc,
            "results": {format(table, "x"): _encode_result(result)},
        }
        try:
            self._client.put_memo_entry(class_id, doc)
        except (api_error, conn_error, OSError):
            self._remote_errors.inc()
            return
        self.stats.puts += 1
        self._puts.inc()
