"""Persistent, content-addressed identification cache (``repro.memo``).

Identification — the permutation search of
:func:`repro.comparison.identify.identify_positions` — dominates
resynthesis wall time, and its results are pure function values of
``(table, n, perm_budget, try_offset, seed, max_specs)``.  The in-process
:class:`~repro.comparison.IdentificationCache` already amortizes repeats
within one process; this package amortizes them *across* processes and
runs: a :class:`MemoStore` persists search results in a directory of
content-addressed JSON entries, shared by serial runs, ``--jobs N``
coordinators, and service workers alike.

A stored result is returned **verbatim** — a hit is bit-for-bit what the
local search would have computed, so wiring a memo in cannot change any
report (the ``memo`` differential oracle in :mod:`repro.verify` fuzzes
exactly that contract; docs/MEMO.md states it in full).
"""

from .keys import (
    KEY_FORMAT,
    MEMO_VERSION,
    memo_key_doc,
    memo_key_id,
    table_column_counts,
)
from .store import MemoStats, MemoStore

__all__ = [
    "KEY_FORMAT",
    "MEMO_VERSION",
    "MemoStats",
    "MemoStore",
    "memo_key_doc",
    "memo_key_id",
    "table_column_counts",
]
