"""Persistent, content-addressed identification cache (``repro.memo``).

Identification — the permutation search of
:func:`repro.comparison.identify.identify_positions` — dominates
resynthesis wall time, and its results are pure function values of
``(table, n, perm_budget, try_offset, seed, max_specs)``.  The in-process
:class:`~repro.comparison.IdentificationCache` already amortizes repeats
within one process; this package amortizes them *across* processes and
runs: a :class:`MemoStore` persists search results in a directory of
content-addressed JSON entries, shared by serial runs, ``--jobs N``
coordinators, and service workers alike.

A stored result is returned **verbatim** — a hit is bit-for-bit what the
local search would have computed, so wiring a memo in cannot change any
report (the ``memo`` differential oracle in :mod:`repro.verify` fuzzes
exactly that contract; docs/MEMO.md states it in full).
"""

from .keys import (
    KEY_FORMAT,
    MEMO_VERSION,
    memo_key_doc,
    memo_key_id,
    table_column_counts,
)
from .store import (
    ENTRY_FORMAT,
    MemoStats,
    MemoStore,
    decode_entry_doc,
    entry_key_tail,
    validate_key_doc,
)

__all__ = [
    "ENTRY_FORMAT",
    "KEY_FORMAT",
    "MEMO_VERSION",
    "MemoStats",
    "MemoStore",
    "RemoteMemo",
    "decode_entry_doc",
    "entry_key_tail",
    "memo_key_doc",
    "memo_key_id",
    "table_column_counts",
    "validate_key_doc",
]


def __getattr__(name: str):
    # RemoteMemo pulls in the service HTTP client; loaded lazily so the
    # plain MemoStore path never pays for (or cycles through) it.
    if name == "RemoteMemo":
        from .remote import RemoteMemo

        return RemoteMemo
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
