"""File-backed identification memo with an in-process LRU hot tier.

Layout: one JSON document per key class, sharded by hash prefix::

    <root>/entries/<id[1:3]>/<id>.json
        {"format": "repro-memo-entry", "version": 1,
         "key": <memo_key_doc>,
         "results": {"<table hex>": [[[perm...], L, U, comp], ...], tried]}}

The class key (:mod:`repro.memo.keys`) is permutation-invariant, so
input-permuted variants of a function share one file; the ``results``
mapping inside is keyed by the *exact* table, and a lookup returns the
stored :data:`~repro.comparison.identify.PositionResult` verbatim.  A
hit is therefore bit-for-bit what :func:`identify_positions` would have
computed — the store can serve a wrong answer only if a wrong answer was
stored (which the ``memo`` differential oracle exists to catch).

Durability reuses the :mod:`repro.persist` discipline of the service's
ArtifactStore: same-directory temp + fsync + rename, so concurrent
writers and crashes leave either the old document or the new one, never
a torn mix.  Read-side strictness is the complement: *any* anomaly in an
entry file — unparseable JSON, a format/version/key mismatch, a result
row that fails structural validation — degrades to a miss (counted in
``memo_corrupt_entries_total``, the offending file unlinked best-effort)
and never to a wrong hit.

Obs instrumentation (all under ``memo_*``; see docs/OBSERVABILITY.md):
hit/miss/put/corrupt/stale counters, disk- and hot-tier eviction
counters, live entry gauges, and a lookup-latency histogram.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..comparison.identify import (
    PositionKey,
    PositionResult,
    identification_key,
)
from ..obs import Registry, get_registry
from ..persist import atomic_write_text
from .keys import KEY_FORMAT, MEMO_VERSION, memo_key_doc, memo_key_id

ENTRY_FORMAT = "repro-memo-entry"

#: Lookup latencies are dict-or-one-small-file reads; the default
#: seconds-flavoured buckets would lump everything under 1ms.
LOOKUP_BUCKETS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1,
)


@dataclass
class MemoStats:
    """Per-store traffic accounting (the obs counters are process-wide)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0
    stale: int = 0
    evictions: int = 0
    hot_evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0


def _encode_result(result: PositionResult) -> List[object]:
    """JSON-ready form of one search result."""
    hits, tried = result
    return [
        [[list(perm), lo, hi, bool(comp)] for perm, lo, hi, comp in hits],
        tried,
    ]


def _decode_result(value: object, n: int) -> PositionResult:
    """Rebuild a search result, validating structure (raises on anomaly)."""
    if not isinstance(value, list) or len(value) != 2:
        raise ValueError("result row is not a [hits, tried] pair")
    hits_raw, tried = value
    if (not isinstance(tried, int) or isinstance(tried, bool)
            or tried < 0):
        raise ValueError("tried-count is not a non-negative integer")
    if not isinstance(hits_raw, list):
        raise ValueError("hits is not a list")
    expected = list(range(n))
    hits = []
    for row in hits_raw:
        if not isinstance(row, list) or len(row) != 4:
            raise ValueError("hit row is not a [perm, L, U, comp] quad")
        perm_raw, lo, hi, comp = row
        perm = tuple(int(x) for x in perm_raw)
        if sorted(perm) != expected:
            raise ValueError(f"{perm!r} is not a permutation of 0..{n - 1}")
        if (isinstance(lo, bool) or isinstance(hi, bool)
                or not isinstance(lo, int) or not isinstance(hi, int)
                or not isinstance(comp, bool)):
            raise ValueError("hit bounds/complement have wrong types")
        if not 0 <= lo <= hi < (1 << n):
            raise ValueError(f"interval [{lo}, {hi}] out of range")
        hits.append((perm, lo, hi, comp))
    return (tuple(hits), tried)


#: The exact field set of a key document (anything else is rejected).
_KEY_FIELDS = frozenset(
    ("format", "version", "n", "on", "cols",
     "perm_budget", "try_offset", "seed", "max_specs"))

#: Upper bound on a key's input count.  Everything in the pipeline tops
#: out at K=6; 24 leaves generous headroom while keeping ``1 << (1 << n)``
#: un-abusable by a hostile PUT (n=1000 would allocate a 2**1000-bit int).
_MAX_KEY_N = 24


def validate_key_doc(doc: object) -> Dict[str, object]:
    """Structurally validate an *untrusted* key document.

    Returns the document on success; raises :class:`ValueError` on any
    anomaly.  Used where the key arrives from outside instead of being
    computed locally — the service's ``PUT /memo/<id>`` route.
    """
    if not isinstance(doc, dict):
        raise ValueError("key document is not an object")
    if set(doc) != _KEY_FIELDS:
        raise ValueError("key document has a wrong field set")
    if doc["format"] != KEY_FORMAT:
        raise ValueError("not a repro-memo-key document")
    if doc["version"] != MEMO_VERSION:
        raise ValueError(f"unsupported key version {doc['version']!r}")
    n = doc["n"]
    if not isinstance(n, int) or isinstance(n, bool) or not 1 <= n <= _MAX_KEY_N:
        raise ValueError(f"key input count {n!r} out of range")
    on = doc["on"]
    if (not isinstance(on, int) or isinstance(on, bool)
            or not 0 <= on <= (1 << n)):
        raise ValueError("key ON-count out of range")
    cols = doc["cols"]
    if (not isinstance(cols, list) or len(cols) != n
            or any(not isinstance(c, int) or isinstance(c, bool)
                   or not 0 <= c <= (1 << n) for c in cols)
            or cols != sorted(cols)):
        raise ValueError("key column counts are not a sorted n-list")
    for knob in ("perm_budget", "seed", "max_specs"):
        value = doc[knob]
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"key {knob} is not an integer")
    if not isinstance(doc["try_offset"], bool):
        raise ValueError("key try_offset is not a boolean")
    return doc


def entry_key_tail(key_doc: Dict[str, object]) -> Tuple:
    """The non-table part of every raw search key in one entry class."""
    return (key_doc["n"], key_doc["perm_budget"], key_doc["try_offset"],
            key_doc["seed"], key_doc["max_specs"])


def decode_entry_doc(
    doc: object,
    key_doc: Dict[str, object],
    raw_tail: Tuple,
) -> Dict[PositionKey, PositionResult]:
    """Strictly decode one entry document against its expected key.

    The shared decode-or-quarantine validator: :class:`MemoStore` runs
    it over entry *files* and :class:`repro.memo.remote.RemoteMemo` runs
    it over ``GET /memo/<id>`` responses, so a byte served over the wire
    clears exactly the checks a byte read from disk clears.  Raises
    :class:`ValueError` on any anomaly.
    """
    n = key_doc["n"]
    if not isinstance(doc, dict):
        raise ValueError("entry document is not an object")
    if doc.get("format") != ENTRY_FORMAT:
        raise ValueError("not a repro-memo-entry document")
    if doc.get("version") != MEMO_VERSION:
        raise ValueError(
            f"unsupported entry version {doc.get('version')!r}")
    if doc.get("key") != key_doc:
        raise ValueError("entry key does not match its address")
    results_raw = doc.get("results")
    if not isinstance(results_raw, dict):
        raise ValueError("entry results is not an object")
    out: Dict[PositionKey, PositionResult] = {}
    limit = 1 << (1 << n)
    for table_hex, value in results_raw.items():
        table = int(table_hex, 16)
        if not 0 <= table < limit:
            raise ValueError("table out of range for n inputs")
        if bin(table).count("1") != key_doc["on"]:
            raise ValueError("table ON-count contradicts the key")
        out[(table,) + raw_tail] = _decode_result(value, n)
    return out


class MemoStore:
    """Persistent identification cache shared across processes and runs.

    Parameters
    ----------
    root:
        Store directory (created if missing).  Safe to share between
        concurrent processes: writes are atomic whole-file replaces, so
        racing writers settle on one intact document (losing at worst
        the other's rows, never producing a torn file).
    max_entries:
        Size bound on persisted entry *files*; exceeding it evicts the
        oldest-modified entries (LRU by file mtime) down to the bound.
    hot_entries:
        Size bound on the in-process hot tier (raw search key ->
        result), evicted LRU.  Warm lookups are dict-speed; each entry
        file is parsed at most once per process (per on-disk version).
    registry:
        Target :class:`repro.obs.Registry` for the ``memo_*`` metrics;
        default: the process-wide registry.
    """

    def __init__(
        self,
        root: str,
        max_entries: int = 200_000,
        hot_entries: int = 1 << 17,
        registry: Optional[Registry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if hot_entries < 1:
            raise ValueError(f"hot_entries must be >= 1, got {hot_entries}")
        self.root = os.path.abspath(root)
        self.max_entries = max_entries
        self.hot_entries = hot_entries
        self._entries_dir = os.path.join(self.root, "entries")
        os.makedirs(self._entries_dir, exist_ok=True)
        self._lock = threading.RLock()
        self._hot: "OrderedDict[PositionKey, PositionResult]" = OrderedDict()
        #: class id -> st_mtime_ns of the entry file version whose rows
        #: are (were) installed in the hot tier.
        self._loaded: Dict[str, int] = {}
        self._disk_entries = self._count_entries()
        self.stats = MemoStats()
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._hits = registry.get_counter(
            "memo_hits_total", "identification memo lookups served")
        self._misses = registry.get_counter(
            "memo_misses_total", "identification memo lookups missed")
        self._puts = registry.get_counter(
            "memo_puts_total", "identification results persisted")
        self._corrupt = registry.get_counter(
            "memo_corrupt_entries_total",
            "entry files dropped as unparseable/invalid (served as misses)")
        self._stale = registry.get_counter(
            "memo_stale_entries_total",
            "entry files re-read because another writer replaced them")
        self._evictions = registry.get_counter(
            "memo_evictions_total",
            "persisted entry files evicted by the size bound")
        self._hot_evictions = registry.get_counter(
            "memo_hot_evictions_total",
            "hot-tier rows evicted by the in-process LRU bound")
        self._lookup_hist = registry.get_histogram(
            "memo_lookup_seconds", "latency of one memo lookup",
            buckets=LOOKUP_BUCKETS)
        self._publish_gauges()

    # ------------------------------------------------------------------ #
    # paths / layout
    # ------------------------------------------------------------------ #

    def entry_path(self, class_id: str) -> str:
        """The entry file of one class id (no existence check)."""
        return os.path.join(self._entries_dir, class_id[1:3],
                            class_id + ".json")

    def _count_entries(self) -> int:
        count = 0
        for _dirpath, _dirs, names in os.walk(self._entries_dir):
            count += sum(1 for name in names if name.endswith(".json"))
        return count

    @property
    def disk_entries(self) -> int:
        """Entry files currently persisted (tracked, not re-scanned)."""
        with self._lock:
            return self._disk_entries

    def __len__(self) -> int:
        """Hot-tier row count."""
        with self._lock:
            return len(self._hot)

    def _publish_gauges(self) -> None:
        self._registry.set_gauge("memo_disk_entries", self._disk_entries)
        self._registry.set_gauge("memo_hot_entries", len(self._hot))

    # ------------------------------------------------------------------ #
    # hot tier
    # ------------------------------------------------------------------ #

    def _hot_put(self, raw: PositionKey, result: PositionResult) -> None:
        hot = self._hot
        if raw in hot:
            hot.move_to_end(raw)
            hot[raw] = result
            return
        while len(hot) >= self.hot_entries:
            hot.popitem(last=False)
            self.stats.hot_evictions += 1
            self._hot_evictions.inc()
        hot[raw] = result

    # ------------------------------------------------------------------ #
    # entry file IO
    # ------------------------------------------------------------------ #

    def _read_entry(
        self, path: str, key_doc: Dict[str, object], raw_tail: Tuple
    ) -> Optional[Dict[PositionKey, PositionResult]]:
        """Parse + validate one entry file; None (counted corrupt) on any
        anomaly.  *raw_tail* is ``(n, perm_budget, try_offset, seed,
        max_specs)`` — the knobs every row of this class shares."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            return decode_entry_doc(doc, key_doc, raw_tail)
        except (OSError, ValueError, KeyError, TypeError):
            self._drop_corrupt(path)
            return None

    def _drop_corrupt(self, path: str) -> None:
        """A bad entry degrades to a miss: count it, remove the file."""
        self.stats.corrupt += 1
        self._corrupt.inc()
        try:
            os.unlink(path)
            self._disk_entries = max(0, self._disk_entries - 1)
        except OSError:
            pass
        base = os.path.basename(path)
        if base.endswith(".json"):
            self._loaded.pop(base[:-5], None)

    def _write_entry(
        self,
        path: str,
        key_doc: Dict[str, object],
        rows: Dict[PositionKey, PositionResult],
    ) -> None:
        doc = {
            "format": ENTRY_FORMAT,
            "version": MEMO_VERSION,
            "key": key_doc,
            "results": {
                format(raw[0], "x"): _encode_result(result)
                for raw, result in sorted(rows.items())
            },
        }
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_text(path, json.dumps(doc, indent=1, sort_keys=True))

    # ------------------------------------------------------------------ #
    # the cache surface
    # ------------------------------------------------------------------ #

    def lookup(
        self,
        table: int,
        n: int,
        perm_budget: int,
        try_offset: bool,
        seed: int,
        max_specs: int,
    ) -> Optional[PositionResult]:
        """The stored result for one search, or None on a miss.

        A returned value is exactly what :func:`identify_positions` on
        the same arguments computes; corrupted or mismatched entries are
        dropped and reported as misses.
        """
        start = time.perf_counter()
        raw = identification_key(
            table, n, perm_budget, try_offset, seed, max_specs)
        with self._lock:
            got = self._hot.get(raw)
            if got is not None:
                self._hot.move_to_end(raw)
            else:
                key_doc = memo_key_doc(
                    table, n, perm_budget, try_offset, seed, max_specs)
                class_id = memo_key_id(key_doc)
                path = self.entry_path(class_id)
                try:
                    mtime = os.stat(path).st_mtime_ns
                except OSError:
                    mtime = None
                if mtime is not None and self._loaded.get(class_id) != mtime:
                    if class_id in self._loaded:
                        self.stats.stale += 1
                        self._stale.inc()
                    rows = self._read_entry(path, key_doc, raw[1:])
                    if rows is not None:
                        for row_key, result in rows.items():
                            self._hot_put(row_key, result)
                        self._loaded[class_id] = mtime
                        got = self._hot.get(raw)
            if got is None:
                self.stats.misses += 1
                self._misses.inc()
            else:
                self.stats.hits += 1
                self._hits.inc()
            self._publish_gauges()
        self._lookup_hist.observe(time.perf_counter() - start)
        return got

    def record(
        self,
        table: int,
        n: int,
        perm_budget: int,
        try_offset: bool,
        seed: int,
        max_specs: int,
        result: PositionResult,
    ) -> None:
        """Persist one freshly computed search result.

        Merges into the class's entry file read-modify-write; the atomic
        replace means a concurrent writer's interleaved update is lost
        whole (a tolerable cache under-fill), never mixed into a torn
        document.  Re-recording an identical row is a no-op on disk.
        """
        raw = identification_key(
            table, n, perm_budget, try_offset, seed, max_specs)
        with self._lock:
            self._hot_put(raw, result)
            key_doc = memo_key_doc(
                table, n, perm_budget, try_offset, seed, max_specs)
            class_id = memo_key_id(key_doc)
            path = self.entry_path(class_id)
            rows: Dict[PositionKey, PositionResult] = {}
            existed = os.path.exists(path)
            if existed:
                loaded = self._read_entry(path, key_doc, raw[1:])
                if loaded is None:
                    existed = False  # corrupt entry dropped; rebuild fresh
                else:
                    rows = loaded
            if rows.get(raw) == result:
                return
            rows[raw] = result
            for row_key, row_result in rows.items():
                self._hot_put(row_key, row_result)
            self._write_entry(path, key_doc, rows)
            try:
                self._loaded[class_id] = os.stat(path).st_mtime_ns
            except OSError:
                self._loaded.pop(class_id, None)
            self.stats.puts += 1
            self._puts.inc()
            if not existed:
                self._disk_entries += 1
                self._evict_over_limit()
            self._publish_gauges()

    # ------------------------------------------------------------------ #
    # the wire surface (service GET/PUT /memo/<id>)
    # ------------------------------------------------------------------ #

    def load_entry_doc(self, class_id: str) -> Optional[Dict[str, object]]:
        """The raw entry document of one class, or None when absent.

        Served verbatim over ``GET /memo/<id>``; the server does not
        re-validate — clients run :func:`decode_entry_doc` against the
        key *they* computed, so a corrupt or mismatched document is
        quarantined where it would do harm.
        """
        path = self.entry_path(class_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) else None

    def merge_entry_doc(self, class_id: str, doc: object) -> int:
        """Merge an *untrusted* entry document in; returns rows added.

        The write half of ``PUT /memo/<id>``.  The document must carry a
        structurally valid key (:func:`validate_key_doc`) that hashes to
        *class_id*, and every result row must clear the same strict
        decode as a local entry file — anything else raises
        :class:`ValueError` and nothing is written.  Merging is
        monotone: rows already present win over incoming ones (pure
        functions make a genuine conflict impossible; a liar loses the
        race at worst), so concurrent PUTs from a worker fleet converge.
        """
        if not isinstance(doc, dict):
            raise ValueError("entry document is not an object")
        key_doc = validate_key_doc(doc.get("key"))
        if memo_key_id(key_doc) != class_id:
            raise ValueError("entry key does not hash to its address")
        raw_tail = entry_key_tail(key_doc)
        incoming = decode_entry_doc(doc, key_doc, raw_tail)
        merged = 0
        with self._lock:
            path = self.entry_path(class_id)
            rows: Dict[PositionKey, PositionResult] = {}
            existed = os.path.exists(path)
            if existed:
                loaded = self._read_entry(path, key_doc, raw_tail)
                if loaded is None:
                    existed = False  # corrupt entry dropped; rebuild fresh
                else:
                    rows = loaded
            for raw, result in incoming.items():
                if raw not in rows:
                    rows[raw] = result
                    merged += 1
            for row_key, row_result in rows.items():
                self._hot_put(row_key, row_result)
            if merged:
                self._write_entry(path, key_doc, rows)
                try:
                    self._loaded[class_id] = os.stat(path).st_mtime_ns
                except OSError:
                    self._loaded.pop(class_id, None)
                self.stats.puts += merged
                self._puts.inc(merged)
                if not existed:
                    self._disk_entries += 1
                    self._evict_over_limit()
            self._publish_gauges()
        return merged

    # ------------------------------------------------------------------ #
    # eviction
    # ------------------------------------------------------------------ #

    def _evict_over_limit(self) -> None:
        """Unlink oldest-modified entry files until within the bound."""
        if self._disk_entries <= self.max_entries:
            return
        files: List[Tuple[int, str]] = []
        for dirpath, _dirs, names in os.walk(self._entries_dir):
            for name in names:
                if not name.endswith(".json"):
                    continue
                full = os.path.join(dirpath, name)
                try:
                    files.append((os.stat(full).st_mtime_ns, full))
                except OSError:
                    continue
        files.sort()
        excess = len(files) - self.max_entries
        evicted = 0
        for _mtime, full in files[:max(0, excess)]:
            try:
                os.unlink(full)
            except OSError:
                continue
            evicted += 1
            base = os.path.basename(full)
            self._loaded.pop(base[:-5], None)
        self._disk_entries = len(files) - evicted
        self.stats.evictions += evicted
        if evicted:
            self._evictions.inc(evicted)
