"""The memo's content-addressed key scheme.

One persistent entry groups the identification results of a *class* of
truth tables: the key is a permutation-invariant signature of the table
plus every search knob, hashed with the same sha256-of-canonical-JSON
idiom as :class:`repro.service.jobspec.JobSpec` ids.  Inside the entry,
results are stored per *exact* table — the class key only decides which
file to open; correctness never rests on it.

Why a class key instead of hashing the exact table?  Input-permuted
variants of the same function land in the same entry file (they share the
signature), so the store's locality follows the structural redundancy
resynthesis actually encounters, and the adversarial canonicalization
properties are checkable in isolation:

* permuting a table's inputs permutes its per-position ON-column counts,
  so the *sorted* counts — and therefore the key — are unchanged;
* two tables differing in one minterm differ in ON-set size, so they can
  never share a key;
* complement/negation variants may or may not share a class key, but can
  never collide *incorrectly*: the per-table sub-entries are exact.

The signature is deliberately cheap — O(|ON| * n) — because it is only
computed on an in-process cache miss, where the alternative is the
permutation search itself.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

KEY_FORMAT = "repro-memo-key"
MEMO_VERSION = 1


def table_column_counts(table: int, n: int) -> List[int]:
    """Per-input-position ON-minterm counts of a truth table.

    ``counts[pos]`` is the number of ON minterms whose bit at input
    position *pos* (MSB first, as everywhere in :mod:`repro.sim`) is 1.
    An input permutation of the function permutes this list, which is
    what makes its sorted form permutation-invariant.
    """
    counts = [0] * n
    m = table
    while m:
        low = m & -m
        minterm = low.bit_length() - 1
        for pos in range(n):
            if (minterm >> (n - pos - 1)) & 1:
                counts[pos] += 1
        m ^= low
    return counts


def memo_key_doc(
    table: int,
    n: int,
    perm_budget: int,
    try_offset: bool,
    seed: int,
    max_specs: int,
) -> Dict[str, object]:
    """The canonical key document of one search's entry class.

    Every search knob is part of the key — all of them change the search
    outcome — alongside the permutation-invariant table signature
    (input count, ON-set size, sorted ON-column counts).
    """
    return {
        "format": KEY_FORMAT,
        "version": MEMO_VERSION,
        "n": n,
        "on": bin(table).count("1"),
        "cols": sorted(table_column_counts(table, n)),
        "perm_budget": perm_budget,
        "try_offset": bool(try_offset),
        "seed": seed,
        "max_specs": max_specs,
    }


def memo_key_id(doc: Dict[str, object]) -> str:
    """Content address of a key document (``m`` + sha256 prefix).

    The same canonical-JSON hashing idiom as ``JobSpec.job_id``: sorted
    keys, compact separators, sha256, short hex prefix.
    """
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return "m" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
