"""Command-line interface: ``repro-resynth``.

Subcommands
-----------
``stats CIRCUIT``
    Print size/path statistics for a circuit (suite name or ``.bench``).
``resynth CIRCUIT [--objective gates|paths] [--k K] [--out FILE]``
    Run Procedure 2 or 3 and optionally write the result.
``identify CIRCUIT OUTPUT_NET [--k K]``
    Check whether the cone feeding a net realizes a comparison function.
``tables [N ...]``
    Regenerate the paper's tables (all by default).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import count_paths
from .netlist import circuit_stats, two_input_gate_count


def _load(name: str):
    from .benchcircuits.suite import suite_circuit, suite_names
    from .io import load_bench

    if name in suite_names():
        return suite_circuit(name)
    return load_bench(name)


def _cmd_stats(args) -> int:
    circuit = _load(args.circuit)
    s = circuit_stats(circuit)
    print(f"{s.name}: inputs={s.n_inputs} outputs={s.n_outputs} "
          f"gates={s.n_gates} 2-input-equivalents={s.two_input_gates} "
          f"literals={s.n_literals} depth={s.depth} "
          f"paths={count_paths(circuit):,}")
    return 0


def _cmd_resynth(args) -> int:
    from .io import save_bench
    from .resynth import procedure2, procedure3

    circuit = _load(args.circuit)
    proc = procedure2 if args.objective == "gates" else procedure3
    report = proc(circuit, k=args.k, verify_patterns=args.verify)
    print(report.summary())
    if args.out:
        save_bench(report.circuit, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_identify(args) -> int:
    from .analysis import path_labels
    from .resynth import enumerate_candidate_cones, evaluate_cone

    circuit = _load(args.circuit)
    if args.net not in circuit:
        print(f"no net {args.net!r} in {circuit.name}", file=sys.stderr)
        return 1
    labels = path_labels(circuit)
    cones = enumerate_candidate_cones(circuit, args.net, args.k)
    best = None
    for cone in cones:
        option = evaluate_cone(circuit, cone, labels)
        if option is None:
            continue
        if best is None or option.gate_gain > best.gate_gain:
            best = option
    if best is None:
        print(f"{args.net}: no comparison-function candidate within K={args.k}")
        return 0
    if best.is_constant:
        print(f"{args.net}: constant {best.constant_value} over "
              f"{len(best.cone.inputs)} inputs (gain {best.gate_gain})")
    else:
        print(f"{args.net}: {best.spec.describe()}")
        print(f"  removable gates N={best.removable_gates}, unit gates "
              f"N'={best.unit_gates}, gain {best.gate_gain}, paths on line "
              f"{best.paths_on_output}")
    return 0


def _cmd_tables(args) -> int:
    from . import experiments

    wanted = args.numbers or [1, 2, 3, 4, 5, 6, 7]
    for n in wanted:
        fn = getattr(experiments, f"table{n}", None)
        if fn is None:
            print(f"unknown table {n}", file=sys.stderr)
            return 1
        print(fn().render())
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-resynth",
        description="Comparison-unit synthesis-for-testability toolkit "
                    "(Pomeranz & Reddy, DAC 1995 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="circuit statistics")
    p.add_argument("circuit")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("resynth", help="run Procedure 2 or 3")
    p.add_argument("circuit")
    p.add_argument("--objective", choices=("gates", "paths"),
                   default="gates")
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--out")
    p.add_argument("--verify", type=int, default=512)
    p.set_defaults(func=_cmd_resynth)

    p = sub.add_parser("identify", help="comparison-function check for a net")
    p.add_argument("circuit")
    p.add_argument("net")
    p.add_argument("--k", type=int, default=5)
    p.set_defaults(func=_cmd_identify)

    p = sub.add_parser("tables", help="regenerate the paper's tables")
    p.add_argument("numbers", nargs="*", type=int)
    p.set_defaults(func=_cmd_tables)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
