"""Command-line interface: ``repro-resynth``.

Subcommands
-----------
``stats CIRCUIT``
    Print size/path statistics for a circuit (suite name or ``.bench``).
``resynth CIRCUIT [--objective gates|paths] [--k K] [--jobs N] \
[--fabric serial|process|remote] [--workers URL] [--out FILE]``
    Run Procedure 2 or 3 and optionally write the result; ``--jobs``
    fans candidate evaluation over worker processes (bit-identical
    reports at any value, see docs/PARALLEL.md).  ``--out x.json``
    writes the full report + result netlist in the service's report
    serialization; any other suffix writes a ``.bench`` netlist.
    ``--trace FILE`` records a JSONL span trace of the run
    (docs/OBSERVABILITY.md); ``--memo DIR`` consults and feeds a
    persistent identification cache (docs/MEMO.md).
``trace FILE [--top N]``
    Summarize a JSONL trace: per-stage totals, per-pass breakdown with
    cache-hit columns, and the top spans by wall time.
``identify CIRCUIT OUTPUT_NET [--k K]``
    Check whether the cone feeding a net realizes a comparison function.
``tables [N ...]``
    Regenerate the paper's tables (all by default).
``fuzz [--seeds N | --seconds S] [--oracle ...]``
    Differential fuzzing: cross-check the simulation, fault-simulation,
    resynthesis and comparison-unit engines on seeded random instances;
    violations are shrunk and dumped as JSON repro artifacts.
``replay ARTIFACT [ARTIFACT ...]``
    Re-run the oracle of previously written repro artifacts.
``serve [--root DIR] [--port P] [--workers N] [--memo DIR] \
[--task-workers N] [--tenants FILE] [--queue-limit N] \
[--frontend async|threaded]``
    Run the checkpointable resynthesis job service (docs/SERVICE.md;
    operations in docs/OPERATIONS.md); ``--memo`` shares one
    identification cache across all workers, ``--task-workers``
    additionally makes the service a remote-fabric task worker
    (``POST /tasks``; docs/FABRIC.md), ``--tenants`` switches on
    API-key auth with per-tenant quotas and priorities, and
    ``--queue-limit`` bounds admission (429 + Retry-After beyond it).
``submit CIRCUIT [--url URL] [--wait] | submit --batch FILE``
    Submit a resynthesis job — or a whole batch atomically — to a
    running service.
``jobs [--url URL] [--state S] [--tenant T] [--limit N]``
    List the jobs of a running service (filtered server-side by the
    SQLite job index).
``result JOB_ID [--url URL] [--out FILE]``
    Fetch a finished job's report (optionally writing report JSON or a
    ``.bench`` netlist).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import count_paths
from .netlist import circuit_stats, two_input_gate_count


def _load(name: str):
    from .benchcircuits.suite import suite_circuit, suite_names
    from .io import load_bench

    if name in suite_names():
        return suite_circuit(name)
    return load_bench(name)


def _cmd_stats(args) -> int:
    circuit = _load(args.circuit)
    s = circuit_stats(circuit)
    print(f"{s.name}: inputs={s.n_inputs} outputs={s.n_outputs} "
          f"gates={s.n_gates} 2-input-equivalents={s.two_input_gates} "
          f"literals={s.n_literals} depth={s.depth} "
          f"paths={count_paths(circuit):,}")
    return 0


def _cmd_resynth(args) -> int:
    from .io import save_bench
    from .obs import Tracer
    from .resynth import procedure2, procedure3, report_to_json

    circuit = _load(args.circuit)
    proc = procedure2 if args.objective == "gates" else procedure3
    tracer = None
    if args.trace:
        tracer = Tracer(meta={
            "circuit": circuit.name, "objective": args.objective,
            "k": args.k, "jobs": args.jobs,
        })
    memo = None
    if args.memo_url:
        from .memo import RemoteMemo

        memo = RemoteMemo(args.memo_url)
    elif args.memo:
        from .memo import MemoStore

        memo = MemoStore(args.memo)
    fabric = None
    if args.fabric == "serial":
        from .fabric import SerialFabric

        fabric = SerialFabric()
    elif args.fabric == "process":
        from .fabric import ProcessFabric

        fabric = ProcessFabric(max(args.jobs, 1))
    elif args.fabric == "remote":
        if not args.workers:
            print("error: --fabric remote needs at least one --workers URL",
                  file=sys.stderr)
            return 2
        from .fabric.remote import RemoteFabric

        fabric = RemoteFabric(args.workers)
    try:
        report = proc(circuit, k=args.k, verify_patterns=args.verify,
                      jobs=args.jobs, tracer=tracer, memo=memo,
                      fabric=fabric)
    finally:
        if fabric is not None:
            fabric.close()
    print(report.summary())
    print(report.timing_summary())
    if fabric is not None:
        print(f"fabric: {fabric.name} "
              f"({', '.join(args.workers) if args.workers else 'local'})")
    if memo is not None:
        stats = memo.stats
        if args.memo_url:
            where = args.memo_url
            entries = f"{len(memo)} hot row(s)"
        else:
            where = args.memo
            entries = f"{memo.disk_entries} entries"
        print(f"memo: {stats.hits} hit(s), {stats.misses} miss(es), "
              f"{stats.puts} put(s), {entries} ({where})")
    if tracer is not None:
        n_spans = tracer.write_jsonl(args.trace)
        print(f"wrote {args.trace} ({n_spans} spans; "
              f"summarize with: repro-resynth trace {args.trace})")
    if args.out:
        if args.out.endswith(".json"):
            # One serialization shared with the job service: the full
            # report with the result netlist embedded (repro.resynth
            # .serialize; load back with report_from_json).
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(report_to_json(report))
        else:
            save_bench(report.circuit, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_sweep(args) -> int:
    import os

    from .sweep import SweepError, SweepRunner, SweepSpecError, \
        sweep_from_json

    try:
        with open(args.grid, "r", encoding="utf-8") as fh:
            spec = sweep_from_json(fh.read())
    except OSError as exc:
        print(f"error: cannot read grid file: {exc}", file=sys.stderr)
        return 2
    except SweepSpecError as exc:
        print(f"error: invalid sweep grid: {exc}", file=sys.stderr)
        return 2
    fabric = None
    if args.fabric == "serial":
        from .fabric import SerialFabric

        fabric = SerialFabric()
    elif args.fabric == "process":
        from .fabric import ProcessFabric

        fabric = ProcessFabric(max(args.jobs, 2))
    elif args.fabric == "remote":
        if not args.workers:
            print("error: --fabric remote needs at least one --workers URL",
                  file=sys.stderr)
            return 2
        from .fabric.remote import RemoteFabric

        fabric = RemoteFabric(args.workers)
    out = args.out or os.path.join(".repro-sweep", spec.sweep_id)
    print(spec.describe())

    def on_cell(cell, doc):
        print(f"  {cell.circuit} {cell.procedure} K={cell.k} "
              f"seed={cell.seed}: gates {doc['gates_before']}->"
              f"{doc['gates_after']} paths {doc['paths_before']}->"
              f"{doc['paths_after']} ({doc['total_seconds']:.2f}s)",
              flush=True)

    runner = SweepRunner(spec, out, fabric=fabric, memo=args.memo)
    try:
        report = runner.run(resume=args.resume, on_cell=on_cell)
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if fabric is not None:
            fabric.close()
    print(report.render())
    print(f"wrote {runner.report_path}")
    return 0


def _cmd_trace(args) -> int:
    from .obs import render_trace_summary

    try:
        print(render_trace_summary(args.file, top=args.top), end="")
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_identify(args) -> int:
    from .analysis import path_labels
    from .resynth import enumerate_candidate_cones, evaluate_cone

    circuit = _load(args.circuit)
    if args.net not in circuit:
        print(f"no net {args.net!r} in {circuit.name}", file=sys.stderr)
        return 1
    labels = path_labels(circuit)
    cones = enumerate_candidate_cones(circuit, args.net, args.k)
    best = None
    for cone in cones:
        option = evaluate_cone(circuit, cone, labels)
        if option is None:
            continue
        if best is None or option.gate_gain > best.gate_gain:
            best = option
    if best is None:
        print(f"{args.net}: no comparison-function candidate within K={args.k}")
        return 0
    if best.is_constant:
        print(f"{args.net}: constant {best.constant_value} over "
              f"{len(best.cone.inputs)} inputs (gain {best.gate_gain})")
    else:
        print(f"{args.net}: {best.spec.describe()}")
        print(f"  removable gates N={best.removable_gates}, unit gates "
              f"N'={best.unit_gates}, gain {best.gate_gain}, paths on line "
              f"{best.paths_on_output}")
    return 0


def _cmd_tables(args) -> int:
    import time

    from . import experiments

    wanted = args.numbers or [1, 2, 3, 4, 5, 6, 7]
    for n in wanted:
        fn = getattr(experiments, f"table{n}", None)
        if fn is None:
            print(f"unknown table {n}", file=sys.stderr)
            return 1
        start = time.perf_counter()
        rendered = fn().render()
        print(rendered)
        print(f"[table {n}: {time.perf_counter() - start:.2f}s]")
        print()
    return 0


def _cmd_fuzz(args) -> int:
    from .netlist import GateType
    from .verify import (
        FuzzConfig,
        SimulatorOracle,
        buggy_gate_eval,
        default_oracles,
        run_fuzz,
    )

    wanted = args.oracle or ["all"]
    names = None if "all" in wanted else list(dict.fromkeys(wanted))
    try:
        config = FuzzConfig(max_inputs=args.max_inputs,
                            max_gates=args.max_gates)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.seeds is None and args.seconds is None:
        args.seeds = 25  # a ~30 s CI-smoke default

    if args.inject:
        # Self-test mode: corrupt the scalar reference semantics of one
        # gate type and demand that the sim oracle catches it and that the
        # shrinker produces a small witness.
        victim = GateType(args.inject)
        impostor = (GateType.OR if victim in (GateType.AND, GateType.NAND)
                    else GateType.AND)
        oracles = [SimulatorOracle(
            gate_eval=buggy_gate_eval(victim, impostor))]
    else:
        oracles = default_oracles(names)

    progress = None if args.quiet else (lambda line: print("  " + line))
    report = run_fuzz(
        oracles=oracles,
        seeds=args.seeds,
        seconds=args.seconds,
        seed_base=args.seed_base,
        config=config,
        artifact_dir=args.artifacts,
        shrink=not args.no_shrink,
        progress=progress,
    )
    print(report.summary())

    if args.inject:
        if report.ok:
            print(f"inject self-test FAILED: mutation of {args.inject!r} "
                  f"was not detected")
            return 1
        worst = max(
            len(f.shrunk_circuit.logic_gates())
            for f in report.findings if f.shrunk_circuit is not None
        )
        print(f"inject self-test OK: {len(report.findings)} violation(s) "
              f"caught, largest shrunk witness {worst} gate(s)")
        return 0 if worst <= 10 else 1
    return 0 if report.ok else 1


def _cmd_replay(args) -> int:
    from .verify import default_oracles, load_artifact, replay_artifact

    oracles = default_oracles()
    failures = 0
    for path in args.artifacts:
        try:
            artifact = load_artifact(path)
        except (OSError, ValueError, KeyError) as exc:
            failures += 1
            print(f"{path}: unreadable artifact ({exc})")
            continue
        violations = replay_artifact(artifact, oracles)
        if violations:
            failures += 1
            print(f"{path}: STILL FAILING")
            for v in violations:
                print("  " + v.describe())
        else:
            print(f"{path}: ok (does not reproduce)")
    return 1 if failures else 0


def _spec_from_args(args):
    """Build a JobSpec from `submit`'s arguments (suite name or file)."""
    import json as _json

    from .benchcircuits.suite import suite_names
    from .io.json_io import circuit_to_json
    from .service import JobSpec

    if args.circuit in suite_names():
        source = {"circuit": args.circuit}
    else:
        # A netlist file travels inline so the service needs no shared
        # filesystem with the client.
        circuit = _load(args.circuit)
        source = {"netlist": _json.loads(circuit_to_json(circuit))}
    procedure = "procedure2" if args.objective == "gates" else "procedure3"
    return JobSpec(procedure=procedure, k=args.k, seed=args.seed,
                   perm_budget=args.perm_budget, max_passes=args.max_passes,
                   verify_patterns=args.verify, jobs=args.jobs, **source)


def _cmd_serve(args) -> int:
    from .service import (
        ArtifactStore,
        ServiceServer,
        SupervisorConfig,
        TenantRegistry,
        ThreadedServiceServer,
    )

    store = ArtifactStore(args.root)
    config = SupervisorConfig(
        max_retries=args.retries,
        heartbeat_timeout=args.heartbeat_timeout,
        memo_root=args.memo,
        memo_url=args.memo_url,
        fabric_workers=tuple(args.fabric_workers),
    )
    if args.frontend == "threaded":
        if args.tenants or args.queue_limit:
            print("error: --tenants/--queue-limit need the async front "
                  "end (--frontend async)", file=sys.stderr)
            return 2
        server = ThreadedServiceServer(
            store, host=args.host, port=args.port, config=config,
            max_workers=args.workers, verbose=args.verbose,
            task_workers=args.task_workers,
        )
    else:
        if args.tenants:
            try:
                # Validate up front for a clean CLI error; the path is
                # handed to the server too, which hot-reloads edits
                # (rejected reloads keep the old registry).
                TenantRegistry.from_file(args.tenants)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        server = ServiceServer(
            store, host=args.host, port=args.port, config=config,
            max_workers=args.workers, verbose=args.verbose,
            task_workers=args.task_workers,
            queue_limit=args.queue_limit,
            tenants_file=args.tenants or None,
        )
    memo_note = f", memo: {args.memo}" if args.memo else ""
    task_note = (f", task-workers: {args.task_workers}"
                 if args.task_workers else "")
    tenant_note = (f", tenants: {args.tenants}" if args.tenants else "")
    queue_note = (f", queue-limit: {args.queue_limit}"
                  if args.queue_limit else "")
    if args.frontend == "threaded":
        # The threaded server binds in its constructor; the async one
        # binds in start(), so print after it is listening.
        print(f"repro.service listening on {server.url} "
              f"(store: {store.root}, workers: {args.workers}"
              f"{memo_note}{task_note})")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")
        return 0
    try:
        server.start()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"repro.service listening on {server.url} "
          f"(store: {store.root}, workers: {args.workers}"
          f"{memo_note}{task_note}{tenant_note}{queue_note})")
    try:
        while True:
            import time as _time

            _time.sleep(0.2)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
    return 0


def _cmd_submit(args) -> int:
    import json as _json

    from .service import ServiceAPIError, ServiceClient

    if args.batch is None and args.circuit is None:
        print("error: give a circuit or --batch FILE", file=sys.stderr)
        return 2
    client = ServiceClient(args.url, api_key=args.api_key,
                           backpressure_retries=args.backpressure_retries)
    if args.batch:
        try:
            with open(args.batch, "r", encoding="utf-8") as fh:
                doc = _json.load(fh)
        except (OSError, _json.JSONDecodeError) as exc:
            print(f"error: cannot read batch file: {exc}", file=sys.stderr)
            return 2
        specs = doc.get("specs") if isinstance(doc, dict) else doc
        if not isinstance(specs, list):
            print("error: batch file must be a JSON list of spec "
                  "documents or {'specs': [...]}", file=sys.stderr)
            return 2
        try:
            rows = client.submit_batch_docs(specs)
        except ServiceAPIError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        created = sum(1 for r in rows if r["created"])
        for row in rows:
            status = "submitted" if row["created"] else "already known"
            print(f"{row['id']}: {status} (state: {row['state']})")
        print(f"batch: {created} new, {len(rows) - created} deduplicated")
        return 0
    spec = _spec_from_args(args)
    try:
        answer = client.submit(spec)
    except ServiceAPIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    status = "submitted" if answer["created"] else "already known"
    print(f"{answer['id']}: {status} (state: {answer['state']})")
    if not args.wait:
        return 0
    view = client.wait(answer["id"], timeout=args.timeout)
    print(f"{answer['id']}: {view['state']}")
    if view["state"] == "failed":
        print(view.get("error", "unknown failure"), file=sys.stderr)
        return 1
    report = view.get("report", {})
    print(f"gates {report.get('gates_before')}->{report.get('gates_after')} "
          f"paths {report.get('paths_before')}->{report.get('paths_after')} "
          f"({report.get('replacements')} replacements, "
          f"{report.get('passes')} passes, "
          f"{report.get('total_seconds', 0):.2f}s)")
    return 0


def _cmd_jobs(args) -> int:
    from .service import ServiceAPIError, ServiceClient

    client = ServiceClient(args.url, api_key=args.api_key)
    try:
        if args.summary:
            doc = client.jobs_summary()
            print(f"{doc['total']} job(s)")
            for tenant in sorted(doc["tenants"]):
                counts = doc["tenants"][tenant]
                states = ", ".join(
                    f"{state}={counts[state]}"
                    for state in sorted(counts) if state != "total")
                print(f"  {tenant}: {counts['total']} ({states})")
            return 0
        rows = client.jobs(state=args.state, tenant=args.tenant,
                           limit=args.limit)
    except ServiceAPIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not rows:
        print("no jobs")
        return 0
    for row in rows:
        tenant = f" tenant={row['tenant']}" if row.get("tenant") else ""
        print(f"{row['id']}  {row['state']:<10} "
              f"attempts={row['attempts']}{tenant}")
    return 0


def _cmd_result(args) -> int:
    import json as _json

    from .service import ServiceAPIError, ServiceClient

    client = ServiceClient(args.url)
    try:
        view = client.job(args.job_id)
        if view["state"] != "succeeded":
            print(f"{args.job_id}: state is {view['state']}",
                  file=sys.stderr)
            if view.get("traceback"):
                print(view["traceback"], file=sys.stderr)
            return 1
        doc = client.report(args.job_id)
    except ServiceAPIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{args.job_id}: gates {doc['gates_before']}->{doc['gates_after']} "
          f"paths {doc['paths_before']}->{doc['paths_after']} "
          f"({doc['replacements']} replacements, {doc['passes']} passes)")
    if args.out:
        if args.out.endswith(".json"):
            with open(args.out, "w", encoding="utf-8") as fh:
                _json.dump(doc, fh, indent=1, sort_keys=True)
        else:
            from .io import save_bench
            from .resynth import report_from_json

            report = report_from_json(_json.dumps(doc))
            save_bench(report.circuit, args.out)
        print(f"wrote {args.out}")
    return 0


DEFAULT_SERVICE_URL = "http://127.0.0.1:8734"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-resynth",
        description="Comparison-unit synthesis-for-testability toolkit "
                    "(Pomeranz & Reddy, DAC 1995 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="circuit statistics")
    p.add_argument("circuit")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("resynth", help="run Procedure 2 or 3")
    p.add_argument("circuit")
    p.add_argument("--objective", choices=("gates", "paths"),
                   default="gates")
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for candidate evaluation "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--out")
    p.add_argument("--verify", type=int, default=512)
    p.add_argument("--trace", metavar="FILE",
                   help="record a JSONL span trace of the run "
                        "(summarize with the 'trace' subcommand)")
    p.add_argument("--memo", metavar="DIR",
                   help="persistent identification cache directory "
                        "(shared across runs; results are identical, "
                        "see docs/MEMO.md)")
    p.add_argument("--memo-url", metavar="URL", default=None,
                   help="identification memo served by a running service "
                        "(overrides --memo; docs/MEMO.md)")
    p.add_argument("--fabric", choices=("serial", "process", "remote"),
                   default=None,
                   help="task-execution backend for candidate evaluation "
                        "(default: process pool when --jobs > 1, else "
                        "inline; results are identical on every backend, "
                        "see docs/FABRIC.md)")
    p.add_argument("--workers", metavar="URL", action="append", default=[],
                   help="remote fabric worker URL (repeatable; requires "
                        "--fabric remote; targets must run "
                        "'serve --task-workers N')")
    p.set_defaults(func=_cmd_resynth)

    p = sub.add_parser("sweep",
                       help="run a parameter-sweep grid and report its "
                            "Pareto front (docs/SWEEP.md)")
    p.add_argument("--grid", required=True, metavar="FILE",
                   help="sweep grid JSON (format repro-sweepspec)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="sweep directory (default "
                        ".repro-sweep/<sweep_id>)")
    p.add_argument("--fabric", choices=("serial", "process", "remote"),
                   default="serial",
                   help="cell-execution backend (results are identical "
                        "on every backend; docs/SWEEP.md)")
    p.add_argument("--jobs", type=int, default=2,
                   help="process-fabric worker count (--fabric process)")
    p.add_argument("--workers", metavar="URL", action="append", default=[],
                   help="remote fabric worker URL (repeatable; requires "
                        "--fabric remote)")
    p.add_argument("--memo", metavar="DIR", default=None,
                   help="persistent identification cache handed to every "
                        "cell (wall clock only; docs/MEMO.md)")
    p.add_argument("--resume", action="store_true",
                   help="keep intact stored cell reports and run only "
                        "the unfinished cells")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("trace",
                       help="summarize a JSONL trace written by "
                            "'resynth --trace' (docs/OBSERVABILITY.md)")
    p.add_argument("file", help="trace file (.jsonl)")
    p.add_argument("--top", type=int, default=10,
                   help="how many top spans by wall time to list "
                        "(0 = none)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("identify", help="comparison-function check for a net")
    p.add_argument("circuit")
    p.add_argument("net")
    p.add_argument("--k", type=int, default=5)
    p.set_defaults(func=_cmd_identify)

    p = sub.add_parser("tables", help="regenerate the paper's tables")
    p.add_argument("numbers", nargs="*", type=int)
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("fuzz", help="differential fuzzing of the engines")
    p.add_argument("--seeds", type=int, default=None,
                   help="number of seeds to run")
    p.add_argument("--seconds", type=float, default=None,
                   help="wall-clock budget in seconds")
    p.add_argument("--oracle", action="append",
                   choices=("sim", "fault", "resynth", "unit",
                            "incremental", "parallel", "resume", "memo",
                            "sweep", "all"),
                   default=None,
                   help="oracle to run (repeatable; default all)")
    p.add_argument("--seed-base", type=int, default=0)
    p.add_argument("--artifacts", default=None,
                   help="directory for JSON repro artifacts")
    p.add_argument("--max-inputs", type=int, default=8)
    p.add_argument("--max-gates", type=int, default=30)
    p.add_argument("--no-shrink", action="store_true",
                   help="skip counterexample shrinking")
    p.add_argument("--inject", default=None,
                   choices=("and", "nand", "or", "nor", "xor", "xnor"),
                   help="self-test: corrupt this gate type's reference "
                        "semantics and require detection")
    p.add_argument("--quiet", "-q", action="store_true")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("replay", help="re-run saved fuzz repro artifacts")
    p.add_argument("artifacts", nargs="+")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("serve",
                       help="run the resynthesis job service "
                            "(docs/SERVICE.md)")
    p.add_argument("--root", default=".repro-service",
                   help="artifact store directory (default .repro-service)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8734,
                   help="listen port (0 = ephemeral, printed at startup)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent worker subprocesses")
    p.add_argument("--retries", type=int, default=2,
                   help="worker retries per job (resume from checkpoint)")
    p.add_argument("--heartbeat-timeout", type=float, default=30.0,
                   help="seconds of worker silence before the kill")
    p.add_argument("--memo", metavar="DIR", default=None,
                   help="shared persistent identification cache served "
                        "to every worker (opt-in; docs/MEMO.md; also "
                        "enables the GET/PUT /memo routes)")
    p.add_argument("--memo-url", metavar="URL", default=None,
                   help="point this service's job workers at another "
                        "service's /memo routes instead of a directory")
    p.add_argument("--task-workers", type=int, default=0, metavar="N",
                   help="enable POST /tasks with N-way task execution "
                        "(0 = disabled; 1 = inline; >1 = process pool), "
                        "making this service a remote-fabric worker "
                        "(docs/FABRIC.md)")
    p.add_argument("--fabric-worker", metavar="URL", action="append",
                   default=[], dest="fabric_workers",
                   help="remote fabric worker URL handed to every job "
                        "worker (repeatable): jobs fan their candidate "
                        "evaluation out to these /tasks endpoints")
    p.add_argument("--tenants", metavar="FILE", default=None,
                   help="tenants JSON file enabling API-key auth, "
                        "per-tenant quotas and priorities "
                        "(docs/OPERATIONS.md)")
    p.add_argument("--queue-limit", type=int, default=0, metavar="N",
                   help="bound the admission queue at N jobs; beyond it "
                        "submits get 429 + Retry-After (0 = unbounded)")
    p.add_argument("--frontend", choices=("async", "threaded"),
                   default="async",
                   help="HTTP front end: the asyncio default or the "
                        "legacy thread-per-request server (no SSE, "
                        "batch or tenant routes)")
    p.add_argument("--verbose", action="store_true",
                   help="log HTTP requests")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="submit a job to a running service")
    p.add_argument("circuit", nargs="?", default=None,
                   help="suite name or netlist file (omit with --batch)")
    p.add_argument("--batch", metavar="FILE", default=None,
                   help="submit many jobs atomically: FILE is a JSON "
                        "list of spec documents (or {'specs': [...]})")
    p.add_argument("--api-key", default=None,
                   help="tenant API key (sent as a Bearer token)")
    p.add_argument("--backpressure-retries", type=int, default=0,
                   metavar="N",
                   help="retry a 429-rejected submit up to N times, "
                        "sleeping the server's Retry-After between tries")
    p.add_argument("--url", default=DEFAULT_SERVICE_URL)
    p.add_argument("--objective", choices=("gates", "paths"),
                   default="gates")
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--perm-budget", type=int, default=200)
    p.add_argument("--max-passes", type=int, default=10)
    p.add_argument("--verify", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal")
    p.add_argument("--timeout", type=float, default=3600.0,
                   help="--wait budget in seconds")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("jobs", help="list jobs of a running service")
    p.add_argument("--url", default=DEFAULT_SERVICE_URL)
    p.add_argument("--state", default=None,
                   choices=("queued", "running", "succeeded", "failed"),
                   help="only jobs in this state")
    p.add_argument("--tenant", default=None,
                   help="only jobs submitted by this tenant")
    p.add_argument("--limit", type=int, default=None,
                   help="at most this many rows")
    p.add_argument("--api-key", default=None,
                   help="tenant API key (sent as a Bearer token)")
    p.add_argument("--summary", action="store_true",
                   help="per-tenant x per-state counts instead of rows "
                        "(GET /jobs/summary)")
    p.set_defaults(func=_cmd_jobs)

    p = sub.add_parser("result", help="fetch a finished job's report")
    p.add_argument("job_id")
    p.add_argument("--url", default=DEFAULT_SERVICE_URL)
    p.add_argument("--out",
                   help="write the report (.json) or netlist (.bench)")
    p.set_defaults(func=_cmd_result)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
