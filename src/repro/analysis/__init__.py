"""Structural analyses: path counting (Procedure 1), path enumeration, cones."""

from .engine import AnalysisSession
from .cones import (
    Cone,
    cone_inputs,
    extract_subcircuit,
    make_cone,
    removable_members,
    shared_members,
    single_gate_cone,
)
from .paths import (
    count_paths,
    enumerate_paths,
    internal_path_counts,
    iter_paths,
    longest_path_length,
    path_labels,
    paths_to_net,
    sample_paths,
)

__all__ = [
    "AnalysisSession",
    "Cone",
    "cone_inputs",
    "count_paths",
    "enumerate_paths",
    "extract_subcircuit",
    "internal_path_counts",
    "iter_paths",
    "longest_path_length",
    "make_cone",
    "path_labels",
    "paths_to_net",
    "removable_members",
    "sample_paths",
    "shared_members",
    "single_gate_cone",
]
