"""Subcircuit (cone) extraction and legality checks.

The resynthesis procedures of Section 4 work on *candidate subcircuits*: a
connected set of gates with a single output line ``g`` and a bounded number
of input lines.  This module turns such a member set into a standalone
single-output :class:`~repro.netlist.Circuit` (so it can be simulated
exhaustively for its truth table) and answers the structural questions the
procedures need: which member gates also feed logic outside the subcircuit
(shared gates, excluded from the removable-gate count ``N``), and which
inputs the cone reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..netlist import Circuit, CircuitError, Gate, GateType


@dataclass(frozen=True)
class Cone:
    """A candidate subcircuit: member gates, ordered inputs, one output.

    Attributes
    ----------
    output:
        The subcircuit's output net (a gate output of the host circuit).
    members:
        Gate-output nets of the gates inside the subcircuit (includes
        ``output``; never includes primary inputs).
    inputs:
        Ordered input nets: nets read by member gates but not driven by
        them.  Order is deterministic (host-circuit topological order) so
        truth tables over the cone are reproducible.
    """

    output: str
    members: FrozenSet[str]
    inputs: Tuple[str, ...]

    @property
    def n_inputs(self) -> int:
        """Number of distinct input nets."""
        return len(self.inputs)

    @property
    def n_gates(self) -> int:
        """Number of member gates."""
        return len(self.members)


def cone_inputs(circuit: Circuit, members: Set[str]) -> List[str]:
    """Ordered distinct nets read by *members* but not inside *members*."""
    seen: Set[str] = set()
    inputs: List[str] = []
    for m in members:
        for f in circuit.gate(m).fanins:
            if f not in members and f not in seen:
                seen.add(f)
                inputs.append(f)
    inputs.sort(key=circuit.topo_rank)
    return inputs


def make_cone(circuit: Circuit, output: str, members: Set[str]) -> Cone:
    """Build a :class:`Cone` record, checking connectivity and membership."""
    if output not in members:
        raise CircuitError("cone output must be a member gate")
    for m in members:
        g = circuit.gate(m)
        if g.gtype is GateType.INPUT:
            raise CircuitError(f"primary input {m!r} cannot be a cone member")
    # Every member must reach the output within the member set.
    reach: Set[str] = {output}
    frontier = [output]
    while frontier:
        n = frontier.pop()
        for f in circuit.gate(n).fanins:
            if f in members and f not in reach:
                reach.add(f)
                frontier.append(f)
    if reach != members:
        unreachable = sorted(members - reach)
        raise CircuitError(
            f"cone members {unreachable[:3]} do not feed output {output!r}"
        )
    return Cone(output, frozenset(members), tuple(cone_inputs(circuit, members)))


def shared_members(circuit: Circuit, cone: Cone) -> Set[str]:
    """Members (other than the output) that also feed logic outside the cone.

    These are the gates Section 4.1 calls *common*: they fan out to other
    subfunctions, so replacing the cone cannot remove them, and they must
    stay in the circuit after replacement.
    """
    shared: Set[str] = set()
    for m in cone.members:
        if m == cone.output:
            continue
        if m in circuit.output_set:
            shared.add(m)
            continue
        for reader in circuit.fanouts(m):
            if reader not in cone.members:
                shared.add(m)
                break
    return shared


def removable_members(circuit: Circuit, cone: Cone) -> Set[str]:
    """Members that disappear if the cone is replaced.

    A member survives replacement when it is *shared* (feeds logic outside
    the cone, or is itself observable) or when it transitively feeds a
    shared member — shared gates keep their in-cone support alive.  These
    are the gates Section 4.1 excludes from the removable count ``N``.
    The cone output itself is always replaceable: the replacement drives
    the same net.
    """
    shared = shared_members(circuit, cone)
    live: Set[str] = set()
    stack = list(shared)
    while stack:
        m = stack.pop()
        if m in live:
            continue
        live.add(m)
        for f in circuit.gate(m).fanins:
            if f in cone.members and f not in live:
                stack.append(f)
    return set(cone.members) - live


def extract_subcircuit(circuit: Circuit, cone: Cone) -> Circuit:
    """Materialize *cone* as a standalone single-output circuit.

    The result has the cone's inputs as primary inputs (same net names,
    same order) and the cone's output as its only primary output, so its
    truth table under :func:`repro.sim.truth_table` is the subfunction
    ``f'(I')`` of Section 4.1.
    """
    sub = Circuit(f"{circuit.name}.{cone.output}")
    for pi in cone.inputs:
        sub.add_input(pi)
    order = sorted(cone.members, key=circuit.topo_rank)
    for net in order:
        g = circuit.gate(net)
        sub.add_gate(net, g.gtype, g.fanins)
    sub.set_outputs([cone.output])
    sub.validate()
    return sub


def single_gate_cone(circuit: Circuit, output: str) -> Cone:
    """The trivial cone: just the gate driving *output*.

    Section 4.1 keeps this cone in every candidate set so that a comparison
    function always exists and the gate count can never increase.
    """
    return make_cone(circuit, output, {output})
