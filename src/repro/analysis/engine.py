"""Incremental analysis engine: Procedure 1 path labels kept current.

:class:`AnalysisSession` subscribes to a :class:`~repro.netlist.Circuit`'s
mutation events (:mod:`repro.netlist.incremental`) and maintains the
Procedure 1 path labels ``N_p(g)`` — the number of PI-to-net paths —
incrementally.  A mutation marks only the directly touched nets dirty;
the next :meth:`labels` query re-runs the DP on the dirty seeds and
propagates through the transitive fanout only while values actually
change.  The rest of the DP is reused, so a local replacement costs
O(affected region), not O(circuit).

This replaces the stale-labels pattern in the resynthesis sweep, where
``path_labels`` was computed once per pass and then consulted after
arbitrarily many replacements.  With a session, every selection prices
candidate cones against *current* path counts.

The session also owns a :class:`~repro.sim.TruthTableCache` so candidate
cones re-enumerated across selection sites and passes skip exhaustive
resimulation.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Set

from ..netlist import (
    CHANGE_ADD,
    CHANGE_DRIVER,
    CHANGE_OUTPUTS,
    CHANGE_REMOVE,
    CHANGE_RESET,
    Circuit,
    GateType,
    NetChange,
)
from ..sim import TruthTableCache
from .paths import path_labels


class AnalysisSession:
    """Live path-label view of one circuit.

    Parameters
    ----------
    circuit:
        The circuit to observe.  The session subscribes on construction;
        call :meth:`close` (or use the session as a context manager) to
        detach.
    registry:
        Optional :class:`repro.obs.Registry`.  When given, :meth:`close`
        publishes the session's truth-table-cache traffic as obs
        metrics: ``analysis_tt_cache_hits_total`` /
        ``analysis_tt_cache_misses_total`` counters, an
        ``analysis_tt_cache_entries`` gauge with the live entry count,
        and an ``analysis_label_flushes_total`` counter for incremental
        label repairs.
    memo:
        Optional persistent identification cache
        (:class:`repro.memo.MemoStore`).  The session only *carries* it
        — alongside :attr:`truth_tables`, it is the per-run cache bundle
        the sweep and the parallel primer consult; the session never
        reads it itself.
    fabric:
        Optional :class:`repro.fabric.Fabric` the run's candidate
        evaluation is fanned out on.  Carried like ``memo`` (the session
        never executes tasks itself); the owner of the run — not the
        session — closes it.

    Notes
    -----
    Labels returned by :meth:`labels` are always equal to a from-scratch
    ``path_labels(circuit)`` — the ``incremental`` differential oracle
    (:mod:`repro.verify.oracles`) asserts exactly that after every
    mutation of a fuzzed mutation sequence.
    """

    def __init__(self, circuit: Circuit, registry=None, memo=None,
                 fabric=None) -> None:
        self._circuit = circuit
        self._labels: Optional[Dict[str, int]] = None
        self._dirty: Set[str] = set()
        self.truth_tables = TruthTableCache()
        self.memo = memo
        self.fabric = fabric
        self._registry = registry
        self._flushes = 0
        self._closed = False
        circuit.subscribe(self)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def circuit(self) -> Circuit:
        """The observed circuit."""
        return self._circuit

    def close(self) -> None:
        """Detach from the circuit; further queries rebuild nothing.

        Publishes truth-table-cache and label-flush accounting to the
        session's obs registry (if one was injected).
        """
        if not self._closed:
            self._circuit.unsubscribe(self)
            self._closed = True
            registry = self._registry
            if registry is not None:
                cache = self.truth_tables
                registry.inc("analysis_tt_cache_hits_total", cache.hits)
                registry.inc("analysis_tt_cache_misses_total",
                             cache.misses)
                registry.set_gauge("analysis_tt_cache_entries",
                                   len(cache))
                registry.inc("analysis_label_flushes_total",
                             self._flushes)

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # observer protocol
    # ------------------------------------------------------------------ #

    def circuit_changed(self, circuit: Circuit, change: NetChange) -> None:
        """Record which nets a mutation touched (cheap; no recompute here)."""
        if self._labels is None:
            return  # nothing built yet; the first query builds from scratch
        kind = change.kind
        if kind == CHANGE_ADD or kind == CHANGE_DRIVER:
            self._dirty.add(change.net)
        elif kind == CHANGE_REMOVE:
            self._labels.pop(change.net, None)
            self._dirty.discard(change.net)
        elif kind == CHANGE_RESET:
            self._labels = None
            self._dirty.clear()
        # CHANGE_OUTPUTS: labels do not depend on the output list.

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def labels(self) -> Dict[str, int]:
        """Current Procedure 1 labels (net -> PI-to-net path count).

        The returned dict is the live internal map; treat it as
        read-only and re-query after mutating the circuit.
        """
        if self._labels is None:
            self._labels = path_labels(self._circuit)
            self._dirty.clear()
        elif self._dirty:
            self._flush()
        return self._labels

    def label(self, net: str) -> int:
        """The label of one net."""
        return self.labels()[net]

    def total_paths(self) -> int:
        """Total PI-to-PO path count (Procedure 1, Step 5)."""
        labels = self.labels()
        return sum(labels[o] for o in self._circuit.outputs)

    def current_paths_on(self, net: str) -> int:
        """Paths through *net* as priced by the selection step.

        Mirrors :func:`repro.resynth.replace.current_paths_on` but against
        the session's always-current labels.
        """
        labels = self.labels()
        gate = self._circuit.gate(net)
        if gate.gtype is GateType.INPUT:
            return labels[net]
        return sum(labels.get(f, 0) for f in gate.fanins)

    # ------------------------------------------------------------------ #
    # incremental repair
    # ------------------------------------------------------------------ #

    def _compute(self, net: str) -> int:
        gate = self._circuit.gate(net)
        if gate.gtype is GateType.INPUT:
            return 1
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            return 0
        labels = self._labels
        return sum(labels.get(f, 0) for f in gate.fanins)

    def _flush(self) -> None:
        """Re-run the label DP over the dirty region only.

        Seeds are the mutation-touched nets; propagation follows fanout
        edges, but only from nets whose label actually changed.  The heap
        is keyed by topological rank so each net is recomputed after all
        of its changed fanins — at most once.
        """
        self._flushes += 1
        circuit = self._circuit
        labels = self._labels
        rank = circuit.topo_rank
        fo = circuit.fanout_map()
        heap = [(rank(n), n) for n in self._dirty if circuit.has_net(n)]
        self._dirty.clear()
        heapq.heapify(heap)
        done: Set[str] = set()
        while heap:
            _, net = heapq.heappop(heap)
            if net in done or not circuit.has_net(net):
                continue
            done.add(net)
            new = self._compute(net)
            if labels.get(net) != new:
                labels[net] = new
                for reader in fo.get(net, ()):
                    if reader not in done:
                        heapq.heappush(heap, (rank(reader), reader))
