"""Path counting and path enumeration.

:func:`path_labels` implements Procedure 1 of the paper: every line ``g``
gets a label ``N_p(g)`` equal to the number of paths from the primary inputs
to ``g``.  Primary inputs get label 1, a gate output the sum of its fanin
labels, and a fanout branch the label of its stem (implicit in our model:
each reader sums the stem's label once per pin).  The total path count is the
sum of primary-output labels.

Constants carry label 0: no input-to-output path passes through them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..netlist import Circuit, GateType


def path_labels(circuit: Circuit) -> Dict[str, int]:
    """Procedure 1 labels: net -> number of PI-to-net paths."""
    labels: Dict[str, int] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        if gate.gtype is GateType.INPUT:
            labels[net] = 1
        elif gate.gtype in (GateType.CONST0, GateType.CONST1):
            labels[net] = 0
        else:
            labels[net] = sum(labels[f] for f in gate.fanins)
    return labels


def count_paths(circuit: Circuit) -> int:
    """Total number of PI-to-PO paths (Procedure 1, Step 5).

    Each entry in the primary-output list is a distinct observation point,
    so a net listed as an output twice contributes its label twice.
    """
    labels = path_labels(circuit)
    return sum(labels[o] for o in circuit.outputs)


def paths_to_net(circuit: Circuit, net: str) -> int:
    """Number of PI-to-*net* paths (the label ``N_p(net)``)."""
    return path_labels(circuit)[net]


def internal_path_counts(subcircuit: Circuit) -> Dict[str, int]:
    """``K_p`` values: paths from each subcircuit input to its single output.

    *subcircuit* must be a standalone single-output circuit (as produced by
    :func:`repro.analysis.cones.extract_subcircuit`).  The result maps each
    primary input to the number of distinct paths from it to the output —
    the quantity the Section 2 example calls ``K_p(g_i)``.
    """
    outs = subcircuit.outputs
    if len(set(outs)) != 1:
        raise ValueError("internal_path_counts needs a single-output circuit")
    output = outs[0]
    # Count paths from the output backwards: R(net) = paths net -> output.
    order = subcircuit.topological_order()
    reach: Dict[str, int] = {n: 0 for n in order}
    reach[output] = 1
    fo = subcircuit.fanout_map()
    for net in reversed(order):
        if net == output:
            continue
        reach[net] = 0
        # fanout_map lists a reader once per pin, so summing over it counts
        # each input pin (fanout branch) separately, as Procedure 1 requires.
        for reader in fo.get(net, ()):
            reach[net] += reach[reader]
    return {pi: reach[pi] for pi in subcircuit.inputs}


def enumerate_paths(
    circuit: Circuit,
    limit: Optional[int] = None,
    from_output: Optional[str] = None,
) -> List[Tuple[str, ...]]:
    """Enumerate PI-to-PO paths as tuples of net names, inputs first.

    A path is a sequence of nets ``(pi, ..., po)`` where each consecutive
    pair is a gate input pin feeding the gate's output.  With fanout, a net
    may repeat across paths but not within one (the circuit is a DAG).

    Parameters
    ----------
    limit:
        Stop after this many paths (None = unbounded; use with care).
    from_output:
        Restrict to paths ending at this primary output.
    """
    outputs = (
        [from_output] if from_output is not None else list(circuit.outputs)
    )
    paths: List[Tuple[str, ...]] = []

    def walk(net: str, suffix: List[str]) -> bool:
        suffix.append(net)
        gate = circuit.gate(net)
        if gate.gtype is GateType.INPUT:
            paths.append(tuple(reversed(suffix)))
            suffix.pop()
            return limit is not None and len(paths) >= limit
        for f in gate.fanins:
            if walk(f, suffix):
                suffix.pop()
                return True
        suffix.pop()
        return False

    for po in outputs:
        if walk(po, []):
            break
    return paths


def iter_paths(circuit: Circuit) -> Iterator[Tuple[str, ...]]:
    """Lazily iterate over all PI-to-PO paths (inputs first)."""

    def walk(net: str, suffix: List[str]) -> Iterator[Tuple[str, ...]]:
        suffix.append(net)
        gate = circuit.gate(net)
        if gate.gtype is GateType.INPUT:
            yield tuple(reversed(suffix))
        else:
            for f in gate.fanins:
                yield from walk(f, suffix)
        suffix.pop()

    for po in circuit.outputs:
        yield from walk(po, [])


def longest_path_length(circuit: Circuit) -> int:
    """Number of gates on the longest PI-to-PO path (excludes PI pseudo-gates)."""
    return circuit.depth()


def sample_paths(
    circuit: Circuit, n: int, seed: int = 0
) -> List[Tuple[str, ...]]:
    """Sample *n* paths uniformly at random (with replacement).

    Uniformity over the full path population comes from the Procedure 1
    labels: a primary output is chosen proportionally to its label, then
    the path walks backwards choosing each fanin proportionally to *its*
    label — every complete path has probability ``1 / total_paths``.
    Useful for profiling path populations too large to enumerate.
    """
    import random as _random

    labels = path_labels(circuit)
    weights = [labels[o] for o in circuit.outputs]
    total = sum(weights)
    if total == 0:
        return []
    rng = _random.Random(seed)
    paths: List[Tuple[str, ...]] = []
    for _ in range(n):
        r = rng.randrange(total)
        for po, w in zip(circuit.outputs, weights):
            if r < w:
                break
            r -= w
        rev = [po]
        net = po
        while circuit.gate(net).gtype is not GateType.INPUT:
            fanins = circuit.gate(net).fanins
            fw = [labels[f] for f in fanins]
            s = sum(fw)
            pick = rng.randrange(s)
            for f, w2 in zip(fanins, fw):
                if pick < w2:
                    break
                pick -= w2
            rev.append(f)
            net = f
        paths.append(tuple(reversed(rev)))
    return paths
