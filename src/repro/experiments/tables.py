"""Drivers that regenerate every table of the paper's evaluation.

Each ``tableN`` function returns a structured result object carrying the
rows (for programmatic assertions in benchmarks/tests) and a ``render()``
method producing a plain-text table shaped like the paper's.

Scale note: the suite circuits are ~10-30x smaller than the paper's and the
pattern budgets are scaled accordingly (see EXPERIMENTS.md); the *shape* of
each table — who wins, what grows, what shrinks — is the reproduction
target, not the absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import count_paths
from ..comparison import (
    ComparisonSpec,
    format_test_table,
    robust_tests_for_unit,
)
from ..faults import fault_universe, random_stuck_at_campaign
from ..netlist import Circuit, two_input_gate_count
from ..pdf import random_pdf_campaign
from ..techmap import map_circuit
from ..benchcircuits.suite import TABLE3_CIRCUITS, suite_names
from .artifacts import (
    original_circuit,
    proc2_best,
    proc2_redrem,
    proc3_best,
    rambo_circuit,
    rambo_proc2_circuit,
)
from .format import render_table


# --------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------- #

@dataclass
class Table1Result:
    """The comparison-unit robust test set of Section 3.3 / Table 1."""

    spec: ComparisonSpec
    rows: List[Tuple[str, Dict[str, str]]]
    text: str

    def render(self) -> str:
        """Paper-shaped table text."""
        return self.text


def table1() -> Table1Result:
    """Regenerate Table 1: the test set for the L=11, U=12 unit."""
    spec = ComparisonSpec(("x1", "x2", "x3", "x4"), 11, 12)
    tests = robust_tests_for_unit(spec)
    rows = []
    seen = set()
    for t in tests:
        key = (t.input_name, t.block)
        if key in seen:
            continue
        seen.add(key)
        stable = {
            k: ("111" if v else "000") for k, v in t.stable_inputs().items()
        }
        rows.append((f"{t.input_name},{t.block}", stable))
    return Table1Result(spec, rows, format_test_table(spec, tests))


# --------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------- #

@dataclass
class CircuitRow:
    """One row of Table 2 (Procedure 2 + redundancy removal)."""

    name: str
    k: int
    gates_orig: int
    gates_modified: int
    gates_redrem: int
    paths_orig: int
    paths_modified: int
    paths_redrem: int


@dataclass
class Table2Result:
    """Procedure 2 results over the suite."""

    rows: List[CircuitRow]

    def render(self) -> str:
        """Paper-shaped table text."""
        return render_table(
            ["circuit(K)", "2-inp orig", "2-inp modif", "2-inp red.rem",
             "paths orig", "paths modif", "paths red.rem"],
            [
                (f"{r.name} ({r.k})", r.gates_orig, r.gates_modified,
                 r.gates_redrem, r.paths_orig, r.paths_modified,
                 r.paths_redrem)
                for r in self.rows
            ],
            title="Table 2: Results of Procedure 2",
        )


def table2(circuits: Optional[Sequence[str]] = None) -> Table2Result:
    """Regenerate Table 2: Procedure 2 followed by redundancy removal."""
    rows = []
    for name in circuits or suite_names():
        orig = original_circuit(name)
        modified, k = proc2_best(name)
        redrem = proc2_redrem(name)
        rows.append(CircuitRow(
            name=name,
            k=k,
            gates_orig=two_input_gate_count(orig),
            gates_modified=two_input_gate_count(modified),
            gates_redrem=two_input_gate_count(redrem),
            paths_orig=count_paths(orig),
            paths_modified=count_paths(modified),
            paths_redrem=count_paths(redrem),
        ))
    return Table2Result(rows)


# --------------------------------------------------------------------- #
# Table 3
# --------------------------------------------------------------------- #

@dataclass
class Table3Row:
    """One row of Table 3 (RAMBO_C comparison)."""

    name: str
    gates_orig: int
    paths_orig: int
    gates_rambo: int
    paths_rambo: int
    k: int
    gates_rambo_p2: int
    paths_rambo_p2: int


@dataclass
class Table3Result:
    """RAMBO_C vs RAMBO_C + Procedure 2."""

    rows: List[Table3Row]

    def render(self) -> str:
        """Paper-shaped table text."""
        return render_table(
            ["circuit", "2-inp orig", "paths orig", "2-inp RAMBO_C",
             "paths RAMBO_C", "K", "2-inp +Proc.2", "paths +Proc.2"],
            [
                (r.name, r.gates_orig, r.paths_orig, r.gates_rambo,
                 r.paths_rambo, r.k, r.gates_rambo_p2, r.paths_rambo_p2)
                for r in self.rows
            ],
            title="Table 3: Comparison with RAMBO_C [1]",
        )


def table3(
    circuits: Sequence[str] = TABLE3_CIRCUITS, k: int = 6
) -> Table3Result:
    """Regenerate Table 3: the RAR baseline, alone and + Procedure 2."""
    rows = []
    for name in circuits:
        orig = original_circuit(name)
        rambo = rambo_circuit(name)
        both = rambo_proc2_circuit(name, k)
        rows.append(Table3Row(
            name=name,
            gates_orig=two_input_gate_count(orig),
            paths_orig=count_paths(orig),
            gates_rambo=two_input_gate_count(rambo),
            paths_rambo=count_paths(rambo),
            k=k,
            gates_rambo_p2=two_input_gate_count(both),
            paths_rambo_p2=count_paths(both),
        ))
    return Table3Result(rows)


# --------------------------------------------------------------------- #
# Table 4
# --------------------------------------------------------------------- #

@dataclass
class Table4Row:
    """One row of a Table 4 sub-table."""

    name: str
    literals_base: int
    longest_base: int
    literals_opt: int
    longest_opt: int


@dataclass
class Table4Result:
    """Technology-mapped sizes before/after the procedures."""

    original_vs_proc2: List[Table4Row]
    rambo_vs_rambo_proc2: List[Table4Row]

    def render(self) -> str:
        """Paper-shaped table text (both sub-tables)."""
        a = render_table(
            ["circuit", "orig literals", "orig longest",
             "Proc.2 literals", "Proc.2 longest"],
            [(r.name, r.literals_base, r.longest_base, r.literals_opt,
              r.longest_opt) for r in self.original_vs_proc2],
            title="Table 4(a): Technology mapping — original circuits",
        )
        b = render_table(
            ["circuit", "RAMBO_C literals", "RAMBO_C longest",
             "+Proc.2 literals", "+Proc.2 longest"],
            [(r.name, r.literals_base, r.longest_base, r.literals_opt,
              r.longest_opt) for r in self.rambo_vs_rambo_proc2],
            title="Table 4(b): Technology mapping — after RAMBO_C",
        )
        return a + "\n\n" + b


def table4(circuits: Sequence[str] = TABLE3_CIRCUITS) -> Table4Result:
    """Regenerate Table 4: mapped literal counts and longest paths."""
    part_a = []
    part_b = []
    for name in circuits:
        orig = map_circuit(original_circuit(name))
        p2 = map_circuit(proc2_best(name)[0])
        part_a.append(Table4Row(
            name, orig.literals, orig.longest_path,
            p2.literals, p2.longest_path,
        ))
        rambo = map_circuit(rambo_circuit(name))
        both = map_circuit(rambo_proc2_circuit(name))
        part_b.append(Table4Row(
            name, rambo.literals, rambo.longest_path,
            both.literals, both.longest_path,
        ))
    return Table4Result(part_a, part_b)


# --------------------------------------------------------------------- #
# Table 5
# --------------------------------------------------------------------- #

@dataclass
class Table5Row:
    """One row of Table 5 (Procedure 3)."""

    name: str
    k: int
    inputs: int
    outputs: int
    gates_orig: int
    gates_modified: int
    paths_orig: int
    paths_modified: int


@dataclass
class Table5Result:
    """Procedure 3 results over the suite."""

    rows: List[Table5Row]

    def render(self) -> str:
        """Paper-shaped table text."""
        return render_table(
            ["circuit(K)", "inp", "out", "2-inp orig", "2-inp modif",
             "paths orig", "paths modif"],
            [
                (f"{r.name} ({r.k})", r.inputs, r.outputs, r.gates_orig,
                 r.gates_modified, r.paths_orig, r.paths_modified)
                for r in self.rows
            ],
            title="Table 5: Results of Procedure 3",
        )


def table5(circuits: Optional[Sequence[str]] = None) -> Table5Result:
    """Regenerate Table 5: Procedure 3 (path-count objective)."""
    rows = []
    for name in circuits or suite_names():
        orig = original_circuit(name)
        modified, k = proc3_best(name)
        rows.append(Table5Row(
            name=name,
            k=k,
            inputs=len(orig.inputs),
            outputs=len(orig.outputs),
            gates_orig=two_input_gate_count(orig),
            gates_modified=two_input_gate_count(modified),
            paths_orig=count_paths(orig),
            paths_modified=count_paths(modified),
        ))
    return Table5Result(rows)


# --------------------------------------------------------------------- #
# Table 6
# --------------------------------------------------------------------- #

@dataclass
class Table6Row:
    """One row of Table 6 (random-pattern stuck-at testability)."""

    name: str
    faults_orig: int
    remain_orig: int
    eff_orig: Optional[int]
    faults_modified: int
    remain_modified: int
    eff_modified: Optional[int]


@dataclass
class Table6Result:
    """Random-pattern stuck-at testability, original vs modified."""

    rows: List[Table6Row]
    max_patterns: int

    def render(self) -> str:
        """Paper-shaped table text."""
        return render_table(
            ["circuit", "faults", "remain", "eff.patt",
             "faults'", "remain'", "eff.patt'"],
            [
                (r.name, r.faults_orig, r.remain_orig, r.eff_orig,
                 r.faults_modified, r.remain_modified, r.eff_modified)
                for r in self.rows
            ],
            title=(
                "Table 6: Results for stuck-at faults "
                f"(random patterns, budget {self.max_patterns:,}; "
                "primed columns = modified circuit)"
            ),
        )


def table6(
    circuits: Optional[Sequence[str]] = None,
    max_patterns: int = 1 << 15,
    seed: int = 7,
    batch_size: int = 256,
) -> Table6Result:
    """Regenerate Table 6: the paper applies the *same* random sequence to
    the original and the Procedure-2 + redundancy-removal circuit and
    reports total faults / undetected / last effective pattern."""
    rows = []
    for name in circuits or suite_names():
        orig = original_circuit(name)
        modified = proc2_redrem(name)
        res_o = random_stuck_at_campaign(
            orig, seed=seed, max_patterns=max_patterns,
            batch_size=batch_size, stop_when_complete=False,
        )
        res_m = random_stuck_at_campaign(
            modified, seed=seed, max_patterns=max_patterns,
            batch_size=batch_size, stop_when_complete=False,
        )
        rows.append(Table6Row(
            name=name,
            faults_orig=res_o.total_faults,
            remain_orig=res_o.remaining,
            eff_orig=res_o.last_effective_pattern,
            faults_modified=res_m.total_faults,
            remain_modified=res_m.remaining,
            eff_modified=res_m.last_effective_pattern,
        ))
    return Table6Result(rows, max_patterns)


# --------------------------------------------------------------------- #
# Table 7
# --------------------------------------------------------------------- #

@dataclass
class Table7Row:
    """One row of Table 7 (robust PDF random-pattern detection)."""

    version: str
    eff_orig: Optional[int]
    detected_orig: int
    faults_orig: int
    eff_modified: Optional[int]
    detected_modified: int
    faults_modified: int


@dataclass
class Table7Result:
    """Robust PDF coverage before/after modification (Table 7's circuit)."""

    circuit_name: str
    rows: List[Table7Row]
    max_patterns: int

    def render(self) -> str:
        """Paper-shaped table text."""
        return render_table(
            ["circuit", "eff", "det/faults original", "det/faults modified"],
            [
                (
                    r.version,
                    max(v for v in (r.eff_orig, r.eff_modified, 0)
                        if v is not None),
                    f"{r.detected_orig:,}/{r.faults_orig:,}",
                    f"{r.detected_modified:,}/{r.faults_modified:,}",
                )
                for r in self.rows
            ],
            title=(
                f"Table 7: Robust detection by random patterns in "
                f"{self.circuit_name} (budget {self.max_patterns:,} "
                "two-pattern tests)"
            ),
        )


def table7(
    circuit_name: str = "syn13207",
    max_patterns: int = 20_000,
    plateau_window: int = 5_000,
    seed: int = 13,
    batch_size: int = 128,
) -> Table7Result:
    """Regenerate Table 7 on the suite's analogue of ``irs13207``.

    Two rows, as in the paper: the original circuit vs its Procedure-2
    modification, and the RAMBO_C circuit vs RAMBO_C + Procedure 2.
    """
    def campaign(circuit: Circuit):
        return random_pdf_campaign(
            circuit, seed=seed, max_patterns=max_patterns,
            plateau_window=plateau_window, batch_size=batch_size,
        )

    rows = []
    pairs = [
        ("original", original_circuit(circuit_name),
         proc2_redrem(circuit_name)),
        ("RAMBO_C", rambo_circuit(circuit_name),
         rambo_proc2_circuit(circuit_name)),
    ]
    for label, base, modified in pairs:
        res_b = campaign(base)
        res_m = campaign(modified)
        rows.append(Table7Row(
            version=label,
            eff_orig=res_b.last_effective_pattern,
            detected_orig=res_b.detected,
            faults_orig=res_b.total_faults,
            eff_modified=res_m.last_effective_pattern,
            detected_modified=res_m.detected,
            faults_modified=res_m.total_faults,
        ))
    return Table7Result(circuit_name, rows, max_patterns)
