"""Shared experiment artifacts: optimized circuit versions, disk-cached.

Tables 2-7 all consume the same handful of derived circuits (Procedure 2
output, its redundancy-removed form, the RAMBO_C baseline output, RAMBO_C
followed by Procedure 2, Procedure 3 output).  Deriving them is the
expensive part of the evaluation, so each is materialized as a JSON netlist
under ``benchcircuits/data/derived/`` keyed by circuit and stage; repeat
runs load instantly.  Everything is deterministic, so the cache is pure
memoization.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional, Tuple

from ..atpg import remove_redundancies
from ..baselines import rambo_c
from ..benchcircuits.suite import DATA_DIR, suite_circuit
from ..io.json_io import load_json, save_json
from ..netlist import Circuit, two_input_gate_count
from ..resynth import procedure2, procedure3

DERIVED_DIR = os.path.join(DATA_DIR, "derived")

#: K values evaluated per circuit, as in the paper's Section 5.
DEFAULT_KS: Tuple[int, ...] = (5, 6)


def _cache_path(name: str, stage: str) -> str:
    return os.path.join(DERIVED_DIR, f"{name}.{stage}.json")


def _load_cached(name: str, stage: str) -> Optional[Circuit]:
    path = _cache_path(name, stage)
    if os.path.exists(path):
        return load_json(path)
    return None


def _store(circuit: Circuit, name: str, stage: str) -> Circuit:
    try:
        os.makedirs(DERIVED_DIR, exist_ok=True)
        save_json(circuit, _cache_path(name, stage))
    except OSError:  # pragma: no cover - read-only installs
        pass
    return circuit


def _derive(name: str, stage: str, builder) -> Circuit:
    cached = _load_cached(name, stage)
    if cached is not None:
        return cached
    circuit = builder()
    circuit.name = name
    return _store(circuit, name, stage)


@lru_cache(maxsize=None)
def original_circuit(name: str) -> Circuit:
    """The irredundant suite circuit (Tables' "orig" column)."""
    return suite_circuit(name)


@lru_cache(maxsize=None)
def proc2_circuit(name: str, k: int) -> Circuit:
    """Procedure 2 output for one K."""
    return _derive(
        name, f"p2k{k}",
        lambda: procedure2(original_circuit(name), k=k).circuit,
    )


@lru_cache(maxsize=None)
def proc2_best(name: str) -> Tuple[Circuit, int]:
    """Procedure 2 output at the better K (fewest 2-input gates, then paths).

    The paper reports "the value of K for which the best modified circuit
    was obtained"; this mirrors that selection over :data:`DEFAULT_KS`.
    """
    from ..analysis import count_paths

    scored = []
    for k in DEFAULT_KS:
        c = proc2_circuit(name, k)
        scored.append(((two_input_gate_count(c), count_paths(c)), k, c))
    scored.sort(key=lambda t: t[0])
    _, k, circuit = scored[0]
    return circuit, k


@lru_cache(maxsize=None)
def proc2_redrem(name: str) -> Circuit:
    """Procedure 2 output after redundancy removal (Table 2's "red.rem")."""
    def build() -> Circuit:
        circuit, _ = proc2_best(name)
        return remove_redundancies(circuit, random_patterns=1024).circuit

    return _derive(name, "p2rr", build)


@lru_cache(maxsize=None)
def proc3_circuit(name: str, k: int) -> Circuit:
    """Procedure 3 output for one K."""
    return _derive(
        name, f"p3k{k}",
        lambda: procedure3(original_circuit(name), k=k).circuit,
    )


@lru_cache(maxsize=None)
def proc3_best(name: str) -> Tuple[Circuit, int]:
    """Procedure 3 output at the better K (fewest paths)."""
    from ..analysis import count_paths

    scored = []
    for k in DEFAULT_KS:
        c = proc3_circuit(name, k)
        scored.append((count_paths(c), k, c))
    scored.sort(key=lambda t: t[0])
    _, k, circuit = scored[0]
    return circuit, k


@lru_cache(maxsize=None)
def rambo_circuit(name: str) -> Circuit:
    """RAMBO_C baseline output (Table 3's "RAMBO_C" columns)."""
    return _derive(
        name, "rambo", lambda: rambo_c(original_circuit(name)).circuit
    )


@lru_cache(maxsize=None)
def rambo_proc2_circuit(name: str, k: int = 6) -> Circuit:
    """Procedure 2 applied after RAMBO_C (Table 3's last columns)."""
    return _derive(
        name, f"rambop2k{k}",
        lambda: procedure2(rambo_circuit(name), k=k).circuit,
    )


def clear_disk_cache() -> int:
    """Delete all derived artifacts; returns the number removed."""
    removed = 0
    if os.path.isdir(DERIVED_DIR):
        for fn in os.listdir(DERIVED_DIR):
            if fn.endswith(".json"):
                os.unlink(os.path.join(DERIVED_DIR, fn))
                removed += 1
    proc2_circuit.cache_clear()
    proc2_best.cache_clear()
    proc2_redrem.cache_clear()
    proc3_circuit.cache_clear()
    proc3_best.cache_clear()
    rambo_circuit.cache_clear()
    rambo_proc2_circuit.cache_clear()
    return removed
