"""Plain-text table rendering for the experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _fmt(value: Cell) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table (ints get thousands separators)."""
    srows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in srows), default=0))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in srows:
        lines.append(
            "  ".join(c.rjust(w) if _is_numeric(c) else c.ljust(w)
                      for c, w in zip(r, widths))
        )
    return "\n".join(lines)


def _is_numeric(cell: str) -> bool:
    return bool(cell) and cell.replace(",", "").replace(".", "").replace(
        "-", ""
    ).replace("/", "").isdigit()
