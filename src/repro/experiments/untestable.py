"""Untestable-fault profiling: where do the removed paths come from?

The paper's central interpretive claim (Sections 1 and 5): the path
reductions of Procedures 2/3 come overwhelmingly from path delay faults
that were *untestable by random patterns* — "the number of testable paths
increases" while untestable ones vanish.  This driver quantifies that on
our circuits: it samples path faults uniformly (via the Procedure 1
labels, so huge populations are fine) and classifies each with the
targeted generator of :mod:`repro.pdf.atpg`:

* **witnessed** — a robust two-pattern test was found (biased random
  probing, then bounded search);
* **proved untestable** — the complete search over the support cone
  exhausted without a test;
* **unresolved** — the budget ran out (deep paths; overwhelmingly these
  behave like the untestable class under random patterns).

The testable fraction of the population is estimated from the witnessed
share; after Procedure 2 it must not drop while the population shrinks —
the removed faults were the untestable kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis import count_paths, sample_paths
from ..netlist import Circuit
from ..pdf import PdfAtpgStatus, RobustCriterion, robust_pdf_test
from .format import render_table


@dataclass
class TestabilityProfile:
    """Sampled robust-testability profile of one circuit's path faults."""

    __test__ = False  # not a pytest class, despite the name

    circuit_name: str
    total_faults: int
    sampled: int
    witnessed: int
    proved_untestable: int
    unresolved: int

    @property
    def witnessed_fraction(self) -> float:
        """Share of sampled faults with an actual robust test in hand."""
        if self.sampled == 0:
            return 0.0
        return self.witnessed / self.sampled

    @property
    def estimated_testable(self) -> int:
        """Witnessed fraction scaled to the full fault population."""
        return round(self.witnessed_fraction * self.total_faults)

    @property
    def estimated_untestable(self) -> int:
        """Population minus the testable estimate (an upper bound: the
        unresolved class may hide more testable faults)."""
        return self.total_faults - self.estimated_testable


def profile_circuit(
    circuit: Circuit,
    samples: int = 120,
    seed: int = 5,
    criterion: RobustCriterion = RobustCriterion.STANDARD,
    max_backtracks: int = 800,
    random_probes: int = 512,
) -> TestabilityProfile:
    """Classify a uniform sample of path delay faults."""
    paths = sample_paths(circuit, samples, seed=seed)
    witnessed = proved = unresolved = 0
    for i, path in enumerate(paths):
        rising = (i % 2 == 0)
        res = robust_pdf_test(
            circuit, path, rising, criterion,
            max_backtracks=max_backtracks, random_probes=random_probes,
        )
        if res.status is PdfAtpgStatus.TESTABLE:
            witnessed += 1
        elif res.status is PdfAtpgStatus.UNTESTABLE:
            proved += 1
        else:
            unresolved += 1
    return TestabilityProfile(
        circuit_name=circuit.name,
        total_faults=2 * count_paths(circuit),
        sampled=len(paths),
        witnessed=witnessed,
        proved_untestable=proved,
        unresolved=unresolved,
    )


@dataclass
class UntestableProfileResult:
    """Before/after fault-population accounting (the Section 5 claim).

    Let ``F`` be the path-fault count and ``D`` the random-campaign
    detected count (``U = F - D`` undetected).  The paper observes that
    when the modification removes ``Delta = F_orig - F_mod`` faults, the
    undetected count drops by *more* than ``Delta`` — equivalently the
    detected count rises: every removed fault came from the undetected
    pool, and previously-undetected faults became detectable on top.
    """

    circuit_name: str
    faults_orig: int
    detected_orig: int
    faults_modified: int
    detected_modified: int

    @property
    def removed(self) -> int:
        """``Delta``: path faults removed by the modification."""
        return self.faults_orig - self.faults_modified

    @property
    def undetected_orig(self) -> int:
        """Undetected faults before."""
        return self.faults_orig - self.detected_orig

    @property
    def undetected_modified(self) -> int:
        """Undetected faults after."""
        return self.faults_modified - self.detected_modified

    @property
    def undetected_reduction(self) -> int:
        """How far the undetected pool shrank."""
        return self.undetected_orig - self.undetected_modified

    @property
    def claim_holds(self) -> bool:
        """The paper's inequality: undetected reduction exceeds ``Delta``."""
        return self.undetected_reduction >= self.removed > 0

    def render(self) -> str:
        """Aligned accounting table."""
        rows = [
            ("original", self.faults_orig, self.detected_orig,
             self.undetected_orig),
            ("modified", self.faults_modified, self.detected_modified,
             self.undetected_modified),
            ("change", -self.removed,
             self.detected_modified - self.detected_orig,
             -self.undetected_reduction),
        ]
        verdict = (
            "undetected pool shrank by MORE than the removed faults "
            "(every removal came from the untestable side)"
            if self.claim_holds else
            "claim NOT established at this pattern budget"
        )
        return render_table(
            ["version", "path faults", "detected", "undetected"],
            rows,
            title=(
                f"Fault-population accounting for {self.circuit_name}: "
                f"{verdict}"
            ),
        )


def untestable_profile(
    circuit_name: str = "syn1423",
    max_patterns: int = 8_000,
    plateau_window: int = 2_000,
    seed: int = 13,
) -> UntestableProfileResult:
    """Account for the removed faults on a suite circuit (orig vs Proc. 2).

    Runs the same seeded random two-pattern campaign on both versions and
    applies the Section 5 arithmetic.  (The per-fault deterministic
    classifier :func:`profile_circuit` remains available for small
    circuits, where its proofs terminate.)
    """
    from ..pdf import random_pdf_campaign
    from .artifacts import original_circuit, proc2_redrem

    def run(circuit: Circuit):
        return random_pdf_campaign(
            circuit, seed=seed, max_patterns=max_patterns,
            plateau_window=plateau_window,
        )

    orig = run(original_circuit(circuit_name))
    mod = run(proc2_redrem(circuit_name))
    return UntestableProfileResult(
        circuit_name=circuit_name,
        faults_orig=orig.total_faults,
        detected_orig=orig.detected,
        faults_modified=mod.total_faults,
        detected_modified=mod.detected,
    )
