"""A compact ROBDD engine (reduced ordered binary decision diagrams).

The third leg of the verification stool: random simulation refutes fast,
PODEM-on-a-miter decides, and BDDs give canonical forms — two circuits are
equivalent iff their output BDDs are the same node.  Also used for exact
model counting (ON-set sizes without exhaustive simulation) and as an
independent cross-check of truth tables in the test suite.

The implementation is the standard one: nodes ``(var, low, high)`` hashed
for canonicity, ``ite`` with memoization, complement-free (both polarities
materialized).  Variables are indexed by position in a fixed order; the
terminal nodes are ``ZERO`` and ``ONE``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .netlist import Circuit, GateType


class BDD:
    """A ROBDD manager over a fixed variable order."""

    ZERO = 0
    ONE = 1

    def __init__(self, variables: Sequence[str]) -> None:
        self.variables = list(variables)
        self._index = {v: i for i, v in enumerate(self.variables)}
        if len(self._index) != len(self.variables):
            raise ValueError("duplicate variable names")
        # node table: id -> (var_index, low_id, high_id); 0/1 terminals
        self._nodes: List[Optional[Tuple[int, int, int]]] = [None, None]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # -- construction -------------------------------------------------------

    def var(self, name: str) -> int:
        """The BDD of a single variable."""
        return self._mk(self._index[name], self.ZERO, self.ONE)

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def _top_var(self, *nodes: int) -> int:
        best = len(self.variables)
        for n in nodes:
            if n > 1:
                best = min(best, self._nodes[n][0])
        return best

    def _cofactor(self, node: int, var: int, value: int) -> int:
        if node <= 1:
            return node
        nvar, low, high = self._nodes[node]
        if nvar != var:
            return node
        return high if value else low

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the universal BDD operator."""
        if f == self.ONE:
            return g
        if f == self.ZERO:
            return h
        if g == h:
            return g
        if g == self.ONE and h == self.ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        var = self._top_var(f, g, h)
        r_low = self.ite(
            self._cofactor(f, var, 0),
            self._cofactor(g, var, 0),
            self._cofactor(h, var, 0),
        )
        r_high = self.ite(
            self._cofactor(f, var, 1),
            self._cofactor(g, var, 1),
            self._cofactor(h, var, 1),
        )
        result = self._mk(var, r_low, r_high)
        self._ite_cache[key] = result
        return result

    # -- boolean algebra ----------------------------------------------------

    def apply_not(self, f: int) -> int:
        """Negation."""
        return self.ite(f, self.ZERO, self.ONE)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, self.ZERO)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, self.ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.apply_not(g), g)

    # -- queries -------------------------------------------------------------

    def evaluate(self, node: int, assignment: Dict[str, int]) -> int:
        """Evaluate under a complete 0/1 assignment."""
        while node > 1:
            var, low, high = self._nodes[node]
            node = high if assignment[self.variables[var]] else low
        return node

    def sat_count(self, node: int) -> int:
        """Number of satisfying assignments over the full variable set."""
        memo: Dict[int, int] = {}
        n = len(self.variables)

        def count(nd: int, depth_var: int) -> int:
            # number of solutions over variables[depth_var:]
            if nd == self.ZERO:
                return 0
            if nd == self.ONE:
                return 1 << (n - depth_var)
            key = (nd, depth_var)
            got = memo.get(key)
            if got is not None:
                return got
            var, low, high = self._nodes[nd]
            gap = var - depth_var
            total = (count(low, var + 1) + count(high, var + 1)) << gap
            memo[key] = total
            return total

        return count(node, 0)

    def size(self, node: int) -> int:
        """Number of internal nodes reachable from *node*."""
        seen = set()
        stack = [node]
        while stack:
            nd = stack.pop()
            if nd <= 1 or nd in seen:
                continue
            seen.add(nd)
            _, low, high = self._nodes[nd]
            stack.extend((low, high))
        return len(seen)

    def to_truth_table(self, node: int) -> int:
        """Truth table bitmask under the manager's variable order (MSB first)."""
        n = len(self.variables)
        table = 0
        for m in range(1 << n):
            assignment = {
                v: (m >> (n - i - 1)) & 1
                for i, v in enumerate(self.variables)
            }
            if self.evaluate(node, assignment):
                table |= 1 << m
        return table


def circuit_bdds(
    circuit: Circuit, manager: Optional[BDD] = None
) -> Tuple[BDD, Dict[str, int]]:
    """Build BDDs for every net of a circuit (input declaration order)."""
    bdd = manager or BDD(circuit.inputs)
    nodes: Dict[str, int] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gtype
        if gt is GateType.INPUT:
            nodes[net] = bdd.var(net)
        elif gt is GateType.CONST0:
            nodes[net] = BDD.ZERO
        elif gt is GateType.CONST1:
            nodes[net] = BDD.ONE
        elif gt is GateType.BUF:
            nodes[net] = nodes[gate.fanins[0]]
        elif gt is GateType.NOT:
            nodes[net] = bdd.apply_not(nodes[gate.fanins[0]])
        else:
            acc = nodes[gate.fanins[0]]
            for f in gate.fanins[1:]:
                if gt in (GateType.AND, GateType.NAND):
                    acc = bdd.apply_and(acc, nodes[f])
                elif gt in (GateType.OR, GateType.NOR):
                    acc = bdd.apply_or(acc, nodes[f])
                else:
                    acc = bdd.apply_xor(acc, nodes[f])
            if gt in (GateType.NAND, GateType.NOR, GateType.XNOR):
                acc = bdd.apply_not(acc)
            nodes[net] = acc
    return bdd, nodes


def bdd_equivalent(a: Circuit, b: Circuit) -> bool:
    """Canonical-form equivalence check (same interface required)."""
    if a.inputs != b.inputs or a.outputs != b.outputs:
        return False
    manager = BDD(a.inputs)
    _, na = circuit_bdds(a, manager)
    _, nb = circuit_bdds(b, manager)
    return all(na[oa] == nb[ob] for oa, ob in zip(a.outputs, b.outputs))


def on_set_size(circuit: Circuit, output: Optional[str] = None) -> int:
    """Exact ON-set size of one output, by BDD model counting."""
    if output is None:
        outs = circuit.outputs
        if len(set(outs)) != 1:
            raise ValueError("output required for multi-output circuits")
        output = outs[0]
    bdd, nodes = circuit_bdds(circuit)
    return bdd.sat_count(nodes[output])
