"""Crash-safe file writing shared by every on-disk store.

Two stores persist state for this project — the job service's
:class:`~repro.service.store.ArtifactStore` and the identification memo's
:class:`~repro.memo.store.MemoStore` — and both rely on the same
durability discipline: a JSON document is written to a temp file in the
*same* directory, fsynced, ``os.replace``d into place, and the directory
fsynced after the rename.  Readers therefore never observe a torn
document, across process *and* system crashes; a crash mid-write leaves
at worst a stale ``*.tmp`` next to the old (still intact) file.

The helpers live here, below both stores, because the service store
imports from :mod:`repro.resynth` while the memo is consulted from
:mod:`repro.comparison` — a shared home keeps the import graph acyclic.
"""

from __future__ import annotations

import os
import tempfile


def fsync_dir(directory: str) -> None:
    """Make a rename in *directory* survive a system crash (best effort:
    some platforms cannot fsync a directory fd)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover — platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover — platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str) -> int:
    """Write *text* to *path* via same-directory temp + fsync + rename;
    returns the bytes written.  Survives process and system crashes with
    either the old document or the new one, never a torn mix."""
    data = text.encode("utf-8")
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    fsync_dir(directory)
    return len(data)
