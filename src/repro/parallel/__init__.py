"""Parallel candidate evaluation for the resynthesis sweep (``repro.parallel``).

Procedures 2 and 3 spend almost all of their time evaluating candidate
cones: extracting the cone's truth table and searching input permutations
for comparison-function realizations.  Both computations are pure
functions — of the cone's structural signature and of the identification
knobs respectively — while everything that *orders* the sweep (marking,
frozen units, replacement commits, path-label updates) is serial state
owned by the :class:`~repro.analysis.AnalysisSession`.

This module exploits that split.  Before each pass the coordinator
enumerates every candidate cone of the pass-start circuit, dedupes them by
:func:`~repro.sim.cone_signature`, and fans the work out over a process
pool in two rounds (:mod:`repro.parallel.worker`): an *extraction* round
shipping the cone slices whose truth tables are not yet cached, and an
*identification* round shipping one search per unique table-level cache
key (distinct cone structures frequently compute the same function, so
this round is much smaller than the signature count).  The coordinator
merges the returned rows into the pass's caches: the session's
:class:`~repro.sim.TruthTableCache` and the global
:class:`~repro.comparison.IdentificationCache`.  The serial sweep then
runs unchanged and finds its expensive questions pre-answered.

**Determinism contract.**  Reports are bit-identical at any ``--jobs``
value because workers only ever compute pure functions the sweep would
otherwise compute inline: a cache hit is indistinguishable from a local
evaluation, merge order cannot matter (equal keys hold equal values), and
every selection tie-break still happens in the serial sweep, in serial
order, against the session's current labels.  Cones that only exist
mid-pass (after an in-pass replacement, or bounded by freshly frozen
units) simply miss the warmed caches and are evaluated inline, exactly as
a serial run evaluates them.  See ``docs/PARALLEL.md`` for the full
contract.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis import AnalysisSession
from ..comparison.identify import identification_cache, identification_key
from ..netlist import Circuit, GateType
from ..obs import Registry, get_registry, maybe_tracer
from ..resynth.candidates import enumerate_candidate_cones
from ..sim import cone_signature
from .worker import CandidateReport, extract_chunk, identify_chunk

__all__ = [
    "CandidateReport",
    "ParallelEvaluator",
    "ParallelExecutionError",
    "PassPrimeStats",
    "preferred_start_method",
]


class ParallelExecutionError(RuntimeError):
    """A worker failed (or the pool broke) during candidate evaluation.

    Raised by :meth:`ParallelEvaluator.prime_pass` with the original
    exception chained, after cancelling the remaining chunks — a crashed
    worker surfaces as one clean error instead of a hang or a corrupted
    sweep.
    """


def preferred_start_method() -> str:
    """The multiprocessing start method the evaluator picks by default.

    ``fork`` when the platform offers it (cheap, inherits the warm code
    and caches), ``spawn`` otherwise.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class PassPrimeStats:
    """What one :meth:`ParallelEvaluator.prime_pass` call did."""

    sites: int  # candidate output lines scanned
    cones: int  # candidate cones enumerated (with duplicates)
    unique_cones: int  # distinct signatures among them
    shipped: int  # cone slices sent to the extraction round
    chunks: int  # worker tasks submitted (both rounds)
    merged_tables: int  # truth tables installed into the session cache
    merged_identifications: int  # unique searches installed globally


class ParallelEvaluator:
    """Process-pool coordinator for per-pass candidate fan-out.

    Parameters
    ----------
    jobs:
        Worker process count (must be >= 1; 1 is allowed and simply runs
        one worker, which is useful for tests).
    chunk_factor:
        Tasks submitted per worker per pass.  More chunks smooth load
        imbalance between cheap and expensive cones; each chunk carries
        its own (small) pickling overhead.
    start_method:
        Multiprocessing start method; defaults to
        :func:`preferred_start_method`.
    inject_crash:
        Test-only: makes every worker raise immediately, to exercise the
        :class:`ParallelExecutionError` path deterministically.
    tracer:
        A :class:`repro.obs.Tracer` recording ``prime`` spans (with
        ``prime.enumerate`` / ``prime.extract`` / ``prime.identify``
        children) under whatever span is current when
        :meth:`prime_pass` runs; default: the null tracer.
    registry:
        A :class:`repro.obs.Registry` receiving the fan-out metrics
        (chunk dispatch latency, cones/tables/identifications counters);
        default: the process-wide registry.

    The pool is created lazily on the first :meth:`prime_pass` and torn
    down by :meth:`close` (the evaluator is also a context manager).
    :attr:`prime_seconds` accumulates each call's wall clock (the
    procedures publish it as the report's ``timings["prime_seconds"]``).
    """

    def __init__(
        self,
        jobs: int,
        chunk_factor: int = 4,
        start_method: Optional[str] = None,
        inject_crash: bool = False,
        tracer=None,
        registry: Optional[Registry] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_factor < 1:
            raise ValueError(f"chunk_factor must be >= 1, got {chunk_factor}")
        self.jobs = jobs
        self.chunk_factor = chunk_factor
        self.start_method = start_method or preferred_start_method()
        self.inject_crash = inject_crash
        self.tracer = maybe_tracer(tracer)
        self.registry = registry if registry is not None else get_registry()
        self.prime_seconds: List[float] = []
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context(self.start_method),
            )
        return self._executor

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the per-pass fan-out
    # ------------------------------------------------------------------ #

    def _map_chunks(self, fn, items: List, extra_args: Tuple, seed: int):
        """Fan *items* out over the pool; yield result rows in chunk order.

        Rows are merged in deterministic (submission) order, although the
        merge order cannot matter: every row is a pure-function value
        keyed by its own arguments, so equal keys always carry equal
        values.  A failed worker cancels the remaining chunks, tears the
        pool down, and surfaces as one :class:`ParallelExecutionError`.
        """
        n_chunks = min(len(items), self.jobs * self.chunk_factor)
        chunks = [items[i::n_chunks] for i in range(n_chunks)]
        dispatch = self.registry.get_histogram(
            "parallel_chunk_seconds",
            "submit-to-done latency of one worker chunk (queue + compute)")
        submitted = time.perf_counter()

        def _observe_done(_future: Future) -> None:
            # Runs on a pool thread as each chunk finishes; the registry
            # is thread-safe.  Measures pool dispatch latency: time from
            # submission until the chunk's result is ready.
            dispatch.observe(time.perf_counter() - submitted)

        futures: List[Future] = [
            self._pool().submit(fn, chunk, *extra_args, self.inject_crash)
            for chunk in chunks
        ]
        for future in futures:
            future.add_done_callback(_observe_done)
        self.registry.inc("parallel_chunks_total", n_chunks)
        rows: List = []
        try:
            for future in futures:
                rows.extend(future.result())
        except Exception as exc:
            for future in futures:
                future.cancel()
            self.close()
            raise ParallelExecutionError(
                f"parallel candidate evaluation failed while priming the "
                f"pass with seed {seed} ({self.jobs} job(s), "
                f"{n_chunks} chunk(s) of {fn.__name__}): {exc}"
            ) from exc
        return rows, n_chunks

    def prime_pass(
        self,
        circuit: Circuit,
        session: AnalysisSession,
        k: int,
        perm_budget: int,
        seed: int,
        max_specs: int,
        try_offset: bool = True,
    ) -> PassPrimeStats:
        """Fan one pass's candidate evaluation out and merge the results.

        Enumerates the candidate cones of every gate-output line of
        *circuit* (the pass-start structure, with an empty frozen set —
        exactly the serial sweep's view at its first selection site), then
        runs the two worker rounds:

        1. *extraction* — signatures without a cached truth table are
           shipped as cone slices; the returned tables are installed into
           ``session.truth_tables``;
        2. *identification* — the non-constant tables are reduced to
           unique uncached :func:`~repro.comparison.identification_key`
           work units, searched in workers, and installed into the global
           :class:`~repro.comparison.IdentificationCache`.

        The knobs must equal the ones the sweep will use; the procedures
        pass their per-pass seed (``seed + pass_index``) so worker results
        are keyed precisely for the pass being primed.

        Each call emits a ``prime`` span with ``prime.enumerate`` /
        ``prime.extract`` / ``prime.identify`` children, appends its wall
        clock to :attr:`prime_seconds`, and republishes the returned
        :class:`PassPrimeStats` as obs counters (``parallel_*_total``).
        """
        prime_start = time.perf_counter()
        with self.tracer.span("prime", seed=seed) as prime_span:
            id_cache = identification_cache()
            tt_cache = session.truth_tables
            sites = 0
            cones = 0
            seen: Set[Tuple] = set()
            to_extract: List[Tuple[Tuple, int]] = []
            cached: List[Tuple[int, int]] = []  # (n, table) already known
            with self.tracer.span("prime.enumerate"):
                for net in reversed(circuit.topological_order()):
                    gate = circuit.gate(net)
                    if gate.gtype in (GateType.INPUT, GateType.CONST0,
                                      GateType.CONST1):
                        continue
                    sites += 1
                    for cone in enumerate_candidate_cones(circuit, net, k):
                        cones += 1
                        if not cone.inputs:
                            continue
                        sig = cone_signature(
                            circuit, cone.output, cone.members, cone.inputs
                        )
                        if sig in seen:
                            continue
                        seen.add(sig)
                        n = len(cone.inputs)
                        table = tt_cache.peek(sig)
                        if table is None:
                            to_extract.append((sig, n))
                        else:
                            cached.append((n, table))

            merged_tables = 0
            n_chunks = 0
            tables: List[Tuple[int, int]] = cached
            if to_extract:
                with self.tracer.span("prime.extract",
                                      shipped=len(to_extract)):
                    rows, used = self._map_chunks(
                        extract_chunk, to_extract, (), seed
                    )
                    n_chunks += used
                    for sig, n, table in rows:
                        tt_cache.put(sig, table)
                        merged_tables += 1
                        tables.append((n, table))

            memo = session.memo
            to_identify: Dict[Tuple, Tuple[int, int]] = {}
            for n, table in tables:
                full = (1 << (1 << n)) - 1
                if table == 0 or table == full:
                    continue
                key = identification_key(
                    table, n, perm_budget, try_offset, seed, max_specs
                )
                if key in to_identify or id_cache.peek(key) is not None:
                    continue
                if memo is not None:
                    # The persistent memo answers before any work ships:
                    # a stored result is the exact pure-function value,
                    # so installing it is indistinguishable from having
                    # searched in a worker.
                    stored = memo.lookup(
                        table, n, perm_budget, try_offset, seed, max_specs
                    )
                    if stored is not None:
                        id_cache.put(key, stored)
                        continue
                to_identify[key] = (table, n)

            merged_idents = 0
            if to_identify:
                with self.tracer.span("prime.identify",
                                      searches=len(to_identify)):
                    rows, used = self._map_chunks(
                        identify_chunk,
                        list(to_identify.values()),
                        (perm_budget, try_offset, seed, max_specs),
                        seed,
                    )
                    n_chunks += used
                    for table, n, hits, tried in rows:
                        key = identification_key(
                            table, n, perm_budget, try_offset, seed,
                            max_specs
                        )
                        id_cache.put(key, (hits, tried))
                        merged_idents += 1
                        if memo is not None:
                            memo.record(
                                table, n, perm_budget, try_offset, seed,
                                max_specs, (hits, tried),
                            )
            stats = PassPrimeStats(
                sites=sites,
                cones=cones,
                unique_cones=len(seen),
                shipped=len(to_extract),
                chunks=n_chunks,
                merged_tables=merged_tables,
                merged_identifications=merged_idents,
            )
            prime_span.annotate(
                sites=stats.sites, cones=stats.cones,
                unique_cones=stats.unique_cones, shipped=stats.shipped,
                chunks=stats.chunks, merged_tables=stats.merged_tables,
                merged_identifications=stats.merged_identifications,
            )
        self.prime_seconds.append(time.perf_counter() - prime_start)
        registry = self.registry
        registry.inc("parallel_prime_rounds_total")
        registry.inc("parallel_sites_total", stats.sites)
        registry.inc("parallel_cones_total", stats.cones)
        registry.inc("parallel_unique_cones_total", stats.unique_cones)
        registry.inc("parallel_shipped_tables_total", stats.shipped)
        registry.inc("parallel_merged_tables_total", stats.merged_tables)
        registry.inc("parallel_merged_identifications_total",
                     stats.merged_identifications)
        return stats
