"""Parallel candidate evaluation for the resynthesis sweep (``repro.parallel``).

Procedures 2 and 3 spend almost all of their time evaluating candidate
cones: extracting the cone's truth table and searching input permutations
for comparison-function realizations.  Both computations are pure
functions — of the cone's structural signature and of the identification
knobs respectively — while everything that *orders* the sweep (marking,
frozen units, replacement commits, path-label updates) is serial state
owned by the :class:`~repro.analysis.AnalysisSession`.

This module is the **cache-priming planner** that exploits that split.
Before each pass the coordinator enumerates every candidate cone of the
pass-start circuit, dedupes them by :func:`~repro.sim.cone_signature`,
and fans the work out over a :class:`~repro.fabric.Fabric` in two rounds
of registered task kinds (:mod:`repro.fabric.tasks`): an *extraction*
round shipping the cone slices whose truth tables are not yet cached,
and an *identification* round shipping one search per unique table-level
cache key (distinct cone structures frequently compute the same
function, so this round is much smaller than the signature count).  The
coordinator merges the returned rows into the pass's caches: the
session's :class:`~repro.sim.TruthTableCache` and the global
:class:`~repro.comparison.IdentificationCache`.  The serial sweep then
runs unchanged and finds its expensive questions pre-answered.

*Where* the tasks run is the fabric's business, not the planner's: the
same priming loop drives :class:`~repro.fabric.SerialFabric` (inline),
:class:`~repro.fabric.ProcessFabric` (the local pool that used to live
inside this module) and :class:`~repro.fabric.RemoteFabric` (a worker
fleet over HTTP).  ``docs/PARALLEL.md`` documents the planner;
``docs/FABRIC.md`` documents the execution layer.

**Determinism contract.**  Reports are bit-identical at any ``--jobs``
value, on any fabric backend, at any shard count, because workers only
ever compute pure functions the sweep would otherwise compute inline: a
cache hit is indistinguishable from a local evaluation, merge order
cannot matter (equal keys hold equal values), and every selection
tie-break still happens in the serial sweep, in serial order, against
the session's current labels.  Cones that only exist mid-pass (after an
in-pass replacement, or bounded by freshly frozen units) simply miss the
warmed caches and are evaluated inline, exactly as a serial run
evaluates them.  See ``docs/PARALLEL.md`` for the full contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis import AnalysisSession
from ..comparison.identify import identification_cache, identification_key
from ..fabric.core import (
    Fabric,
    FabricExecutionError,
    FabricTask,
    ProcessFabric,
    preferred_start_method,
)
from ..netlist import Circuit, GateType
from ..obs import Registry, get_registry, maybe_tracer
from ..resynth.candidates import enumerate_candidate_cones
from ..sim import cone_signature
from .worker import CandidateReport

__all__ = [
    "CandidateReport",
    "ParallelEvaluator",
    "ParallelExecutionError",
    "PassPrimeStats",
    "preferred_start_method",
]


class ParallelExecutionError(FabricExecutionError):
    """Candidate evaluation failed on the fabric during priming.

    Raised by :meth:`ParallelEvaluator.prime_pass` with the fabric's
    exception chained, after the evaluator's own fabric (if it owns one)
    has been torn down — a crashed worker surfaces as one clean error
    instead of a hang or a corrupted sweep.  Subclasses
    :class:`~repro.fabric.FabricExecutionError` so callers may catch at
    either layer.
    """


@dataclass(frozen=True)
class PassPrimeStats:
    """What one :meth:`ParallelEvaluator.prime_pass` call did."""

    sites: int  # candidate output lines scanned
    cones: int  # candidate cones enumerated (with duplicates)
    unique_cones: int  # distinct signatures among them
    shipped: int  # cone slices sent to the extraction round
    chunks: int  # fabric tasks submitted (both rounds)
    merged_tables: int  # truth tables installed into the session cache
    merged_identifications: int  # unique searches installed globally


class ParallelEvaluator:
    """Cache-priming planner: per-pass candidate fan-out over a fabric.

    Parameters
    ----------
    jobs:
        Worker count for the evaluator's own
        :class:`~repro.fabric.ProcessFabric` (must be >= 1; 1 is allowed
        and simply runs one worker, which is useful for tests).  Ignored
        for execution when *fabric* is given, but still validated.
    chunk_factor:
        Shards per unit of fabric parallelism per round (the
        ``chunk_factor`` handed to
        :meth:`~repro.fabric.Fabric.shard_count`).  More shards smooth
        load imbalance between cheap and expensive cones; each shard
        carries its own (small) serialization overhead.
    start_method:
        Multiprocessing start method for the owned process fabric;
        defaults to :func:`~repro.fabric.preferred_start_method`.
    inject_crash:
        Test-only: makes every worker raise immediately, to exercise the
        :class:`ParallelExecutionError` path deterministically (the knob
        travels inside the task payload, so it works on every backend).
    tracer:
        A :class:`repro.obs.Tracer` recording ``prime`` spans (with
        ``prime.enumerate`` / ``prime.extract`` / ``prime.identify``
        children) under whatever span is current when
        :meth:`prime_pass` runs; default: the null tracer.
    registry:
        A :class:`repro.obs.Registry` receiving the planner metrics
        (cones/tables/identifications counters; the fabric adds its own
        ``fabric_*`` series); default: the process-wide registry.
    fabric:
        An externally-owned :class:`~repro.fabric.Fabric` to execute on
        (e.g. a :class:`~repro.fabric.RemoteFabric`).  The evaluator
        never closes a caller-provided fabric; without one it lazily
        creates — and owns — a process fabric from *jobs* /
        *start_method*.

    The owned fabric's pool is created lazily on the first
    :meth:`prime_pass` and torn down by :meth:`close` (the evaluator is
    also a context manager).  :attr:`prime_seconds` accumulates each
    call's wall clock (the procedures publish it as the report's
    ``timings["prime_seconds"]``).
    """

    def __init__(
        self,
        jobs: int,
        chunk_factor: int = 4,
        start_method: Optional[str] = None,
        inject_crash: bool = False,
        tracer=None,
        registry: Optional[Registry] = None,
        fabric: Optional[Fabric] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_factor < 1:
            raise ValueError(f"chunk_factor must be >= 1, got {chunk_factor}")
        self.jobs = jobs
        self.chunk_factor = chunk_factor
        self.start_method = start_method or preferred_start_method()
        self.inject_crash = inject_crash
        self.tracer = maybe_tracer(tracer)
        self.registry = registry if registry is not None else get_registry()
        self.prime_seconds: List[float] = []
        self._shared_fabric = fabric
        self._owned_fabric: Optional[ProcessFabric] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def fabric(self) -> Optional[Fabric]:
        """The fabric tasks run on (``None`` until an owned one exists)."""
        return self._shared_fabric or self._owned_fabric

    def _get_fabric(self) -> Fabric:
        if self._shared_fabric is not None:
            return self._shared_fabric
        if self._owned_fabric is None:
            self._owned_fabric = ProcessFabric(
                self.jobs,
                start_method=self.start_method,
                tracer=self.tracer,
                registry=self.registry,
            )
        return self._owned_fabric

    def close(self) -> None:
        """Shut the owned fabric down (idempotent).

        A caller-provided fabric is the caller's to close — it may be
        serving other evaluators or outlive this pass entirely.
        """
        if self._owned_fabric is not None:
            self._owned_fabric.close()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the per-pass fan-out
    # ------------------------------------------------------------------ #

    def _map_chunks(self, kind: str, items: List, knobs: Dict, seed: int):
        """Fan *items* out over the fabric; return merged rows + shard count.

        Rows come back in deterministic (task) order, although the merge
        order cannot matter: every row is a pure-function value keyed by
        its own arguments, so equal keys always carry equal values.  A
        failing round tears down the evaluator's owned fabric (so any
        later pass starts from a clean pool) and surfaces as one
        :class:`ParallelExecutionError`.
        """
        fabric = self._get_fabric()
        n_chunks = fabric.shard_count(len(items), self.chunk_factor)
        tasks = []
        for i in range(n_chunks):
            payload = {"items": items[i::n_chunks],
                       "inject_crash": self.inject_crash}
            payload.update(knobs)
            tasks.append(FabricTask(kind=kind, payload=payload))
        self.registry.inc("parallel_chunks_total", n_chunks)
        try:
            chunk_rows = fabric.map(tasks)
        except FabricExecutionError as exc:
            self.close()
            raise ParallelExecutionError(
                f"parallel candidate evaluation failed while priming the "
                f"pass with seed {seed} ({n_chunks} {kind} shard(s) on the "
                f"{fabric.name} fabric): {exc}"
            ) from exc
        rows: List = []
        for result in chunk_rows:
            rows.extend(result)
        return rows, n_chunks

    def prime_pass(
        self,
        circuit: Circuit,
        session: AnalysisSession,
        k: int,
        perm_budget: int,
        seed: int,
        max_specs: int,
        try_offset: bool = True,
    ) -> PassPrimeStats:
        """Fan one pass's candidate evaluation out and merge the results.

        Enumerates the candidate cones of every gate-output line of
        *circuit* (the pass-start structure, with an empty frozen set —
        exactly the serial sweep's view at its first selection site), then
        runs the two task rounds:

        1. *extraction* — signatures without a cached truth table are
           shipped as cone slices; the returned tables are installed into
           ``session.truth_tables``;
        2. *identification* — the non-constant tables are reduced to
           unique uncached :func:`~repro.comparison.identification_key`
           work units, searched in workers, and installed into the global
           :class:`~repro.comparison.IdentificationCache`.

        The knobs must equal the ones the sweep will use; the procedures
        pass their per-pass seed (``seed + pass_index``) so worker results
        are keyed precisely for the pass being primed.

        Each call emits a ``prime`` span with ``prime.enumerate`` /
        ``prime.extract`` / ``prime.identify`` children, appends its wall
        clock to :attr:`prime_seconds`, and republishes the returned
        :class:`PassPrimeStats` as obs counters (``parallel_*_total``).
        """
        prime_start = time.perf_counter()
        with self.tracer.span("prime", seed=seed) as prime_span:
            id_cache = identification_cache()
            tt_cache = session.truth_tables
            sites = 0
            cones = 0
            seen: Set[Tuple] = set()
            to_extract: List[Tuple[Tuple, int]] = []
            cached: List[Tuple[int, int]] = []  # (n, table) already known
            with self.tracer.span("prime.enumerate"):
                for net in reversed(circuit.topological_order()):
                    gate = circuit.gate(net)
                    if gate.gtype in (GateType.INPUT, GateType.CONST0,
                                      GateType.CONST1):
                        continue
                    sites += 1
                    for cone in enumerate_candidate_cones(circuit, net, k):
                        cones += 1
                        if not cone.inputs:
                            continue
                        sig = cone_signature(
                            circuit, cone.output, cone.members, cone.inputs
                        )
                        if sig in seen:
                            continue
                        seen.add(sig)
                        n = len(cone.inputs)
                        table = tt_cache.peek(sig)
                        if table is None:
                            to_extract.append((sig, n))
                        else:
                            cached.append((n, table))

            merged_tables = 0
            n_chunks = 0
            tables: List[Tuple[int, int]] = cached
            if to_extract:
                with self.tracer.span("prime.extract",
                                      shipped=len(to_extract)):
                    rows, used = self._map_chunks(
                        "extract", to_extract, {}, seed
                    )
                    n_chunks += used
                    for sig, n, table in rows:
                        tt_cache.put(sig, table)
                        merged_tables += 1
                        tables.append((n, table))

            memo = session.memo
            to_identify: Dict[Tuple, Tuple[int, int]] = {}
            for n, table in tables:
                full = (1 << (1 << n)) - 1
                if table == 0 or table == full:
                    continue
                key = identification_key(
                    table, n, perm_budget, try_offset, seed, max_specs
                )
                if key in to_identify or id_cache.peek(key) is not None:
                    continue
                if memo is not None:
                    # The persistent memo answers before any work ships:
                    # a stored result is the exact pure-function value,
                    # so installing it is indistinguishable from having
                    # searched in a worker.
                    stored = memo.lookup(
                        table, n, perm_budget, try_offset, seed, max_specs
                    )
                    if stored is not None:
                        id_cache.put(key, stored)
                        continue
                to_identify[key] = (table, n)

            merged_idents = 0
            if to_identify:
                with self.tracer.span("prime.identify",
                                      searches=len(to_identify)):
                    rows, used = self._map_chunks(
                        "identify",
                        list(to_identify.values()),
                        {"perm_budget": perm_budget,
                         "try_offset": try_offset,
                         "seed": seed,
                         "max_specs": max_specs},
                        seed,
                    )
                    n_chunks += used
                    for table, n, hits, tried in rows:
                        key = identification_key(
                            table, n, perm_budget, try_offset, seed,
                            max_specs
                        )
                        id_cache.put(key, (hits, tried))
                        merged_idents += 1
                        if memo is not None:
                            memo.record(
                                table, n, perm_budget, try_offset, seed,
                                max_specs, (hits, tried),
                            )
            stats = PassPrimeStats(
                sites=sites,
                cones=cones,
                unique_cones=len(seen),
                shipped=len(to_extract),
                chunks=n_chunks,
                merged_tables=merged_tables,
                merged_identifications=merged_idents,
            )
            prime_span.annotate(
                sites=stats.sites, cones=stats.cones,
                unique_cones=stats.unique_cones, shipped=stats.shipped,
                chunks=stats.chunks, merged_tables=stats.merged_tables,
                merged_identifications=stats.merged_identifications,
            )
        self.prime_seconds.append(time.perf_counter() - prime_start)
        registry = self.registry
        registry.inc("parallel_prime_rounds_total")
        registry.inc("parallel_sites_total", stats.sites)
        registry.inc("parallel_cones_total", stats.cones)
        registry.inc("parallel_unique_cones_total", stats.unique_cones)
        registry.inc("parallel_shipped_tables_total", stats.shipped)
        registry.inc("parallel_merged_tables_total", stats.merged_tables)
        registry.inc("parallel_merged_identifications_total",
                     stats.merged_identifications)
        return stats
