"""Worker-side entry points of the parallel candidate-evaluation layer.

A worker task is a *cone slice*: a list of ``(signature, n_inputs)`` pairs,
where each signature is the canonical picklable DAG serialization produced
by :func:`repro.sim.cone_signature`.  Everything a worker computes is a
pure function of the shipped data plus scalar knobs, so a worker needs no
circuit, no session and no shared state — this module is the complete
pickling boundary of the subsystem.

:func:`evaluate_candidate_chunk` is the semantic reference: one cone slice
in, one scored :class:`CandidateReport` per cone out (truth table plus
comparison-function search).  The production coordinator
(:class:`repro.parallel.ParallelEvaluator`) splits that work into two
rounds so it can deduplicate the expensive half across workers:

* :func:`extract_chunk` — cone slice in, ``(signature, n, table)`` rows
  out.  Shipped only for signatures whose truth table is not already in
  the session cache.
* :func:`identify_chunk` — unique ``(table, n)`` pairs in,
  ``(table, n, hits, tried)`` rows out.  Distinct cone structures
  frequently compute the same function; keying this round by the table
  (exactly the :class:`~repro.comparison.IdentificationCache` key) runs
  each search once instead of once per signature.

Both decompositions produce byte-identical cache contents — the searches
are pure, so *where* and *how often* they run is unobservable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..comparison.identify import (
    PositionHit,
    identification_cache,
    identification_key,
    identify_positions,
)
from ..sim.truthtable import signature_truth_table


@dataclass(frozen=True)
class CandidateReport:
    """The scored evaluation of one unique candidate cone.

    Attributes
    ----------
    signature:
        The cone's :func:`~repro.sim.cone_signature` (the truth-table
        cache key in the coordinator).
    n_inputs:
        Number of cone inputs (the truth table spans ``2**n_inputs``
        minterms).
    table:
        The cone's truth table, evaluated from the signature.
    hits:
        Position-level comparison-function realizations, exactly as
        :func:`repro.comparison.identify_positions` orders them; ``None``
        when the table is constant (the sweep substitutes a constant gate
        without consulting the identifier).
    tried:
        Permutations consumed by the search (0 for constants).
    """

    signature: Tuple
    n_inputs: int
    table: int
    hits: Optional[Tuple[PositionHit, ...]]
    tried: int


class InjectedWorkerCrash(RuntimeError):
    """Deliberate failure raised by the fault-injection knob."""


def _maybe_crash(inject_crash: bool) -> None:
    if inject_crash:
        raise InjectedWorkerCrash(
            "injected worker crash (parallel fault-injection knob)"
        )


def extract_chunk(
    items: Sequence[Tuple[Tuple, int]],
    inject_crash: bool = False,
) -> List[Tuple[Tuple, int, int]]:
    """Evaluate one cone slice to truth tables: ``(sig, n, table)`` rows."""
    _maybe_crash(inject_crash)
    return [
        (signature, n_inputs, signature_truth_table(signature, n_inputs))
        for signature, n_inputs in items
    ]


def identify_chunk(
    items: Sequence[Tuple[int, int]],
    perm_budget: int,
    try_offset: bool,
    seed: int,
    max_specs: int,
    inject_crash: bool = False,
) -> List[Tuple[int, int, Tuple[PositionHit, ...], int]]:
    """Run the comparison-function search on unique ``(table, n)`` pairs.

    The knobs are the identification knobs of the pass being primed;
    shipping them with the slice keeps the worker's search
    argument-for-argument equal to the one the serial sweep would run.
    """
    _maybe_crash(inject_crash)
    return [
        (table, n)
        + identify_positions(
            table, n, perm_budget, try_offset, seed, max_specs
        )
        for table, n in items
    ]


def evaluate_candidate_chunk(
    items: Sequence[Tuple[Tuple, int]],
    perm_budget: int,
    try_offset: bool,
    seed: int,
    max_specs: int,
    inject_crash: bool = False,
) -> List[CandidateReport]:
    """One-shot reference path: a cone slice to scored reports.

    Equivalent to :func:`extract_chunk` followed by :func:`identify_chunk`
    on the results, without the coordinator-side deduplication (a
    worker-local :class:`~repro.comparison.IdentificationCache` still
    catches repeated tables within the slice).
    """
    _maybe_crash(inject_crash)
    cache = identification_cache()
    reports: List[CandidateReport] = []
    for signature, n_inputs in items:
        table = signature_truth_table(signature, n_inputs)
        full = (1 << (1 << n_inputs)) - 1
        if table == 0 or table == full:
            reports.append(
                CandidateReport(signature, n_inputs, table, None, 0)
            )
            continue
        key = identification_key(
            table, n_inputs, perm_budget, try_offset, seed, max_specs
        )
        got = cache.get(key)
        if got is None:
            got = identify_positions(
                table, n_inputs, perm_budget, try_offset, seed, max_specs
            )
            cache.put(key, got)
        hits, tried = got
        reports.append(
            CandidateReport(signature, n_inputs, table, hits, tried)
        )
    return reports
