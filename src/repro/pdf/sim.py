"""Random-pattern robust path-delay-fault simulation (Table 7 semantics).

Applies seeded random two-pattern tests in bit-parallel batches, accumulates
the set of robustly detected path delay faults, and stops once no new fault
has been detected for a configurable window of consecutive patterns (the
paper stops after 100,000 quiet patterns).  Reports the detected count, the
total fault count (two faults per path) and the last effective pattern.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Set

from ..analysis import count_paths
from ..netlist import Circuit
from ..sim.patterns import random_words
from .hazard import simulate_pairs
from .robust import PathFault, RobustCriterion, robustly_sensitized_paths


@dataclass
class PdfCoverageResult:
    """Outcome of a random two-pattern robust PDF campaign."""

    circuit_name: str
    total_faults: int
    detected: int
    patterns_applied: int
    last_effective_pattern: Optional[int]
    plateau_reached: bool

    @property
    def undetected(self) -> int:
        """Faults never robustly detected during the campaign."""
        return self.total_faults - self.detected

    @property
    def coverage(self) -> float:
        """Detected fraction of all path delay faults."""
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults

    def det_over_faults(self) -> str:
        """The paper's "det/faults" column format."""
        return f"{self.detected:,}/{self.total_faults:,}"


def total_path_faults(circuit: Circuit) -> int:
    """Two path delay faults (rising/falling launch) per path."""
    return 2 * count_paths(circuit)


def random_pdf_campaign(
    circuit: Circuit,
    seed: int = 0,
    max_patterns: int = 200_000,
    plateau_window: int = 20_000,
    batch_size: int = 256,
    criterion: RobustCriterion = RobustCriterion.STANDARD,
    detected_out: Optional[Set[PathFault]] = None,
) -> PdfCoverageResult:
    """Run random two-pattern tests until the coverage plateaus.

    Each "pattern" is a two-pattern test: both vectors are drawn uniformly
    at random (the customary random delay-test model).  The campaign stops
    after *plateau_window* consecutive patterns with no new detection, or
    at *max_patterns*.

    Parameters
    ----------
    detected_out:
        Optional set that receives the detected faults (useful for
        intersecting campaigns across circuit versions).
    """
    rng = random.Random(seed)
    detected: Set[PathFault] = set() if detected_out is None else detected_out
    total = total_path_faults(circuit)
    inputs = circuit.inputs

    applied = 0
    last_effective: Optional[int] = None
    plateau = False
    while applied < max_patterns:
        width = min(batch_size, max_patterns - applied)
        v1 = random_words(inputs, width, rng)
        v2 = random_words(inputs, width, rng)
        pw = simulate_pairs(circuit, v1, v2, width)
        for rec in robustly_sensitized_paths(circuit, pw, criterion):
            for rising, mask in ((True, rec.rising_mask),
                                 (False, rec.falling_mask)):
                if not mask:
                    continue
                fault: PathFault = (rec.path, rising)
                if fault in detected:
                    continue
                first_bit = (mask & -mask).bit_length() - 1
                detected.add(fault)
                pattern_index = applied + first_bit + 1  # 1-based
                if last_effective is None or pattern_index > last_effective:
                    last_effective = pattern_index
        applied += width
        quiet = applied - (last_effective or 0)
        if quiet >= plateau_window:
            plateau = True
            break
    return PdfCoverageResult(
        circuit_name=circuit.name,
        total_faults=total,
        detected=len(detected),
        patterns_applied=applied,
        last_effective_pattern=last_effective,
        plateau_reached=plateau,
    )
